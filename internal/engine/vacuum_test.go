package engine

import (
	"strings"
	"testing"
)

func TestVacuumMetaCommand(t *testing.T) {
	s := newShopSession(t)
	mustExec(t, s, "INSERT INTO items (id, title, cost, stock) VALUES (1, 'a', 1, 0)")
	for i := 0; i < 5; i++ {
		mustExec(t, s, "UPDATE items SET stock = stock + 1 WHERE id = 1")
	}
	res := mustExec(t, s, "VACUUM")
	if !strings.HasPrefix(res.Tag, "VACUUM ") {
		t.Fatalf("Tag = %q", res.Tag)
	}
	if res.Tag == "VACUUM 0" {
		t.Error("vacuum removed nothing after 5 updates")
	}
	// State intact.
	got := mustExec(t, s, "SELECT stock FROM items WHERE id = 1")
	if got.Rows[0][0].Int != 5 {
		t.Errorf("stock = %v", got.Rows[0][0])
	}
	// Second vacuum is a no-op.
	res = mustExec(t, s, "VACUUM")
	if res.Tag != "VACUUM 0" {
		t.Errorf("second vacuum: %q", res.Tag)
	}
}

func TestVacuumDoesNotDisturbOpenTransaction(t *testing.T) {
	e := newTestEngine(t)
	s1, _ := e.NewSession("shop")
	s2, _ := e.NewSession("shop")
	mustExec(t, s1, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s1, "INSERT INTO t (id, v) VALUES (1, 10)")

	mustExec(t, s2, "BEGIN")
	mustExec(t, s2, "SELECT v FROM t WHERE id = 1") // pins snapshot
	mustExec(t, s1, "UPDATE t SET v = 20 WHERE id = 1")
	mustExec(t, s1, "VACUUM") // must respect s2's horizon
	res := mustExec(t, s2, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].Int != 10 {
		t.Errorf("open txn sees %v after vacuum, want 10", res.Rows[0][0])
	}
	mustExec(t, s2, "COMMIT")
}
