package core

import (
	"strings"
	"testing"

	"madeus/internal/engine"
)

func TestAdminChannel(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()

	// Provision a tenant through the control channel.
	if _, err := admin.Exec("ADD TENANT shop ON node0"); err != nil {
		t.Fatal(err)
	}
	c := rig.connect(t, "shop")
	mustExecAll(t, c, "CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)")
	c.Close()

	// STATUS lists the tenant on node0.
	res, err := admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "shop" || res.Rows[0][1].Str != "node0" {
		t.Fatalf("STATUS rows = %v", res.Rows)
	}

	// Migrate via the control channel.
	res, err = admin.Exec("MIGRATE shop TO node1 STRATEGY B-MIN")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Str, "B-MIN") {
		t.Fatalf("MIGRATE report = %v", res.Rows)
	}
	res, err = admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Str != "node1" {
		t.Errorf("tenant still on %s", res.Rows[0][1].Str)
	}
}

func TestAdminErrors(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()
	for _, cmd := range []string{
		"",
		"FLY ME",
		"ADD TENANT x",
		"ADD TENANT x ON nope",
		"MIGRATE x TO node0",
		"MIGRATE x TO node0 STRATEGY warp",
		"MIGRATE x y z",
	} {
		if _, err := admin.Exec(cmd); err == nil {
			t.Errorf("Exec(%q): want error", cmd)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"madeus": Madeus, "Madeus": Madeus, "MADEUS": Madeus,
		"b-all": BAll, "BALL": BAll,
		"B-MIN": BMin, "bmin": BMin,
		"B-CON": BCon, "bcon": BCon,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("turbo"); err == nil {
		t.Error("want error for unknown strategy")
	}
	// Round trip through String().
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
	}
}
