#!/bin/sh
# verify.sh — the full local gate: build, vet, the in-tree concurrency
# linter, the race-enabled test suite, and the invariants-tagged runs of the
# instrumented core packages. Run from anywhere inside the repo.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/madeusvet ./...
go test -race -count=1 ./...
go test -tags invariants -count=1 ./internal/wal/ ./internal/mvcc/ ./internal/lsir/ ./internal/engine/

# Observability gate: race-check the obs layer and the instrumented core on
# their own (fast signal when the full suite above is skipped or edited),
# lint the instrumented packages, and assert that disabled counters/tracing
# stay within noise on the worker relay path — the same no-measurable-cost
# contract the invariants layer pins.
go test -race -count=1 ./internal/obs/ ./internal/core/
go run ./cmd/madeusvet ./internal/obs/ ./internal/core/ ./internal/wal/ ./internal/wire/ ./internal/engine/
go test -count=1 -run 'TestObsDisabledOverhead|TestInvariantZeroOverhead' .

# Fault-injection gate: build and race-test the failpoint registry, the
# chaos migration suite, and the hardened wire client under -tags
# faultinject, then assert that without the tag a fault site costs nothing
# (and with it, at most an atomic load) on the hot path.
go build -tags faultinject ./...
go test -tags faultinject -race -count=1 ./internal/fault/ ./internal/core/ ./internal/wire/
go test -count=1 -run 'TestFaultDisabledOverhead' .
go test -tags faultinject -count=1 -run 'TestFaultDisabledOverhead' .

# Step-1 pipeline gate: race-check the chunked snapshot path end to end —
# the engine dump cursor, the wire streaming protocol (seq gaps, truncation,
# mid-stream drops must poison the connection), the pipelined migration with
# its transfer-budget cap, the deterministic seeded retry jitter, and the
# timer-churn fixes; then the chunk chaos scenarios and the slow-destination
# backpressure test under faultinject.
go test -race -count=1 -run 'TestDumpStream|TestExecStream|TestStreamChunk|TestQueryStream' ./internal/engine/ ./internal/wire/
go test -race -count=1 -run 'TestPipelined|TestMonolithicDumpAblation' ./internal/core/
go test -race -count=1 -run 'TestBackoffSeededJitterDeterministic|TestExecRetrySeededJitterSchedule' ./internal/wire/
go test -race -count=1 -run 'TestEBThinkTimerNoLeak' ./internal/tpcw/
go test -tags faultinject -race -count=1 -run 'TestChaosMigration|TestStep1SlowDestinationBackpressure' ./internal/core/

# Backpressure gate: race-check the flow package and the overload/convergence
# suite (admission shedding, SSL caps, watchdog aborts, paced convergence),
# run the admission/stall chaos scenarios under faultinject, and assert that
# an idle pace point and an uncapped Admit cost nothing on the commit path.
go test -race -count=1 ./internal/flow/
go test -race -count=1 -run 'TestFlow|TestAdmission|TestSSL|TestUnpaced' ./internal/core/
# The divergence/convergence scenario needs uninstrumented writer throughput
# (it skips itself under -race), so it gets a dedicated no-race run.
go test -count=1 -run 'TestHeavyWriteMigrationConvergesWithPacing' ./internal/core/
go test -tags faultinject -race -count=1 -run 'TestChaosAdmission|TestChaosInjected|TestChaosHungSlave' ./internal/core/
go test -count=1 -run 'TestFlowDisabledOverhead' .

# Crash-recovery gate: the deterministic crash-torture sweep (every fsync and
# record boundary, torn tails, multi-segment rotation) and the engine
# checkpoint/redo recovery suite under -race, the kill-and-restart chaos
# scenarios (source crash mid-Step-3, destination crash discarding partial
# slave state per Sec 4.2) under faultinject, and a benchrunner recovery
# smoke so the recovery-time ablation path stays alive.
go test -race -count=1 -run 'TestCrashTorture|TestReplay|TestTornTail' ./internal/wal/
go test -race -count=1 -run 'TestRecover|TestGracefulClose|TestCheckpoint' ./internal/engine/
go test -tags faultinject -race -count=1 -run 'TestChaosSourceCrashMidStep3Restart|TestChaosDestCrashRestartDiscardsPartialSlave' ./internal/core/
go run ./cmd/benchrunner -exp recovery -quick -json /tmp/bench_recovery_smoke.json >/dev/null
rm -f /tmp/bench_recovery_smoke.json

# Static-analysis gate: the interprocedural checker with every rule enabled
# (lockorder, holdblock, tagparity, staleignore included — DESIGN.md §5f),
# its golden fixtures plus loader cache/degraded-mode tests, the tag matrix
# (every tag-gated variant and the combined build must compile; tagparity
# keeps the pairs' exported surfaces identical, the matrix keeps them
# compiling), and a benchrunner -json smoke so the BENCH_*.json baseline
# path stays alive.
go run ./cmd/madeusvet -rules lockdiscipline,lockcopy,goroleak,errdrop,invariantcall,timerchurn,lockorder,holdblock,tagparity,obsname,fsyncack,staleignore,stripeorder ./...
go test -count=1 ./internal/analysis/
go build -tags invariants ./...
go build -tags "invariants faultinject" ./...
go run ./cmd/benchrunner -exp table2 -quick -json /tmp/bench_smoke.json >/dev/null
rm -f /tmp/bench_smoke.json

# madeusscope gate: the cross-process trace plumbing (merged cluster
# timeline, scope dedup, scrape degradation), the time-series history ring
# and middleware sampler, the flight recorder (including a rollback capture
# under faultinject), the Prometheus exposition writer, the obsname naming
# rule over the whole tree, and the disabled-cost guard for the new
# trace-context and sampler branches.
# Hot-path sharding gate (DESIGN.md §5i): the striped-MVCC suite (eager
# pruning, contended waiters, cross-shard snapshot isolation, the chain
# spine, the amortized prune trigger) under -race and under -tags
# invariants, the parse-cache correctness suite (shared-AST mutation under
# -race, DDL invalidation, LRU bounds), the WAL batch-append equivalence
# tests, the stripeorder rule over the tree, and a benchrunner hotpath
# smoke so the ablation path stays alive.
go test -race -count=1 -run 'TestStateCount|TestContended|TestCrossShard|TestStripe|TestScanSpine|TestPruneTrigger' ./internal/mvcc/
go test -tags invariants -count=1 -run 'TestScanSpine|TestPruneTrigger|TestStripe' ./internal/mvcc/
go test -race -count=1 -run 'TestParseCache|TestVacuumMeta' ./internal/engine/
go test -count=1 ./internal/sqlmini/
go test -race -count=1 -run 'TestAppendBatch' ./internal/wal/
go run ./cmd/madeusvet -rules stripeorder ./...
go run ./cmd/benchrunner -exp hotpath -quick -json /tmp/bench_hotpath_smoke.json >/dev/null
rm -f /tmp/bench_hotpath_smoke.json

go test -race -count=1 -run 'TestTraced|TestClientScrape|TestScrapeMaxEvents|TestMalformedTracedFrame' ./internal/wire/
go test -race -count=1 -run 'TestClusterTrace|TestTimeline|TestHistorySampler|TestTenantGauges' ./internal/core/
go test -race -count=1 -run 'TestHistory|TestFlight|TestWritePrometheus|TestProm|TestScopeSnapshot|TestMergeTimeline' ./internal/obs/
go test -tags faultinject -race -count=1 -run 'TestChaosFlightRecorder' ./internal/core/
go run ./cmd/madeusvet -rules obsname ./...
go test -count=1 -run 'TestScopeDisabledOverhead' .
