package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"madeus/internal/fault"
	"madeus/internal/invariant"
	"madeus/internal/mvcc"
	"madeus/internal/obs"
	"madeus/internal/storage"
	"madeus/internal/wal"
)

// Failpoint site (armed only under -tags faultinject): engine.checkpoint
// fails a checkpoint before it does any work — the engine keeps running on
// the previous checkpoint plus a longer WAL, which is exactly the degraded
// mode a full checkpoint disk would cause.
const faultCheckpoint = "engine.checkpoint"

var (
	obsCkptCount = obs.NewCounter("engine.checkpoints", "checkpoints completed")
	obsCkptDur   = obs.NewHistogram("engine.checkpoint.duration", "checkpoint wall time", obs.DurationBuckets())
	obsCkptBytes = obs.NewCounter("engine.checkpoint.bytes", "bytes written by checkpoint table files")
)

// On-disk checkpoint layout under DataDir:
//
//	CURRENT            -> base name of the live checkpoint directory
//	ckpt-<lsn>/        -> one immutable checkpoint
//	    meta.json      -> ckptMeta (LSN, tenant list)
//	    db-<i>.tbl     -> tenant i's state as framed SQL statements
//
// A .tbl file is a sequence of wal.AppendFrame frames (the same
// length-prefixed CRC pages as the log), each carrying one SQL statement:
// schema DDL first, then batched INSERTs — a dump script in page form.
// Checkpoints become live by writing the directory under a temporary name,
// renaming it into place, and then atomically swapping CURRENT; a crash at
// any point leaves CURRENT naming a complete older checkpoint.
const (
	currentFile  = "CURRENT"
	ckptPrefix   = "ckpt-"
	ckptMetaFile = "meta.json"
	ckptTmpDir   = "ckpt-tmp"
)

type ckptMeta struct {
	LSN uint64   `json:"lsn"`
	DBs []string `json:"dbs"`
}

func ckptDirName(lsn uint64) string { return fmt.Sprintf("ckpt-%016d", lsn) }

// tableCapture pins one table's identity under the checkpoint's exclusive
// section; the actual row scan happens afterwards through the pinned
// transaction's snapshot.
type tableCapture struct {
	tb      *mvcc.Table
	name    string
	indexes map[string]string
}

type dbCapture struct {
	name   string
	txn    *mvcc.Txn
	tables []tableCapture
}

// Checkpoint writes a durable snapshot of every tenant's committed state and
// records the checkpoint LSN, bounding how much WAL a recovery must replay.
//
// The exclusive section (under ckptMu) is short: sync the WAL tail, pin one
// MVCC snapshot per tenant, and rotate the log. Because every commit point
// holds ckptMu's read side across its WAL fsync and MVCC commit, the pinned
// snapshots contain exactly the transactions whose commit records are
// durable at LSN <= the checkpoint LSN — recovery loads the checkpoint and
// replays only units beyond it. Writing the table files happens after the
// lock is released, against the pinned snapshots, so commits resume while
// the checkpoint streams to disk.
//
// Returns the checkpoint LSN (which may be an older checkpoint's LSN if
// nothing was committed since — the write is skipped then).
func (e *Engine) Checkpoint() (uint64, error) {
	if e.opts.DataDir == "" {
		return 0, fmt.Errorf("engine: checkpoint requires a durable engine (no DataDir)")
	}
	if err := fault.Inject(faultCheckpoint); err != nil {
		return 0, fmt.Errorf("engine: checkpoint: %w", err)
	}
	start := time.Now()

	e.ckptMu.Lock()
	lsn, err := e.log.Sync()
	if err != nil {
		e.ckptMu.Unlock()
		return 0, fmt.Errorf("engine: checkpoint: %w", err)
	}
	if lsn == e.ckptLSN.Load() {
		// No commits since the last checkpoint: it is still exact.
		e.ckptMu.Unlock()
		return lsn, nil
	}
	var caps []dbCapture
	for _, name := range e.Databases() {
		db, ok := e.Database(name)
		if !ok {
			continue
		}
		cap := dbCapture{name: name, txn: db.mgr.Begin()} // snapshot pinned at Begin
		for _, tn := range db.Tables() {
			tb, ok := db.table(tn)
			if !ok {
				continue
			}
			cap.tables = append(cap.tables, tableCapture{tb: tb, name: tn, indexes: tb.Indexes()})
		}
		caps = append(caps, cap)
	}
	retired, safeToDelete, rerr := e.log.Rotate()
	e.ckptMu.Unlock()

	release := func() {
		for _, cap := range caps {
			cap.txn.Abort()
		}
	}
	if rerr != nil {
		release()
		return 0, fmt.Errorf("engine: checkpoint: %w", rerr)
	}

	// Write phase: no engine locks held; customer commits proceed.
	tmp := filepath.Join(e.opts.DataDir, ckptTmpDir)
	if err := os.RemoveAll(tmp); err != nil {
		release()
		return 0, err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		release()
		return 0, err
	}
	meta := ckptMeta{LSN: lsn}
	var wrote int64
	for i, cap := range caps {
		n, err := writeCheckpointDB(filepath.Join(tmp, fmt.Sprintf("db-%d.tbl", i)), cap, e.opts.DumpBatch)
		if err != nil {
			release()
			return 0, fmt.Errorf("engine: checkpoint %s: %w", cap.name, err)
		}
		wrote += n
		meta.DBs = append(meta.DBs, cap.name)
	}
	release()
	mb, err := json.Marshal(meta)
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(filepath.Join(tmp, ckptMetaFile), mb); err != nil {
		return 0, err
	}
	final := filepath.Join(e.opts.DataDir, ckptDirName(lsn))
	if err := os.RemoveAll(final); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	// Swap CURRENT atomically; only after this is the new checkpoint live
	// and only after that may older checkpoints and WAL segments go away.
	if err := writeFileSync(filepath.Join(e.opts.DataDir, currentFile+".tmp"), []byte(ckptDirName(lsn))); err != nil {
		return 0, err
	}
	if err := os.Rename(filepath.Join(e.opts.DataDir, currentFile+".tmp"), filepath.Join(e.opts.DataDir, currentFile)); err != nil {
		return 0, err
	}
	e.ckptLSN.Store(lsn)
	e.checkCkptLSN(lsn)

	e.removeStaleCheckpoints(ckptDirName(lsn))
	if safeToDelete {
		for _, p := range retired {
			// Best-effort: a leftover segment only costs replay scan time.
			_ = os.Remove(p)
		}
	}

	obsCkptCount.Inc()
	obsCkptDur.ObserveDuration(time.Since(start))
	obsCkptBytes.Add(uint64(wrote))
	obs.Trace.Emit("", "checkpoint.end",
		obs.F("lsn", lsn), obs.F("bytes", wrote), obs.F("dbs", len(caps)),
		obs.F("retired", len(retired)), obs.F("deleted", safeToDelete))
	return lsn, nil
}

// writeCheckpointDB streams one tenant's pinned snapshot to path as framed
// SQL statements and returns the bytes written. The scan runs through the
// pinned transaction, so concurrent commits after the checkpoint LSN are
// invisible by construction.
func writeCheckpointDB(path string, cap dbCapture, dumpBatch int) (int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	var total int64
	var buf []byte
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		n, err := f.Write(buf)
		total += int64(n)
		buf = buf[:0]
		return err
	}
	emit := func(stmt string) error {
		buf = wal.AppendFrame(buf, []byte(stmt))
		if len(buf) >= 1<<20 {
			return flush()
		}
		return nil
	}
	for _, tc := range cap.tables {
		schema := tc.tb.Schema
		if err := emit(createTableSQL(schema)); err != nil {
			f.Close()
			return total, err
		}
		idxNames := make([]string, 0, len(tc.indexes))
		for n := range tc.indexes {
			idxNames = append(idxNames, n)
		}
		sort.Strings(idxNames)
		for _, n := range idxNames {
			if err := emit(fmt.Sprintf("CREATE INDEX %s ON %s (%s)", n, tc.name, tc.indexes[n])); err != nil {
				f.Close()
				return total, err
			}
		}
		cols := make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
		header := fmt.Sprintf("INSERT INTO %s (%s) VALUES ", tc.name, strings.Join(cols, ", "))
		var batch []string
		var scanErr error
		flushBatch := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := emit(header + strings.Join(batch, ", "))
			batch = batch[:0]
			return err
		}
		tc.tb.Scan(cap.txn, func(r storage.Row) bool {
			vals := make([]string, len(r))
			for i, v := range r {
				vals[i] = v.String()
			}
			batch = append(batch, "("+strings.Join(vals, ", ")+")")
			if len(batch) >= dumpBatch {
				if err := flushBatch(); err != nil {
					scanErr = err
					return false
				}
			}
			return true
		})
		if scanErr == nil {
			scanErr = flushBatch()
		}
		if scanErr != nil {
			f.Close()
			return total, scanErr
		}
	}
	if err := flush(); err != nil {
		f.Close()
		return total, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return total, err
	}
	return total, f.Close()
}

// writeFileSync writes data to path and syncs it before closing — the
// checkpoint's rename-based commit protocol needs the content on disk
// before the pointer flips.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// removeStaleCheckpoints deletes every ckpt-* directory except the live one
// (best-effort: stale checkpoints are garbage, not state).
func (e *Engine) removeStaleCheckpoints(keep string) {
	entries, err := os.ReadDir(e.opts.DataDir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if !ent.IsDir() || !strings.HasPrefix(name, ckptPrefix) || name == keep {
			continue
		}
		// Best-effort cleanup of superseded checkpoint directories.
		_ = os.RemoveAll(filepath.Join(e.opts.DataDir, name))
	}
}

// checkCkptLSN asserts the recorded checkpoint never claims more than the
// log has durably synced — a checkpoint "ahead" of the disk would make
// recovery silently skip committed work.
func (e *Engine) checkCkptLSN(lsn uint64) {
	invariant.Check(func() error {
		if d := e.log.DurableLSN(); lsn > d {
			return fmt.Errorf("engine: checkpoint LSN %d exceeds durable LSN %d", lsn, d)
		}
		return nil
	})
}

// CheckpointLSN reports the LSN of the last completed checkpoint (0 when
// none has run).
func (e *Engine) CheckpointLSN() uint64 { return e.ckptLSN.Load() }

// checkpointLoop runs periodic checkpoints until Close/Crash.
func (e *Engine) checkpointLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.opts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := e.Checkpoint(); err != nil {
				obs.Trace.Emit("", "checkpoint.error", obs.F("err", err.Error()))
			}
		case <-e.ckptStop:
			return
		}
	}
}
