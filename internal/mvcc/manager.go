// Package mvcc implements multi-version concurrency control with snapshot
// isolation and the first-updater-wins rule, mirroring the semantics of the
// DBMSs the paper targets (Oracle, SQL Server, PostgreSQL; Sec 2.3).
//
// A transaction's snapshot is the set of transactions that committed before
// it started, identified by a commit sequence number (CSN) watermark; the
// snapshot is taken lazily at the transaction's first operation (Sec 3.1).
// Writers take per-row write locks. A writer that finds the row locked by a
// concurrent active transaction blocks; if that transaction commits, the
// waiter aborts with ErrSerialization (first-updater-wins), and if it
// aborts, the waiter proceeds.
package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"madeus/internal/invariant"
)

// TxnID identifies a transaction within one tenant database.
type TxnID uint64

// CSN is a commit sequence number; snapshots are CSN watermarks.
type CSN uint64

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// Sentinel errors surfaced to the engine (which maps them onto SQLSTATE-like
// error strings for the wire protocol).
var (
	// ErrSerialization is the first-updater-wins abort: a concurrent
	// transaction updated the same row and committed first.
	ErrSerialization = errors.New("mvcc: could not serialize access due to concurrent update")
	// ErrUniqueViolation reports a duplicate primary key.
	ErrUniqueViolation = errors.New("mvcc: duplicate key value violates unique constraint")
	// ErrLockTimeout reports that a row lock could not be acquired in
	// time (our stand-in for deadlock detection).
	ErrLockTimeout = errors.New("mvcc: lock wait timeout (possible deadlock)")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("mvcc: transaction already finished")
)

// Manager assigns transaction IDs, snapshots, and CSNs for one tenant
// database, and tracks transaction status for visibility checks.
type Manager struct {
	// LockTimeout bounds row-lock waits; beyond it the waiter aborts
	// with ErrLockTimeout. Zero selects a 2s default.
	LockTimeout time.Duration

	mu      sync.RWMutex //madeusvet:lockrank mvcc-txn 44
	nextTxn TxnID
	lastCSN CSN
	states  map[TxnID]*txnState
}

type txnState struct {
	status Status
	csn    CSN
	snap   CSN // snapshot at Begin; used by the vacuum horizon
}

// NewManager returns a transaction manager.
func NewManager() *Manager {
	return &Manager{states: make(map[TxnID]*txnState)}
}

// Txn is one transaction. A Txn is used by a single session goroutine;
// Manager and table internals handle cross-transaction synchronization.
type Txn struct {
	ID       TxnID
	Snapshot CSN

	mgr    *Manager
	locks  []*rowChain
	done   bool
	writes int
}

// Begin starts a transaction, taking its snapshot now. Call it at the
// transaction's first operation, not at BEGIN, to match the snapshot
// creation rule of Sec 3.1.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.nextTxn++
	id := m.nextTxn
	snap := m.lastCSN
	m.states[id] = &txnState{status: StatusActive, snap: snap}
	m.mu.Unlock()
	return &Txn{ID: id, Snapshot: snap, mgr: m}
}

// statusOf reports the state of a transaction. Unknown IDs (never started)
// report StatusAborted so stray versions stay invisible.
func (m *Manager) statusOf(id TxnID) (Status, CSN) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st, ok := m.states[id]
	if !ok {
		return StatusAborted, 0
	}
	return st.status, st.csn
}

// LastCSN returns the latest assigned commit sequence number.
func (m *Manager) LastCSN() CSN {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lastCSN
}

// Commit makes t's effects visible: it assigns the next CSN, flips the
// status, and releases t's row locks (waking first-updater-wins waiters).
// The caller is responsible for making the commit durable (WAL) first.
func (t *Txn) Commit() (CSN, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	t.done = true
	m := t.mgr
	m.mu.Lock()
	m.lastCSN++
	csn := m.lastCSN
	st := m.states[t.ID]
	invariant.Assert(st != nil && st.status == StatusActive, "mvcc: commit of a non-active transaction")
	invariant.Assertf(csn > t.Snapshot, "mvcc: CSN %d not beyond snapshot %d", csn, t.Snapshot)
	st.status = StatusCommitted
	st.csn = csn
	m.mu.Unlock()
	t.releaseLocks()
	return csn, nil
}

// Abort rolls t back: its versions become permanently invisible and its
// locks are released.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	m := t.mgr
	m.mu.Lock()
	st := m.states[t.ID]
	invariant.Assert(st != nil && st.status == StatusActive, "mvcc: abort of a non-active transaction")
	st.status = StatusAborted
	m.mu.Unlock()
	t.releaseLocks()
	return nil
}

// Done reports whether the transaction has committed or aborted.
func (t *Txn) Done() bool { return t.done }

// IsUpdate reports whether t performed any write.
func (t *Txn) IsUpdate() bool { return t.writes > 0 }

func (t *Txn) releaseLocks() {
	for _, ch := range t.locks {
		ch.unlock(t.ID)
	}
	t.locks = nil
}

func (t *Txn) lockTimeout() time.Duration {
	if t.mgr.LockTimeout > 0 {
		return t.mgr.LockTimeout
	}
	return 2 * time.Second
}

// visible implements the SI visibility rule for one version.
func (t *Txn) visible(v *version) bool {
	invariant.Assert(v.xmin != 0, "mvcc: version without a creator transaction")
	// Creator check.
	if v.xmin == t.ID {
		// Own write — visible unless deleted by self.
		return v.xmax != t.ID
	}
	st, csn := t.mgr.statusOf(v.xmin)
	if st != StatusCommitted || csn > t.Snapshot {
		return false
	}
	// Deleter check.
	if v.xmax == 0 {
		return true
	}
	if v.xmax == t.ID {
		return false
	}
	dst, dcsn := t.mgr.statusOf(v.xmax)
	if dst == StatusCommitted && dcsn <= t.Snapshot {
		return false
	}
	return true
}

// String aids debugging.
func (t *Txn) String() string {
	return fmt.Sprintf("txn(%d snap=%d writes=%d done=%v)", t.ID, t.Snapshot, t.writes, t.done)
}
