package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCopy flags functions that pass or return lock-bearing structs by
// value: a copied sync.Mutex/RWMutex/Cond/WaitGroup/Once is a fresh,
// unsynchronized lock, which silently splits a critical region in two.
// Receivers count too — a value receiver on a lock-bearing type copies on
// every call.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "lock-bearing structs must move by pointer, never by value",
	Run:  runLockCopy,
}

var syncLockTypes = []string{"Mutex", "RWMutex", "Cond", "WaitGroup", "Once"}

func runLockCopy(pass *Pass) {
	// AST fallback: struct type names in this package that declare a
	// sync.* lock field directly.
	astLockStructs := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if rendered := exprString(f.Type); strings.HasPrefix(rendered, "sync.") {
					for _, lt := range syncLockTypes {
						if rendered == "sync."+lt {
							astLockStructs[ts.Name.Name] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			check := func(field *ast.Field, role string) {
				if _, isStar := field.Type.(*ast.StarExpr); isStar {
					return
				}
				if why := lockPath(pass, field.Type, astLockStructs); why != "" {
					pass.Reportf(field.Type.Pos(), "%s of %s passes %s by value; use a pointer", role, fn.Name.Name, why)
				}
			}
			if fn.Recv != nil {
				for _, f := range fn.Recv.List {
					check(f, "receiver")
				}
			}
			if fn.Type.Params != nil {
				for _, f := range fn.Type.Params.List {
					check(f, "parameter")
				}
			}
			if fn.Type.Results != nil {
				for _, f := range fn.Type.Results.List {
					check(f, "result")
				}
			}
		}
	}
}

// lockPath describes the lock a by-value use of typeExpr would copy, or ""
// when the type is lock-free. Uses type info when available, the AST struct
// index otherwise.
func lockPath(pass *Pass, typeExpr ast.Expr, astLockStructs map[string]bool) string {
	if t := pass.TypeOf(typeExpr); t != nil {
		return typeLockPath(t, typeName(typeExpr), make(map[types.Type]bool))
	}
	name := typeName(typeExpr)
	if astLockStructs[name] {
		return name + " (holds a sync lock)"
	}
	return ""
}

func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e)
	}
	return ""
}

// typeLockPath reports the first lock found inside t (descending into
// structs and arrays, not pointers/slices/maps — those share, not copy).
func typeLockPath(t types.Type, label string, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	for _, lt := range syncLockTypes {
		if isSyncType(t, lt) {
			if label == "" {
				label = "sync." + lt
			}
			return label + " (sync." + lt + ")"
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if why := typeLockPath(f.Type(), label+"."+f.Name(), seen); why != "" {
				return why
			}
		}
	case *types.Array:
		return typeLockPath(u.Elem(), label+"[i]", seen)
	}
	return ""
}
