package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/sqlmini"
	"madeus/internal/testutil"
)

// rawConn opens a TCP connection to the server without the client wrapper.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	var hdr [5]byte
	hdr[0] = MsgStartup
	binary.BigEndian.PutUint32(hdr[1:], 1<<31) // absurd length
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than allocate.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close or error")
	}
}

func TestServerHandlesAbruptDisconnectMidFrame(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	var hdr [5]byte
	hdr[0] = MsgStartup
	binary.BigEndian.PutUint32(hdr[1:], 100) // promise 100 bytes
	conn.Write(hdr[:])
	conn.Write([]byte("db")) // send only 2
	conn.Close()
	// Server must not hang or crash; a fresh client still works.
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsUnexpectedMessageType(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	// Valid startup first.
	if err := writeMsg(conn, MsgStartup, []byte("db")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, _, err := readMsg(br)
	if err != nil || typ != MsgReady {
		t.Fatalf("startup: %c %v", typ, err)
	}
	// Then garbage type.
	if err := writeMsg(conn, 'Z', nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readMsg(br)
	if err != nil {
		t.Fatalf("read error response: %v", err)
	}
	if typ != MsgError {
		t.Errorf("got %c %q, want error", typ, payload)
	}
}

func TestQueryBeforeStartupDropsConnection(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	if err := writeMsg(conn, MsgQuery, []byte("SELECT 1 FROM t")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected close for query before startup")
	}
}

func TestDecodeResultBadValueKind(t *testing.T) {
	full := EncodeResult(&engine.Result{
		Tag: "SELECT 1", Columns: []string{"a"},
		Rows: [][]sqlmini.Value{{sqlmini.NewInt(1)}},
	})
	full[len(full)-9] = 0xFF // the kind byte of the single INT value
	if _, err := DecodeResult(full); err == nil {
		t.Error("corrupt kind not detected")
	}
}

// scriptedAddr starts a raw protocol server whose per-session behavior is
// given by script (invoked with a 0-based session index per accepted
// connection). It lets the client tests stage byzantine peers: servers that
// never reply, drop mid-frame, or heal on a later session.
func scriptedAddr(t *testing.T, script func(sess int, conn net.Conn, br *bufio.Reader)) string {
	t.Helper()
	testutil.CheckGoroutines(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sess := 0; ; sess++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(sess int, conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				script(sess, conn, bufio.NewReader(conn))
			}(sess, conn)
		}
	}()
	return ln.Addr().String()
}

// startupOK plays the server side of the session handshake.
func startupOK(conn net.Conn, br *bufio.Reader) bool {
	if _, _, err := readMsg(br); err != nil {
		return false
	}
	return writeMsg(conn, MsgReady, nil) == nil
}

func TestOpTimeoutExpiryIsTypedConnLoss(t *testing.T) {
	// A server that accepts the query and then goes silent: the op
	// timeout must convert the stall into a typed connection loss and
	// poison the client (the stale response could arrive later).
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		for {
			if _, _, err := readMsg(br); err != nil {
				return // client hung up
			}
			// swallow the query, never answer
		}
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = c.Exec("SELECT 1 FROM t")
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost", err)
	}
	var cl *ConnLostError
	if !errors.As(err, &cl) || cl.Op != "read" {
		t.Errorf("got %#v, want *ConnLostError with Op=read", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, bound was 50ms", elapsed)
	}
	if !c.Broken() {
		t.Error("client not poisoned after op timeout")
	}
	// Poisoned clients fail fast, they do not touch the dead socket.
	if _, err := c.Exec("SELECT 1 FROM t"); !errors.Is(err, ErrConnLost) {
		t.Errorf("exec on poisoned client: %v, want ErrConnLost", err)
	}
}

func TestMidMessageConnDropIsTypedConnLoss(t *testing.T) {
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		if _, _, err := readMsg(br); err != nil {
			return
		}
		// Half a result frame, then hang up mid-message.
		conn.Write([]byte{MsgResult, 0x00, 0x00})
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT 1 FROM t")
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost", err)
	}
	if !IsTransportError(err) {
		t.Error("conn loss not classified as a transport error")
	}
	if !c.Broken() {
		t.Error("client not poisoned after mid-message drop")
	}
}

func TestExecRetryBackoffSchedule(t *testing.T) {
	// Every session drops right after the query, so every attempt fails:
	// the captured sleeps must follow the doubling-capped schedule
	// exactly (Jitter 0 makes it deterministic).
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		readMsg(br) // the query; drop the conn by returning
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sleeps []time.Duration
	c.SetRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Jitter:      0,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if _, err := c.ExecRetry("SELECT 1 FROM t", true); !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost after exhausting retries", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("retry %d slept %v, want %v", i+1, sleeps[i], want[i])
		}
	}
}

func TestExecRetryNeverRetriesNonIdempotent(t *testing.T) {
	var queries atomic.Int32
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		if _, _, err := readMsg(br); err == nil {
			queries.Add(1)
		}
		// drop: the statement's fate is now unknown to the client
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sleeps int
	c.SetRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		Sleep:       func(time.Duration) { sleeps++ },
	})
	_, err = c.ExecRetry("UPDATE t SET n = n + 1", false)
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost", err)
	}
	if got := queries.Load(); got != 1 {
		t.Errorf("server saw %d queries, want exactly 1 (a replay would double-apply)", got)
	}
	if sleeps != 0 {
		t.Errorf("slept %d times, want 0", sleeps)
	}
}

func TestExecRetryNeverRetriesServerErrors(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sleeps int
	c.SetRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		Sleep:       func(time.Duration) { sleeps++ },
	})
	_, err = c.ExecRetry("SELECT * FROM missing", true)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *ServerError", err)
	}
	if sleeps != 0 {
		t.Errorf("slept %d times on a server-reported error, want 0", sleeps)
	}
}

func TestExecRetryRedialsAndSucceeds(t *testing.T) {
	// Session 0 drops after the query; session 1 answers. ExecRetry must
	// back off once, redial, and return the healthy session's result.
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		for {
			if _, _, err := readMsg(br); err != nil {
				return
			}
			if sess == 0 {
				return // drop mid-conversation
			}
			payload := EncodeResult(&engine.Result{Tag: "SELECT 0"})
			if writeMsg(conn, MsgResult, payload) != nil {
				return
			}
		}
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sleeps []time.Duration
	c.SetRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	res, err := c.ExecRetry("SELECT 1 FROM t", true)
	if err != nil {
		t.Fatalf("ExecRetry after heal: %v", err)
	}
	if res.Tag != "SELECT 0" {
		t.Errorf("Tag = %q", res.Tag)
	}
	if len(sleeps) != 1 || sleeps[0] != 10*time.Millisecond {
		t.Errorf("sleeps = %v, want one 10ms backoff", sleeps)
	}
	if c.Broken() {
		t.Error("client still poisoned after successful redial")
	}
}

func TestBackoffSeededJitterDeterministic(t *testing.T) {
	// A fixed Seed makes the jittered schedule byte-for-byte reproducible:
	// math/rand's generator is part of Go's compatibility promise, so these
	// golden durations hold on every platform. (The old implementation drew
	// from the global source — irreproducible, and one lock shared by every
	// backing-off client in the process.)
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Jitter:      0.5,
		Seed:        42,
	}
	want := []time.Duration{8730284, 11320010, 44163754, 28352749}
	rng := p.JitterRNG()
	for i, w := range want {
		if got := p.Backoff(i+1, rng); got != w {
			t.Errorf("attempt %d: backoff %v, want %v", i+1, got, w)
		}
	}

	// Two actors with the same seed walk the same schedule; a different
	// seed diverges; a nil rng disables jitter entirely.
	a, b := p.JitterRNG(), p.JitterRNG()
	other := p
	other.Seed = 43
	o := other.JitterRNG()
	diverged := false
	for n := 1; n <= 4; n++ {
		da, db := p.Backoff(n, a), p.Backoff(n, b)
		if da != db {
			t.Errorf("attempt %d: same seed diverged: %v vs %v", n, da, db)
		}
		if p.Backoff(n, o) != da {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical schedules")
	}
	if got := p.Backoff(3, nil); got != 40*time.Millisecond {
		t.Errorf("nil rng: backoff %v, want the unjittered 40ms", got)
	}
}

func TestExecRetrySeededJitterSchedule(t *testing.T) {
	// End to end: two clients configured with the same Seed observe
	// identical jittered sleep schedules through ExecRetry.
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		readMsg(br) // drop after the query: every attempt fails
	})
	run := func(seed int64) []time.Duration {
		c, err := Dial(addr, "db")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var sleeps []time.Duration
		c.SetRetry(RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			Jitter:      0.5,
			Seed:        seed,
			Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		})
		if _, err := c.ExecRetry("SELECT 1 FROM t", true); !errors.Is(err, ErrConnLost) {
			t.Fatalf("got %v, want ErrConnLost", err)
		}
		return sleeps
	}
	s1, s2 := run(7), run(7)
	if len(s1) != 3 {
		t.Fatalf("slept %d times, want 3", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("retry %d: %v vs %v (same seed must match)", i+1, s1[i], s2[i])
		}
	}
}
