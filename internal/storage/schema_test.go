package storage

import (
	"testing"

	"madeus/internal/sqlmini"
)

func itemSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("items", []Column{
		{Name: "id", Type: sqlmini.KindInt, PrimaryKey: true},
		{Name: "title", Type: sqlmini.KindText},
		{Name: "cost", Type: sqlmini.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValid(t *testing.T) {
	s := itemSchema(t)
	if s.PKIndex() != 0 {
		t.Errorf("PKIndex = %d, want 0", s.PKIndex())
	}
	if s.ColumnIndex("cost") != 2 {
		t.Errorf("ColumnIndex(cost) = %d, want 2", s.ColumnIndex("cost"))
	}
	if s.ColumnIndex("missing") != -1 {
		t.Errorf("ColumnIndex(missing) != -1")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		tbl  string
		cols []Column
	}{
		{"empty name", "", []Column{{Name: "a", Type: sqlmini.KindInt, PrimaryKey: true}}},
		{"no columns", "t", nil},
		{"empty column name", "t", []Column{{Name: "", Type: sqlmini.KindInt, PrimaryKey: true}}},
		{"duplicate column", "t", []Column{
			{Name: "a", Type: sqlmini.KindInt, PrimaryKey: true},
			{Name: "a", Type: sqlmini.KindInt},
		}},
		{"no pk", "t", []Column{{Name: "a", Type: sqlmini.KindInt}}},
		{"two pks", "t", []Column{
			{Name: "a", Type: sqlmini.KindInt, PrimaryKey: true},
			{Name: "b", Type: sqlmini.KindInt, PrimaryKey: true},
		}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.tbl, c.cols); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{sqlmini.NewInt(1), sqlmini.NewText("x")}
	c := r.Clone()
	c[1] = sqlmini.NewText("y")
	if r[1].Str != "x" {
		t.Error("Clone shares backing array")
	}
	if !r.Equal(Row{sqlmini.NewInt(1), sqlmini.NewText("x")}) {
		t.Error("Equal failed on identical rows")
	}
	if r.Equal(c) {
		t.Error("Equal true for different rows")
	}
	if r.Equal(r[:1]) {
		t.Error("Equal true for different arity")
	}
}

func TestCheckRow(t *testing.T) {
	s := itemSchema(t)
	good := Row{sqlmini.NewInt(1), sqlmini.NewText("a"), sqlmini.NewFloat(2.5)}
	if err := s.CheckRow(good); err != nil {
		t.Errorf("good row: %v", err)
	}
	if err := s.CheckRow(good[:2]); err == nil {
		t.Error("short row: want error")
	}
	badType := Row{sqlmini.NewInt(1), sqlmini.NewInt(9), sqlmini.NewFloat(2.5)}
	if err := s.CheckRow(badType); err == nil {
		t.Error("bad type: want error")
	}
	nullPK := Row{sqlmini.Null(), sqlmini.NewText("a"), sqlmini.NewFloat(1)}
	if err := s.CheckRow(nullPK); err == nil {
		t.Error("NULL pk: want error")
	}
	nullOther := Row{sqlmini.NewInt(1), sqlmini.Null(), sqlmini.Null()}
	if err := s.CheckRow(nullOther); err != nil {
		t.Errorf("NULL non-pk: %v", err)
	}
	intToFloat := Row{sqlmini.NewInt(1), sqlmini.NewText("a"), sqlmini.NewInt(3)}
	if err := s.CheckRow(intToFloat); err != nil {
		t.Errorf("int widening: %v", err)
	}
}

func TestCoerceWidensIntToFloat(t *testing.T) {
	s := itemSchema(t)
	r := s.Coerce(Row{sqlmini.NewInt(1), sqlmini.NewText("a"), sqlmini.NewInt(3)})
	if r[2].Kind != sqlmini.KindFloat || r[2].Float != 3 {
		t.Errorf("got %v", r[2])
	}
}

func TestPK(t *testing.T) {
	s := itemSchema(t)
	r := Row{sqlmini.NewInt(7), sqlmini.NewText("a"), sqlmini.NewFloat(1)}
	if pk := s.PK(r); pk.Int != 7 {
		t.Errorf("PK = %v", pk)
	}
}
