// Benchmarks regenerating the paper's evaluation (Section 5): one bench per
// table and figure, plus the ablations DESIGN.md calls out. Each bench runs
// the corresponding experiment from internal/bench at the Quick
// configuration and reports its headline numbers as custom metrics; run
// cmd/benchrunner for the full tables at the calibrated default scale.
//
//	go test -bench=. -benchmem -benchtime=1x .
package madeus

import (
	"testing"
	"time"

	"madeus/internal/bench"
	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

func quickCfg() bench.Config {
	return bench.Quick()
}

// reportSeconds registers a duration metric; failed runs report -1.
func reportSeconds(b *testing.B, name string, d time.Duration, failed bool) {
	v := d.Seconds()
	if failed {
		v = -1
	}
	b.ReportMetric(v, name)
}

// BenchmarkTable2FeatureMatrix regenerates the capability matrix (Table 2).
func BenchmarkTable2FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.Table2()
		if len(tb.Rows) != 4 {
			b.Fatal("table 2 shape")
		}
	}
}

// BenchmarkFig5ResponseTimeVsLoad regenerates Fig 5 at the three selected
// load levels and reports the mean response times.
func BenchmarkFig5ResponseTimeVsLoad(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		tb, err := bench.Fig5(cfg, []int{100, 400, 700})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) != 3 {
			b.Fatal("fig5 shape")
		}
	}
}

// fig6Cell runs one Fig-6 cell and reports it as a metric.
func fig6Cell(b *testing.B, strat core.Strategy, metric string) {
	cfg := quickCfg()
	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
	for i := 0; i < b.N; i++ {
		h, err := bench.NewHarness(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Provision("tenantA", "node0", scale); err != nil {
			h.Close()
			b.Fatal(err)
		}
		rep, _, err := h.MigrateUnderLoad("tenantA", "node1", cfg.EBs(bench.PaperHeavyEBs),
			tpcw.Ordering, scale, core.MigrateOptions{Strategy: strat})
		h.Close()
		switch {
		case err == core.ErrCatchupTimeout:
			reportSeconds(b, metric, 0, true)
		case err != nil:
			b.Fatal(err)
		default:
			reportSeconds(b, metric, rep.Total(), false)
		}
	}
}

// BenchmarkFig6MigrationTime regenerates the heavy-load row of Fig 6, one
// sub-bench per strategy (-1 seconds means the paper's N/A).
func BenchmarkFig6MigrationTime(b *testing.B) {
	for _, strat := range core.Strategies() {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			fig6Cell(b, strat, "migration_s")
		})
	}
}

// BenchmarkFig7ResponseTimeline regenerates the Fig 7 run and reports the
// response-time ratio of the migration window to normal processing.
func BenchmarkFig7ResponseTimeline(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		res, err := bench.Figs7and8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSeconds(b, "migration_s", res.Report.Total(), false)
	}
}

// BenchmarkFig8ThroughputTimeline shares Fig 7's run; it regenerates the
// series and reports how many buckets it produced.
func BenchmarkFig8ThroughputTimeline(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		res, err := bench.Figs7and8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Table.Rows)), "buckets")
	}
}

// BenchmarkFig9MigrationTimeVsDBSize regenerates Fig 9 / Table 3 at two
// sizes and reports both migration times; the paper's trend is growth with
// database size.
func BenchmarkFig9MigrationTimeVsDBSize(b *testing.B) {
	cfg := quickCfg()
	sizes := []struct{ Items, EBs int }{{100000, 100}, {500000, 500}}
	for i := 0; i < b.N; i++ {
		_, f9, err := bench.Fig9Table3(cfg, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if len(f9.Rows) != len(sizes) {
			b.Fatal("fig9 shape")
		}
	}
}

// BenchmarkFig10to13MigrateHeavyTenant regenerates Case 1 (Figs 10-13).
func BenchmarkFig10to13MigrateHeavyTenant(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		res, err := bench.Case1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSeconds(b, "migration_s", res.Report.Total(), false)
	}
}

// BenchmarkFig14to19MigrateLightTenant regenerates Case 2 (Figs 14-19).
func BenchmarkFig14to19MigrateLightTenant(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		res, err := bench.Case2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportSeconds(b, "migration_s", res.Report.Total(), false)
	}
}

// BenchmarkAblationGroupCommit isolates CON-COM: Madeus against a slave
// with group commit disabled.
func BenchmarkAblationGroupCommit(b *testing.B) {
	cfg := quickCfg()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationGroupCommit(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMinSet isolates MIN: B-ALL (replay everything) against
// B-MIN (replay the LSIR minimum) at light load, where both complete.
func BenchmarkAblationMinSet(b *testing.B) {
	cfg := quickCfg()
	for _, strat := range []core.Strategy{core.BAll, core.BMin} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
			for i := 0; i < b.N; i++ {
				h, err := bench.NewHarness(cfg, 2)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Provision("tenantA", "node0", scale); err != nil {
					h.Close()
					b.Fatal(err)
				}
				rep, _, err := h.MigrateUnderLoad("tenantA", "node1",
					cfg.EBs(bench.PaperLightEBs), tpcw.Ordering, scale,
					core.MigrateOptions{Strategy: strat})
				h.Close()
				if err != nil {
					b.Fatal(err)
				}
				reportSeconds(b, "migration_s", rep.Total(), false)
			}
		})
	}
}

// BenchmarkAblationCommitOrder isolates CON-COM's relaxation of commit
// order: B-CON (master commit order, contended token) against Madeus
// (LSIR-batched) at medium load.
func BenchmarkAblationCommitOrder(b *testing.B) {
	cfg := quickCfg()
	for _, strat := range []core.Strategy{core.BCon, core.Madeus} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
			for i := 0; i < b.N; i++ {
				h, err := bench.NewHarness(cfg, 2)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Provision("tenantA", "node0", scale); err != nil {
					h.Close()
					b.Fatal(err)
				}
				rep, _, err := h.MigrateUnderLoad("tenantA", "node1",
					cfg.EBs(bench.PaperMediumEBs), tpcw.Ordering, scale,
					core.MigrateOptions{Strategy: strat})
				h.Close()
				switch {
				case err == core.ErrCatchupTimeout:
					reportSeconds(b, "migration_s", 0, true)
				case err != nil:
					b.Fatal(err)
				default:
					reportSeconds(b, "migration_s", rep.Total(), false)
				}
			}
		})
	}
}

// BenchmarkWorkerCriticalRegion measures the Algorithm-1 worker path: one
// update transaction through the middleware, whose first read and commit
// cross the per-tenant critical region (the cost Fig 7 shows at migration
// start).
func BenchmarkWorkerCriticalRegion(b *testing.B) {
	node, err := cluster.NewNode("node0", cluster.NodeOptions{Engine: engine.Options{}})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	mw, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer mw.Close()
	mw.AddNode(node)
	if err := mw.ProvisionTenant("t", "node0"); err != nil {
		b.Fatal(err)
	}
	c, err := wire.Dial(mw.Addr(), "t")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	mustBenchExec(b, c, "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	mustBenchExec(b, c, "INSERT INTO kv (k, v) VALUES (1, 0)")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBenchExec(b, c, "BEGIN")
		mustBenchExec(b, c, "SELECT v FROM kv WHERE k = 1")
		mustBenchExec(b, c, "UPDATE kv SET v = v + 1 WHERE k = 1")
		mustBenchExec(b, c, "COMMIT")
	}
}

func mustBenchExec(b *testing.B, c *wire.Client, sql string) {
	b.Helper()
	if _, err := c.Exec(sql); err != nil {
		b.Fatalf("%s: %v", sql, err)
	}
}
