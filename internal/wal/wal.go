// Package wal implements a write-ahead log with group commit.
//
// The log is the engine's commit-durability point. Its latency model is the
// crux of the Madeus reproduction: a commit is durable only after an fsync,
// and an fsync is expensive relative to in-memory work. In group-commit mode
// every fsync covers all commit requests that arrived while the previous
// fsync was in flight, so N concurrent commits cost far fewer than N fsyncs
// (the paper's C'_c < C_c, Sec 4.5.2). In serial mode each commit pays a
// full fsync by itself — the behaviour the B-CON baseline is stuck with when
// it serializes commit propagation.
//
// Durability itself is simulated: the log buffers records in memory and
// models fsync latency with a configurable delay. The batching, ordering,
// and accounting logic is real.
package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/fault"
	"madeus/internal/invariant"
	"madeus/internal/obs"
	"madeus/internal/simlat"
)

// Failpoint sites (armed only under -tags faultinject). The simulated log
// has no error path — Append and fsync cannot fail — so these sites model
// latency faults: a Delay policy is a slow disk, a Hang policy a stalled
// device. Error policies injected here are absorbed (the returned error
// is discarded by design).
const (
	faultAppend = "wal.append"
	faultFsync  = "wal.fsync"
)

// Process-wide observability: one engine process may host several logs (the
// in-process test clusters), so these aggregate across all of them; the
// per-log Stats remain the exact per-instance view.
var (
	obsFsyncs  = obs.NewCounter("wal.fsyncs", "simulated fsyncs performed")
	obsCommits = obs.NewCounter("wal.commits", "commit requests served")
	obsRecords = obs.NewCounter("wal.records", "records appended")
	obsBatch   = obs.NewHistogram("wal.batch_size", "commits covered by one fsync", obs.SizeBuckets())
)

// Mode selects how commits reach "disk".
type Mode int

const (
	// GroupCommit batches concurrent commit requests into shared fsyncs.
	GroupCommit Mode = iota
	// SerialCommit gives every commit its own exclusive fsync.
	SerialCommit
)

func (m Mode) String() string {
	if m == SerialCommit {
		return "serial"
	}
	return "group"
}

// RecordKind tags a log record.
type RecordKind int

// Record kinds.
const (
	RecBegin RecordKind = iota
	RecInsert
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
)

// Record is one WAL entry. Data is an opaque rendering of the change
// (the engine stores the normalized SQL). LSN is assigned by Append: a
// strictly increasing log sequence number (the invariants build asserts
// monotonicity over the retained prefix).
type Record struct {
	LSN   uint64
	TxnID uint64
	Kind  RecordKind
	DB    string
	Table string
	Data  string
}

// Options configures a Log.
type Options struct {
	// SyncDelay is the simulated fsync latency. Zero means fsyncs are
	// instantaneous (still counted).
	SyncDelay time.Duration
	// Mode selects group or serial commit.
	Mode Mode
	// RetainRecords keeps up to this many recent records in memory for
	// inspection (tests); 0 retains none.
	RetainRecords int
}

// Stats reports accounting counters. Obtained via Log.Stats.
type Stats struct {
	Fsyncs   uint64 // number of simulated fsyncs performed
	Commits  uint64 // number of commit requests served
	Records  uint64 // number of records appended
	MaxBatch int    // largest number of commits covered by one fsync
}

// Log is a write-ahead log shared by all tenants of one engine instance
// (the shared-process model: one transaction log per DBMS process, avoiding
// the per-tenant random log access of the VM-instance model).
type Log struct {
	opts Options

	records atomic.Uint64
	commits atomic.Uint64
	fsyncs  atomic.Uint64

	//madeusvet:lockrank wal 50
	mu       sync.Mutex // serial mode fsync; also guards retained/maxBatch
	retained []Record
	maxBatch int

	reqs   chan chan struct{}
	stop   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup
}

// New creates a log and, in group mode, starts its committer.
func New(opts Options) *Log {
	l := &Log{
		opts: opts,
		reqs: make(chan chan struct{}, 1024),
		stop: make(chan struct{}),
	}
	if opts.Mode == GroupCommit {
		l.wg.Add(1)
		go l.committer()
	}
	return l
}

// Append buffers a record, assigning its LSN. It does not sync.
func (l *Log) Append(rec Record) {
	_ = fault.Inject(faultAppend)
	rec.LSN = l.records.Add(1)
	obsRecords.Inc()
	if l.opts.RetainRecords > 0 {
		l.mu.Lock()
		if n := len(l.retained); n < l.opts.RetainRecords {
			if n > 0 {
				invariant.Assertf(rec.LSN > l.retained[n-1].LSN,
					"wal: LSN %d not monotonic (last retained %d)", rec.LSN, l.retained[n-1].LSN)
			}
			l.retained = append(l.retained, rec)
		}
		l.mu.Unlock()
	}
}

// Retained returns the retained record prefix (tests only).
func (l *Log) Retained() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.retained))
	copy(out, l.retained)
	return out
}

// Commit makes the calling transaction's records durable. It blocks until
// an fsync covering this commit completes.
func (l *Log) Commit() error {
	l.commits.Add(1)
	obsCommits.Inc()
	if l.opts.Mode == SerialCommit {
		l.mu.Lock()
		// Serial mode models an EXCLUSIVE fsync per commit — holding the
		// log mutex across it is the modeled cost (B-CON's baseline).
		//madeusvet:ignore lockdiscipline,holdblock serial mode holds the log mutex across the modeled fsync by design
		l.fsync()
		l.noteBatch(1)
		l.mu.Unlock()
		return nil
	}
	done := make(chan struct{})
	select {
	case l.reqs <- done:
	case <-l.stop:
		return fmt.Errorf("wal: log closed")
	}
	select {
	case <-done:
		return nil
	case <-l.stop:
		return fmt.Errorf("wal: log closed")
	}
}

// committer is the group-commit loop: it takes the first pending commit,
// drains everything else already queued, performs one fsync, and acks the
// whole batch. Requests arriving during the fsync form the next batch.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		var batch []chan struct{}
		select {
		case first := <-l.reqs:
			batch = append(batch, first)
		case <-l.stop:
			return
		}
	drain:
		for {
			select {
			case next := <-l.reqs:
				batch = append(batch, next)
			default:
				break drain
			}
		}
		l.fsync()
		// Group-commit accounting invariants: a batch covers at least one
		// commit, and no fsync ever happens without a commit to cover —
		// the C'_c < C_c inequality the paper's Sec 4.5.2 rests on.
		invariant.Assertf(len(batch) >= 1, "wal: empty group-commit batch")
		invariant.Check(func() error {
			if f, c := l.fsyncs.Load(), l.commits.Load(); f > c {
				return fmt.Errorf("wal: %d fsyncs exceed %d commit requests", f, c)
			}
			return nil
		})
		l.noteBatch(len(batch))
		for _, done := range batch {
			close(done)
		}
	}
}

func (l *Log) fsync() {
	_ = fault.Inject(faultFsync)
	simlat.IO(l.opts.SyncDelay)
	l.fsyncs.Add(1)
	obsFsyncs.Inc()
}

func (l *Log) noteBatch(n int) {
	invariant.Assertf(n >= 1, "wal: batch of %d commits noted", n)
	obsBatch.Observe(int64(n))
	if l.opts.Mode == SerialCommit {
		// mu already held by Commit.
		if n > l.maxBatch {
			l.maxBatch = n
		}
		return
	}
	l.mu.Lock()
	if n > l.maxBatch {
		l.maxBatch = n
	}
	l.mu.Unlock()
}

// Stats returns a snapshot of the accounting counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	mb := l.maxBatch
	l.mu.Unlock()
	return Stats{
		Fsyncs:   l.fsyncs.Load(),
		Commits:  l.commits.Load(),
		Records:  l.records.Load(),
		MaxBatch: mb,
	}
}

// Close stops the committer. Pending commits fail with an error.
func (l *Log) Close() {
	l.closed.Do(func() {
		close(l.stop)
		l.wg.Wait()
	})
}
