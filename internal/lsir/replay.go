package lsir

import "fmt"

// Replay executes a slave schedule under the SI model and checks Theorem 1:
// the slave must be consistent with the master. Concretely it verifies
//
//  1. every replayed first read observes the same committed state it
//     observed on the master: the set of (mapped) transactions committed
//     before the read is identical — this is what makes re-executed
//     relative updates (UPDATE ... SET x = x - 1) compute identical values;
//  2. after all syncsets are applied, the slave's final per-item versions
//     equal the master's final state.
//
// It returns an error describing the first inconsistency.
func Replay(h History, s Schedule) error {
	sets := MapHistory(h)
	mapped := make(map[int]bool, len(sets))
	for _, ss := range sets {
		mapped[ss.Txn] = true
	}

	// Master side: for each mapped transaction, the set of mapped
	// transactions committed before its first read.
	type intSet map[int]bool
	masterBefore := make(map[int]intSet)
	{
		committed := make(intSet)
		seenRead := make(map[int]bool)
		for _, op := range h.Ops {
			if !mapped[op.Txn] {
				continue
			}
			switch op.Kind {
			case OpRead:
				if !seenRead[op.Txn] {
					seenRead[op.Txn] = true
					cp := make(intSet, len(committed))
					for k := range committed {
						cp[k] = true
					}
					masterBefore[op.Txn] = cp
				}
			case OpCommit:
				committed[op.Txn] = true
			}
		}
	}

	// Slave side: walk the schedule, tracking commit state; apply writes
	// buffered per transaction at commit.
	slaveState := make(map[string]int)
	bufWrites := make(map[int][]Op)
	committed := make(map[int]bool)
	seenRead := make(map[int]bool)
	for _, op := range s.Ops {
		switch op.Kind {
		case OpRead:
			if seenRead[op.Txn] {
				return fmt.Errorf("lsir: replay: txn %d has more than one read in schedule", op.Txn)
			}
			seenRead[op.Txn] = true
			want := masterBefore[op.Txn]
			if len(want) != len(committed) {
				return fmt.Errorf("lsir: replay: txn %d snapshot has %d committed txns on slave, %d on master",
					op.Txn, len(committed), len(want))
			}
			for k := range want {
				if !committed[k] {
					return fmt.Errorf("lsir: replay: txn %d snapshot missing commit of txn %d", op.Txn, k)
				}
			}
		case OpWrite:
			bufWrites[op.Txn] = append(bufWrites[op.Txn], op)
		case OpCommit:
			if committed[op.Txn] {
				return fmt.Errorf("lsir: replay: txn %d committed twice", op.Txn)
			}
			committed[op.Txn] = true
			for _, w := range bufWrites[op.Txn] {
				slaveState[w.Item] = w.Txn
			}
		case OpAbort:
			return fmt.Errorf("lsir: replay: abort op for txn %d in schedule", op.Txn)
		}
	}

	// Final-state equality.
	masterState := h.FinalState()
	if len(masterState) != len(slaveState) {
		return fmt.Errorf("lsir: replay: final state sizes differ: master %d, slave %d", len(masterState), len(slaveState))
	}
	for item, ver := range masterState {
		if slaveState[item] != ver {
			return fmt.Errorf("lsir: replay: item %s is version %d on slave, %d on master", item, slaveState[item], ver)
		}
	}
	return nil
}
