// Package engine implements the shared-process DBMS instance Madeus manages:
// one engine per node, hosting many tenant databases that share a single
// write-ahead log (the shared process model of Curino et al. that the paper
// adopts, Sec 1). The engine provides snapshot isolation with the
// first-updater-wins rule via the mvcc package and group commit via the wal
// package, executes the sqlmini SQL subset, and supports consistent DUMPs
// for live migration.
//
// Performance model: each statement consumes one of a bounded number of
// execution slots (simulating CPU cores) for a configurable CPU cost, and
// each update-transaction commit waits for a WAL fsync. These two knobs are
// what make workloads saturate the way the paper's PostgreSQL node does.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/mvcc"
	"madeus/internal/obs"
	"madeus/internal/simlat"
	"madeus/internal/wal"
)

// Process-wide transaction outcome counters (summed over every tenant of
// every engine in the process); the per-tenant split lives on Database.
var (
	obsCommits   = obs.NewCounter("engine.commits", "transactions committed")
	obsAborts    = obs.NewCounter("engine.aborts", "transactions aborted or rolled back")
	obsConflicts = obs.NewCounter("engine.conflicts", "first-updater-wins serialization aborts")
)

// Options configures an Engine.
type Options struct {
	// WAL configures the shared write-ahead log.
	WAL wal.Options
	// ExecSlots bounds concurrently executing statements (simulated CPU
	// cores). 0 means unlimited.
	ExecSlots int
	// StmtCost is the simulated CPU time consumed by each statement
	// while holding an execution slot.
	StmtCost time.Duration
	// LockTimeout bounds row-lock waits (see mvcc.Manager).
	LockTimeout time.Duration
	// DumpBatch is the number of rows per INSERT statement in DUMP
	// output; it controls how much slower a restore is than a dump.
	// Defaults to 50.
	DumpBatch int
}

// Engine is one DBMS instance ("node" in the paper's cluster).
type Engine struct {
	opts  Options
	log   *wal.Log
	slots chan struct{}

	mu  sync.RWMutex //madeusvet:lockrank engine 30
	dbs map[string]*Database
}

// Database is one tenant: a named catalog of MVCC tables with its own
// transaction manager (transactions never span tenants).
type Database struct {
	Name string

	mgr *mvcc.Manager

	mu     sync.RWMutex //madeusvet:lockrank database 32
	tables map[string]*mvcc.Table

	// Per-tenant transaction outcomes (monitoring; see DBStats).
	commits   atomic.Uint64
	aborts    atomic.Uint64
	conflicts atomic.Uint64
}

// DBStats is one tenant's transaction-outcome counters.
type DBStats struct {
	Commits   uint64
	Aborts    uint64
	Conflicts uint64 // first-updater-wins serialization aborts (subset of Aborts)
}

// Stats snapshots the tenant's transaction outcome counters.
func (db *Database) Stats() DBStats {
	return DBStats{
		Commits:   db.commits.Load(),
		Aborts:    db.aborts.Load(),
		Conflicts: db.conflicts.Load(),
	}
}

// noteCommit records a committed transaction.
func (db *Database) noteCommit() {
	db.commits.Add(1)
	obsCommits.Inc()
}

// noteAbort records an aborted transaction; conflict marks the
// serialization-failure subset.
func (db *Database) noteAbort(conflict bool) {
	db.aborts.Add(1)
	obsAborts.Inc()
	if conflict {
		db.conflicts.Add(1)
		obsConflicts.Inc()
	}
}

// New creates an engine with its WAL committer running.
func New(opts Options) *Engine {
	if opts.DumpBatch <= 0 {
		opts.DumpBatch = 50
	}
	e := &Engine{
		opts: opts,
		log:  wal.New(opts.WAL),
		dbs:  make(map[string]*Database),
	}
	if opts.ExecSlots > 0 {
		e.slots = make(chan struct{}, opts.ExecSlots)
	}
	return e
}

// Close stops the engine's WAL committer.
func (e *Engine) Close() { e.log.Close() }

// WALStats exposes the shared log's counters.
func (e *Engine) WALStats() wal.Stats { return e.log.Stats() }

// CreateDatabase adds an empty tenant database.
func (e *Engine) CreateDatabase(name string) error {
	if name == "" {
		return fmt.Errorf("engine: empty database name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.dbs[name]; ok {
		return fmt.Errorf("engine: database %q already exists", name)
	}
	mgr := mvcc.NewManager()
	mgr.LockTimeout = e.opts.LockTimeout
	e.dbs[name] = &Database{
		Name:   name,
		mgr:    mgr,
		tables: make(map[string]*mvcc.Table),
	}
	return nil
}

// DropDatabase removes a tenant database and all its data.
func (e *Engine) DropDatabase(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.dbs[name]; !ok {
		return fmt.Errorf("engine: database %q does not exist", name)
	}
	delete(e.dbs, name)
	return nil
}

// Database returns the named tenant.
func (e *Engine) Database(name string) (*Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	db, ok := e.dbs[name]
	return db, ok
}

// Databases lists tenant names in sorted order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.dbs))
	for n := range e.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// acquireSlot blocks until an execution slot is free, then simulates the
// statement's CPU cost. The returned func releases the slot.
func (e *Engine) acquireSlot() func() {
	if e.slots != nil {
		e.slots <- struct{}{}
	}
	simlat.CPU(e.opts.StmtCost)
	if e.slots == nil {
		return func() {}
	}
	return func() { <-e.slots }
}

func (db *Database) table(name string) (*mvcc.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables lists table names in sorted order.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Manager exposes the tenant's transaction manager (used by tests and by
// the dump path).
func (db *Database) Manager() *mvcc.Manager { return db.mgr }
