//go:build race

package madeus

// raceEnabled reports that this binary was built with the race detector;
// timing guards skip themselves because instrumented atomics measure the
// detector, not the code under guard.
const raceEnabled = true
