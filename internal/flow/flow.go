// Package flow is the middleware's backpressure and admission-control
// layer: the defenses that keep a migration convergent — and the process
// alive — when the source commits syncsets faster than a slave can replay
// them (the paper's "heavy workload" regime, pushed past what Section 5
// measures). Cecchet et al. name admission control and overload behaviour
// as the canonical gap between replication-middleware papers and deployable
// systems; this package closes that gap for our reproduction.
//
// Four mechanisms, one Config:
//
//   - Bounded SSL: ops/SSB/byte caps on the capture buffer
//     (internal/core's syncset list), tracked per tenant. A breach aborts
//     the migration through the rollback protocol instead of growing
//     without limit.
//   - Adaptive source pacing: a feedback controller watches the Step-3
//     debt trend and injects a small, bounded delay into the migrating
//     tenant's source-side commits when debt diverges — dirty-rate
//     throttling, the DB analog of pre-copy VM migration — ramping back to
//     zero as the slave catches up, so convergence to the switch-over
//     threshold is guaranteed rather than hoped for.
//   - Migration watchdog: a whole-migration deadline plus a stall detector
//     (no replay progress and no debt decrease for a window) that triggers
//     the rollback protocol instead of hanging forever.
//   - Proxy admission control: bounded per-tenant in-flight sessions with
//     a wait queue and typed overload errors, so a connection burst
//     degrades gracefully instead of exhausting goroutines.
//
// The layer follows the repo's overhead contract (internal/invariant,
// internal/obs, internal/fault): with every knob at its zero value the
// per-commit pace check and the per-session admission check each cost one
// atomic load, guarded by TestFlowDisabledOverhead at the repo root.
package flow

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Knob constants: the calibrated defaults DefaultConfig applies and the
// hard ceilings Validate enforces. madeusvet's invariantcall rule checks
// that every constant below is actually applied somewhere in the package.
//
//madeusvet:knobs
const (
	// DefaultMaxSSLSyncsets bounds linked-but-unreleased syncsets.
	DefaultMaxSSLSyncsets = 100_000
	// DefaultMaxSSLOps bounds captured operations across those syncsets.
	DefaultMaxSSLOps = 1_000_000
	// DefaultMaxSSLBytes bounds the capture buffer's memory footprint.
	DefaultMaxSSLBytes = 256 << 20
	// DefaultPaceTargetDebt is the debt the controller steers toward; it
	// sits below the default catch-up threshold (MigrateOptions.CatchupLag)
	// so paced migrations reach switch-over.
	DefaultPaceTargetDebt = 32
	// DefaultPaceStep seeds the controller's first nonzero delay.
	DefaultPaceStep = time.Millisecond
	// DefaultPaceMaxDelay bounds the injected per-commit delay.
	DefaultPaceMaxDelay = 50 * time.Millisecond
	// MaxPaceDelay is the hard ceiling on any configured or computed pace
	// delay: pacing must stay a "small, bounded" commit tax, never a
	// de-facto service suspension.
	MaxPaceDelay = 250 * time.Millisecond
	// DefaultPaceDecay halves the delay each tick once debt is back at
	// target (multiplicative decrease).
	DefaultPaceDecay = 0.5
	// DefaultStallWindow aborts a migration that makes no replay progress
	// for this long.
	DefaultStallWindow = 30 * time.Second
	// DefaultMaxTransferBytes caps the resident bytes of an in-flight
	// Step-1 snapshot transfer (chunks dumped but not yet applied on every
	// slave): the pipelined path's analog of the SSL byte cap.
	DefaultMaxTransferBytes = 64 << 20
	// DefaultAdmitTimeout bounds how long a queued session waits for an
	// admission slot before it is shed.
	DefaultAdmitTimeout = 2 * time.Second
)

// Config is the single home of every backpressure knob, validated at
// startup (core.New) and tunable at runtime through the admin FLOW command.
// The zero value disables everything — seed behaviour is unchanged and the
// hot paths cost one atomic load.
//
//madeusvet:config
type Config struct {
	// MaxSSLSyncsets caps retained (linked but not yet released) syncsets
	// in a migrating tenant's SSL. 0 = unlimited.
	MaxSSLSyncsets int
	// MaxSSLOps caps the captured operations retained in the SSL.
	// 0 = unlimited.
	MaxSSLOps int
	// MaxSSLBytes caps the SSL's accounted memory footprint (SQL text plus
	// per-entry overhead). 0 = unlimited.
	MaxSSLBytes int64

	// PaceTargetDebt is the Step-3 debt the pacing controller steers the
	// migrating tenant toward. Only meaningful when PaceMaxDelay > 0.
	PaceTargetDebt int
	// PaceStep is the controller's smallest nonzero delay (the ramp seed).
	PaceStep time.Duration
	// PaceMaxDelay bounds the per-commit delay pacing may inject on the
	// migrating tenant's source sessions; 0 disables pacing. Capped at
	// MaxPaceDelay.
	PaceMaxDelay time.Duration
	// PaceDecay multiplies the delay each controller tick once debt is at
	// or below target; must be in [0, 1).
	PaceDecay float64

	// MaxTransferBytes caps the resident memory of a pipelined Step-1
	// snapshot transfer: the dump stage blocks once this many chunk bytes
	// are in flight (transferred but not yet applied by every slave).
	// 0 = unlimited.
	MaxTransferBytes int64

	// Deadline bounds a whole migration: past it the watchdog aborts
	// through the rollback protocol. 0 = no deadline.
	Deadline time.Duration
	// StallWindow aborts a migration whose slave made no replay progress
	// (no applied advance, no debt decrease) for this long. 0 = disabled.
	StallWindow time.Duration

	// MaxSessions caps per-tenant in-flight customer sessions.
	// 0 = unlimited.
	MaxSessions int
	// AdmitQueue is how many sessions may wait for a slot beyond the cap
	// before new arrivals are shed with a typed overload error.
	AdmitQueue int
	// AdmitTimeout bounds a queued session's wait before it is shed.
	// 0 with MaxSessions > 0 falls back to DefaultAdmitTimeout.
	AdmitTimeout time.Duration
}

// DefaultConfig returns the calibrated production configuration: bounded
// SSL, pacing on, a generous stall window, and a high session cap. The
// daemon (cmd/madeusd) ships with it; tests and embedders opt in.
func DefaultConfig() Config {
	return Config{
		MaxSSLSyncsets:   DefaultMaxSSLSyncsets,
		MaxSSLOps:        DefaultMaxSSLOps,
		MaxSSLBytes:      DefaultMaxSSLBytes,
		PaceTargetDebt:   DefaultPaceTargetDebt,
		PaceStep:         DefaultPaceStep,
		PaceMaxDelay:     DefaultPaceMaxDelay,
		PaceDecay:        DefaultPaceDecay,
		MaxTransferBytes: DefaultMaxTransferBytes,
		StallWindow:      DefaultStallWindow,
		MaxSessions:      1024,
		AdmitQueue:       256,
		AdmitTimeout:     DefaultAdmitTimeout,
	}
}

// Validate range-checks every knob. madeusvet's invariantcall rule enforces
// that each Config field is referenced here, so a new knob cannot ship
// unvalidated.
func (c Config) Validate() error {
	if c.MaxSSLSyncsets < 0 {
		return fmt.Errorf("flow: MaxSSLSyncsets %d < 0", c.MaxSSLSyncsets)
	}
	if c.MaxSSLOps < 0 {
		return fmt.Errorf("flow: MaxSSLOps %d < 0", c.MaxSSLOps)
	}
	if c.MaxSSLBytes < 0 {
		return fmt.Errorf("flow: MaxSSLBytes %d < 0", c.MaxSSLBytes)
	}
	if c.PaceTargetDebt < 0 {
		return fmt.Errorf("flow: PaceTargetDebt %d < 0", c.PaceTargetDebt)
	}
	if c.PaceStep < 0 {
		return fmt.Errorf("flow: PaceStep %v < 0", c.PaceStep)
	}
	if c.PaceMaxDelay < 0 || c.PaceMaxDelay > MaxPaceDelay {
		return fmt.Errorf("flow: PaceMaxDelay %v outside [0, %v]", c.PaceMaxDelay, time.Duration(MaxPaceDelay))
	}
	if c.PaceMaxDelay > 0 && c.PaceStep == 0 {
		return fmt.Errorf("flow: pacing enabled (PaceMaxDelay %v) with PaceStep 0", c.PaceMaxDelay)
	}
	if c.PaceStep > MaxPaceDelay {
		return fmt.Errorf("flow: PaceStep %v exceeds the %v ceiling", c.PaceStep, time.Duration(MaxPaceDelay))
	}
	if c.PaceDecay < 0 || c.PaceDecay >= 1 {
		return fmt.Errorf("flow: PaceDecay %v outside [0, 1)", c.PaceDecay)
	}
	if c.MaxTransferBytes < 0 {
		return fmt.Errorf("flow: MaxTransferBytes %d < 0", c.MaxTransferBytes)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("flow: Deadline %v < 0", c.Deadline)
	}
	if c.StallWindow < 0 {
		return fmt.Errorf("flow: StallWindow %v < 0", c.StallWindow)
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("flow: MaxSessions %d < 0", c.MaxSessions)
	}
	if c.AdmitQueue < 0 {
		return fmt.Errorf("flow: AdmitQueue %d < 0", c.AdmitQueue)
	}
	if c.AdmitQueue > 0 && c.MaxSessions == 0 {
		return fmt.Errorf("flow: AdmitQueue %d without a MaxSessions cap", c.AdmitQueue)
	}
	if c.AdmitTimeout < 0 {
		return fmt.Errorf("flow: AdmitTimeout %v < 0", c.AdmitTimeout)
	}
	return nil
}

// Governor holds the live Config for one middleware process. Reads are one
// atomic pointer load (hot paths snapshot it once per decision); updates
// re-validate and swap.
type Governor struct {
	cfg atomic.Pointer[Config]
}

// NewGovernor validates cfg and wraps it.
func NewGovernor(cfg Config) (*Governor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Governor{}
	g.cfg.Store(&cfg)
	return g, nil
}

// Config snapshots the current configuration.
func (g *Governor) Config() Config { return *g.cfg.Load() }

// Update validates and installs a whole new configuration.
func (g *Governor) Update(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	g.cfg.Store(&cfg)
	return nil
}

// knobs maps the admin-facing snake_case knob names onto Config fields.
// Order here is the FLOW listing order.
var knobNames = []string{
	"max_ssl_syncsets", "max_ssl_ops", "max_ssl_bytes",
	"max_transfer_bytes",
	"pace_target_debt", "pace_step", "pace_max_delay", "pace_decay",
	"deadline", "stall_window",
	"max_sessions", "admit_queue", "admit_timeout",
}

// KnobNames lists the runtime-tunable knob names in display order.
func KnobNames() []string { return append([]string(nil), knobNames...) }

// Knob renders the named knob's current value ("" for unknown names).
func (c Config) Knob(name string) string {
	switch name {
	case "max_ssl_syncsets":
		return strconv.Itoa(c.MaxSSLSyncsets)
	case "max_ssl_ops":
		return strconv.Itoa(c.MaxSSLOps)
	case "max_ssl_bytes":
		return strconv.FormatInt(c.MaxSSLBytes, 10)
	case "max_transfer_bytes":
		return strconv.FormatInt(c.MaxTransferBytes, 10)
	case "pace_target_debt":
		return strconv.Itoa(c.PaceTargetDebt)
	case "pace_step":
		return c.PaceStep.String()
	case "pace_max_delay":
		return c.PaceMaxDelay.String()
	case "pace_decay":
		return strconv.FormatFloat(c.PaceDecay, 'g', -1, 64)
	case "deadline":
		return c.Deadline.String()
	case "stall_window":
		return c.StallWindow.String()
	case "max_sessions":
		return strconv.Itoa(c.MaxSessions)
	case "admit_queue":
		return strconv.Itoa(c.AdmitQueue)
	case "admit_timeout":
		return c.AdmitTimeout.String()
	}
	return ""
}

// Set parses value into the named knob, validates the resulting
// configuration, and installs it atomically. This is the admin FLOW SET /
// `madeusctl flow set` backend.
func (g *Governor) Set(name, value string) error {
	cfg := g.Config()
	var err error
	switch name {
	case "max_ssl_syncsets":
		cfg.MaxSSLSyncsets, err = strconv.Atoi(value)
	case "max_ssl_ops":
		cfg.MaxSSLOps, err = strconv.Atoi(value)
	case "max_ssl_bytes":
		cfg.MaxSSLBytes, err = strconv.ParseInt(value, 10, 64)
	case "max_transfer_bytes":
		cfg.MaxTransferBytes, err = strconv.ParseInt(value, 10, 64)
	case "pace_target_debt":
		cfg.PaceTargetDebt, err = strconv.Atoi(value)
	case "pace_step":
		cfg.PaceStep, err = time.ParseDuration(value)
	case "pace_max_delay":
		cfg.PaceMaxDelay, err = time.ParseDuration(value)
	case "pace_decay":
		cfg.PaceDecay, err = strconv.ParseFloat(value, 64)
	case "deadline":
		cfg.Deadline, err = time.ParseDuration(value)
	case "stall_window":
		cfg.StallWindow, err = time.ParseDuration(value)
	case "max_sessions":
		cfg.MaxSessions, err = strconv.Atoi(value)
	case "admit_queue":
		cfg.AdmitQueue, err = strconv.Atoi(value)
	case "admit_timeout":
		cfg.AdmitTimeout, err = time.ParseDuration(value)
	default:
		return fmt.Errorf("flow: unknown knob %q", name)
	}
	if err != nil {
		return fmt.Errorf("flow: bad value %q for %s: %v", value, name, err)
	}
	return g.Update(cfg)
}

// Typed overload and abort errors. They are part of the rollback surface:
// Report.RollbackReason carries their text, and clients shed by admission
// control see OverloadError's message as a server error instead of a hang.
var (
	// ErrOverloaded is the sentinel every admission shed unwraps to.
	ErrOverloaded = errors.New("flow: overloaded")
	// ErrStalled aborts a migration whose slave made no replay progress
	// for a whole stall window.
	ErrStalled = errors.New("flow: migration stalled: no propagation progress within the stall window")
	// ErrDeadline aborts a migration that outlived its deadline.
	ErrDeadline = errors.New("flow: migration deadline exceeded")
	// ErrSSLOverflow aborts a migration whose capture buffer breached a
	// configured cap. With pacing on this should never fire; with pacing
	// off it is the bound that keeps memory finite.
	ErrSSLOverflow = errors.New("flow: syncset list exceeded its configured cap")
)

// OverloadError is the typed error a shed session receives.
type OverloadError struct {
	Tenant string
	Reason string // ReasonQueueFull or ReasonAdmitTimeout
}

// Shed reasons.
const (
	ReasonQueueFull    = "admission queue full"
	ReasonAdmitTimeout = "admission wait timed out"
)

func (e *OverloadError) Error() string {
	return "flow: tenant " + e.Tenant + " overloaded: " + e.Reason
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }
