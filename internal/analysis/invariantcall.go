package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// InvariantCall polices the internal/invariant call sites: assertion
// arguments are evaluated even in production (no-tag) builds, so only the
// `invariants` build tag may gate real work. Concretely:
//
//   - invariant.Assert / Assertf conditions and message args must not
//     contain function calls — a call there runs on every production hit of
//     the hot path. Wrap expensive checks in invariant.Check(func() error)
//     instead; the closure is only invoked under -tags invariants.
//   - invariant.Check takes a func literal or func value, not the result of
//     calling something — invariant.Check(f()) evaluates f eagerly.
//
// The internal/fault failpoint registry has the same contract under its
// faultinject tag: fault.Inject(site) arguments are evaluated even in
// production builds where Inject is a no-op stub, so site names must be
// precomputed constants, never built by a call on the hot path.
//
// The rule also enforces two declaration-site directives used by the
// backpressure layer (internal/flow) so tuning knobs cannot silently rot:
//
//   - a const block marked //madeusvet:knobs may only declare constants that
//     are actually referenced somewhere in the package — a documented knob
//     constant nothing reads is a lie waiting for an operator.
//   - a struct marked //madeusvet:config must have a Validate method, and
//     every named field of the struct must be referenced inside it. New
//     knobs therefore cannot ship without a range check.
var InvariantCall = &Analyzer{
	Name: "invariantcall",
	Doc:  "invariant assertions and fault sites must only do real work under their build tags; //madeusvet:knobs and //madeusvet:config declarations must stay wired and validated",
	Run:  runInvariantCall,
}

func runInvariantCall(pass *Pass) {
	checkKnobBlocks(pass)
	checkConfigStructs(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if isFaultPkg(pass, pkg) && sel.Sel.Name == "Inject" {
				for _, arg := range call.Args {
					if inner := firstCall(pass, arg); inner != nil {
						pass.Reportf(inner.Pos(),
							"call inside fault.Inject argument is evaluated even without -tags faultinject; use a precomputed site-name constant")
					}
				}
				return true
			}
			if !isInvariantPkg(pass, pkg) {
				return true
			}
			switch sel.Sel.Name {
			case "Assert", "Assertf":
				for i, arg := range call.Args {
					if i == 1 && sel.Sel.Name == "Assertf" {
						continue // the format string literal
					}
					if i == 1 && sel.Sel.Name == "Assert" {
						continue // the message literal
					}
					if inner := firstCall(pass, arg); inner != nil {
						pass.Reportf(inner.Pos(),
							"call inside invariant.%s argument is evaluated even without -tags invariants; move it into invariant.Check(func() error {...})",
							sel.Sel.Name)
					}
				}
			case "Check":
				if len(call.Args) == 1 {
					if inner, isCall := call.Args[0].(*ast.CallExpr); isCall {
						pass.Reportf(inner.Pos(),
							"invariant.Check argument is a call result, evaluated even without -tags invariants; pass a func literal or func value")
					}
				}
			}
			return true
		})
	}
}

// hasMarker reports whether doc carries the exact //madeusvet:<kind>
// directive line.
func hasMarker(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//madeusvet:"+kind {
			return true
		}
	}
	return false
}

// checkKnobBlocks enforces //madeusvet:knobs: every constant declared in a
// marked const block must be referenced somewhere in the package. Needs type
// info (object identity across files); silently skipped without it.
func checkKnobBlocks(pass *Pass) {
	if pass.Info == nil {
		return
	}
	var used map[types.Object]bool // built lazily: most packages have no marked blocks
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST || !hasMarker(gd.Doc, "knobs") {
				continue
			}
			if used == nil {
				used = make(map[types.Object]bool, len(pass.Info.Uses))
				for _, obj := range pass.Info.Uses {
					used[obj] = true
				}
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if obj := pass.Info.Defs[name]; obj != nil && !used[obj] {
						pass.Reportf(name.Pos(),
							"knob constant %s sits in a //madeusvet:knobs block but nothing in the package reads it; wire it into the config or delete it",
							name.Name)
					}
				}
			}
		}
	}
}

// checkConfigStructs enforces //madeusvet:config: a marked struct must have a
// Validate method that references every named field, so no knob can ship
// without a range check. Pure AST — works without type info.
func checkConfigStructs(pass *Pass) {
	validators := make(map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Validate" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if name := recvTypeName(fd.Recv.List[0].Type); name != "" {
				validators[name] = fd
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || (!hasMarker(gd.Doc, "config") && !hasMarker(ts.Doc, "config")) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				v, hasValidate := validators[ts.Name.Name]
				if !hasValidate {
					pass.Reportf(ts.Name.Pos(),
						"config struct %s carries //madeusvet:config but has no Validate method; knob structs must range-check themselves",
						ts.Name.Name)
					continue
				}
				refs := selectorNames(v.Body)
				for _, field := range st.Fields.List {
					for _, fname := range field.Names {
						if !refs[fname.Name] {
							pass.Reportf(fname.Pos(),
								"config field %s.%s is never referenced in Validate; every knob must be range-checked before use",
								ts.Name.Name, fname.Name)
						}
					}
				}
			}
		}
	}
}

// recvTypeName unwraps a method receiver type down to its base type name.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// selectorNames collects every selector field/method name used in body. An
// over-approximation of "fields Validate looks at" — good enough to catch a
// field Validate never mentions at all.
func selectorNames(body *ast.BlockStmt) map[string]bool {
	refs := make(map[string]bool)
	if body == nil {
		return refs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			refs[sel.Sel.Name] = true
		}
		return true
	})
	return refs
}

// isInvariantPkg reports whether ident names the internal/invariant package
// (by import resolution when type info is present, by name otherwise).
func isInvariantPkg(pass *Pass, ident *ast.Ident) bool {
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return strings.HasSuffix(pn.Imported().Path(), "internal/invariant")
			}
			return ident.Name == "invariant"
		}
	}
	return ident.Name == "invariant"
}

// isFaultPkg reports whether ident names the internal/fault package (by
// import resolution when type info is present, by name otherwise).
func isFaultPkg(pass *Pass, ident *ast.Ident) bool {
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return strings.HasSuffix(pn.Imported().Path(), "internal/fault")
			}
			return ident.Name == "fault"
		}
	}
	return ident.Name == "fault"
}

// firstCall returns the first real CallExpr inside e, skipping func literal
// bodies (those do not run eagerly), builtins like len/cap, and type
// conversions — all cheap enough for a production-build condition.
func firstCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCheapCall(pass, n) {
				return true // still scan the arguments
			}
			found = n
			return false
		}
		return true
	})
	return found
}

// cheapBuiltins are allowed inside eager assertion arguments.
var cheapBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true, "byte": true,
	"rune": true, "string": true, "bool": true,
}

// isCheapCall reports whether call is a builtin or a type conversion.
func isCheapCall(pass *Pass, call *ast.CallExpr) bool {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[call.Fun]; ok {
			if tv.IsType() || tv.IsBuiltin() {
				return true
			}
			// Resolved as a value: a real function call.
			return false
		}
	}
	ident, ok := call.Fun.(*ast.Ident)
	return ok && cheapBuiltins[ident.Name]
}
