// Package fault is a fixture stand-in for madeus/internal/fault; the
// invariantcall analyzer matches it by its "internal/fault" path suffix.
package fault

// Inject is the fixture no-op failpoint probe.
func Inject(site string) error { return nil }
