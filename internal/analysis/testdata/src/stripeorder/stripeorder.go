// Package stripeorder exercises the stripeorder analyzer: striped locks
// (lockrank marker `striped`) acquired across loop iterations require a
// //madeusvet:stripeorder directive and an ascending walk; per-stripe
// sweeps and plain locks in loops are exempt; a directive on a function
// with no cross-stripe section is stale.
package stripeorder

import "sync"

type stripe struct {
	mu   sync.Mutex //madeusvet:lockrank so-stripe 10 striped
	rows map[int]int
}

type table struct {
	stripes []stripe

	plain sync.Mutex //madeusvet:lockrank so-plain 20
}

// lockAll is the sanctioned cross-stripe section: annotated, ascending.
//
//madeusvet:stripeorder
func (t *table) lockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
	}
}

// unlockAll releases in reverse; releases alone are never a section.
func (t *table) unlockAll() {
	for i := len(t.stripes) - 1; i >= 0; i-- {
		t.stripes[i].mu.Unlock()
	}
}

// lockAllUnmarked accumulates stripes without declaring the discipline.
func (t *table) lockAllUnmarked() {
	for i := range t.stripes {
		t.stripes[i].mu.Lock() // want
	}
}

// lockAllDescending declares the discipline but walks backwards.
//
//madeusvet:stripeorder
func (t *table) lockAllDescending() {
	for i := len(t.stripes) - 1; i >= 0; i-- {
		t.stripes[i].mu.Lock() // want
	}
}

// sweep holds at most one stripe at a time: lock and unlock inside the
// same iteration is not a cross-stripe section.
func (t *table) sweep() int {
	n := 0
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
		n += len(t.stripes[i].rows)
		t.stripes[i].mu.Unlock()
	}
	return n
}

// plainLoop locks an unstriped mutex in a loop — lockorder territory, not
// ours.
func (t *table) plainLoop() {
	for i := 0; i < 3; i++ {
		t.plain.Lock()
		t.plain.Unlock()
	}
}

// singleStripe acquires one stripe outside any loop.
func (t *table) singleStripe(i int) {
	t.stripes[i].mu.Lock()
	t.stripes[i].mu.Unlock()
}

//madeusvet:stripeorder
func (t *table) staleMarker() { // want
	t.plain.Lock()
	t.plain.Unlock()
}
