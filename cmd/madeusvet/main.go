// Command madeusvet runs the repo's custom concurrency analyzers over the
// tree and fails loudly on findings:
//
//	go run ./cmd/madeusvet ./...
//
// Output is one line per finding, `file:line:col: [rule] message`, and the
// exit status is 1 when anything fired (2 on load or usage errors), so the
// command slots straight into scripts/verify.sh and CI. Flags:
//
//	-rules lockorder,holdblock   run only the named rules (default: all)
//	-list                        list the analyzers and exit
//	-json                        emit findings as a JSON array on stdout
//	-baseline vet-baseline.json  filter findings recorded in the baseline
//	-write-baseline              write current findings to -baseline and exit 0
//
// A baseline entry matches on (file, rule, message) — line numbers drift
// with unrelated edits, so they are not part of the key. Suppress an
// intentional deviation at its site with `//madeusvet:ignore rule reason`
// instead; the baseline exists only to ratchet legacy findings down.
// The analyzer set and the discipline each rule enforces are documented in
// internal/analysis and DESIGN.md ("Concurrency invariants & lock
// hierarchy", "Interprocedural analysis").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"madeus/internal/analysis"
)

// jsonFinding is the stable wire form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Message
}

func main() {
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings to filter out")
	writeBaseline := flag.Bool("write-baseline", false, "write current findings to -baseline and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madeusvet:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madeusvet:", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		if pkg.TypeErr != nil {
			fmt.Fprintf(os.Stderr, "madeusvet: note: %s type-checked partially: %v\n", pkg.Path, pkg.TypeErr)
		}
	}

	cwd, _ := os.Getwd()
	var findings []jsonFinding
	for _, d := range analysis.RunAll(pkgs, analyzers) {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		findings = append(findings, jsonFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "madeusvet: -write-baseline requires -baseline <path>")
			os.Exit(2)
		}
		if err := saveBaseline(*baselinePath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "madeusvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "madeusvet: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return
	}

	if *baselinePath != "" {
		accepted, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "madeusvet:", err)
			os.Exit(2)
		}
		kept := findings[:0]
		filtered := 0
		for _, f := range findings {
			if accepted[f.key()] {
				filtered++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
		if filtered > 0 {
			fmt.Fprintf(os.Stderr, "madeusvet: %d finding(s) filtered by baseline %s\n", filtered, *baselinePath)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "madeusvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "madeusvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -rules flag against the registered set.
func selectAnalyzers(spec string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		a := byName[name]
		if a == nil {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(known, ", "))
		}
		seen[name] = true
		out = append(out, a)
	}
	return out, nil
}

func saveBaseline(path string, findings []jsonFinding) error {
	if findings == nil {
		findings = []jsonFinding{}
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(findings); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []jsonFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	accepted := make(map[string]bool, len(entries))
	for _, e := range entries {
		accepted[e.key()] = true
	}
	return accepted, nil
}
