// Package lockcopy exercises the lockcopy analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package lockcopy

import "sync"

// counter carries a mutex directly.
type counter struct {
	mu sync.Mutex
	n  int
}

// wrapper carries a lock transitively, through an embedded struct.
type wrapper struct {
	c counter
}

// Bump copies the receiver — and with it the mutex — on every call.
func (c counter) Bump() { // want
	c.n++
}

// merge takes a lock-bearing struct by value.
func merge(a *counter, b wrapper) { // want
	a.n += b.c.n
}

// fresh returns a lock-bearing struct by value.
func fresh() counter { // want
	return counter{}
}

// BumpPtr is the correct shape: pointer receiver.
func (c *counter) BumpPtr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// mergePtr moves lock-bearers by pointer only.
func mergePtr(a, b *counter) {
	a.n += b.n
}

// plain structs without locks move by value freely.
type point struct{ x, y int }

func dist(p point) int { return p.x + p.y }
