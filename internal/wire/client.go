package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/obs"
)

// Client-side failpoint sites (armed only under -tags faultinject).
const (
	faultDial  = "wire.dial"
	faultExec  = "wire.exec"
	faultWrite = "wire.write"
	faultRead  = "wire.read"
)

// ErrConnLost is the sentinel matched by errors.Is when a client
// connection died mid-operation: the peer vanished, an op timeout
// expired, or the protocol stream desynchronized. The concrete error is
// always a *ConnLostError carrying the failing op and cause.
var ErrConnLost = errors.New("wire: connection lost")

// ConnLostError reports that the client's connection is unusable. Once
// returned, the Client is poisoned: a response to the in-flight request
// may still arrive and would be misattributed to the next one, so the
// socket is closed and only a redial (ExecRetry does it) can revive the
// session.
type ConnLostError struct {
	Op    string // "dial", "write", "read", "exec"
	Cause error
}

func (e *ConnLostError) Error() string {
	return fmt.Sprintf("wire: connection lost during %s: %v", e.Op, e.Cause)
}

func (e *ConnLostError) Unwrap() error { return e.Cause }

// Is matches the ErrConnLost sentinel.
func (e *ConnLostError) Is(target error) bool { return target == ErrConnLost }

// RetryPolicy controls ExecRetry: exponential backoff from BaseBackoff,
// doubling per attempt, capped at MaxBackoff, with ±Jitter (a fraction of
// the backoff) of randomization so a herd of retrying clients does not
// reconnect in lockstep. Sleep defaults to time.Sleep; tests substitute a
// fake clock to assert the schedule deterministically.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first; ≤1 disables retries
	BaseBackoff time.Duration // backoff before the first retry
	MaxBackoff  time.Duration // cap on the doubled backoff (0 = no cap)
	Jitter      float64       // fraction of the backoff randomized, e.g. 0.2
	// Seed fixes the jitter PRNG so a backoff schedule is reproducible
	// (tests, deterministic replays). 0 derives a unique per-client seed.
	Seed  int64
	Sleep func(time.Duration)
}

// Backoff returns the pause before retry n (1-based), drawing jitter from
// rng. Each retrying actor owns its rng (JitterRNG) — the old shared
// global math/rand source serialized every backing-off client on one lock
// during exactly the retry storms jitter exists to spread out, and made
// schedules irreproducible under test. A nil rng disables jitter.
func (p RetryPolicy) Backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		d += time.Duration((rng.Float64()*2 - 1) * p.Jitter * float64(d))
		if d < 0 {
			d = 0
		}
	}
	return d
}

// seedCounter de-duplicates same-nanosecond automatic seeds.
var seedCounter atomic.Int64

// JitterRNG builds the policy's private jitter source: seeded from Seed
// when set, unique otherwise.
func (p RetryPolicy) JitterRNG() *rand.Rand {
	seed := p.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() + seedCounter.Add(1)<<32
	}
	return rand.New(rand.NewSource(seed))
}

// Client is a protocol client bound to one database session. A Client is
// used by one goroutine at a time (matching the request/response discipline:
// "After receiving the response of the operation, the customer sends a new
// operation", Sec 4.2).
type Client struct {
	addr     string
	database string
	rtt      time.Duration

	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	broken bool // connection poisoned; only a redial revives the session

	opTimeout time.Duration
	retry     RetryPolicy
	rng       *rand.Rand // this client's private jitter source (lazy)

	trace *TraceContext // when set and obs is on, ops go out as traced frames
}

// Dial connects to addr and starts a session on database.
func Dial(addr, database string) (*Client, error) {
	return DialRTT(addr, database, 0)
}

// DialRTT is Dial with a simulated network round-trip time added to every
// Exec (the latency-injection knob standing in for the paper's 1 GbE LAN).
func DialRTT(addr, database string, rtt time.Duration) (*Client, error) {
	c := &Client{addr: addr, database: database, rtt: rtt, broken: true}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// SetOpTimeout bounds every subsequent Exec: the whole request/response
// exchange must finish within d or the connection is declared lost
// (deadline-based; an expired op poisons the conn because its response
// may still arrive later). 0 disables the bound.
func (c *Client) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// SetRetry installs the policy ExecRetry uses and re-arms the client's
// jitter source so a new Seed takes effect.
func (c *Client) SetRetry(p RetryPolicy) {
	c.retry = p
	c.rng = nil
}

// jitterRNG lazily builds this client's jitter source.
func (c *Client) jitterRNG() *rand.Rand {
	if c.rng == nil {
		c.rng = c.retry.JitterRNG()
	}
	return c.rng
}

// SetTraceContext attaches (or, with nil, detaches) a migration trace
// context. While attached and observability is enabled, every Exec and
// ExecStream goes out as a traced frame so the server-side events carry
// the migration's MTS and span id. Survives redials: the context lives on
// the Client, not the connection.
func (c *Client) SetTraceContext(tc *TraceContext) { c.trace = tc }

// queryFrame picks the plain or traced frame for one outgoing statement,
// encoding the payload into dst (a pooled frame buffer: the connection is
// single-goroutine and writeMsg is synchronous, so the caller releases it
// right after the write). The obs.On() guard keeps the
// disabled-observability cost at one atomic load — no context encoding.
func (c *Client) queryFrame(dst []byte, plain, traced byte, sql string) (byte, []byte) {
	if c.trace != nil && obs.On() {
		return traced, appendTraced(dst, c.trace, sql)
	}
	return plain, append(dst, sql...)
}

// Broken reports whether the connection has been poisoned by a transport
// failure and needs a redial.
func (c *Client) Broken() bool { return c.broken }

// redial (re)establishes the TCP connection and the session. Usable both
// for the first dial and to revive a poisoned client.
func (c *Client) redial() error {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.broken = true
	if err := fault.Inject(faultDial); err != nil {
		if fault.IsConnDrop(err) {
			return &ConnLostError{Op: "dial", Cause: err}
		}
		return err
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	if err := c.startup(c.database); err != nil {
		conn.Close()
		c.conn = nil
		return err
	}
	c.broken = false
	return nil
}

func (c *Client) startup(database string) error {
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := writeMsg(c.bw, MsgStartup, []byte(database)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return err
	}
	switch typ {
	case MsgReady:
		return nil
	case MsgError:
		return &ServerError{Msg: string(payload)}
	}
	return fmt.Errorf("wire: unexpected startup response %q", typ)
}

// Exec sends one statement and waits for its result. A *ServerError return
// means the server processed the request and reported a failure (e.g. a
// serialization abort); a *ConnLostError (errors.Is ErrConnLost) means the
// transport died and the statement's fate is unknown.
func (c *Client) Exec(sql string) (*engine.Result, error) {
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	if c.broken {
		return nil, &ConnLostError{Op: "exec", Cause: errors.New("client not connected")}
	}
	if err := fault.Inject(faultExec); err != nil {
		return nil, c.faulted("exec", err)
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer func() {
			if !c.broken {
				_ = c.conn.SetDeadline(time.Time{})
			}
		}()
	}
	if err := fault.Inject(faultWrite); err != nil {
		return nil, c.faulted("write", err)
	}
	f := getFrameBuf()
	typ, body := c.queryFrame(f.buf, MsgQuery, MsgQueryTraced, sql)
	werr := writeMsg(c.bw, typ, body)
	f.buf = body
	putFrameBuf(f)
	if werr != nil {
		return nil, c.lost("write", werr)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.lost("write", err)
	}
	if err := fault.Inject(faultRead); err != nil {
		return nil, c.faulted("read", err)
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return nil, c.lost("read", err)
	}
	switch typ {
	case MsgResult:
		return DecodeResult(payload)
	case MsgError:
		return nil, &ServerError{Msg: string(payload)}
	}
	// Unknown frame type: the stream is desynchronized, same poisoning
	// rules as a dead peer.
	return nil, c.lost("read", fmt.Errorf("wire: unexpected response type %q", typ))
}

// ExecStream sends one statement as a streaming query and hands each
// response chunk to sink as it arrives, returning the trailer's final
// result. The server assigns contiguous sequence numbers from 0; a gap,
// reorder, or count mismatch poisons the connection like any other
// protocol desynchronization. A sink error also poisons the connection —
// the stream is abandoned with frames still in flight, so the session
// cannot be reused — and is returned (wrapped in the typed loss, so the
// cause stays inspectable via errors.Is/As).
//
// The op timeout, when set, bounds each frame rather than the whole
// stream: a transfer makes progress or dies, however large the dump.
func (c *Client) ExecStream(sql string, sink func(seq uint32, stmts []string) error) (*engine.Result, error) {
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	if c.broken {
		return nil, &ConnLostError{Op: "exec", Cause: errors.New("client not connected")}
	}
	if err := fault.Inject(faultExec); err != nil {
		return nil, c.faulted("exec", err)
	}
	frameDeadline := func() {
		if c.opTimeout > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		}
	}
	frameDeadline()
	defer func() {
		if !c.broken && c.opTimeout > 0 {
			_ = c.conn.SetDeadline(time.Time{})
		}
	}()
	if err := fault.Inject(faultWrite); err != nil {
		return nil, c.faulted("write", err)
	}
	f := getFrameBuf()
	typ, body := c.queryFrame(f.buf, MsgQueryStream, MsgQueryStreamTraced, sql)
	werr := writeMsg(c.bw, typ, body)
	f.buf = body
	putFrameBuf(f)
	if werr != nil {
		return nil, c.lost("write", werr)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.lost("write", err)
	}
	var next uint32
	for {
		if err := fault.Inject(faultRead); err != nil {
			return nil, c.faulted("read", err)
		}
		frameDeadline()
		typ, payload, err := readMsg(c.br)
		if err != nil {
			return nil, c.lost("read", err)
		}
		switch typ {
		case MsgStreamChunk:
			seq, stmts, err := DecodeStreamChunk(payload)
			if err != nil {
				return nil, c.lost("read", err)
			}
			if seq != next {
				return nil, c.lost("read", fmt.Errorf("wire: stream chunk %d arrived, want %d", seq, next))
			}
			next++
			if err := sink(seq, stmts); err != nil {
				return nil, c.lost("read", err)
			}
		case MsgStreamEnd:
			chunks, res, err := DecodeStreamEnd(payload)
			if err != nil {
				return nil, c.lost("read", err)
			}
			if chunks != next {
				return nil, c.lost("read", fmt.Errorf("wire: stream ended after %d chunks, server sent %d", next, chunks))
			}
			return res, nil
		case MsgError:
			// A server error is a clean stream terminator: the protocol
			// is back in sync, no poisoning.
			return nil, &ServerError{Msg: string(payload)}
		default:
			return nil, c.lost("read", fmt.Errorf("wire: unexpected response type %q", typ))
		}
	}
}

// ExecRetry is Exec plus the client's RetryPolicy: transport failures
// (and injected faults) on *idempotent* statements are retried with
// exponential backoff, redialing when the connection was poisoned.
// Non-idempotent statements are never retried — a lost response leaves
// the statement's fate unknown, and replaying e.g. an increment would
// double-apply it; server-reported errors are never retried either.
func (c *Client) ExecRetry(sql string, idempotent bool) (*engine.Result, error) {
	res, err := c.Exec(sql)
	if err == nil || !idempotent || !retryable(err) {
		return res, err
	}
	p := c.retry
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		sleep(p.Backoff(attempt, c.jitterRNG()))
		obsRetries.Inc()
		if c.broken {
			if derr := c.redial(); derr != nil {
				err = derr
				if !retryable(err) {
					return nil, err
				}
				continue
			}
		}
		res, err = c.Exec(sql)
		if err == nil || !retryable(err) {
			return res, err
		}
	}
	return nil, err
}

// retryable reports whether err may be transient: transport failures and
// injected faults, never server-reported statement errors.
func retryable(err error) bool {
	return IsTransportError(err) || fault.IsInjected(err)
}

// Scrape pulls the server process's observability snapshot: its registry
// metrics plus the event-ring tail from since (a Seq bookmark; 0 means
// everything still in the ring), optionally filtered by tenant, capped at
// maxEvents. Follows Exec's transport discipline — op timeout, poisoning
// on desync — because it shares the session's request/response stream.
func (c *Client) Scrape(since uint64, tenant string, maxEvents int) (*obs.RemoteSnapshot, error) {
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	if c.broken {
		return nil, &ConnLostError{Op: "exec", Cause: errors.New("client not connected")}
	}
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer func() {
			if !c.broken {
				_ = c.conn.SetDeadline(time.Time{})
			}
		}()
	}
	if err := writeMsg(c.bw, MsgObsScrape, encodeScrapeReq(since, maxEvents, tenant)); err != nil {
		return nil, c.lost("write", err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.lost("write", err)
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return nil, c.lost("read", err)
	}
	switch typ {
	case MsgObsSnapshot:
		return decodeSnapshot(payload)
	case MsgError:
		return nil, &ServerError{Msg: string(payload)}
	}
	return nil, c.lost("read", fmt.Errorf("wire: unexpected response type %q", typ))
}

// faulted translates an injected error: a conn-drop closes the socket
// and surfaces as the same typed loss a real dead peer would produce;
// other injected errors pass through unchanged.
func (c *Client) faulted(op string, err error) error {
	if fault.IsConnDrop(err) {
		return c.lost(op, err)
	}
	return err
}

// lost poisons the client and returns the typed loss.
func (c *Client) lost(op string, cause error) error {
	c.broken = true
	if c.conn != nil {
		_ = c.conn.Close()
	}
	return &ConnLostError{Op: op, Cause: cause}
}

// Close terminates the session and the connection. The terminate message is
// best-effort: the connection is closed regardless.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	if !c.broken {
		_ = writeMsg(c.bw, MsgTerminate, nil)
		_ = c.bw.Flush()
	}
	return c.conn.Close()
}
