//go:build parityprobe

package tagparity

// Enabled differs in VALUE between the variants — that is the point of the
// pair and must not be reported.
const Enabled = true

// Probe matches the stub exactly: no finding.
func Probe() error { return nil }

// Extra is missing from the !parityprobe stub.
func Extra() {} // want

// Mismatch drifted: the stub takes a string. Reported at the stub's
// declaration in gated_off.go.
func Mismatch(n int) {}

// Hidden is also missing from the stub, but carries a suppression.
//madeusvet:ignore tagparity seeded drift kept to prove the suppression path
func Hidden(x int) {}
