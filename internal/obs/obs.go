// Package obs is the middleware's observability layer: cheap process-wide
// counters, gauges, and bounded histograms in a registry, plus a structured
// event tracer that records the migration lifecycle (Steps 1-4, per-slave
// propagation progress, the switch-over suspension window) as timestamped
// events.
//
// Everything here is stdlib-only and built to stay off the hot path:
//
//   - Counters are sharded across padded cells so concurrent workers do not
//     contend on one cache line; an Add is a single uncontended atomic.
//   - Every mutation first checks one global enable flag (a plain atomic
//     load). With obs disabled the whole layer costs a load and a branch —
//     the same contract as internal/invariant's no-tag Assert, guarded by
//     TestObsDisabledOverhead.
//   - The tracer writes into a fixed-size ring; it never allocates beyond
//     the event's own fields and never blocks.
//
// Instrumentation sites that must build field slices or format strings
// should guard with On() so the argument construction itself is skipped
// when observation is off:
//
//	if obs.On() {
//	    obs.Trace.Emit(tenant, "step3.sample", obs.F("lag", lag))
//	}
//
// Snapshots are exposed three ways: the admin channel's STATS and EVENTS
// commands (internal/core), an optional /debug/madeus HTTP endpoint
// (cmd/madeusd -debug), and the migration Report timeline that
// cmd/benchrunner prints.
package obs

import "sync/atomic"

// enabled gates every mutation in the package. On by default: the whole
// point of the layer is that it is cheap enough to leave on in production;
// SetEnabled(false) exists for overhead experiments and the bench guard.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// On reports whether observation is enabled. Hot call sites use it to skip
// building event fields entirely.
func On() bool { return enabled.Load() }

// SetEnabled turns the whole layer on or off at runtime. Disabled metrics
// keep their accumulated values; they just stop moving.
func SetEnabled(v bool) { enabled.Store(v) }
