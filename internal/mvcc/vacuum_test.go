package mvcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"madeus/internal/storage"
)

func chainLen(tb *Table, k int64) int {
	ch := tb.chain(key(k), false)
	if ch == nil {
		return 0
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return len(ch.versions)
}

func TestVacuumRemovesSupersededVersions(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 0)
	mustCommit(t, t0)
	for i := int64(1); i <= 5; i++ {
		w := m.Begin()
		if ok, err := tb.Update(w, key(1), row(1, i)); err != nil || !ok {
			t.Fatal(err)
		}
		mustCommit(t, w)
	}
	if got := chainLen(tb, 1); got != 6 {
		t.Fatalf("chain has %d versions before vacuum, want 6", got)
	}
	removed := tb.Vacuum(m.Horizon())
	if removed != 5 {
		t.Errorf("removed %d, want 5", removed)
	}
	if got := chainLen(tb, 1); got != 1 {
		t.Errorf("chain has %d versions after vacuum, want 1", got)
	}
	// The survivor is the latest value.
	if r := tb.Get(m.Begin(), key(1)); r == nil || r[1].Int != 5 {
		t.Errorf("visible row after vacuum: %v", r)
	}
}

func TestVacuumRemovesAbortedVersions(t *testing.T) {
	m, tb := testTable(t)
	a := m.Begin()
	mustInsert(t, tb, a, 1, 1)
	a.Abort()
	// Abort undoes its own versions eagerly now, so the chain is already
	// clean and vacuum has nothing left to collect.
	if got := chainLen(tb, 1); got != 0 {
		t.Errorf("chain has %d versions after abort, want 0 (eager undo)", got)
	}
	if removed := tb.Vacuum(m.Horizon()); removed != 0 {
		t.Errorf("removed %d, want 0", removed)
	}
	// Re-insert works afterwards.
	b := m.Begin()
	mustInsert(t, tb, b, 1, 2)
	mustCommit(t, b)
	if r := tb.Get(m.Begin(), key(1)); r == nil || r[1].Int != 2 {
		t.Errorf("got %v", r)
	}
}

func TestVacuumRespectsActiveSnapshotHorizon(t *testing.T) {
	m, tb := testTable(t)
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 10)
	mustCommit(t, t0)

	reader := m.Begin()
	if r := tb.Get(reader, key(1)); r == nil || r[1].Int != 10 {
		t.Fatal("setup")
	}

	w := m.Begin()
	if ok, err := tb.Update(w, key(1), row(1, 20)); err != nil || !ok {
		t.Fatal(err)
	}
	mustCommit(t, w)

	// The old version is superseded AFTER reader's snapshot; the horizon
	// must protect it.
	tb.Vacuum(m.Horizon())
	if r := tb.Get(reader, key(1)); r == nil || r[1].Int != 10 {
		t.Fatalf("active snapshot lost its version: %v", r)
	}
	if _, err := reader.Commit(); err != nil {
		t.Fatal(err)
	}

	// Once the reader is gone, the horizon advances and the version dies.
	if removed := tb.Vacuum(m.Horizon()); removed != 1 {
		t.Errorf("removed %d after reader finished, want 1", removed)
	}
	if r := tb.Get(m.Begin(), key(1)); r == nil || r[1].Int != 20 {
		t.Errorf("got %v", r)
	}
}

func TestVacuumKeepsUncommittedWork(t *testing.T) {
	m, tb := testTable(t)
	w := m.Begin()
	mustInsert(t, tb, w, 1, 1)
	if removed := tb.Vacuum(m.Horizon()); removed != 0 {
		t.Errorf("removed %d versions of an active txn", removed)
	}
	mustCommit(t, w)
	if r := tb.Get(m.Begin(), key(1)); r == nil {
		t.Error("row lost")
	}
}

func TestHorizonTracksOldestActive(t *testing.T) {
	m, tb := testTable(t)
	_ = tb
	t0 := m.Begin()
	mustInsert(t, tb, t0, 1, 1)
	mustCommit(t, t0) // CSN 1
	old := m.Begin()  // snapshot 1
	t1 := m.Begin()
	mustInsert(t, tb, t1, 2, 2)
	mustCommit(t, t1) // CSN 2
	if h := m.Horizon(); h != 1 {
		t.Errorf("Horizon = %d, want 1 (old reader pins it)", h)
	}
	old.Abort()
	if h := m.Horizon(); h != 2 {
		t.Errorf("Horizon = %d, want 2", h)
	}
}

// TestPropertyVacuumPreservesVisibleState: after arbitrary committed
// updates and a vacuum, the visible state for a fresh snapshot is unchanged
// and the version count never grows.
func TestPropertyVacuumPreservesVisibleState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, tb := quickTable(t)
		init := m.Begin()
		for k := int64(0); k < 5; k++ {
			if err := tb.Insert(init, row(k, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := init.Commit(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			w := m.Begin()
			k := rng.Int63n(5)
			switch rng.Intn(3) {
			case 0:
				tb.Update(w, key(k), row(k, rng.Int63n(100))) //nolint:errcheck
			case 1:
				tb.Delete(w, key(k)) //nolint:errcheck
			default:
				tb.Insert(w, row(k, rng.Int63n(100))) //nolint:errcheck
			}
			if rng.Intn(4) == 0 {
				w.Abort()
			} else if _, err := w.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		before := snapshotState(m, tb)
		tb.Vacuum(m.Horizon())
		after := snapshotState(m, tb)
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		// Idempotent: a second vacuum removes nothing.
		return tb.Vacuum(m.Horizon()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func snapshotState(m *Manager, tb *Table) map[int64]int64 {
	txn := m.Begin()
	defer txn.Commit()
	out := make(map[int64]int64)
	tb.Scan(txn, func(r storage.Row) bool {
		out[r[0].Int] = r[1].Int
		return true
	})
	return out
}
