package tpcw

import (
	"context"
	"testing"
	"time"

	"madeus/internal/metrics"
	"madeus/internal/testutil"
)

// TestEBThinkTimerNoLeak: the think-time pause reuses one timer instead of
// allocating a time.After per iteration; cancellation mid-pause must not
// leave the timer goroutine (or anything else) behind.
func TestEBThinkTimerNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := testSession(t)
	scale := Scale{Items: 60, Customers: 60, Authors: 10}
	if err := Load(s, scale); err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	// A long think relative to the deadline guarantees cancellation lands
	// inside the pause, exercising the Stop/drain path.
	eb := &EB{ID: 1, Mix: Shopping, Scale: scale, Think: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if err := eb.Run(ctx, s, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Error("no interactions recorded")
	}
	// Many short iterations: the reused timer must keep firing after
	// Reset (a stuck Reset would hang Run past the context deadline).
	eb2 := &EB{ID: 2, Mix: Shopping, Scale: scale, Think: time.Millisecond}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	done := make(chan error, 1)
	go func() { done <- eb2.Run(ctx2, s, rec) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EB.Run wedged: think timer never fired after Reset")
	}
}
