package analysis

import (
	"go/ast"
	"go/types"
)

// TimerChurn flags time.After calls inside for/range loops (outside
// tests). Each time.After allocates a timer that is only reclaimed when it
// fires — in a hot loop with early select exits (ctx.Done, stop channels)
// the expired-timer backlog grows with iteration count, and under Go's
// pre-1.23 semantics pins memory for the full duration each iteration.
// The fix is one reused time.Timer (NewTimer + Stop/Reset), or a
// time.Ticker for fixed periods; see internal/tpcw/eb.go's think pause.
//
// Calls inside a nested func literal are attributed to that literal, not
// the enclosing loop: the literal may run once, elsewhere, or never.
var TimerChurn = &Analyzer{
	Name: "timerchurn",
	Doc:  "time.After in a loop allocates a timer per iteration; reuse a time.Timer",
	Run:  runTimerChurn,
}

func runTimerChurn(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			reportTimeAfter(pass, body)
			return true
		})
	}
}

// reportTimeAfter flags every time.After call directly inside body,
// descending into nested blocks but not into func literals or nested
// loops (inner loops are visited as loops in their own right, so a call
// there is flagged exactly once).
func reportTimeAfter(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "After" {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || !isTimePkg(pass, pkg) {
				return true
			}
			pass.Reportf(n.Pos(), "time.After inside a loop allocates a timer per iteration; hoist a time.Timer and Reset it")
		}
		return true
	})
}

// isTimePkg reports whether ident names the time package (by import
// resolution when type info is present, by name otherwise).
func isTimePkg(pass *Pass, ident *ast.Ident) bool {
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path() == "time"
			}
			return false
		}
	}
	return ident.Name == "time"
}
