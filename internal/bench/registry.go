package bench

import (
	"fmt"
	"io"
	"sort"

	"madeus/internal/core"
	"madeus/internal/obs"
)

// Experiment is one registered regenerator for a paper figure or table.
type Experiment struct {
	ID   string
	Desc string
	Run  func(cfg Config, w io.Writer) error
}

// Experiments lists every regenerator, sorted by id.
func Experiments() []Experiment {
	exps := []Experiment{
		{"table2", "feature matrix of the four middleware approaches", func(cfg Config, w io.Writer) error {
			Table2().Fprint(w)
			return nil
		}},
		{"fig5", "preliminary: mean response time vs load (light/medium/heavy bands)", func(cfg Config, w io.Writer) error {
			t, err := Fig5(cfg, nil)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"fig6", "migration time by workload and strategy; B-CON N/A at heavy", func(cfg Config, w io.Writer) error {
			t, err := Fig6(cfg, nil)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"fig7", "response-time timeline across a Madeus migration (heavy load)", runTimeline},
		{"fig8", "throughput timeline across a Madeus migration (same run as fig7)", runTimeline},
		{"table3", "database size vs items and EBs", runFig9Table3},
		{"fig9", "Madeus migration time vs database size (same run as table3)", runFig9Table3},
		{"case1", "multi-tenant hot spot: migrate the HEAVY tenant (Figs 10-13)", func(cfg Config, w io.Writer) error {
			res, err := Case1(cfg)
			if err != nil {
				return err
			}
			printMultiTenant(res, w)
			return nil
		}},
		{"case2", "multi-tenant hot spot: migrate the LIGHT tenant (Figs 14-19)", func(cfg Config, w io.Writer) error {
			res, err := Case2(cfg)
			if err != nil {
				return err
			}
			printMultiTenant(res, w)
			return nil
		}},
		{"mixes", "TPC-W mixes compared at medium load (extra, not a paper figure)", func(cfg Config, w io.Writer) error {
			t, err := Mixes(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"ablation-groupcommit", "Madeus with slave group commit disabled", func(cfg Config, w io.Writer) error {
			t, err := AblationGroupCommit(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"convergence", "backpressure ablation: heavy-write migration, pacing off vs on (extra, not a paper figure)", func(cfg Config, w io.Writer) error {
			t, err := Convergence(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"step1", "snapshot transfer ablation: monolithic vs pipelined chunk sweep (extra, not a paper figure)", func(cfg Config, w io.Writer) error {
			t, err := Step1(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"recovery", "crash-recovery ablation: recovery time and replayed WAL bytes vs checkpoint interval (extra, not a paper figure)", func(cfg Config, w io.Writer) error {
			t, err := Recovery(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"ablation-overhead", "middleware worker overhead in normal processing", func(cfg Config, w io.Writer) error {
			t, err := AblationMiddlewareOverhead(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
		{"hotpath", "hot-path sharding ablation: striped MVCC + parse cache vs unsharded baseline (extra, not a paper figure)", func(cfg Config, w io.Writer) error {
			t, err := AblationHotpath(cfg)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

func runTimeline(cfg Config, w io.Writer) error {
	res, err := Figs7and8(cfg)
	if err != nil {
		return err
	}
	res.Table.Fprint(w)
	fmt.Fprintf(w, "  migration report: %s\n", res.Report)
	printMigrationTimeline(res.Report, w)
	printHistoryCurve("tenantA", w)
	fmt.Fprintln(w)
	return nil
}

// printMigrationTimeline renders the event-tracer view of the migration:
// the Step 1-4 spans (with the exact Step-4 suspension window) and the
// periodic lag/debt samples recorded during propagation.
func printMigrationTimeline(rep *core.Report, w io.Writer) {
	if rep == nil || len(rep.Timeline) == 0 {
		return
	}
	fmt.Fprintln(w, "  migration timeline:")
	for _, e := range rep.Timeline {
		fmt.Fprintf(w, "    %s\n", e)
	}
}

// printHistoryCurve renders the middleware's sampled time series for one
// tenant: the same lag/debt/throughput curve the fig7/fig8 tables derive from
// the workload recorder, but as observed by the obs.History sampler. Skipped
// silently when the sampler recorded nothing (obs disabled or run too short).
func printHistoryCurve(tenant string, w io.Writer) {
	samples := obs.Hist.Last(tenant, -1)
	if len(samples) == 0 {
		return
	}
	stats := obs.Summarize(samples)
	fmt.Fprintf(w, "  history curve (%d samples, lag avg %.1f max %d, debt avg %.1f max %d, ops/s avg %.1f max %d):\n",
		len(samples),
		stats.Lag.Avg, stats.Lag.Max,
		stats.Debt.Avg, stats.Debt.Max,
		stats.OpsPerSec.Avg, stats.OpsPerSec.Max)
	t0 := samples[0].At
	for _, s := range samples {
		fmt.Fprintf(w, "    t=%6.1fs lag=%-6d debt=%-8d ops/s=%-8.1f pace=%-10s ssl=%-8d sessions=%d\n",
			s.At.Sub(t0).Seconds(), s.Lag, s.Debt, s.OpsPerSec, s.PaceDelay, s.SSLBytes, s.Sessions)
	}
}

func runFig9Table3(cfg Config, w io.Writer) error {
	t3, f9, err := Fig9Table3(cfg, nil)
	if err != nil {
		return err
	}
	t3.Fprint(w)
	f9.Fprint(w)
	return nil
}

func printMultiTenant(res *MultiTenantResult, w io.Writer) {
	res.Summary.Fprint(w)
	for _, tn := range []string{"tenantA", "tenantB", "tenantC"} {
		if ts, ok := res.Series[tn]; ok {
			ts.Fprint(w)
		}
	}
	fmt.Fprintf(w, "  migration report: %s\n", res.Report)
	printMigrationTimeline(res.Report, w)
	fmt.Fprintln(w)
}

// RunByID executes one experiment.
func RunByID(id string, cfg Config, w io.Writer) error {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg, w)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", id)
}
