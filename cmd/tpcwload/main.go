// Command tpcwload drives the TPC-W workload against a tenant through a
// running madeusd (or directly against a dbnode).
//
//	tpcwload -addr 127.0.0.1:6000 -tenant shop -load -items 1000
//	tpcwload -addr 127.0.0.1:6000 -tenant shop -ebs 70 -mix ordering -duration 60s
//
// It prints a summary and a per-interval time series (response time and
// throughput), which is how the paper's Figures 7-19 are read.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:6000", "madeusd or dbnode address")
		tenant    = flag.String("tenant", "shop", "tenant database")
		load      = flag.Bool("load", false, "create and populate the schema, then exit")
		items     = flag.Int("items", 1000, "item count (load and workload addressing)")
		customers = flag.Int("customers", 0, "customer count (0 derives from items)")
		ebs       = flag.Int("ebs", 10, "emulated browsers")
		mixName   = flag.String("mix", "ordering", "browsing | shopping | ordering")
		think     = flag.Duration("think", 100*time.Millisecond, "EB think time")
		duration  = flag.Duration("duration", 30*time.Second, "workload duration")
		interval  = flag.Duration("interval", time.Second, "series bucket width")
	)
	flag.Parse()

	scale := tpcw.Scale{Items: *items, Customers: *customers, Authors: *items / 4}
	if scale.Customers == 0 {
		scale.Customers = *items * 3
	}
	if scale.Authors < 5 {
		scale.Authors = 5
	}

	if *load {
		c, err := wire.Dial(*addr, *tenant)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if err := tpcw.Load(c, scale); err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s in %v\n", scale, time.Since(start).Round(time.Millisecond))
		return
	}

	var mix tpcw.Mix
	switch *mixName {
	case "browsing":
		mix = tpcw.Browsing
	case "shopping":
		mix = tpcw.Shopping
	case "ordering":
		mix = tpcw.Ordering
	default:
		fatal(fmt.Errorf("unknown mix %q", *mixName))
	}

	fmt.Printf("running %d EBs (%s mix, think %v) against %s/%s for %v\n",
		*ebs, mix.Name, *think, *addr, *tenant, *duration)
	rec := metrics.NewRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	err := tpcw.RunFleet(ctx, *ebs, mix, scale, *think, func() (tpcw.Execer, error) {
		return wire.Dial(*addr, *tenant)
	}, rec)
	if err != nil {
		fatal(err)
	}

	fmt.Println("\nsummary:", rec.Summarize())
	fmt.Printf("\n%-8s %-12s %-10s\n", "t", "mean RT", "tput/s")
	for _, b := range rec.Series(*interval) {
		fmt.Printf("%-8s %-12s %-10.1f\n",
			b.Start.Round(time.Millisecond), b.Mean.Round(time.Microsecond), b.Throughput)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpcwload:", err)
	os.Exit(1)
}
