//go:build faultinject

package fault

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/obs"
)

// Enabled reports that failpoints are compiled in: sites consult the
// registry and armed policies fire.
const Enabled = true

// obsFaultHits counts policy firings; it only exists (and registers) in
// faultinject builds, so production metric listings never mention it.
var obsFaultHits = obs.NewCounter("fault.hits", "failpoints fired (faultinject builds only)")

var (
	// armed is the fast path: one atomic load decides whether Inject
	// does any work at all. True iff at least one site is registered.
	armed atomic.Bool

	mu    sync.Mutex
	sites = make(map[string]*siteState)
	rng   = rand.New(rand.NewSource(1))

	// fired counts policy firings across all sites (matches the obs
	// counter but readable without obs snapshots).
	fired atomic.Uint64
)

type siteState struct {
	policy   Policy
	hits     uint64 // Inject calls that reached this armed site
	fired    uint64 // hits on which the policy actually triggered
	skipped  int
	release  chan struct{} // closed to free goroutines parked by Hang
	released bool
}

// Inject consults the registry for site. It returns nil when the site is
// unarmed; otherwise it applies the site's Policy: possibly skipping,
// counting down Times, rolling the seeded PRNG for P, sleeping Delay,
// parking on Hang, and finally returning the policy's error (ErrInjected
// by default, a *DropError for Drop, nil for pure delay/hang).
func Inject(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	s := sites[site]
	if s == nil {
		mu.Unlock()
		return nil
	}
	s.hits++
	p := s.policy
	if s.skipped < p.Skip {
		s.skipped++
		mu.Unlock()
		return nil
	}
	if p.Times > 0 && s.fired >= uint64(p.Times) {
		mu.Unlock()
		return nil
	}
	if p.P > 0 && p.P < 1 && rng.Float64() >= p.P {
		mu.Unlock()
		return nil
	}
	s.fired++
	release := s.release
	mu.Unlock()

	fired.Add(1)
	obsFaultHits.Add(1)
	if obs.On() {
		obs.Trace.Emit("", "fault.fired", obs.F("site", site))
	}

	if p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.Hang {
		<-release
	}
	if p.Drop {
		return &DropError{Site: site}
	}
	if p.Err != nil {
		return p.Err
	}
	if p.Delay > 0 || p.Hang {
		return nil
	}
	return ErrInjected
}

// Enable arms site with policy p, replacing any previous policy and
// resetting the site's counters. Goroutines parked by a previous Hang
// policy at this site are released.
func Enable(site string, p Policy) {
	mu.Lock()
	defer mu.Unlock()
	if old := sites[site]; old != nil {
		old.releaseLocked()
	}
	sites[site] = &siteState{policy: p, release: make(chan struct{})}
	armed.Store(true)
}

// Disable disarms site, releasing any goroutines its Hang policy parked.
// Unknown sites are ignored.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[site]; s != nil {
		s.releaseLocked()
		delete(sites, site)
	}
	if len(sites) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every site and releases all parked goroutines; tests call
// it in cleanup so one scenario's faults never leak into the next.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sites {
		s.releaseLocked()
	}
	sites = make(map[string]*siteState)
	armed.Store(false)
}

// Release frees goroutines parked by site's Hang policy without disarming
// it (the partition heals; the site keeps counting hits).
func Release(site string) {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[site]; s != nil {
		s.releaseLocked()
	}
}

func (s *siteState) releaseLocked() {
	if !s.released {
		s.released = true
		close(s.release)
	}
}

// Seed re-seeds the PRNG behind probabilistic policies, making soak runs
// reproducible.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// SiteHits reports how many Inject calls reached site while it was armed
// (whether or not the policy fired).
func SiteHits(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[site]; s != nil {
		return s.hits
	}
	return 0
}

// SiteFired reports how many times site's policy actually triggered.
func SiteFired(site string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[site]; s != nil {
		return s.fired
	}
	return 0
}

// Hits reports total policy firings across all sites since process start.
func Hits() uint64 { return fired.Load() }

// List reports the armed site names, sorted.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
