// Command madeusvet runs the repo's custom concurrency analyzers over the
// tree and fails loudly on findings:
//
//	go run ./cmd/madeusvet ./...
//
// Output is one line per finding, `file:line:col: [rule] message`, and the
// exit status is 1 when anything fired (2 on load errors), so the command
// slots straight into scripts/verify.sh and CI. Suppress an intentional
// deviation at its site with `//madeusvet:ignore rule reason`. The analyzer
// set and the discipline each rule enforces are documented in
// internal/analysis and DESIGN.md ("Concurrency invariants & lock
// hierarchy").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"madeus/internal/analysis"
)

func main() {
	listRules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Parse()

	if *listRules {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madeusvet:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	findings := 0
	for _, pkg := range pkgs {
		if pkg.TypeErr != nil {
			fmt.Fprintf(os.Stderr, "madeusvet: note: %s type-checked partially: %v\n", pkg.Path, pkg.TypeErr)
		}
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "madeusvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
