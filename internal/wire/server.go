package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/obs"
)

// Process-wide wire observability, aggregated over every server in the
// process (middleware listener and in-process nodes alike).
var (
	obsActiveConns = obs.NewGauge("wire.conns.active", "sessions currently open")
	obsConnsTotal  = obs.NewCounter("wire.conns.total", "sessions accepted")
	obsOps         = obs.NewCounter("wire.ops", "query messages served")
	obsBytesIn     = obs.NewCounter("wire.bytes.in", "request payload bytes received")
	obsBytesOut    = obs.NewCounter("wire.bytes.out", "response payload bytes sent")
	obsOpLatency   = obs.NewHistogram("wire.op.latency", "server-side per-operation latency", obs.DurationBuckets())
	obsRetries     = obs.NewCounter("wire.retries", "client-side op retries after transport failures")
	obsStreamOps   = obs.NewCounter("wire.stream.ops", "streaming queries served")
	obsStreamChunk = obs.NewCounter("wire.stream.chunks", "stream chunk frames sent")
	obsScrapes     = obs.NewCounter("wire.scrapes", "remote observability snapshots served")
)

// Trace event names for served traced operations.
const (
	obsEvWireExec   = "wire.exec"
	obsEvWireStream = "wire.stream"
)

// faultServeOp is the server-side per-op failpoint: a drop policy hangs
// up mid-conversation (the client sees the peer vanish); an error policy
// answers the query with a server error.
const faultServeOp = "wire.serve.op"

// Conn is one server-side session: what a connected client can do.
// *engine.Session satisfies it.
type Conn interface {
	Exec(sql string) (*engine.Result, error)
	Close()
}

// StreamConn is the optional streaming capability of a Conn: ExecStream
// runs sql, handing bulk payload to emit in bounded chunks before the
// final result. handled=false means sql has no streaming form and the
// server answers through plain Exec instead. Sessions without this
// capability (e.g. middleware worker sessions) still accept
// MsgQueryStream — they just answer with a chunkless trailer.
type StreamConn interface {
	ExecStream(sql string, emit func(stmts []string) error) (res *engine.Result, handled bool, err error)
}

// Handler opens a session when a client's startup message arrives.
type Handler interface {
	Connect(database string) (Conn, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(database string) (Conn, error)

// Connect calls f.
func (f HandlerFunc) Connect(database string) (Conn, error) { return f(database) }

// Server accepts protocol connections and drives sessions.
type Server struct {
	ln      net.Listener
	handler Handler

	// scope is the observability identity this server emits traced-query
	// events into and answers MsgObsScrape from. Defaults to the process
	// scope; cluster tests running several "nodes" in one process install
	// private scopes so each node's timeline stays distinct. An atomic
	// pointer because SetScope races with the accept loop already serving.
	scope atomic.Pointer[obs.Scope]

	mu     sync.Mutex //madeusvet:lockrank wire-server 8
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.scope.Store(obs.Process())
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetScope replaces the server's observability scope (nil restores the
// process scope). Safe while serving.
func (s *Server) SetScope(sc *obs.Scope) {
	if sc == nil {
		sc = obs.Process()
	}
	s.scope.Store(sc)
}

// Scope returns the server's current observability scope.
func (s *Server) Scope() *obs.Scope { return s.scope.Load() }

// traceOp stamps one served traced operation into the scope's event ring.
// tc == nil (a plain frame) or disabled obs is a no-op; the latter guard
// keeps the per-op cost at one atomic load.
func (s *Server) traceOp(tc *TraceContext, name string, dur time.Duration, err error) {
	if tc == nil || !obs.On() {
		return
	}
	fields := []obs.Field{obs.F("mts", tc.MTS), obs.F("span", tc.Span)}
	if err != nil {
		fields = append(fields, obs.F("err", err))
	}
	//madeusvet:ignore obsname name is forwarded verbatim; both call sites pass the obsEvWire* package consts
	s.scope.Load().Tracer.EmitDur(tc.Tenant, name, dur, fields...)
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Startup.
	typ, payload, err := readMsg(br)
	if err != nil || typ != MsgStartup {
		return
	}
	sess, err := s.handler.Connect(string(payload))
	if err != nil {
		// Best-effort rejection notice; the connection closes either way.
		_ = writeMsg(bw, MsgError, []byte(err.Error()))
		_ = bw.Flush()
		return
	}
	defer sess.Close()
	if err := writeMsg(bw, MsgReady, nil); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	obsConnsTotal.Inc()
	obsActiveConns.Inc()
	defer obsActiveConns.Dec()

	for {
		typ, payload, err := readMsg(br)
		if err != nil {
			return // client went away
		}
		switch typ {
		case MsgQuery, MsgQueryTraced:
			if ferr := fault.Inject(faultServeOp); ferr != nil {
				if fault.IsConnDrop(ferr) {
					return // vanish mid-conversation
				}
				_ = writeMsg(bw, MsgError, []byte(ferr.Error()))
				if bw.Flush() != nil {
					return
				}
				continue
			}
			obsOps.Inc()
			obsBytesIn.Add(uint64(len(payload) + msgHeaderLen))
			sql := string(payload)
			var tc *TraceContext
			if typ == MsgQueryTraced {
				ctx, q, derr := decodeTraced(payload)
				if derr != nil {
					// A malformed trace prefix desynchronizes the frame's
					// meaning; hang up like any protocol violation.
					_ = writeMsg(bw, MsgError, []byte(derr.Error()))
					_ = bw.Flush()
					return
				}
				tc, sql = &ctx, q
			}
			start := time.Now()
			res, err := sess.Exec(sql)
			dur := time.Since(start)
			obsOpLatency.ObserveDuration(dur)
			s.traceOp(tc, obsEvWireExec, dur, err)
			if err != nil {
				out := []byte(err.Error())
				obsBytesOut.Add(uint64(len(out) + msgHeaderLen))
				if writeMsg(bw, MsgError, out) != nil {
					return
				}
			} else {
				f := getFrameBuf()
				f.buf = appendResult(f.buf, res)
				obsBytesOut.Add(uint64(len(f.buf) + msgHeaderLen))
				werr := writeMsg(bw, MsgResult, f.buf)
				putFrameBuf(f)
				if werr != nil {
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case MsgQueryStream, MsgQueryStreamTraced:
			if ferr := fault.Inject(faultServeOp); ferr != nil {
				if fault.IsConnDrop(ferr) {
					return // vanish mid-conversation
				}
				_ = writeMsg(bw, MsgError, []byte(ferr.Error()))
				if bw.Flush() != nil {
					return
				}
				continue
			}
			obsOps.Inc()
			obsStreamOps.Inc()
			obsBytesIn.Add(uint64(len(payload) + msgHeaderLen))
			sql := string(payload)
			var tc *TraceContext
			if typ == MsgQueryStreamTraced {
				ctx, q, derr := decodeTraced(payload)
				if derr != nil {
					_ = writeMsg(bw, MsgError, []byte(derr.Error()))
					_ = bw.Flush()
					return
				}
				tc, sql = &ctx, q
			}
			start := time.Now()
			var chunks uint32
			var res *engine.Result
			var err error
			handled := false
			if sc, ok := sess.(StreamConn); ok {
				// Each chunk frame is flushed immediately so the client's
				// restore pipeline overlaps the ongoing scan; a write
				// failure surfaces through ExecStream's emit error and
				// ends the session below.
				res, handled, err = sc.ExecStream(sql, func(stmts []string) error {
					f := getFrameBuf()
					f.buf = appendStreamChunk(f.buf, chunks, stmts)
					chunks++
					obsStreamChunk.Inc()
					obsBytesOut.Add(uint64(len(f.buf) + msgHeaderLen))
					werr := writeMsg(bw, MsgStreamChunk, f.buf)
					putFrameBuf(f)
					if werr != nil {
						return werr
					}
					return bw.Flush()
				})
			}
			if !handled && err == nil {
				res, err = sess.Exec(sql)
			}
			dur := time.Since(start)
			obsOpLatency.ObserveDuration(dur)
			s.traceOp(tc, obsEvWireStream, dur, err)
			if err != nil {
				// MsgError is a valid stream terminator at any point; if
				// the failure was the transport itself this write fails
				// too and the session ends.
				out := []byte(err.Error())
				obsBytesOut.Add(uint64(len(out) + msgHeaderLen))
				if writeMsg(bw, MsgError, out) != nil {
					return
				}
			} else {
				f := getFrameBuf()
				f.buf = appendStreamEnd(f.buf, chunks, res)
				obsBytesOut.Add(uint64(len(f.buf) + msgHeaderLen))
				werr := writeMsg(bw, MsgStreamEnd, f.buf)
				putFrameBuf(f)
				if werr != nil {
					return
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case MsgObsScrape:
			since, maxEvents, tenant, derr := decodeScrapeReq(payload)
			if derr != nil {
				_ = writeMsg(bw, MsgError, []byte(derr.Error()))
				_ = bw.Flush()
				return
			}
			obsScrapes.Inc()
			snap := s.scope.Load().Snapshot(since, tenant, maxEvents)
			body, merr := encodeSnapshot(snap)
			var err error
			if merr != nil {
				body = []byte(merr.Error())
				err = writeMsg(bw, MsgError, body)
			} else {
				err = writeMsg(bw, MsgObsSnapshot, body)
			}
			obsBytesOut.Add(uint64(len(body) + msgHeaderLen))
			if err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case MsgTerminate:
			return
		default:
			// Best-effort protocol error before hanging up.
			_ = writeMsg(bw, MsgError, []byte("wire: unexpected message type"))
			_ = bw.Flush()
			return
		}
	}
}

// sessionConn adapts *engine.Session (whose Close returns nothing) to Conn.
// engine.Session already matches; this var asserts it.
var _ Conn = (*engine.Session)(nil)

// Engine sessions are the streaming-capable backend (DUMP STREAM).
var _ StreamConn = (*engine.Session)(nil)

// EngineHandler serves sessions straight from an engine (the normal DBMS
// node configuration).
func EngineHandler(e *engine.Engine) Handler {
	return HandlerFunc(func(db string) (Conn, error) {
		return e.NewSession(db)
	})
}

// IsTransportError distinguishes connection failures from server-reported
// errors.
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return false
	}
	return errors.Is(err, ErrConnLost) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || isNetError(err)
}

func isNetError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne)
}
