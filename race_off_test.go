//go:build !race

package madeus

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
