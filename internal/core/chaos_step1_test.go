//go:build faultinject

package core

// Pipelined Step-1 backpressure under chaos: a destination whose appliers
// are artificially slowed must throttle the dump stage through the bounded
// queues and the flow transfer budget — peak resident transfer bytes stay
// under the configured cap and the migration still completes. Run with:
// go test -tags faultinject -race .

import (
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/flow"
)

func TestStep1SlowDestinationBackpressure(t *testing.T) {
	t.Cleanup(fault.Reset)
	const capBytes = 4096
	rig := newFlowRig(t, Options{Flow: flow.Config{MaxTransferBytes: capBytes}},
		engine.Options{DumpBatch: 5}, engine.Options{DumpBatch: 5})
	rig.provision(t, "a", 300)
	tn, _ := rig.mw.Tenant("a")

	// Writers keep the source busy while every chunk apply on the slave
	// drags its feet.
	const writers = 2
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 3*time.Millisecond, stop, done)
	}
	time.Sleep(30 * time.Millisecond)

	fault.Enable(faultStep1Restore, fault.Policy{Delay: 2 * time.Millisecond, Times: 100})
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:        Madeus,
		ChunkStatements: 2,
	})
	fault.Reset()
	if err != nil {
		t.Fatalf("migration under backpressure: %v", err)
	}
	if rep.Chunks < 10 {
		t.Errorf("Chunks = %d, want a real stream for 300 rows at DumpBatch 5", rep.Chunks)
	}
	if rep.PeakTransferBytes <= 0 || rep.PeakTransferBytes > capBytes {
		t.Errorf("PeakTransferBytes = %d, want in (0, %d]", rep.PeakTransferBytes, capBytes)
	}
	if flow.TransferBytes() != 0 {
		t.Errorf("flow.transfer.bytes gauge = %d after migration, want 0", flow.TransferBytes())
	}

	close(stop)
	total := 0
	for w := 0; w < writers; w++ {
		total += <-done
	}
	node, _ := tn.Node()
	if node.BackendName() != "node1" {
		t.Errorf("tenant on %s, want node1", node.BackendName())
	}
	if got, want := sumBal(t, node, "a"), 300*100+total; got != want {
		t.Errorf("final balance sum = %d, want %d", got, want)
	}
}
