// Package simlat provides simulated latencies for the cost model.
//
// The kernel this reproduction typically runs on has a coarse timer tick:
// time.Sleep rounds up to roughly a millisecond regardless of the requested
// duration. Simulated CPU costs (hundreds of microseconds per statement)
// therefore busy-wait — which is also the honest model: a statement's CPU
// cost occupies the core, while an fsync (milliseconds) blocks without
// consuming CPU and may sleep.
package simlat

import "time"

// sleepFloor is the duration above which time.Sleep is accurate enough.
const sleepFloor = 2 * time.Millisecond

// CPU burns approximately d of CPU time (busy wait). Use it for costs that
// model computation.
func CPU(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// IO blocks for approximately d without consuming CPU where possible. Below
// the platform's sleep resolution it falls back to a busy wait so that
// short I/O latencies aren't silently inflated to a timer tick.
func IO(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= sleepFloor {
		time.Sleep(d)
		return
	}
	CPU(d)
}
