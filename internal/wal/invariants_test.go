//go:build invariants

package wal

import (
	"sync"
	"testing"
	"time"

	"madeus/internal/invariant"
)

// TestInvariantsExercised proves the tag-gated assertions in this package
// actually run: Append's LSN-monotonicity check, the committer's batch and
// fsync-accounting checks, and serial mode's noteBatch check all bump the
// invariant counter.
func TestInvariantsExercised(t *testing.T) {
	invariant.Reset()

	l := New(Options{Mode: GroupCommit, RetainRecords: 16})
	for i := 0; i < 8; i++ {
		l.Append(Record{TxnID: uint64(i), Kind: RecInsert, DB: "db", Table: "t"})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	l.Close()

	s := New(Options{Mode: SerialCommit, SyncDelay: time.Microsecond})
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if n := invariant.Count(); n == 0 {
		t.Fatal("no invariant assertions were evaluated; instrumentation is dead")
	} else {
		t.Logf("evaluated %d assertions", n)
	}
}

// TestLSNMonotonicViolationPanics proves the assertion is live, not just
// counted: a doctored retained prefix with a future LSN must panic.
func TestLSNMonotonicViolationPanics(t *testing.T) {
	l := New(Options{Mode: GroupCommit, RetainRecords: 4})
	defer l.Close()
	l.mu.Lock()
	l.retained = append(l.retained, Record{LSN: 1 << 40})
	l.mu.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("expected the LSN monotonicity assertion to panic")
		}
	}()
	l.Append(Record{Kind: RecInsert})
}
