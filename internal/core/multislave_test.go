package core

import (
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/wal"
)

func TestMigrateWithBackupSlave(t *testing.T) {
	rig := newRig(t, 3, engine.Options{})
	rig.provision(t, "a", 60)
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy: Madeus,
		Backups:  []string{"node2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dest != "node1" {
		t.Errorf("Dest = %s, want node1 (primary healthy)", rep.Dest)
	}
	if len(rep.Discarded) != 0 {
		t.Errorf("Discarded = %v", rep.Discarded)
	}
	// The extra synchronized copy was dropped after switch-over.
	if _, ok := rig.nodes[2].Engine.Database("a"); ok {
		t.Error("backup copy left behind on node2")
	}
	c := rig.connect(t, "a")
	defer c.Close()
	res, err := c.Exec("SELECT COUNT(*) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 60 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestBackupErrors(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 10)
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Backups: []string{"ghost"}}); err == nil {
		t.Error("unknown backup: want error")
	}
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Backups: []string{"node0"}}); err == nil {
		t.Error("backup == source: want error")
	}
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Backups: []string{"node1"}}); err == nil {
		t.Error("backup == dest: want error")
	}
}

// TestPrimarySlaveFailurePromotesBackup kills the primary destination
// mid-propagation; the migration must finish on the backup (Sec 4.2).
func TestPrimarySlaveFailurePromotesBackup(t *testing.T) {
	rig := newRig(t, 3, engine.Options{
		WAL: wal.Options{SyncDelay: 2 * time.Millisecond, Mode: wal.GroupCommit},
	})
	rig.provision(t, "a", 120)

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 5*time.Millisecond, stop, done)
	}
	time.Sleep(50 * time.Millisecond)

	// Kill node1 (the primary destination) shortly after the migration
	// starts, while syncsets are propagating.
	go func() {
		time.Sleep(150 * time.Millisecond)
		rig.nodes[1].Close()
	}()
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy: Madeus,
		Backups:  []string{"node2"},
	})
	close(stop)
	for w := 0; w < writers; w++ {
		<-done
	}
	if err != nil {
		t.Fatalf("migration should survive primary slave failure: %v", err)
	}
	if rep.Dest != "node2" {
		t.Errorf("Dest = %s, want node2 (promoted backup)", rep.Dest)
	}
	found := false
	for _, d := range rep.Discarded {
		if d == "node1" {
			found = true
		}
	}
	if !found {
		t.Errorf("Discarded = %v, want node1 listed", rep.Discarded)
	}
	// The tenant answers on node2.
	tn, _ := rig.mw.Tenant("a")
	node, _ := tn.Node()
	if node.BackendName() != "node2" {
		t.Errorf("tenant on %s", node.BackendName())
	}
	c := rig.connect(t, "a")
	defer c.Close()
	if _, err := c.Exec("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatalf("tenant unusable after promotion: %v", err)
	}
}

// TestBackupSlaveFailureContinuesOnPrimary kills the BACKUP mid-migration;
// the migration must finish on the primary.
func TestBackupSlaveFailureContinuesOnPrimary(t *testing.T) {
	rig := newRig(t, 3, engine.Options{
		WAL: wal.Options{SyncDelay: 2 * time.Millisecond, Mode: wal.GroupCommit},
	})
	rig.provision(t, "a", 120)

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 5*time.Millisecond, stop, done)
	}
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(150 * time.Millisecond)
		rig.nodes[2].Close() // kill the backup
	}()
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy: Madeus,
		Backups:  []string{"node2"},
	})
	close(stop)
	for w := 0; w < writers; w++ {
		<-done
	}
	if err != nil {
		t.Fatalf("migration should survive backup failure: %v", err)
	}
	if rep.Dest != "node1" {
		t.Errorf("Dest = %s, want node1", rep.Dest)
	}
}

// TestIndexesSurviveMigration: the dump carries CREATE INDEX statements, so
// the slave is rebuilt with its indexes (Sec 5.5: restoring "not only
// inserts data but also ... creates indexes").
func TestIndexesSurviveMigration(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 40)
	c := rig.connect(t, "a")
	mustExecAll(t, c, "CREATE INDEX acct_bal ON acct (bal)")
	c.Close()

	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatal(err)
	}
	c2 := rig.connect(t, "a")
	defer c2.Close()
	res, err := c2.Exec("SELECT COUNT(*) FROM acct WHERE bal = 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 40 {
		t.Errorf("indexed count on slave = %v", res.Rows[0][0])
	}
	// The index DDL survives in the destination's dump.
	dump := nodeDump(t, rig.nodes[1], "a")
	found := false
	for _, line := range dump {
		if line == "CREATE INDEX acct_bal ON acct (bal)" {
			found = true
		}
	}
	if !found {
		t.Errorf("slave dump missing index DDL: %v", dump[:2])
	}
}
