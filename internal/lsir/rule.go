package lsir

import (
	"fmt"
	"sort"

	"madeus/internal/invariant"
)

// Schedule is a candidate slave schedule: a total order over syncset
// operations. (Operations the slave executes concurrently appear in some
// serialization order here; the LSIR only constrains specific pairs, so any
// serialization of a rule-respecting concurrent execution checks out.)
type Schedule struct {
	Ops []Op
}

// CheckLSIR verifies that schedule s over the syncsets of master history h
// satisfies Definition 3:
//
//	(1-a) c_i^m < r_{j,1}^m  ⇒  c_i^s < r_{j,1}^s
//	(1-b) r_{j,1}^m < c_i^m  ⇒  r_{j,1}^s < c_i^s
//	(2)   intra-transaction write order is preserved
//
// plus completeness: the schedule contains exactly the ℱ-mapped operations.
// It returns nil when the schedule is LSIR-valid.
func CheckLSIR(h History, s Schedule) error {
	sets := MapHistory(h)

	// Completeness / per-transaction op sequence equality.
	wantPerTxn := make(map[int][]Op)
	for _, ss := range sets {
		wantPerTxn[ss.Txn] = ss.Ops
	}
	gotPerTxn := make(map[int][]Op)
	for _, op := range s.Ops {
		gotPerTxn[op.Txn] = append(gotPerTxn[op.Txn], op)
	}
	if len(gotPerTxn) != len(wantPerTxn) {
		return fmt.Errorf("lsir: schedule covers %d transactions, want %d", len(gotPerTxn), len(wantPerTxn))
	}
	for txn, want := range wantPerTxn {
		got := gotPerTxn[txn]
		if len(got) != len(want) {
			return fmt.Errorf("lsir: txn %d has %d ops in schedule, want %d", txn, len(got), len(want))
		}
		for i := range want {
			// Rule (2) — and the FIFO syncset buffer in general —
			// requires each transaction's preserved ops in master
			// order.
			if got[i].Kind != want[i].Kind || got[i].Item != want[i].Item {
				return fmt.Errorf("lsir: txn %d op %d is %v, want %v (rule 2 / FIFO order)", txn, i, got[i], want[i])
			}
		}
	}

	// Positions of first reads and commits in master history and
	// schedule.
	type pos struct{ firstRead, commit int }
	master := make(map[int]pos)
	for _, ss := range sets {
		master[ss.Txn] = pos{firstRead: -1, commit: -1}
	}
	mark := func(m map[int]pos, ops []Op, onlyMapped map[int]pos) {
		seenRead := make(map[int]bool)
		for i, op := range ops {
			if _, ok := onlyMapped[op.Txn]; !ok {
				continue
			}
			p := m[op.Txn]
			switch op.Kind {
			case OpRead:
				if !seenRead[op.Txn] {
					seenRead[op.Txn] = true
					p.firstRead = i
				}
			case OpCommit:
				p.commit = i
			}
			m[op.Txn] = p
		}
	}
	mark(master, h.Ops, master)
	sched := make(map[int]pos)
	for txn := range master {
		sched[txn] = pos{firstRead: -1, commit: -1}
	}
	mark(sched, s.Ops, sched)

	// Rules (1-a) and (1-b): for every commit/first-read pair, the
	// master's relative order must be preserved.
	for i, pi := range master {
		for j, pj := range master {
			if i == j || pi.commit < 0 || pj.firstRead < 0 {
				continue
			}
			si, sj := sched[i], sched[j]
			if pi.commit < pj.firstRead && !(si.commit < sj.firstRead) {
				return fmt.Errorf("lsir: rule (1-a) violated: c%d < r%d,1 in master but not in schedule", i, j)
			}
			if pj.firstRead < pi.commit && !(sj.firstRead < si.commit) {
				return fmt.Errorf("lsir: rule (1-b) violated: r%d,1 < c%d in master but not in schedule", j, i)
			}
		}
	}
	return nil
}

// MadeusSchedule builds the concrete slave schedule the Madeus conductor
// and players produce (Algorithms 4 and 5): syncsets are grouped by STS;
// for each group, first reads are propagated (concurrently — here in txn
// order), then the groups' writes, then every pending commit whose ETS
// precedes the next group's STS (Equation 1), which is the batch that group
// commits on the slave.
func MadeusSchedule(sets []Syncset) Schedule {
	bySTS := make(map[int][]Syncset)
	var stsList []int
	for _, ss := range sets {
		if _, ok := bySTS[ss.STS]; !ok {
			stsList = append(stsList, ss.STS)
		}
		bySTS[ss.STS] = append(bySTS[ss.STS], ss)
	}
	sort.Ints(stsList)

	var out []Op
	var pending []Syncset // first read + writes emitted, commit pending
	flushCommits := func(bound int) {
		// Emit pending commits with ETS < bound, in ETS order (they
		// form one concurrent group-commit batch on the slave).
		sort.Slice(pending, func(i, j int) bool { return pending[i].ETS < pending[j].ETS })
		rest := pending[:0]
		for _, ss := range pending {
			if ss.ETS < bound {
				out = append(out, Op{Txn: ss.Txn, Kind: OpCommit})
			} else {
				rest = append(rest, ss)
			}
		}
		pending = rest
	}
	for gi, sts := range stsList {
		group := bySTS[sts]
		// Concurrent first reads of the group.
		for _, ss := range group {
			if fr := ss.FirstRead(); fr != nil {
				out = append(out, *fr)
			}
		}
		// Their writes (players propagate autonomously, FIFO per txn).
		for _, ss := range group {
			out = append(out, ss.Writes()...)
		}
		pending = append(pending, group...)
		// The next SLC bounds which commits may propagate (Eq. 1).
		bound := int(^uint(0) >> 1) // +inf on the last group
		if gi+1 < len(stsList) {
			bound = stsList[gi+1]
		}
		flushCommits(bound)
	}
	flushCommits(int(^uint(0) >> 1))
	// The conductor/player schedule must itself be well-formed: every
	// syncset appears as its exact FIFO op sequence with the commit last
	// (invariants builds re-verify this on every schedule built).
	invariant.Check(func() error { return checkScheduleOrdering(sets, out) })
	return Schedule{Ops: out}
}

// checkScheduleOrdering verifies that out contains, for each syncset, its
// preserved operations as an exact subsequence in syncset (FIFO) order, with
// the transaction's commit as its final operation, and nothing else.
func checkScheduleOrdering(sets []Syncset, out []Op) error {
	perTxn := make(map[int][]Op)
	for _, op := range out {
		perTxn[op.Txn] = append(perTxn[op.Txn], op)
	}
	for _, ss := range sets {
		got := perTxn[ss.Txn]
		if len(got) != len(ss.Ops) {
			return fmt.Errorf("lsir: schedule has %d ops for txn %d, syncset has %d", len(got), ss.Txn, len(ss.Ops))
		}
		for i, want := range ss.Ops {
			if got[i].Kind != want.Kind || got[i].Item != want.Item {
				return fmt.Errorf("lsir: txn %d op %d scheduled as %v, syncset order says %v", ss.Txn, i, got[i], want)
			}
		}
		if n := len(got); n > 0 && got[n-1].Kind != OpCommit {
			return fmt.Errorf("lsir: txn %d schedule does not end with its commit", ss.Txn)
		}
		delete(perTxn, ss.Txn)
	}
	for txn := range perTxn {
		return fmt.Errorf("lsir: schedule contains ops for unknown txn %d", txn)
	}
	return nil
}

// CommitBatches reports the group-commit batches the Madeus schedule
// produces: for each STS step, the number of commits propagated
// concurrently. Used to quantify the group-commit advantage (Sec 4.1).
func CommitBatches(sets []Syncset) []int {
	bySTS := make(map[int]int)
	var stsList []int
	for _, ss := range sets {
		if _, ok := bySTS[ss.STS]; !ok {
			stsList = append(stsList, ss.STS)
		}
		bySTS[ss.STS]++
	}
	sort.Ints(stsList)

	var batches []int
	pending := 0
	etss := make([]int, 0, len(sets))
	for _, ss := range sets {
		etss = append(etss, ss.ETS)
	}
	sort.Ints(etss)
	ei := 0
	for gi, sts := range stsList {
		pending += bySTS[sts]
		bound := int(^uint(0) >> 1)
		if gi+1 < len(stsList) {
			bound = stsList[gi+1]
		}
		n := 0
		for ei < len(etss) && etss[ei] < bound {
			ei++
			n++
		}
		if n > 0 {
			batches = append(batches, n)
			pending -= n
		}
	}
	if pending > 0 {
		batches = append(batches, pending)
	}
	return batches
}
