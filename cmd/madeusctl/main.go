// Command madeusctl sends operator commands to a running madeusd.
//
//	madeusctl -addr 127.0.0.1:6000 status
//	madeusctl -addr 127.0.0.1:6000 add-tenant shop node0
//	madeusctl -addr 127.0.0.1:6000 migrate shop node1
//	madeusctl -addr 127.0.0.1:6000 migrate shop node1 B-MIN
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"madeus/internal/core"
	"madeus/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6000", "madeusd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var cmd string
	switch args[0] {
	case "status":
		cmd = "STATUS"
	case "stats":
		switch len(args) {
		case 1:
			cmd = "STATS"
		case 2:
			cmd = "STATS " + args[1]
		default:
			usage()
		}
	case "events":
		switch len(args) {
		case 1:
			cmd = "EVENTS"
		case 2:
			cmd = "EVENTS " + args[1]
		default:
			usage()
		}
	case "add-tenant":
		if len(args) != 3 {
			usage()
		}
		cmd = fmt.Sprintf("ADD TENANT %s ON %s", args[1], args[2])
	case "migrate":
		switch len(args) {
		case 3:
			cmd = fmt.Sprintf("MIGRATE %s TO %s", args[1], args[2])
		case 4:
			cmd = fmt.Sprintf("MIGRATE %s TO %s STRATEGY %s", args[1], args[2], args[3])
		default:
			usage()
		}
	case "flow":
		// Backpressure surface: `flow` lists knobs + live counters,
		// `flow set <knob> <value>` retunes one at runtime.
		switch {
		case len(args) == 1:
			cmd = "FLOW"
		case len(args) == 4 && args[1] == "set":
			cmd = fmt.Sprintf("FLOW SET %s %s", args[2], args[3])
		default:
			usage()
		}
	case "fault":
		// Passthrough to the failpoint registry (daemon must be built
		// with -tags faultinject): fault list | enable <site> <policy>
		// | disable <site> | release <site> | reset | seed <n>.
		if len(args) < 2 {
			usage()
		}
		cmd = "FAULT " + strings.Join(args[1:], " ")
	default:
		usage()
	}

	c, err := wire.Dial(*addr, core.AdminDB)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	res, err := c.Exec(cmd)
	if err != nil {
		fatal(err)
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, "\t"))
	}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Println(res.Tag)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: madeusctl [-addr host:port] <command>
commands:
  status                          list tenants, nodes, and migration state
  stats [tenant]                  process-wide metrics, or one tenant's monitor
  events [n]                      tail of the migration event trace (default 50)
  add-tenant <tenant> <node>      provision a tenant on a node
  migrate <tenant> <node> [strat] live-migrate (strat: B-ALL B-MIN B-CON Madeus)
  flow                            list backpressure knobs and live counters
  flow set <knob> <value>         retune one backpressure knob at runtime
  fault <subcmd> [args]           drive failpoints on a -tags faultinject build:
                                  list | enable <site> <error|drop|hang> [times]
                                  | enable <site> delay <dur> [times]
                                  | enable <site> p <prob> | disable <site>
                                  | release <site> | reset | seed <n>`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madeusctl:", err)
	os.Exit(1)
}
