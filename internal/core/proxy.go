package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/flow"
	"madeus/internal/sqlmini"
	"madeus/internal/wire"
)

// Options configures the middleware.
type Options struct {
	// Players caps the number of concurrent players during Madeus/B-CON
	// propagation. Defaults to 64.
	Players int
	// CatchupTimeout bounds Step 3: if the slave has not caught up with
	// the master within it, the migration is aborted and reported as
	// failed ("the slave could not catch up with the master",
	// Sec 5.3.2's B-CON N/A). Defaults to 2 minutes.
	CatchupTimeout time.Duration
	// BConHerdSpin models the pthread mutex competition the paper blames
	// for B-CON's collapse: "all players compete for the pthread mutex
	// lock at every commit time" (Sec 5.3.2). Every waiting B-CON player
	// burns this much CPU at every commit wake-up, so the per-commit cost
	// grows with the number of in-flight players — the convoy that makes
	// B-CON worse than B-ALL under load. Defaults to 2ms; negative
	// disables the model.
	BConHerdSpin time.Duration
	// ListenAddr for the customer-facing wire server. Defaults to
	// "127.0.0.1:0".
	ListenAddr string
	// OpTimeout bounds each middleware-issued destination operation
	// during migrations (restore, propagation replay, promotion probe) so
	// a hung destination surfaces as a connection loss. Defaults to 10s;
	// negative disables the bound.
	OpTimeout time.Duration
	// Retry is the default policy for retrying the migration's own
	// idempotent destination operations (dials, the promotion probe).
	// Defaults to 4 attempts from 25ms exponential backoff capped at
	// 500ms with 20% jitter; MaxAttempts < 0 disables retries.
	Retry wire.RetryPolicy
	// Flow is the backpressure/admission-control configuration (SSL caps,
	// adaptive pacing, migration watchdog, session limits), validated by
	// New. The zero value disables the whole layer; flow.DefaultConfig()
	// is the calibrated production set. Runtime-tunable via FLOW SET.
	Flow flow.Config
	// HistoryCadence is the sampling interval of the per-tenant time-series
	// history (lag, debt, ops/s, pace delay, SSL bytes, sessions) recorded
	// into obs.Hist. Defaults to 1s; negative disables the sampler.
	// Runtime-tunable via the admin HISTORY CADENCE command.
	HistoryCadence time.Duration
}

// Backend is a DBMS node as the middleware sees it: a name, per-database
// sessions, and tenant provisioning. *cluster.Node (in-process, used by
// tests and the bench harness) and *cluster.Remote (another process,
// addressed over the wire — the deployment cmd/madeusd manages) both
// implement it.
type Backend interface {
	BackendName() string
	Connect(db string) (*wire.Client, error)
	CreateDatabase(db string) error
	DropDatabase(db string) error
}

var (
	_ Backend = (*cluster.Node)(nil)
	_ Backend = (*cluster.Remote)(nil)
)

// Middleware is the Madeus process (Fig 1/2): it terminates customer
// connections, relays operations to each tenant's master node through
// workers, and runs migrations.
type Middleware struct {
	opts Options
	flow *flow.Governor

	mu      sync.RWMutex //madeusvet:lockrank middleware 10
	tenants map[string]*Tenant
	nodes   map[string]Backend

	srv *wire.Server

	// History sampler (scope.go): cadence is atomic so the admin HISTORY
	// CADENCE command retunes a running loop without locks.
	sampleCadence atomic.Int64 // nanoseconds; <= 0 pauses sampling
	sampleStop    chan struct{}
	sampleDone    chan struct{}
	closeOnce     sync.Once
}

// New starts a middleware instance with its customer-facing listener.
func New(opts Options) (*Middleware, error) {
	if opts.Players <= 0 {
		opts.Players = 64
	}
	if opts.CatchupTimeout <= 0 {
		opts.CatchupTimeout = 2 * time.Minute
	}
	if opts.BConHerdSpin == 0 {
		opts.BConHerdSpin = 2 * time.Millisecond
	}
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.OpTimeout == 0 {
		opts.OpTimeout = 10 * time.Second
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = wire.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 25 * time.Millisecond,
			MaxBackoff:  500 * time.Millisecond,
			Jitter:      0.2,
		}
	}
	gov, err := flow.NewGovernor(opts.Flow)
	if err != nil {
		return nil, err
	}
	if opts.HistoryCadence == 0 {
		opts.HistoryCadence = time.Second
	}
	m := &Middleware{
		opts:       opts,
		flow:       gov,
		tenants:    make(map[string]*Tenant),
		nodes:      make(map[string]Backend),
		sampleStop: make(chan struct{}),
		sampleDone: make(chan struct{}),
	}
	m.sampleCadence.Store(int64(opts.HistoryCadence))
	srv, err := wire.Listen(opts.ListenAddr, m)
	if err != nil {
		return nil, err
	}
	m.srv = srv
	go m.sampleLoop()
	return m, nil
}

// Addr is the customer-facing address.
func (m *Middleware) Addr() string { return m.srv.Addr() }

// Close stops the customer-facing server and the history sampler. Nodes
// are owned by the caller.
func (m *Middleware) Close() {
	m.closeOnce.Do(func() {
		close(m.sampleStop)
		<-m.sampleDone
	})
	m.srv.Close()
}

// AddNode registers a DBMS node with the middleware.
func (m *Middleware) AddNode(n Backend) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.BackendName()] = n
}

// ReplaceNode swaps a registered node handle for a fresh one carrying the
// same backend name — the restart path: a crashed dbnode that recovered its
// tenants from its data dir comes back as a new Backend (new listener, same
// durable state). Tenants mastered on that node are repointed and their
// routing generation bumps, so proxy sessions reconnect lazily to the
// recovered node; a migration that was in flight against the old handle
// fails and rolls back like any connection loss, leaving the tenant
// re-migratable.
func (m *Middleware) ReplaceNode(n Backend) error {
	name := n.BackendName()
	m.mu.Lock()
	if _, ok := m.nodes[name]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("core: unknown node %q", name)
	}
	m.nodes[name] = n
	tenants := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.Unlock()
	for _, t := range tenants {
		t.rebind(n)
	}
	return nil
}

// Node returns a registered node.
func (m *Middleware) Node(name string) (Backend, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.nodes[name]
	return n, ok
}

// AddTenant registers an existing tenant database living on the named node.
func (m *Middleware) AddTenant(tenant, nodeName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.nodes[nodeName]
	if !ok {
		return fmt.Errorf("core: unknown node %q", nodeName)
	}
	if _, dup := m.tenants[tenant]; dup {
		return fmt.Errorf("core: tenant %q already registered", tenant)
	}
	// Probe that the tenant database exists on the node.
	probe, err := node.Connect(tenant)
	if err != nil {
		return fmt.Errorf("core: node %q has no database %q: %w", nodeName, tenant, err)
	}
	probe.Close()
	t := NewTenant(tenant, node, m.flow)
	t.registerObs()
	m.tenants[tenant] = t
	return nil
}

// RemoveTenant deregisters a tenant from the middleware: routing stops,
// its dynamic gauges and history series are dropped, and its admission
// limiter is released. The tenant database itself is untouched — removal
// is a middleware bookkeeping operation, not a DROP DATABASE. Fails while
// a migration is in flight.
func (m *Middleware) RemoveTenant(tenant string) error {
	m.mu.Lock()
	t, ok := m.tenants[tenant]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("core: unknown tenant %q", tenant)
	}
	if t.State() == StateMigrating {
		m.mu.Unlock()
		return fmt.Errorf("core: tenant %q is migrating; cannot remove", tenant)
	}
	delete(m.tenants, tenant)
	m.mu.Unlock()
	t.teardownObs()
	return nil
}

// Flow exposes the live backpressure configuration (admin FLOW surface).
func (m *Middleware) Flow() *flow.Governor { return m.flow }

// ProvisionTenant creates the tenant database on the named node and
// registers it.
func (m *Middleware) ProvisionTenant(tenant, nodeName string) error {
	m.mu.RLock()
	node, ok := m.nodes[nodeName]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown node %q", nodeName)
	}
	if err := node.CreateDatabase(tenant); err != nil {
		return err
	}
	return m.AddTenant(tenant, nodeName)
}

// Tenant returns the named tenant's middleware state.
func (m *Middleware) Tenant(name string) (*Tenant, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tenants[name]
	return t, ok
}

// Tenants lists registered tenant names.
func (m *Middleware) Tenants() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		out = append(out, n)
	}
	return out
}

// Connect implements wire.Handler: each customer connection gets a worker;
// connections to AdminDB get the operator control channel.
func (m *Middleware) Connect(database string) (wire.Conn, error) {
	if database == AdminDB {
		return &adminConn{mw: m}, nil
	}
	t, ok := m.Tenant(database)
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", database)
	}
	// Admission control: past the per-tenant cap the session queues; past
	// the queue (or the wait timeout) it is shed here with a typed
	// overload error, which the wire server returns as a clean startup
	// error — the client's Dial fails fast instead of the process
	// accumulating goroutines it cannot serve.
	release, err := t.limiter.Admit()
	if err != nil {
		return nil, err
	}
	t.sessions.Add(1)
	return &worker{mw: m, tenant: t, release: release}, nil
}

// worker is the middleware-side session for one customer connection; it
// implements Algorithms 1 and 2: relay every operation to the tenant's
// master, and capture syncsets under the critical region.
type worker struct {
	mw      *Middleware
	tenant  *Tenant
	release func() // admission slot; called exactly once on Close

	backend    *wire.Client
	backendGen int

	inTxn     bool
	firstSeen bool // a first operation succeeded (SSB exists)
	ssb       *SSB
}

// ensureBackend (re)connects to the tenant's current master if the tenant
// moved since the last operation (lazy switch-over). It must be called
// WITHOUT t.mu held: it reads the routing state itself. Once a transaction
// is in flight the tenant cannot switch (the manager drains active
// transactions first), so calling it before entering the critical region is
// safe.
func (w *worker) ensureBackend() error {
	node, gen := w.tenant.Node()
	if w.backend == nil || w.backendGen != gen {
		if w.backend != nil {
			w.backend.Close()
			w.backend = nil
		}
		c, err := node.Connect(w.tenant.Name)
		if err != nil {
			return fmt.Errorf("core: connect to %s: %w", node.BackendName(), err)
		}
		w.backend = c
		w.backendGen = gen
	}
	return nil
}

// relay forwards sql to the tenant's current master. Not for use under
// t.mu — the critical-region paths call ensureBackend first and then
// w.backend.Exec directly.
func (w *worker) relay(sql string) (*engine.Result, error) {
	if err := w.ensureBackend(); err != nil {
		return nil, err
	}
	return w.backend.Exec(sql)
}

// Exec processes one customer operation (the worker body).
func (w *worker) Exec(sql string) (*engine.Result, error) {
	obsWorkerOps.Inc()
	w.tenant.ops.Add(1)
	class, err := sqlmini.ClassifyQuery(sql)
	if err != nil {
		// Meta commands (DUMP, CREATE DATABASE, ...): relay verbatim.
		return w.relay(sql)
	}
	if w.inTxn {
		return w.execInTxn(sql, class)
	}
	return w.execAutocommit(sql, class)
}

func (w *worker) execInTxn(sql string, class sqlmini.OpClass) (*engine.Result, error) {
	t := w.tenant
	switch class {
	case sqlmini.OpBegin:
		return nil, &wire.ServerError{Msg: "core: BEGIN inside a transaction block"}

	case sqlmini.OpCommit:
		return w.execCommit(sql)

	case sqlmini.OpAbort:
		res, err := w.relay(sql)
		w.endTxn(false)
		return res, err

	default: // reads, writes, DDL
		if !w.firstSeen {
			return w.execFirstOp(sql, class)
		}
		res, err := w.relay(sql)
		if err != nil {
			return res, err
		}
		// Capture writes always; other reads only under B-ALL capture.
		isWrite := class == sqlmini.OpWrite || class == sqlmini.OpDDL
		t.mu.Lock()
		if w.ssb != nil && (isWrite || t.captureAll) {
			w.ssb.Entries = append(w.ssb.Entries, Entry{SQL: sql, Class: class})
			if isWrite {
				w.ssb.update = true
			}
		}
		t.mu.Unlock()
		return res, nil
	}
}

// execFirstOp handles the transaction's first operation: executed under the
// critical region so the STS stamp matches the master-side snapshot order
// (Algorithm 1, lines 2-9).
func (w *worker) execFirstOp(sql string, class sqlmini.OpClass) (*engine.Result, error) {
	t := w.tenant
	if err := w.ensureBackend(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	// Algorithm 1's critical region REQUIRES the master round-trip under
	// t.mu: the STS stamp must equal the master-side snapshot order.
	//madeusvet:ignore lockdiscipline critical region: first op executes under the tenant mutex by design (Algorithm 1)
	res, err := w.backend.Exec(sql)
	if err != nil {
		t.mu.Unlock()
		return res, err
	}
	b := &SSB{STS: t.mlc}
	b.Entries = append(b.Entries, Entry{SQL: sql, Class: class})
	if class == sqlmini.OpWrite || class == sqlmini.OpDDL {
		b.update = true
	}
	t.firstOpStampedLocked(b)
	t.mu.Unlock()

	w.ssb = b
	w.firstSeen = true
	return res, nil
}

// execCommit handles COMMIT: read-only transactions bypass the critical
// region and are discarded; update transactions commit under the region,
// stamp ETS, advance the MLC, and link to the SSL (Algorithm 1, lines
// 16-29).
func (w *worker) execCommit(sql string) (*engine.Result, error) {
	t := w.tenant
	b := w.ssb

	if b == nil || !b.update {
		// Read-only or empty transaction: no MLC movement. Under
		// B-ALL capture, committed read-only transactions are linked
		// too (it propagates ALL transactions).
		res, err := w.relay(sql)
		t.mu.Lock()
		if b != nil {
			linkRO := t.captureAll && err == nil && res != nil && res.Tag == "COMMIT"
			if linkRO {
				b.ETS = t.mlc
			}
			t.resolveSSBLocked(b, linkRO)
		}
		t.mu.Unlock()
		w.endTxn(true)
		return res, err
	}

	// Pacing point: an update commit pays the migration controller's
	// current delay BEFORE entering the critical region, so the brake
	// slows the source's commit rate without ever holding t.mu — SI and
	// the MLC/commit-order equivalence are untouched, commits just arrive
	// at the region a little later.
	t.throttle.Wait()
	if err := w.ensureBackend(); err != nil {
		t.mu.Lock()
		t.resolveSSBLocked(b, false)
		t.mu.Unlock()
		w.endTxn(true)
		return nil, err
	}
	t.mu.Lock()
	// COMMIT executes under the critical region so ETS assignment matches
	// the master's commit order (Algorithm 1, lines 16-29).
	//madeusvet:ignore lockdiscipline critical region: commit executes under the tenant mutex by design (Algorithm 1)
	res, err := w.backend.Exec(sql)
	switch {
	case err != nil:
		t.resolveSSBLocked(b, false)
	case res.Tag == "COMMIT":
		b.ETS = t.mlc
		t.mlc++
		obsMLCAdvance.Inc()
		t.resolveSSBLocked(b, true)
	default:
		// "ROLLBACK": the transaction was poisoned server-side.
		t.resolveSSBLocked(b, false)
	}
	t.mu.Unlock()
	w.endTxn(true)
	return res, err
}

// endTxn resets per-transaction worker state. counted reports whether
// txnStarted was called for this transaction.
func (w *worker) endTxn(counted bool) {
	t := w.tenant
	if w.ssb != nil {
		// Already resolved by the caller where needed; make sure an
		// abandoned SSB never lingers in the active set.
		t.mu.Lock()
		if _, live := t.activeFirst[w.ssb]; live {
			t.resolveSSBLocked(w.ssb, false)
		}
		t.mu.Unlock()
	}
	w.ssb = nil
	w.inTxn = false
	w.firstSeen = false
	_ = counted
	t.txnEnded()
}

func (w *worker) execAutocommit(sql string, class sqlmini.OpClass) (*engine.Result, error) {
	t := w.tenant
	switch class {
	case sqlmini.OpBegin:
		t.txnStarted()
		res, err := w.relay(sql)
		if err != nil {
			t.txnEnded()
			return res, err
		}
		w.inTxn = true
		w.firstSeen = false
		w.ssb = nil
		return res, nil

	case sqlmini.OpCommit, sqlmini.OpAbort:
		return w.relay(sql) // master reports "outside transaction block"

	case sqlmini.OpRead:
		res, err := w.relay(sql)
		if err == nil {
			t.mu.Lock()
			if t.migrating && t.captureAll {
				b := &SSB{STS: t.mlc, ETS: t.mlc}
				b.Entries = append(b.Entries, Entry{SQL: sql, Class: class})
				t.resolveSSBLocked(b, true)
			}
			t.mu.Unlock()
		}
		return res, err

	default: // autocommit write or DDL: a one-statement update transaction
		t.throttle.Wait() // pacing point, same contract as execCommit's
		t.txnStarted()
		if err := w.ensureBackend(); err != nil {
			t.txnEnded()
			return nil, err
		}
		t.mu.Lock()
		// One-statement update transaction: stamped and committed inside
		// the critical region like any other commit.
		//madeusvet:ignore lockdiscipline critical region: autocommit write executes under the tenant mutex by design (Algorithm 1)
		res, err := w.backend.Exec(sql)
		if err == nil {
			b := &SSB{STS: t.mlc, ETS: t.mlc, update: true}
			b.Entries = append(b.Entries, Entry{SQL: sql, Class: class})
			t.mlc++
			obsMLCAdvance.Inc()
			t.resolveSSBLocked(b, true)
		}
		t.mu.Unlock()
		t.txnEnded()
		return res, err
	}
}

// Close terminates the worker: abandon any open transaction.
func (w *worker) Close() {
	if w.inTxn {
		// Roll the master-side transaction back and release tracking;
		// the rollback is best-effort (the backend may already be gone).
		_, _ = w.relay("ROLLBACK")
		w.endTxn(true)
	}
	if w.backend != nil {
		w.backend.Close()
		w.backend = nil
	}
	if w.release != nil {
		w.release()
		w.release = nil
		w.tenant.sessions.Add(-1)
	}
}
