//go:build invariants

package lsir

import (
	"testing"

	"madeus/internal/invariant"
)

// TestInvariantsExercised proves MadeusSchedule's tag-gated self-check runs:
// building the Appendix C schedule must evaluate the ordering invariant.
func TestInvariantsExercised(t *testing.T) {
	invariant.Reset()
	sets := MapHistory(appendixCHistory())
	s := MadeusSchedule(sets)
	if len(s.Ops) == 0 {
		t.Fatal("empty schedule")
	}
	if n := invariant.Count(); n == 0 {
		t.Fatal("no invariant assertions were evaluated; instrumentation is dead")
	} else {
		t.Logf("evaluated %d assertions", n)
	}
}

// TestScheduleOrderingCheckRejects proves checkScheduleOrdering detects real
// violations: a schedule missing a txn's commit, and one with reordered
// writes, must both fail.
func TestScheduleOrderingCheckRejects(t *testing.T) {
	sets := MapHistory(appendixCHistory())
	good := MadeusSchedule(sets).Ops
	if err := checkScheduleOrdering(sets, good); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	truncated := good[:len(good)-1]
	if err := checkScheduleOrdering(sets, truncated); err == nil {
		t.Fatal("schedule missing a commit accepted")
	}

	swapped := make([]Op, len(good))
	copy(swapped, good)
	// Swap the first two ops of the same transaction to break FIFO order.
	for i := 0; i < len(swapped)-1; i++ {
		j := -1
		for k := i + 1; k < len(swapped); k++ {
			if swapped[k].Txn == swapped[i].Txn {
				j = k
				break
			}
		}
		if j < 0 {
			continue
		}
		swapped[i], swapped[j] = swapped[j], swapped[i]
		break
	}
	if err := checkScheduleOrdering(sets, swapped); err == nil {
		t.Fatal("out-of-order schedule accepted")
	}
}
