package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file builds the whole-load view the interprocedural analyzers
// (lockorder, holdblock) run on: a static call graph plus, per function, a
// summary of the mutexes it acquires and the blocking operations it can
// reach, propagated to a fixpoint over the graph.
//
// Soundness (documented in DESIGN.md §5f): the graph is conservative at
// interface call sites — a call through interface type I resolves to every
// in-module method implementing I — and *incomplete* at dynamic function
// values: calling a stored func value, a callback parameter, or a func
// literal bound to a variable resolves to nothing, so effects behind such
// calls are missed. Func literal bodies are still scanned standalone (their
// own lock acquisitions produce edges), an immediately-invoked literal is
// inlined into its enclosing function, `go` statements sever the held-lock
// context (the goroutine does not run under the caller's locks), and
// deferred calls contribute only their Lock/Unlock bookkeeping, exactly
// like the intra-procedural lockdiscipline rule.

// Program is the interprocedural view over one Load (targets plus their
// cached dependency closure).
type Program struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Ranks *RankTable

	funcs map[*types.Func]*FuncInfo

	namedTypes []types.Type // all in-module named types, for interface resolution
	ifaceCache map[string][]*types.Func

	mu       sync.Mutex
	findings map[string][]Diagnostic // memoized per interprocedural rule
}

// FuncInfo is one function's facts and propagated summary.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	acquires []acqSite
	blocks   []blockSite
	calls    []callSite

	sumAcquires map[types.Object]witness // annotated-or-resolved lock -> path
	sumBlocks   map[string]witness       // blocking kind -> path
}

// witness is one example call chain (below the summarized function) leading
// to an effect, with the ultimate site's position.
type witness struct {
	path   []string // display names of the callee chain; empty = direct
	pos    token.Pos
	method string // acquisition method (Lock/RLock); empty for blocking kinds
}

// heldLock is one mutex held at a program point.
type heldLock struct {
	obj    types.Object // resolved field/var; nil when only name-matched
	key    string       // rendered expression, e.g. "t.mu"
	method string       // Lock or RLock
	pos    token.Pos
}

type acqSite struct {
	obj      types.Object
	key      string
	method   string
	pos      token.Pos
	held     []heldLock
	detached bool // inside a func literal: edges count, summary does not
}

type blockSite struct {
	kind     string
	pos      token.Pos
	held     []heldLock
	detached bool
}

type callSite struct {
	callees  []*types.Func
	display  string // rendered callee expression, for messages
	pos      token.Pos
	held     []heldLock
	detached bool
}

// NewProgram builds the call graph and fixpoint summaries over pkgs and
// their cached module-internal dependencies.
func NewProgram(pkgs []*Package) *Program {
	all := append(append([]*Package(nil), pkgs...), depPackages(pkgs)...)
	var fset *token.FileSet
	if len(all) > 0 {
		fset = all[0].Fset
	}
	prog := &Program{
		Pkgs:       all,
		Fset:       fset,
		Ranks:      collectRanks(all),
		funcs:      make(map[*types.Func]*FuncInfo),
		ifaceCache: make(map[string][]*types.Func),
		findings:   make(map[string][]Diagnostic),
	}
	prog.collectTypes()
	prog.collectFuncs()
	prog.propagate()
	return prog
}

func (prog *Program) collectTypes() {
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, obj := range pkg.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() || tn.Parent() == nil || tn.Parent() != tn.Pkg().Scope() {
				continue
			}
			prog.namedTypes = append(prog.namedTypes, tn.Type())
		}
	}
	sort.Slice(prog.namedTypes, func(i, j int) bool {
		return prog.namedTypes[i].String() < prog.namedTypes[j].String()
	})
}

func (prog *Program) collectFuncs() {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg.Fset, f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				info := &FuncInfo{Decl: fn, Pkg: pkg}
				if pkg.Info != nil {
					if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
						info.Obj = obj
						prog.funcs[obj] = info
					}
				}
				w := &factWalker{prog: prog, pkg: pkg, fn: info}
				w.stmts(fn.Body.List, map[string]heldLock{})
			}
		}
	}
}

// displayName renders a function for messages, trimming the module prefix.
func displayName(obj *types.Func) string {
	name := obj.FullName()
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		// "madeus/internal/wal.(*Log).Commit" -> "wal.(*Log).Commit"
		name = name[i+1:]
	}
	return name
}

// lockDesc renders a lock for messages: its rank name when annotated,
// otherwise Type.field.
func (prog *Program) lockDesc(obj types.Object, key string) string {
	if r, ok := prog.Ranks.Rank(obj); ok {
		return r.Name
	}
	if obj != nil {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return fieldOwner(prog, v) + "." + v.Name()
		}
		return obj.Name()
	}
	return key
}

// fieldOwner finds the named type declaring field v, for display.
func fieldOwner(prog *Program, v *types.Var) string {
	for _, t := range prog.namedTypes {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				if n, ok := t.(*types.Named); ok {
					return n.Obj().Name()
				}
			}
		}
	}
	return "?"
}

// propagate runs the fixpoint: each function's summary absorbs its callees'
// acquisitions and blocking reach, keeping one witness path per effect.
func (prog *Program) propagate() {
	infos := make([]*FuncInfo, 0, len(prog.funcs))
	for _, fi := range prog.funcs {
		infos = append(infos, fi)
	}
	sort.Slice(infos, func(i, j int) bool {
		return infos[i].Obj.FullName() < infos[j].Obj.FullName()
	})

	for _, fi := range infos {
		fi.sumAcquires = make(map[types.Object]witness)
		fi.sumBlocks = make(map[string]witness)
		for _, a := range fi.acquires {
			if a.detached || a.obj == nil {
				continue
			}
			if _, ok := fi.sumAcquires[a.obj]; !ok {
				fi.sumAcquires[a.obj] = witness{pos: a.pos, method: a.method}
			}
		}
		for _, b := range fi.blocks {
			if b.detached {
				continue
			}
			if _, ok := fi.sumBlocks[b.kind]; !ok {
				fi.sumBlocks[b.kind] = witness{pos: b.pos}
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			for _, cs := range fi.calls {
				if cs.detached {
					continue
				}
				for _, callee := range cs.callees {
					g := prog.funcs[callee]
					if g == nil || g == fi {
						continue
					}
					gname := displayName(callee)
					for lock, w := range g.sumAcquires {
						if _, ok := fi.sumAcquires[lock]; !ok {
							fi.sumAcquires[lock] = witness{path: prependPath(gname, w.path), pos: w.pos, method: w.method}
							changed = true
						}
					}
					for kind, w := range g.sumBlocks {
						if _, ok := fi.sumBlocks[kind]; !ok {
							fi.sumBlocks[kind] = witness{path: prependPath(gname, w.path), pos: w.pos}
							changed = true
						}
					}
				}
			}
		}
	}
}

func prependPath(head string, rest []string) []string {
	out := make([]string, 0, len(rest)+1)
	out = append(out, head)
	return append(out, rest...)
}

// cached returns rule's memoized program-wide findings, computing them once.
func (prog *Program) cached(rule string, compute func() []Diagnostic) []Diagnostic {
	prog.mu.Lock()
	defer prog.mu.Unlock()
	if d, ok := prog.findings[rule]; ok {
		return d
	}
	d := compute()
	prog.findings[rule] = d
	return d
}

// --- per-function fact extraction ---

// factWalker mirrors lockdiscipline's held-set statement walk, but emits
// acquisition, blocking, and call-site facts instead of diagnostics.
type factWalker struct {
	prog     *Program
	pkg      *Package
	fn       *FuncInfo
	detached bool
}

func (w *factWalker) snapshot(held map[string]heldLock) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

func copyHeldLocks(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockObj resolves the mutex expression of a Lock/Unlock call to its
// declared field or var object, when type info allows.
func (w *factWalker) lockObj(e ast.Expr) types.Object {
	info := w.pkg.Info
	if info == nil {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return w.lockObj(e.X)
	case *ast.StarExpr:
		return w.lockObj(e.X)
	}
	return nil
}

func (w *factWalker) typeOf(e ast.Expr) types.Type {
	if w.pkg.Info == nil {
		return nil
	}
	return w.pkg.Info.TypeOf(e)
}

// lockFact classifies a call as a Lock/Unlock-family operation, resolving
// the mutex identity.
func (w *factWalker) lockFact(call *ast.CallExpr) (key string, obj types.Object, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, "", false
	}
	key = exprString(sel.X)
	if key == "" {
		return "", nil, "", false
	}
	if t := w.typeOf(sel.X); t != nil {
		if !isSyncType(t, "Mutex") && !isSyncType(t, "RWMutex") {
			return "", nil, "", false
		}
	} else if !muName(key) {
		return "", nil, "", false
	}
	obj = w.lockObj(sel.X)
	if v, okVar := obj.(*types.Var); obj != nil && (!okVar || (!isSyncType(v.Type(), "Mutex") && !isSyncType(v.Type(), "RWMutex"))) {
		obj = nil // embedded sync.Mutex promotions etc.: fall back to key identity
	}
	return key, obj, sel.Sel.Name, true
}

func muName(rendered string) bool {
	last := rendered
	if i := strings.LastIndexByte(last, '.'); i >= 0 {
		last = last[i+1:]
	}
	lower := strings.ToLower(last)
	return lower == "mu" || strings.HasSuffix(lower, "mu") || strings.HasSuffix(lower, "mutex") || strings.HasSuffix(lower, "lock")
}

func (w *factWalker) stmts(list []ast.Stmt, held map[string]heldLock) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *factWalker) stmt(st ast.Stmt, held map[string]heldLock) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, obj, method, isLock := w.lockFact(call); isLock {
				switch method {
				case "Lock", "RLock":
					w.fn.acquires = append(w.fn.acquires, acqSite{
						obj: obj, key: key, method: method, pos: call.Pos(),
						held: w.snapshot(held), detached: w.detached,
					})
					held[key] = heldLock{obj: obj, key: key, method: method, pos: call.Pos()}
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		w.expr(st.X, held)
	case *ast.DeferStmt:
		// Deferred Unlock keeps the lock held through the function (the
		// release runs at return); other deferred calls are skipped, as
		// in lockdiscipline.
	case *ast.GoStmt:
		// The goroutine does not run under the caller's locks, and its
		// effects do not propagate to the caller's summary. Named
		// functions it calls are analyzed standalone; a literal body is
		// scanned detached below (via expr's FuncLit handling).
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.detachedScan(lit)
		}
	case *ast.SendStmt:
		w.block("channel send", st.Pos(), held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block("select", st.Pos(), held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.stmts(st.Body.List, copyHeldLocks(held))
		if st.Else != nil {
			w.stmt(st.Else, copyHeldLocks(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		body := copyHeldLocks(held)
		w.stmts(st.Body.List, body)
		for k, v := range body {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	case *ast.RangeStmt:
		w.expr(st.X, held)
		w.stmts(st.Body.List, copyHeldLocks(held))
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	}
}

// expr records blocking ops and call sites inside e. Func literals are
// inlined when immediately invoked, otherwise scanned detached.
func (w *factWalker) expr(e ast.Expr, held map[string]heldLock) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.detachedScan(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.block("channel receive", n.Pos(), held)
			}
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: inline its body under the
				// current held set; arguments are scanned by Inspect.
				w.stmts(lit.Body.List, copyHeldLocks(held))
				for _, arg := range n.Args {
					w.expr(arg, held)
				}
				return false
			}
			if kind, ok := w.blockingCall(n); ok {
				w.block(kind, n.Pos(), held)
			}
			if callees, display := w.resolveCallees(n); len(callees) > 0 {
				w.fn.calls = append(w.fn.calls, callSite{
					callees: callees, display: display, pos: n.Pos(),
					held: w.snapshot(held), detached: w.detached,
				})
			}
		}
		return true
	})
}

func (w *factWalker) block(kind string, pos token.Pos, held map[string]heldLock) {
	w.fn.blocks = append(w.fn.blocks, blockSite{
		kind: kind, pos: pos, held: w.snapshot(held), detached: w.detached,
	})
}

// detachedScan walks a func literal body with an empty held set: locks
// acquired inside it still produce ordering edges (the code runs somewhere),
// but nothing propagates into the enclosing function's summary.
func (w *factWalker) detachedScan(lit *ast.FuncLit) {
	inner := &factWalker{prog: w.prog, pkg: w.pkg, fn: w.fn, detached: true}
	inner.stmts(lit.Body.List, map[string]heldLock{})
}

// blockingCall classifies known blocking primitives and module boundaries
// (the wire client round-trip, the WAL commit wait, pacing) that the
// summaries name explicitly for readable findings. Everything else blocks
// only through primitives its own body reaches, which propagation covers.
func (w *factWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if base, ok := sel.X.(*ast.Ident); ok {
		switch base.Name + "." + name {
		case "time.Sleep":
			return "time.Sleep", true
		case "simlat.IO":
			return "simulated I/O (simlat.IO)", true
		case "net.Dial", "net.DialTimeout", "net.Listen":
			return "net." + name, true
		}
	}
	recvType := w.typeOf(sel.X)
	switch name {
	case "Wait":
		if recvType != nil {
			switch {
			case isSyncType(recvType, "Cond"):
				return "sync.Cond.Wait", true
			case isSyncType(recvType, "WaitGroup"):
				return "WaitGroup.Wait", true
			case isModuleType(recvType, "internal/flow", "Throttle"):
				return "pacing wait (flow.Throttle.Wait)", true
			}
			return "Wait", true
		}
		if strings.Contains(strings.ToLower(exprString(sel.X)), "cond") {
			return "sync.Cond.Wait", true
		}
		return "Wait", true
	case "fsync", "Fsync":
		return "WAL fsync", true
	case "Commit":
		if isModuleType(recvType, "internal/wal", "Log") {
			return "WAL group-commit wait", true
		}
	case "Exec", "ExecStream", "ExecRetry":
		if isModuleType(recvType, "internal/wire", "Client") {
			return "wire round-trip (Client." + name + ")", true
		}
	case "Acquire":
		if isModuleType(recvType, "internal/flow", "TransferBudget") {
			return "transfer-budget wait (TransferBudget.Acquire)", true
		}
	}
	return "", false
}

// isModuleType reports whether t is the named type pkgSuffix.name (or a
// pointer to it) from this module.
func isModuleType(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(n.Obj().Pkg().Path(), pkgSuffix) && n.Obj().Name() == name
}

// resolveCallees maps a call expression to in-module function declarations:
// direct calls resolve exactly; interface method calls resolve to every
// in-module implementation (conservative); func values resolve to nothing
// (see the soundness note at the top of the file).
func (w *factWalker) resolveCallees(call *ast.CallExpr) ([]*types.Func, string) {
	info := w.pkg.Info
	if info == nil {
		return nil, ""
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if w.prog.funcs[fn] != nil {
				return []*types.Func{fn}, fun.Name
			}
		}
	case *ast.SelectorExpr:
		display := exprString(fun)
		if display == "" {
			display = fun.Sel.Name
		}
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil, ""
			}
			recv := sel.Recv()
			if types.IsInterface(recv) {
				return w.ifaceImpls(recv.Underlying().(*types.Interface), fn.Name()), display
			}
			if w.prog.funcs[fn] != nil {
				return []*types.Func{fn}, display
			}
			return nil, ""
		}
		// Package-qualified call: pkg.F().
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && w.prog.funcs[fn] != nil {
			return []*types.Func{fn}, display
		}
	}
	return nil, ""
}

// ifaceImpls returns every in-module method named m whose receiver type
// implements iface (class-hierarchy resolution), memoized per interface+name.
func (w *factWalker) ifaceImpls(iface *types.Interface, m string) []*types.Func {
	key := iface.String() + "\x00" + m
	prog := w.prog
	if impls, ok := prog.ifaceCache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, t := range prog.namedTypes {
		if types.IsInterface(t) {
			continue
		}
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, m)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if prog.funcs[fn] != nil {
			impls = append(impls, fn)
		}
	}
	prog.ifaceCache[key] = impls
	return impls
}
