// Package mvcc implements multi-version concurrency control with snapshot
// isolation and the first-updater-wins rule, mirroring the semantics of the
// DBMSs the paper targets (Oracle, SQL Server, PostgreSQL; Sec 2.3).
//
// A transaction's snapshot is the set of transactions that committed before
// it started, identified by a commit sequence number (CSN) watermark; the
// snapshot is taken lazily at the transaction's first operation (Sec 3.1).
// Writers take per-row write locks. A writer that finds the row locked by a
// concurrent active transaction blocks; if that transaction commits, the
// waiter aborts with ErrSerialization (first-updater-wins), and if it
// aborts, the waiter proceeds.
//
// The transaction-status table and the row store are both striped by a
// power-of-two hash (DESIGN.md §5i): Begin, Commit, and the per-version
// statusOf calls on the visibility path contend only on one stripe instead
// of a manager-wide RWMutex, and CSN assignment is serialized by a tiny
// dedicated mutex so status publication stays ordered before the watermark
// advance.
package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/invariant"
)

// TxnID identifies a transaction within one tenant database.
type TxnID uint64

// CSN is a commit sequence number; snapshots are CSN watermarks.
type CSN uint64

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// FrozenTxn is the sentinel creator ID a version's xmin is rewritten to
// when its real creator's txnState is pruned: it means "committed at or
// below every snapshot that can still exist", so statusOf reports it as
// committed with CSN 0. Real IDs start at 1 and are assigned sequentially,
// so the sentinel is unreachable.
const FrozenTxn = ^TxnID(0)

// DefaultStripes is the default stripe count for the transaction-status
// table and the per-table row maps. Must be a power of two.
const DefaultStripes = 16

// pruneBatch is how many finished writer states accumulate before an
// eager prune pass freezes their versions and drops the states. Small
// enough to bound the states map, large enough that single-transaction
// unit tests never observe a state disappearing under them.
const pruneBatch = 64

// Sentinel errors surfaced to the engine (which maps them onto SQLSTATE-like
// error strings for the wire protocol).
var (
	// ErrSerialization is the first-updater-wins abort: a concurrent
	// transaction updated the same row and committed first.
	ErrSerialization = errors.New("mvcc: could not serialize access due to concurrent update")
	// ErrUniqueViolation reports a duplicate primary key.
	ErrUniqueViolation = errors.New("mvcc: duplicate key value violates unique constraint")
	// ErrLockTimeout reports that a row lock could not be acquired in
	// time (our stand-in for deadlock detection).
	ErrLockTimeout = errors.New("mvcc: lock wait timeout (possible deadlock)")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("mvcc: transaction already finished")
)

// Manager assigns transaction IDs, snapshots, and CSNs for one tenant
// database, and tracks transaction status for visibility checks.
type Manager struct {
	// LockTimeout bounds row-lock waits; beyond it the waiter aborts
	// with ErrLockTimeout. Zero selects a 2s default.
	LockTimeout time.Duration

	// LegacyReads restores the pre-sharding read path: Get and Scan hand
	// out copies instead of borrowing the immutable stored rows, and Scan
	// re-collects and sorts the key set per call instead of walking the
	// sorted chain spine. Kept as a safety valve for callers that must
	// mutate read rows in place and as the hotpath ablation's baseline
	// leg. Set before serving traffic.
	LegacyReads bool

	nextTxn atomic.Uint64
	lastCSN atomic.Uint64

	// csnMu serializes CSN assignment and publication: a commit flips
	// the state to committed under its stripe lock BEFORE storing the
	// new watermark, so a snapshot taken at watermark W always observes
	// every CSN ≤ W as committed. Atomics alone cannot give that order.
	csnMu sync.Mutex //madeusvet:lockrank mvcc-csn 43

	mask    uint64
	stripes []txnStripe

	// tableStripes is the row-map stripe count Tables bound to this
	// manager inherit (power of two; 1 reproduces the unsharded layout
	// for the hotpath ablation baseline).
	tableStripes int

	// pruneMu guards only the pending queue; freeze work runs with it
	// released so commits never wait behind a prune pass.
	pruneMu sync.Mutex //madeusvet:lockrank mvcc-prune 41
	pending []pendingFreeze
	// sincePrune counts enqueues since the last prune pass. The trigger
	// works off this counter, NOT off len(pending): under heavy load the
	// snapshot horizon lags the commit stream, so the queue sits above any
	// fixed length permanently, and a length trigger would rescan (and
	// reallocate) the entire backlog on every single commit.
	sincePrune int
}

// txnStripe is one shard of the transaction-status table.
type txnStripe struct {
	mu     sync.RWMutex //madeusvet:lockrank mvcc-txn 44
	states map[TxnID]*txnState
}

type txnState struct {
	status Status
	csn    CSN
	snap   CSN // snapshot at Begin; used by the vacuum horizon
}

// pendingFreeze is a committed writer whose state is waiting for the
// snapshot horizon to pass its CSN, at which point its versions are frozen
// (xmin → FrozenTxn, superseded versions removed) and the state dropped.
type pendingFreeze struct {
	id     TxnID
	csn    CSN
	chains []*rowChain
}

// NewManager returns a transaction manager with the default stripe count.
func NewManager() *Manager { return NewManagerStriped(DefaultStripes) }

// NewManagerStriped returns a transaction manager with n stripes for the
// status table and for row maps of tables bound to it. n is rounded up to
// a power of two; values < 1 select 1 (the unsharded layout).
func NewManagerStriped(n int) *Manager {
	n = ceilPow2(n)
	m := &Manager{
		mask:         uint64(n - 1),
		stripes:      make([]txnStripe, n),
		tableStripes: n,
	}
	for i := range m.stripes {
		m.stripes[i].states = make(map[TxnID]*txnState)
	}
	return m
}

func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (m *Manager) stripe(id TxnID) *txnStripe {
	return &m.stripes[uint64(id)&m.mask]
}

// Txn is one transaction. A Txn is used by a single session goroutine;
// Manager and table internals handle cross-transaction synchronization.
type Txn struct {
	ID       TxnID
	Snapshot CSN

	mgr    *Manager
	locks  []*rowChain
	done   bool
	writes int

	// waitTimer is the reusable row-lock wait timer (one allocation per
	// transaction instead of one per contended wait).
	waitTimer *time.Timer
}

// Begin starts a transaction, taking its snapshot now. Call it at the
// transaction's first operation, not at BEGIN, to match the snapshot
// creation rule of Sec 3.1.
//
// The snapshot is read under the stripe lock so registration is atomic
// with respect to Horizon's stripe scan: a transaction is either visible
// to the scan, or its snapshot is at least the watermark the scan started
// from — either way the horizon never passes a snapshot that still needs
// a pruned state.
func (m *Manager) Begin() *Txn {
	id := TxnID(m.nextTxn.Add(1))
	s := m.stripe(id)
	s.mu.Lock()
	snap := CSN(m.lastCSN.Load())
	s.states[id] = &txnState{status: StatusActive, snap: snap}
	s.mu.Unlock()
	return &Txn{ID: id, Snapshot: snap, mgr: m}
}

// statusOf reports the state of a transaction. Unknown IDs report
// StatusAborted so stray versions stay invisible — which is also why a
// committed writer's state can only be dropped after its versions are
// frozen. FrozenTxn reports committed at CSN 0 (visible to any snapshot).
func (m *Manager) statusOf(id TxnID) (Status, CSN) {
	if id == FrozenTxn {
		return StatusCommitted, 0
	}
	s := m.stripe(id)
	s.mu.RLock()
	st, ok := s.states[id]
	if !ok {
		s.mu.RUnlock()
		return StatusAborted, 0
	}
	status, csn := st.status, st.csn
	s.mu.RUnlock()
	return status, csn
}

// LastCSN returns the latest assigned commit sequence number.
func (m *Manager) LastCSN() CSN {
	return CSN(m.lastCSN.Load())
}

// StateCount reports how many txnState entries are live across all
// stripes (regression guard: eager pruning keeps this bounded).
func (m *Manager) StateCount() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		n += len(s.states)
		s.mu.RUnlock()
	}
	return n
}

// PendingFreezes reports how many committed writers are queued behind the
// snapshot horizon (test and observability hook).
func (m *Manager) PendingFreezes() int {
	m.pruneMu.Lock()
	defer m.pruneMu.Unlock()
	return len(m.pending)
}

// Commit makes t's effects visible: it assigns the next CSN, flips the
// status, and releases t's row locks (waking first-updater-wins waiters).
// The caller is responsible for making the commit durable (WAL) first.
func (t *Txn) Commit() (CSN, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	t.done = true
	t.stopWaitTimer()
	m := t.mgr
	s := m.stripe(t.ID)

	if t.writes == 0 {
		// Read-only: no version anywhere references t.ID, so the state
		// can be dropped immediately — unknown IDs never reach statusOf
		// through a version, and the horizon only rises.
		m.csnMu.Lock()
		csn := CSN(m.lastCSN.Load()) + 1
		s.mu.Lock()
		st := s.states[t.ID]
		invariant.Assert(st != nil && st.status == StatusActive, "mvcc: commit of a non-active transaction")
		delete(s.states, t.ID)
		s.mu.Unlock()
		m.lastCSN.Store(uint64(csn))
		m.csnMu.Unlock()
		return csn, nil
	}

	m.csnMu.Lock()
	csn := CSN(m.lastCSN.Load()) + 1
	s.mu.Lock()
	st := s.states[t.ID]
	invariant.Assert(st != nil && st.status == StatusActive, "mvcc: commit of a non-active transaction")
	invariant.Assertf(csn > t.Snapshot, "mvcc: CSN %d not beyond snapshot %d", csn, t.Snapshot)
	st.status = StatusCommitted
	st.csn = csn
	s.mu.Unlock()
	// Publish the watermark only after the status flip above: a snapshot
	// that includes csn must observe the state as committed.
	m.lastCSN.Store(uint64(csn))
	m.csnMu.Unlock()

	chains := t.locks
	t.releaseLocks()
	m.enqueueFreeze(pendingFreeze{id: t.ID, csn: csn, chains: chains})
	return csn, nil
}

// Abort rolls t back: its versions are physically removed (they were never
// visible to anyone else) and its state dropped — unknown IDs already
// report StatusAborted, so eager removal preserves visibility semantics.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.stopWaitTimer()
	m := t.mgr
	s := m.stripe(t.ID)
	s.mu.Lock()
	st := s.states[t.ID]
	invariant.Assert(st != nil && st.status == StatusActive, "mvcc: abort of a non-active transaction")
	delete(s.states, t.ID)
	s.mu.Unlock()
	// Undo before waking waiters so they recheck against clean chains.
	for _, ch := range t.locks {
		ch.undo(t.ID)
	}
	t.releaseLocks()
	return nil
}

// enqueueFreeze queues a committed writer for state pruning and runs a
// prune pass once enough have accumulated.
func (m *Manager) enqueueFreeze(p pendingFreeze) {
	m.pruneMu.Lock()
	m.pending = append(m.pending, p)
	m.sincePrune++
	ready := m.sincePrune >= pruneBatch
	m.pruneMu.Unlock()
	if ready {
		m.PruneStates()
	}
}

// PruneStates freezes every queued committed writer whose CSN is at or
// below the current snapshot horizon and drops its txnState, returning
// how many dead versions the freezes removed. Commit calls it
// automatically every pruneBatch writers; vacuum calls it so an explicit
// VACUUM also empties the queue (and counts the removals in its tag).
func (m *Manager) PruneStates() int {
	m.pruneMu.Lock()
	work := m.pending
	m.pending = nil
	m.sincePrune = 0
	m.pruneMu.Unlock()
	if len(work) == 0 {
		return 0
	}

	h := m.Horizon()
	pruned := 0
	// Filter in place: entries still above the horizon compact to the
	// front of work, which then becomes the queue again — the backlog
	// buffer is recycled across passes instead of reallocated.
	kept := work[:0]
	for _, p := range work {
		if p.csn > h {
			kept = append(kept, p)
			continue
		}
		pruned += m.freeze(p)
	}
	for i := len(kept); i < len(work); i++ {
		work[i] = pendingFreeze{} // drop chain refs from the recycled tail
	}
	m.pruneMu.Lock()
	kept = append(kept, m.pending...) // arrivals during the pass keep their order
	m.pending = kept
	m.pruneMu.Unlock()
	return pruned
}

// freeze rewrites every version reference to p.id — xmin becomes
// FrozenTxn, versions superseded by p (xmax == p.id) are removed outright
// (p committed at or below the horizon, so every current and future
// snapshot sees the supersession) — then drops p's txnState. Returns the
// number of dead versions removed.
func (m *Manager) freeze(p pendingFreeze) int {
	removed := 0
	for _, ch := range p.chains {
		ch.mu.Lock()
		kept := ch.versions[:0]
		for i := range ch.versions {
			v := ch.versions[i]
			if v.xmax == p.id {
				removed++
				continue // dead for every snapshot ≥ horizon
			}
			if v.xmin == p.id {
				v.xmin = FrozenTxn
			}
			kept = append(kept, v)
		}
		for i := len(kept); i < len(ch.versions); i++ {
			ch.versions[i] = version{}
		}
		ch.versions = kept
		ch.mu.Unlock()
	}
	s := m.stripe(p.id)
	s.mu.Lock()
	delete(s.states, p.id)
	s.mu.Unlock()
	return removed
}

// Done reports whether the transaction has committed or aborted.
func (t *Txn) Done() bool { return t.done }

// IsUpdate reports whether t performed any write.
func (t *Txn) IsUpdate() bool { return t.writes > 0 }

func (t *Txn) releaseLocks() {
	for _, ch := range t.locks {
		ch.unlock(t.ID)
	}
	t.locks = nil
}

func (t *Txn) lockTimeout() time.Duration {
	if t.mgr.LockTimeout > 0 {
		return t.mgr.LockTimeout
	}
	return 2 * time.Second
}

// waitTimerFor arms the reusable per-transaction timer for one row-lock
// wait and returns its channel. The timer is stopped-and-drained between
// uses, so the channel never holds a stale tick.
func (t *Txn) waitTimerFor(d time.Duration) <-chan time.Time {
	if t.waitTimer == nil {
		t.waitTimer = time.NewTimer(d)
		return t.waitTimer.C
	}
	if !t.waitTimer.Stop() {
		select {
		case <-t.waitTimer.C:
		default:
		}
	}
	t.waitTimer.Reset(d)
	return t.waitTimer.C
}

// stopWaitTimer parks the reusable timer at transaction end.
func (t *Txn) stopWaitTimer() {
	if t.waitTimer != nil {
		t.waitTimer.Stop()
	}
}

// visible implements the SI visibility rule for one version.
func (t *Txn) visible(v *version) bool {
	invariant.Assert(v.xmin != 0, "mvcc: version without a creator transaction")
	// Creator check.
	if v.xmin == t.ID {
		// Own write — visible unless deleted by self.
		return v.xmax != t.ID
	}
	st, csn := t.mgr.statusOf(v.xmin)
	if st != StatusCommitted || csn > t.Snapshot {
		return false
	}
	// Deleter check.
	if v.xmax == 0 {
		return true
	}
	if v.xmax == t.ID {
		return false
	}
	dst, dcsn := t.mgr.statusOf(v.xmax)
	if dst == StatusCommitted && dcsn <= t.Snapshot {
		return false
	}
	return true
}

// String aids debugging.
func (t *Txn) String() string {
	return fmt.Sprintf("txn(%d snap=%d writes=%d done=%v)", t.ID, t.Snapshot, t.writes, t.done)
}
