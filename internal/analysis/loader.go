package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	Path  string // import path, e.g. madeus/internal/wal
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	Types   *types.Package // nil when type-checking failed outright
	Info    *types.Info    // always non-nil after Load; may be partial
	TypeErr error          // first type-checking error, if any

	imports []string // module-internal import paths
}

// Load parses and type-checks the packages matched by patterns, rooted at
// dir (the directory holding go.mod). Patterns follow the go tool's shape:
// "./..." walks everything; "./internal/wal" is one package. Test files and
// files excluded by default build tags (notably `invariants`) are skipped —
// madeusvet checks the production build.
//
// Type-checking resolves module-internal imports from the loaded set
// (topological order) and standard-library imports by compiling stdlib
// source (go/importer "source" mode), so the loader needs no pre-built
// export data and no external dependencies. A package that fails to
// type-check is still analyzed with whatever partial info was collected.
func Load(dir string, patterns ...string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !rec {
			dirs[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs[filepath.Clean(p)] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, d := range sortedKeys(dirs) {
		pkg, err := parseDir(fset, d, modRoot, modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}

	typeCheck(fset, modPath, pkgs)
	return pkgs, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// parseDir parses the production (non-test, default-tag) files of one
// directory. It returns nil when the directory holds no such files.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !defaultTagsSatisfied(string(src)) {
			continue
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: files}
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				pkg.imports = append(pkg.imports, ip)
			}
		}
	}
	return pkg, nil
}

// defaultTagsSatisfied evaluates a file's //go:build (or // +build) line
// against the default production tag set: GOOS, GOARCH, the compiler, and
// every supported go1.N release tag — and nothing else, so files gated on
// custom tags like `invariants` are excluded.
func defaultTagsSatisfied(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if expr, err := constraint.Parse(trimmed); err == nil {
				return expr.Eval(defaultTag)
			}
			continue
		}
		break // first non-comment, non-blank line: constraints must precede it
	}
	return true
}

func defaultTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler || tag == "unix" {
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		if n, err := strconv.Atoi(rest); err == nil {
			cur := strings.TrimPrefix(runtime.Version(), "go1.")
			if i := strings.IndexByte(cur, '.'); i >= 0 {
				cur = cur[:i]
			}
			if c, err := strconv.Atoi(cur); err == nil {
				return n <= c
			}
		}
	}
	return false
}

// moduleImporter resolves module-internal imports from the loaded package
// set and everything else from stdlib source.
type moduleImporter struct {
	modPath string
	local   map[string]*Package
	std     types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		p := m.local[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("analysis: internal import %q not loaded", path)
		}
		return p.Types, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// typeCheck type-checks pkgs in dependency order, sharing one importer so
// stdlib packages are compiled once.
func typeCheck(fset *token.FileSet, modPath string, pkgs []*Package) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	imp := &moduleImporter{
		modPath: modPath,
		local:   byPath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}

	// Topological order over module-internal imports (cycles are a compile
	// error anyway; visit order falls back to as-listed).
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return
		}
		state[p.Path] = 1
		for _, dep := range p.imports {
			if d := byPath[dep]; d != nil {
				visit(d)
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	for _, p := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if p.TypeErr == nil {
					p.TypeErr = err
				}
			},
		}
		tpkg, err := conf.Check(p.Path, fset, p.Files, info)
		if err != nil && p.TypeErr == nil {
			p.TypeErr = err
		}
		p.Types = tpkg
		p.Info = info
	}
}
