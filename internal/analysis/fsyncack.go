package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// FsyncAck guards the WAL's durability point: in a package that declares an
// fsync function (the group-commit log), a method named Commit must not
// acknowledge success — `return nil` — on a path where neither an fsync
// call nor a commit-ack channel receive has happened. A commit acknowledged
// without reaching the fsync (or the group-commit batch ack that proxies
// for it) is exactly the bug the crash-torture suite exists to catch:
// the client sees COMMIT, the crash loses the transaction.
//
// The check is lexical within the Commit body: a success return is covered
// when some fsync/flush/sync call or channel receive appears earlier in the
// function text. That accepts the two legitimate shapes (serial mode:
// fsync then return; group mode: receive the batch ack then return) and
// flags early-out `return nil` guards that skip the durability point.
var FsyncAck = &Analyzer{
	Name: "fsyncack",
	Doc:  "Commit must not acknowledge success on a path skipping the group-commit fsync",
	Run:  runFsyncAck,
}

func runFsyncAck(pass *Pass) {
	// The rule only applies to packages that own a durability point: one
	// of their functions is named fsync. Everywhere else, Commit methods
	// (MVCC sessions, middleware transactions) delegate durability and are
	// out of scope.
	declaresFsync := false
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "fsync" {
				declaresFsync = true
			}
		}
	}
	if !declaresFsync {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Commit" {
				continue
			}
			if !lastResultIsError(fd) {
				continue
			}
			checkCommitAcks(pass, fd)
		}
	}
}

// lastResultIsError reports whether the function's final result is `error`
// — the acknowledgement channel this rule is about.
func lastResultIsError(fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	id, ok := res.List[len(res.List)-1].Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// checkCommitAcks flags every `return nil` in fd whose position precedes
// all durability events (fsync-family calls and channel receives) in the
// body.
func checkCommitAcks(pass *Pass, fd *ast.FuncDecl) {
	var acks []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(e); name != "" && isFsyncFamily(name) {
				acks = append(acks, e.Pos())
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				acks = append(acks, e.Pos())
			}
		}
		return true
	})
	covered := func(pos token.Pos) bool {
		for _, a := range acks {
			if a < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // closures are not the commit path's return
		case *ast.ReturnStmt:
			if len(e.Results) == 0 {
				return true
			}
			last, ok := e.Results[len(e.Results)-1].(*ast.Ident)
			if !ok || last.Name != "nil" {
				return true
			}
			if !covered(e.Pos()) {
				pass.Reportf(e.Pos(), "Commit acknowledges success before any fsync or commit-ack receive; the durability point was skipped")
			}
		}
		return true
	})
}

// isFsyncFamily matches the durability-point call names: fsync itself plus
// the flush/sync spellings the log uses internally.
func isFsyncFamily(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "fsync") || strings.Contains(lower, "flush") ||
		strings.Contains(lower, "sync")
}
