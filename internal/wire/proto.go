// Package wire implements the query protocol between customers, the Madeus
// middleware, and DBMS nodes.
//
// The paper's implementation speaks libpq and the type-4 JDBC protocol so
// the middleware can interpose on unmodified PostgreSQL ("To interpret the
// operation directly, we implement the libpq and type 4 JDBC protocol",
// Sec 5.2). Our substitute is a minimal session-oriented protocol with the
// same structure: a startup message selecting a database, then a stream of
// query/response pairs. Madeus only needs to relay and classify operations,
// so any such protocol exercises the identical middleware code path.
//
// Framing: 1 type byte + 4-byte big-endian payload length + payload.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"madeus/internal/engine"
	"madeus/internal/sqlmini"
)

// Message type bytes.
const (
	MsgStartup   = 'S' // client → server: payload = database name
	MsgQuery     = 'Q' // client → server: payload = SQL text
	MsgTerminate = 'X' // client → server: close the session
	MsgReady     = 'O' // server → client: startup accepted
	MsgResult    = 'R' // server → client: encoded engine.Result
	MsgError     = 'E' // server → client: error text

	// Streaming multi-frame response (the pipelined Step-1 dump path).
	// A MsgQueryStream request is answered by zero or more MsgStreamChunk
	// frames followed by exactly one MsgStreamEnd (or a MsgError, which
	// terminates the stream at any point and leaves the protocol in sync).
	MsgQueryStream = 'q' // client → server: payload = SQL text, response may stream
	MsgStreamChunk = 'C' // server → client: u32 seq + u32 count + count statements
	MsgStreamEnd   = 'Z' // server → client: u32 chunk total + encoded engine.Result

	// Traced variants: identical semantics to MsgQuery/MsgQueryStream but
	// the payload is prefixed with a trace context (migration MTS + span id
	// + tenant) so a dbnode can attribute its server-side work to the
	// middleware migration that caused it. Servers that predate these types
	// answer with MsgError, which the client surfaces normally — the trace
	// prefix is an upgrade, not a handshake.
	MsgQueryTraced       = 'T' // client → server: trace context + SQL text
	MsgQueryStreamTraced = 't' // client → server: trace context + SQL text, response may stream

	// Remote observability scrape: madeusd pulls a dbnode's registry
	// snapshot and event-ring tail over the same session protocol the
	// queries use (no second port, no second auth path).
	MsgObsScrape   = 'M' // client → server: u64 since-seq + u32 max events + str tenant filter
	MsgObsSnapshot = 'D' // server → client: JSON-encoded obs.RemoteSnapshot
)

// maxPayload guards against corrupt frames.
const maxPayload = 64 << 20

// msgHeaderLen is the frame header size (type byte + length), counted into
// the wire.bytes.* observability counters.
const msgHeaderLen = 5

// frameBufPool recycles payload encode buffers on the hot send paths:
// client query frames and server result/stream frames. Reuse is safe
// because each connection is driven by one goroutine at a time and
// writeMsg hands the bytes to the writer synchronously, so a buffer may
// return to the pool as soon as writeMsg does.
var frameBufPool = sync.Pool{
	New: func() any { return &frameBuf{buf: make([]byte, 0, 1024)} },
}

type frameBuf struct{ buf []byte }

func getFrameBuf() *frameBuf { return frameBufPool.Get().(*frameBuf) }

func putFrameBuf(f *frameBuf) {
	f.buf = f.buf[:0]
	frameBufPool.Put(f)
}

// ServerError is an error reported by the remote server (as opposed to a
// transport failure). The middleware relays these to customers verbatim.
type ServerError struct {
	Msg string
}

func (e *ServerError) Error() string { return e.Msg }

// writeMsg writes one frame.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one frame.
func readMsg(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// --- Result encoding ---

type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) value(v sqlmini.Value) {
	e.buf = append(e.buf, byte(v.Kind))
	switch v.Kind {
	case sqlmini.KindNull:
	case sqlmini.KindInt:
		e.u64(uint64(v.Int))
	case sqlmini.KindFloat:
		e.u64(math.Float64bits(v.Float))
	case sqlmini.KindText:
		e.str(v.Str)
	case sqlmini.KindBool:
		if v.Bool {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if d.off+int(n) > len(d.buf) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) value() (sqlmini.Value, error) {
	k, err := d.byte()
	if err != nil {
		return sqlmini.Value{}, err
	}
	switch sqlmini.ValueKind(k) {
	case sqlmini.KindNull:
		return sqlmini.Null(), nil
	case sqlmini.KindInt:
		v, err := d.u64()
		return sqlmini.NewInt(int64(v)), err
	case sqlmini.KindFloat:
		v, err := d.u64()
		return sqlmini.NewFloat(math.Float64frombits(v)), err
	case sqlmini.KindText:
		s, err := d.str()
		return sqlmini.NewText(s), err
	case sqlmini.KindBool:
		b, err := d.byte()
		return sqlmini.NewBool(b != 0), err
	}
	return sqlmini.Value{}, fmt.Errorf("wire: bad value kind %d", k)
}

// EncodeStreamChunk serializes one stream chunk: its sequence number
// (contiguous from 0, assigned by the server) and its statements.
func EncodeStreamChunk(seq uint32, stmts []string) []byte {
	return appendStreamChunk(nil, seq, stmts)
}

// appendStreamChunk is the allocation-free core of EncodeStreamChunk: it
// encodes into dst (typically a pooled frame buffer) and returns it.
func appendStreamChunk(dst []byte, seq uint32, stmts []string) []byte {
	e := encoder{buf: dst}
	e.u32(seq)
	e.u32(uint32(len(stmts)))
	for _, s := range stmts {
		e.str(s)
	}
	return e.buf
}

// DecodeStreamChunk parses an encoded stream chunk.
func DecodeStreamChunk(buf []byte) (uint32, []string, error) {
	d := decoder{buf: buf}
	seq, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	n, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	stmts := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return 0, nil, err
		}
		stmts = append(stmts, s)
	}
	return seq, stmts, nil
}

// EncodeStreamEnd serializes the stream trailer: how many chunks preceded
// it (the client cross-checks for silent truncation) and the final result.
func EncodeStreamEnd(chunks uint32, res *engine.Result) []byte {
	return appendStreamEnd(nil, chunks, res)
}

// appendStreamEnd encodes the stream trailer into dst and returns it.
func appendStreamEnd(dst []byte, chunks uint32, res *engine.Result) []byte {
	e := encoder{buf: dst}
	e.u32(chunks)
	return appendResult(e.buf, res)
}

// DecodeStreamEnd parses an encoded stream trailer.
func DecodeStreamEnd(buf []byte) (uint32, *engine.Result, error) {
	d := decoder{buf: buf}
	chunks, err := d.u32()
	if err != nil {
		return 0, nil, err
	}
	res, err := DecodeResult(buf[d.off:])
	return chunks, res, err
}

// EncodeResult serializes an engine result.
func EncodeResult(res *engine.Result) []byte {
	return appendResult(nil, res)
}

// appendResult encodes an engine result into dst and returns it.
func appendResult(dst []byte, res *engine.Result) []byte {
	e := encoder{buf: dst}
	e.str(res.Tag)
	e.u32(uint32(res.Affected))
	e.u32(uint32(len(res.Columns)))
	for _, c := range res.Columns {
		e.str(c)
	}
	e.u32(uint32(len(res.Rows)))
	for _, row := range res.Rows {
		e.u32(uint32(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
	return e.buf
}

// DecodeResult parses an encoded engine result.
func DecodeResult(buf []byte) (*engine.Result, error) {
	d := decoder{buf: buf}
	res := &engine.Result{}
	var err error
	if res.Tag, err = d.str(); err != nil {
		return nil, err
	}
	aff, err := d.u32()
	if err != nil {
		return nil, err
	}
	res.Affected = int(aff)
	ncols, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ncols; i++ {
		c, err := d.str()
		if err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, c)
	}
	nrows, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nrows; i++ {
		nvals, err := d.u32()
		if err != nil {
			return nil, err
		}
		row := make([]sqlmini.Value, nvals)
		for j := uint32(0); j < nvals; j++ {
			if row[j], err = d.value(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
