package lsir

import (
	"math/rand"
	"testing"
)

// These tests machine-check the paper's Lemmas 4-6 (Sec 3.3) on randomized
// SI histories: the properties that let the middleware replay dependencies
// from operation *timing* alone, without inspecting data items.

// TestLemma4InterWRImpliesCommitBeforeFirstRead: whenever an inter-wr
// dependency exists from committed update transaction T_i to T_j's read of
// T_i's version, T_i's commit precedes T_j's FIRST read in the history
// (c_i < r_j,1) — which is exactly what the MLC ordering (ETS_i < STS_j or
// the rule-1-b case) captures.
func TestLemma4InterWRImpliesCommitBeforeFirstRead(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		h := Generate(rng, DefaultGenConfig())
		txns := h.Txns()
		for _, d := range FilterDeps(Dependencies(h), DepWR, false) {
			from, to := h.Ops[d.From], h.Ops[d.To]
			writer, reader := txns[from.Txn], txns[to.Txn]
			if !writer.Committed {
				continue
			}
			// Under SI a reader can only observe committed versions:
			// the writer's commit must precede the reader's snapshot,
			// i.e. its FIRST read.
			if reader.FirstRead >= 0 && writer.End > reader.FirstRead {
				t.Fatalf("trial %d: inter-wr from T%d to T%d but c%d at %d after r%d,1 at %d in %s",
					trial, from.Txn, to.Txn, from.Txn, writer.End, to.Txn, reader.FirstRead, h)
			}
		}
	}
}

// TestLemma5RWImpliesFirstReadBeforeCommit: every rw-dependency (the reader
// observed the version the writer later superseded) has the reader's FIRST
// read before the writer's commit: r_j,1 < c_i.
func TestLemma5RWImpliesFirstReadBeforeCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		h := Generate(rng, DefaultGenConfig())
		txns := h.Txns()
		deps := Dependencies(h)
		for _, d := range append(FilterDeps(deps, DepRW, false), FilterDeps(deps, DepRW, true)...) {
			readOp, writeOp := h.Ops[d.From], h.Ops[d.To]
			reader, writer := txns[readOp.Txn], txns[writeOp.Txn]
			if !writer.Committed || reader.FirstRead < 0 || writer.End < 0 {
				continue
			}
			if reader.FirstRead > writer.End {
				t.Fatalf("trial %d: rw-dep but r%d,1 at %d after c%d at %d in %s",
					trial, readOp.Txn, reader.FirstRead, writeOp.Txn, writer.End, h)
			}
		}
	}
}

// TestLemma6IntraWWOrderedWithinTransaction: intra-ww dependencies always
// point forward within the same transaction (FIFO write order suffices to
// replay them — rule 2).
func TestLemma6IntraWWOrderedWithinTransaction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		h := Generate(rng, DefaultGenConfig())
		for _, d := range FilterDeps(Dependencies(h), DepWW, true) {
			if h.Ops[d.From].Txn != h.Ops[d.To].Txn {
				t.Fatalf("trial %d: intra-ww across transactions", trial)
			}
			if d.From >= d.To {
				t.Fatalf("trial %d: intra-ww not forward in history order", trial)
			}
		}
	}
}

// TestLemma2OtherReadsCarryNoNewInformation: discarding non-first reads
// (mapping function rule 2) loses nothing — each later read of a committed
// update transaction observes exactly the version determined by its
// snapshot (the state at its first read) or its own writes, never anything
// newer.
func TestLemma2OtherReadsCarryNoNewInformation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		h := Generate(rng, DefaultGenConfig())
		txns := h.Txns()
		// Committed state per item at each history position.
		type verAt struct {
			pos int
			ver int
		}
		byItem := make(map[string][]verAt)
		for i, op := range h.Ops {
			if op.Kind == OpCommit {
				// Apply this txn's writes (committed).
				for j := 0; j <= i; j++ {
					w := h.Ops[j]
					if w.Txn == op.Txn && w.Kind == OpWrite {
						byItem[w.Item] = append(byItem[w.Item], verAt{pos: i, ver: w.Txn})
					}
				}
			}
		}
		committedAt := func(item string, pos int) int {
			cur := 0
			for _, va := range byItem[item] {
				if va.pos < pos {
					cur = va.ver
				}
			}
			return cur
		}
		for _, ti := range txns {
			if !ti.Committed || ti.FirstRead < 0 {
				continue
			}
			ownWrites := make(map[string]bool)
			for i := ti.FirstRead; i <= ti.End; i++ {
				op := h.Ops[i]
				if op.Txn != ti.ID {
					continue
				}
				switch op.Kind {
				case OpWrite:
					ownWrites[op.Item] = true
				case OpRead:
					want := committedAt(op.Item, ti.FirstRead)
					if ownWrites[op.Item] {
						want = ti.ID
					}
					if op.ReadVer != want {
						t.Fatalf("trial %d: T%d read %s_%d at %d, snapshot says %s_%d in %s",
							trial, ti.ID, op.Item, op.ReadVer, i, op.Item, want, h)
					}
				}
			}
		}
	}
}
