package mvcc

// Vacuum support: version chains grow with every update (old versions are
// superseded, not removed, and aborted versions linger invisibly). Vacuum
// prunes versions that no current or future snapshot can see, bounded by
// the oldest snapshot still held by an active transaction — the same
// horizon rule PostgreSQL's VACUUM uses.

// Horizon returns the oldest snapshot any active transaction holds (or the
// latest CSN when none are active): versions superseded at or before the
// horizon are unreachable.
func (m *Manager) Horizon() CSN {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h := m.lastCSN
	for _, st := range m.states {
		if st.status == StatusActive && st.snap < h {
			h = st.snap
		}
	}
	return h
}

// Vacuum removes dead versions from the table: versions created by aborted
// transactions, and versions superseded (deleted or overwritten) by a
// transaction that committed at or before the horizon. It returns the
// number of versions removed. Empty chains are kept (their map entries are
// negligible and removing them would race in-flight primary-key lookups).
func (tb *Table) Vacuum(horizon CSN) int {
	tb.mu.Lock()
	chains := make([]*rowChain, 0, len(tb.rows))
	for _, ch := range tb.rows {
		chains = append(chains, ch)
	}
	tb.mu.Unlock()

	removed := 0
	for _, ch := range chains {
		ch.mu.Lock()
		kept := ch.versions[:0]
		for i := range ch.versions {
			v := ch.versions[i]
			if tb.dead(&v, horizon) {
				removed++
				continue
			}
			kept = append(kept, v)
		}
		// Zero the tail so dropped rows are collectable.
		for i := len(kept); i < len(ch.versions); i++ {
			ch.versions[i] = version{}
		}
		ch.versions = kept
		ch.mu.Unlock()
	}
	tb.sweepIndexes()
	return removed
}

// dead reports whether no snapshot at or after the horizon can see v.
func (tb *Table) dead(v *version, horizon CSN) bool {
	cst, ccsn := tb.mgr.statusOf(v.xmin)
	switch cst {
	case StatusAborted:
		return true
	case StatusActive:
		return false
	}
	_ = ccsn
	if v.xmax == 0 {
		return false
	}
	dst, dcsn := tb.mgr.statusOf(v.xmax)
	// Superseded before the horizon: every snapshot ≥ horizon sees the
	// deleter's outcome instead of this version.
	return dst == StatusCommitted && dcsn <= horizon
}
