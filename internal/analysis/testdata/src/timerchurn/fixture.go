// Package timerchurn exercises the timerchurn analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package timerchurn

import (
	"context"
	"time"
)

func work() {}

// afterInFor is the classic churn: a fresh timer every iteration.
func afterInFor(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(50 * time.Millisecond): // want
		}
		work()
	}
}

// afterInRange churns once per element.
func afterInRange(items []int, stop chan struct{}) {
	for range items {
		select {
		case <-stop:
			return
		case <-time.After(time.Second): // want
		}
	}
}

// afterInNestedBlock is still inside the loop even under an if.
func afterInNestedBlock(busy bool) {
	for i := 0; i < 10; i++ {
		if busy {
			<-time.After(time.Millisecond) // want
		}
	}
}

// reusedTimer is the sanctioned shape: one timer, Reset per iteration.
func reusedTimer(ctx context.Context) {
	t := time.NewTimer(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			t.Reset(50 * time.Millisecond)
		}
		work()
	}
}

// tickerLoop is also fine.
func tickerLoop(ctx context.Context) {
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
		}
	}
}

// afterOutsideLoop fires once; no churn.
func afterOutsideLoop() {
	<-time.After(time.Millisecond)
	for i := 0; i < 3; i++ {
		work()
	}
}

// afterInFuncLitInLoop is attributed to the literal, not the loop: the
// literal runs elsewhere (or never), so the loop itself does not churn.
func afterInFuncLitInLoop() {
	var fns []func()
	for i := 0; i < 3; i++ {
		fns = append(fns, func() {
			<-time.After(time.Millisecond)
		})
	}
	_ = fns
}

// innerLoopFlaggedOnce: the call sits in the inner loop; the outer visit
// must skip it so it is reported exactly once.
func innerLoopFlaggedOnce(stop chan struct{}) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond): // want
			}
		}
	}
}

// ignored documents a deliberate one-shot wait in a rarely-run loop.
func ignored(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		//madeusvet:ignore timerchurn fixture: cold path, runs once a day
		case <-time.After(24 * time.Hour):
		}
	}
}

// notTimePackage: a local type named time-ish must not match.
type fakeClock struct{}

func (fakeClock) After(d int) chan struct{} { return nil }

func notTimePackage(clock fakeClock) {
	for i := 0; i < 3; i++ {
		_ = clock.After(1)
	}
}
