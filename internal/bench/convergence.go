package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/flow"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wal"
	"madeus/internal/wire"
)

// Convergence is the backpressure ablation (not a paper figure): one
// heavy-write tenant migrating to a destination whose replay is bottlenecked
// by an exclusive serial fsync. It runs the same migration twice — pacing
// off, then on — and reports what each run cost: outcome, wall time, peak
// debt, peak SSL memory, and the strongest commit brake applied. The unpaced
// run is the seed behavior (debt diverges until the deadline watchdog aborts
// through the rollback protocol); the paced run converges and switches over
// with SSL memory bounded throughout.
func Convergence(cfg Config) (*Table, error) {
	fcfg := flow.Config{
		MaxSSLBytes:    64 << 20,
		PaceTargetDebt: 64,
		PaceStep:       10 * time.Millisecond,
		PaceMaxDelay:   flow.MaxPaceDelay,
		PaceDecay:      0.5,
	}
	mw, err := core.New(core.Options{
		Players:        cfg.Players,
		CatchupTimeout: cfg.CatchupTimeout,
		Flow:           fcfg,
	})
	if err != nil {
		return nil, err
	}
	defer mw.Close()

	// Asymmetric nodes are the whole experiment: a fast source (short lock
	// timeout so the hot TPC-W rows never convoy) against a destination
	// whose one executor pays a serial fsync per replayed commit.
	src, err := cluster.NewNode("node0", cluster.NodeOptions{
		Engine: engine.Options{LockTimeout: 50 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	dst, err := cluster.NewNode("node1", cluster.NodeOptions{
		Engine: engine.Options{
			WAL:       wal.Options{SyncDelay: 4 * time.Millisecond, Mode: wal.SerialCommit},
			ExecSlots: 1,
		},
	})
	if err != nil {
		return nil, err
	}
	defer dst.Close()
	mw.AddNode(src)
	mw.AddNode(dst)

	const tenant = "shop"
	scale := tpcw.Scale{Items: 20, Customers: 60, Authors: 5}
	if err := mw.ProvisionTenant(tenant, "node0"); err != nil {
		return nil, err
	}
	{
		c, err := wire.Dial(mw.Addr(), tenant)
		if err != nil {
			return nil, err
		}
		if err := tpcw.Load(c, scale); err != nil {
			c.Close()
			return nil, err
		}
		c.Close()
	}
	tn, ok := mw.Tenant(tenant)
	if !ok {
		return nil, fmt.Errorf("bench: tenant %s vanished", tenant)
	}

	// Heavy-write fleet: ordering mix (50% updates), no think time.
	ctx, cancel := context.WithCancel(context.Background())
	fleetErr := make(chan error, 1)
	go func() {
		fleetErr <- tpcw.RunFleet(ctx, 4, tpcw.Ordering, scale, 0,
			func() (tpcw.Execer, error) { return wire.Dial(mw.Addr(), tenant) },
			metrics.NewRecorder())
	}()
	defer func() {
		cancel()
		<-fleetErr
	}()
	time.Sleep(100 * time.Millisecond) // ramp up

	t := &Table{
		Title:  "convergence: heavy-write migration, pacing off vs on",
		Header: []string{"pacing", "outcome", "time", "peak debt", "peak SSL", "peak delay", "syncsets"},
	}

	unpaced, err := convergenceRun(mw, tn, tenant, core.MigrateOptions{
		Strategy:      core.Madeus,
		DisablePacing: true,
		Deadline:      1500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(unpaced.row("off")...)

	paced, err := convergenceRun(mw, tn, tenant, core.MigrateOptions{Strategy: core.Madeus})
	if err != nil {
		return nil, err
	}
	t.AddRow(paced.row("on")...)

	t.Note("destination replay bottleneck: 1 exec slot behind a 4ms serial fsync")
	t.Note("unpaced deadline 1500ms; paced run uses the adaptive MIMD controller (target debt %d)", fcfg.PaceTargetDebt)
	return t, nil
}

// convergenceResult is one migration attempt's measurements.
type convergenceResult struct {
	outcome   string
	elapsed   time.Duration
	peakDebt  int
	peakSSL   int64
	peakDelay time.Duration
	syncsets  int
}

func (r convergenceResult) row(pacing string) []string {
	return []string{
		pacing,
		r.outcome,
		r.elapsed.Round(time.Millisecond).String(),
		fmt.Sprint(r.peakDebt),
		fmt.Sprintf("%.1f MiB", float64(r.peakSSL)/(1<<20)),
		r.peakDelay.Round(time.Millisecond).String(),
		fmt.Sprint(r.syncsets),
	}
}

// convergenceRun migrates once under the running fleet, sampling the tenant
// monitor for the peaks. A deadline or stall abort is an expected outcome
// for the unpaced leg, not an error.
func convergenceRun(mw *core.Middleware, tn *core.Tenant, tenant string,
	opts core.MigrateOptions) (convergenceResult, error) {
	stop := make(chan struct{})
	done := make(chan struct{})
	var res convergenceResult
	go func() {
		defer close(done)
		// One reusable ticker-style timer; time.After here would allocate
		// a fresh timer per 50ms sample for the whole migration.
		tick := time.NewTimer(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				tick.Reset(50 * time.Millisecond)
			}
			mon := tn.Monitor()
			if mon.Debt > res.peakDebt {
				res.peakDebt = mon.Debt
			}
			if mon.SSLBytes > res.peakSSL {
				res.peakSSL = mon.SSLBytes
			}
			if mon.PaceDelay > res.peakDelay {
				res.peakDelay = mon.PaceDelay
			}
		}
	}()

	start := time.Now()
	rep, err := mw.Migrate(tenant, "node1", opts)
	res.elapsed = time.Since(start)
	close(stop)
	<-done

	switch {
	case err == nil:
		res.outcome = "converged"
	case errors.Is(err, flow.ErrDeadline):
		res.outcome = "deadline abort"
	case errors.Is(err, flow.ErrStalled):
		res.outcome = "stall abort"
	default:
		return res, err
	}
	if rep != nil {
		res.syncsets = rep.Propagation.Syncsets
	}
	return res, nil
}
