package mvcc

import (
	"math/rand"
	"sync"
	"testing"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// Tests for the sorted chain spine (DESIGN.md §5i): scans walk a
// presorted chain directory maintained on chain creation instead of
// collecting and sorting the key set per call, and the amortized prune
// trigger that keeps the freeze backlog from being rescanned per commit.

// TestScanSpineOrderAndCompleteness inserts integer keys in random order
// across many transactions and checks that a scan sees exactly the
// committed set, ascending by primary key — the spine must stay sorted
// and complete under interleaved inserts, updates, and aborts.
func TestScanSpineOrderAndCompleteness(t *testing.T) {
	m, tb := testTable(t)
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(500)
	live := map[int64]bool{}
	for _, k := range keys {
		w := m.Begin()
		mustInsert(t, tb, w, int64(k), int64(k)*10)
		if k%7 == 0 {
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		mustCommit(t, w)
		live[int64(k)] = true
	}
	r := m.Begin()
	defer r.Abort()
	var got []int64
	if err := tb.Scan(r, func(row storage.Row) bool {
		got = append(got, row[0].Int)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(live) {
		t.Fatalf("scan saw %d rows, want %d", len(got), len(live))
	}
	for i, k := range got {
		if !live[k] {
			t.Fatalf("scan returned key %d which is not committed-live", k)
		}
		if i > 0 && got[i-1] >= k {
			t.Fatalf("scan order violated: key %d at %d after %d", k, i, got[i-1])
		}
	}
}

// TestScanSpineTextKeys covers the comparePK fallback path: text primary
// keys must still come back in ascending order.
func TestScanSpineTextKeys(t *testing.T) {
	s, err := storage.NewSchema("kv", []storage.Column{
		{Name: "k", Type: sqlmini.KindText, PrimaryKey: true},
		{Name: "v", Type: sqlmini.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	tb := NewTable(s, m)
	for _, k := range []string{"pear", "apple", "fig", "date", "cherry"} {
		w := m.Begin()
		if err := tb.Insert(w, storage.Row{sqlmini.NewText(k), sqlmini.NewInt(1)}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, w)
	}
	r := m.Begin()
	defer r.Abort()
	var got []string
	tb.Scan(r, func(row storage.Row) bool { got = append(got, row[0].Str); return true })
	want := []string{"apple", "cherry", "date", "fig", "pear"}
	if len(got) != len(want) {
		t.Fatalf("scan saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

// TestScanSpineMatchesLegacyReads runs the same committed state through
// the spine path and the LegacyReads path and demands identical output:
// same rows, same order. The legacy path is the ablation baseline, so the
// two must never drift apart semantically.
func TestScanSpineMatchesLegacyReads(t *testing.T) {
	m, tb := testTable(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		w := m.Begin()
		k := rng.Int63n(64)
		if err := tb.Insert(w, row(k, int64(i))); err != nil {
			if _, err := tb.Update(w, key(k), row(k, int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, w)
	}
	collect := func() []storage.Row {
		r := m.Begin()
		defer r.Abort()
		var out []storage.Row
		tb.Scan(r, func(row storage.Row) bool { out = append(out, row); return true })
		return out
	}
	spine := collect()
	m.LegacyReads = true
	legacy := collect()
	m.LegacyReads = false
	if len(spine) != len(legacy) {
		t.Fatalf("spine scan %d rows, legacy scan %d", len(spine), len(legacy))
	}
	for i := range spine {
		if spine[i][0].Int != legacy[i][0].Int || spine[i][1].Int != legacy[i][1].Int {
			t.Fatalf("row %d differs: spine %v legacy %v", i, spine[i], legacy[i])
		}
	}
}

// TestScanSpineConcurrentInserts races scans against inserters under the
// race detector: scans must never miss a row committed before their
// snapshot and must stay PK-ordered while the spine shifts underneath.
func TestScanSpineConcurrentInserts(t *testing.T) {
	m, tb := testTableStriped(t, 8)
	seed := m.Begin()
	for k := int64(0); k < 50; k++ {
		mustInsert(t, tb, seed, k*10, k)
	}
	mustCommit(t, seed)

	var inserters sync.WaitGroup
	for g := 0; g < 4; g++ {
		inserters.Add(1)
		go func(g int) {
			defer inserters.Done()
			for i := 0; i < 200; i++ {
				w := m.Begin()
				// Unique keys per goroutine, interleaved with the seeded range.
				if err := tb.Insert(w, row(int64(1000+g*1000+i), int64(i))); err != nil {
					t.Error(err)
					w.Abort()
					return
				}
				if _, err := w.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var scanner sync.WaitGroup
	scanner.Add(1)
	go func() {
		defer scanner.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r := m.Begin()
			last := int64(-1)
			n := 0
			tb.Scan(r, func(row storage.Row) bool {
				if row[0].Int <= last {
					t.Errorf("scan out of order: %d after %d", row[0].Int, last)
					return false
				}
				last = row[0].Int
				n++
				return true
			})
			r.Abort()
			if n < 50 {
				t.Errorf("scan saw %d rows, want at least the 50 seeded", n)
				return
			}
		}
	}()
	inserters.Wait()
	close(stop)
	scanner.Wait()
	// Final state: all 850 rows visible in order.
	r := m.Begin()
	defer r.Abort()
	if n := tb.Len(r); n != 50+4*200 {
		t.Fatalf("final visible rows = %d, want %d", n, 50+4*200)
	}
}

// TestPruneTriggerAmortizedUnderLaggingHorizon pins the snapshot horizon
// with a long-lived reader and commits far more than pruneBatch writers.
// The freeze backlog must retain every one of them (nothing below the
// horizon may freeze), and — the regression — the trigger must stay on
// the enqueue counter: once the pin is released a single pass drains the
// whole backlog. Before the fix the trigger fired on queue length, so a
// lagging horizon made every commit rescan and reallocate the entire
// backlog.
func TestPruneTriggerAmortizedUnderLaggingHorizon(t *testing.T) {
	m, tb := testTable(t)
	w0 := m.Begin()
	mustInsert(t, tb, w0, 0, 0)
	mustCommit(t, w0)

	pin := m.Begin()
	if tb.Get(pin, key(0)) == nil { // materialize the snapshot's use
		t.Fatal("setup: pinned reader sees nothing")
	}

	const writers = 10 * pruneBatch
	for i := 1; i <= writers; i++ {
		w := m.Begin()
		if ok, err := tb.Update(w, key(0), row(0, int64(i))); err != nil || !ok {
			t.Fatalf("writer %d: %v ok=%v", i, err, ok)
		}
		mustCommit(t, w)
	}
	// Horizon is pinned below every writer CSN: all stay queued.
	if n := m.PendingFreezes(); n != writers {
		t.Fatalf("PendingFreezes = %d under pinned horizon, want %d", n, writers)
	}
	if err := pin.Abort(); err != nil {
		t.Fatal(err)
	}
	// One pass drains the entire backlog now that the horizon moved.
	if removed := m.PruneStates(); removed != writers {
		t.Fatalf("PruneStates removed %d dead versions, want %d", removed, writers)
	}
	if n := m.PendingFreezes(); n != 0 {
		t.Fatalf("PendingFreezes = %d after drain, want 0", n)
	}
	if n := m.StateCount(); n != 0 {
		t.Fatalf("StateCount = %d after drain, want 0", n)
	}
	r := m.Begin()
	defer r.Abort()
	if got := tb.Get(r, key(0)); got == nil || got[1].Int != writers {
		t.Fatalf("latest value lost after drain: %v", got)
	}
}
