package core

// Overload and convergence suite: a TPC-W heavy-write fleet against a
// destination whose replay is rate-limited by an exclusive simulated fsync.
// On that rig the seed behavior (no pacing) demonstrably diverges — debt
// grows monotonically until the watchdog aborts — while the adaptive pacer
// brakes the source until the same migration converges and switches over,
// with SSL memory bounded the whole way.

import (
	"context"
	"errors"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/flow"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

// debtSampler polls the tenant monitor in the background and records the
// debt trajectory plus the peaks the assertions need.
type debtSampler struct {
	stop chan struct{}
	done chan struct{}

	debts        []int // samples taken while in step3.propagate
	peakSSLBytes int64
	peakDelay    time.Duration
}

func startSampler(tn *Tenant) *debtSampler {
	s := &debtSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(100 * time.Millisecond):
			}
			mon := tn.Monitor()
			if mon.SSLBytes > s.peakSSLBytes {
				s.peakSSLBytes = mon.SSLBytes
			}
			if mon.PaceDelay > s.peakDelay {
				s.peakDelay = mon.PaceDelay
			}
			if mon.Phase == "step3.propagate" {
				s.debts = append(s.debts, mon.Debt)
			}
		}
	}()
	return s
}

func (s *debtSampler) join() {
	close(s.stop)
	<-s.done
}

func TestHeavyWriteMigrationConvergesWithPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second overload scenario")
	}
	if raceEnabled {
		// The divergence phase is calibrated against uninstrumented writer
		// throughput; race-instrumented EBs cannot outrun even the slowed
		// destination. verify.sh runs this test without -race.
		t.Skip("race detector throttles the writer fleet below divergence pressure")
	}
	fcfg := flow.Config{
		MaxSSLBytes:    64 << 20,
		PaceTargetDebt: 64,
		PaceStep:       10 * time.Millisecond,
		PaceMaxDelay:   250 * time.Millisecond,
		PaceDecay:      0.5,
	}
	// The source's lock timeout must be short: the engine's 2s default
	// lets the small-item-count TPC-W mix convoy on hot rows, and a
	// convoyed fleet generates too little write pressure to diverge.
	// Aborted waiters retry immediately, which keeps the source hot.
	rig := newFlowRig(t, Options{Flow: fcfg},
		engine.Options{LockTimeout: 50 * time.Millisecond}, // fast source
		slowDest(),
	)
	if err := rig.mw.ProvisionTenant("a", "node0"); err != nil {
		t.Fatal(err)
	}
	tn, _ := rig.mw.Tenant("a")
	scale := tpcw.Scale{Items: 20, Customers: 60, Authors: 5}
	{
		c := rig.connect(t, "a")
		if err := tpcw.Load(c, scale); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	// Heavy-write fleet: 4 EBs, ordering mix (50% updates), no think time.
	ctx, cancel := context.WithCancel(context.Background())
	fleetErr := make(chan error, 1)
	go func() {
		fleetErr <- tpcw.RunFleet(ctx, 4, tpcw.Ordering, scale, 0,
			func() (tpcw.Execer, error) { return wire.Dial(rig.mw.Addr(), "a") },
			metrics.NewRecorder())
	}()
	defer func() {
		cancel()
		if err := <-fleetErr; err != nil {
			t.Errorf("fleet: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the fleet ramp up

	// Phase A — the seed behavior: pacing disabled, the destination
	// cannot keep up, and the debt diverges until the deadline watchdog
	// aborts the attempt through the rollback protocol.
	sampler := startSampler(tn)
	_, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:      Madeus,
		DisablePacing: true,
		Deadline:      1500 * time.Millisecond,
	})
	sampler.join()
	if !errors.Is(err, flow.ErrDeadline) {
		t.Fatalf("unpaced migration: err = %v, want flow.ErrDeadline", err)
	}
	if len(sampler.debts) < 5 {
		t.Fatalf("only %d debt samples during propagation", len(sampler.debts))
	}
	for i := 1; i < len(sampler.debts); i++ {
		if sampler.debts[i] < sampler.debts[i-1] {
			t.Fatalf("unpaced debt not monotonically increasing: %v", sampler.debts)
		}
	}
	first, last := sampler.debts[0], sampler.debts[len(sampler.debts)-1]
	if last < first+500 {
		t.Fatalf("unpaced debt grew only %d -> %d; no divergence", first, last)
	}
	t.Logf("unpaced: debt %d -> %d over %d samples, then deadline abort", first, last, len(sampler.debts))
	if got := flow.SSLBytes(); got != 0 {
		t.Fatalf("flow.ssl.bytes after rollback = %d, want 0", got)
	}

	// Phase B — same fleet, same slow destination, pacing on: the
	// controller brakes the source until replay outruns capture, the debt
	// drains, and the switchover completes, with SSL memory under the cap
	// throughout.
	sampler = startSampler(tn)
	start := time.Now()
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	converged := time.Since(start)
	sampler.join()
	if err != nil {
		t.Fatalf("paced migration failed after %v: %v", converged, err)
	}
	if rep.RollbackStep != "" {
		t.Fatalf("paced migration rolled back at %s: %s", rep.RollbackStep, rep.RollbackReason)
	}
	if tn.Monitor().Node != "node1" {
		t.Fatalf("tenant still on %s after migration", tn.Monitor().Node)
	}
	if sampler.peakDelay == 0 {
		t.Error("pacer never engaged: peak commit delay is 0")
	}
	if sampler.peakSSLBytes == 0 || sampler.peakSSLBytes > fcfg.MaxSSLBytes {
		t.Errorf("peak SSL bytes %d, want in (0, %d]", sampler.peakSSLBytes, fcfg.MaxSSLBytes)
	}
	if d := tn.Monitor().PaceDelay; d != 0 {
		t.Errorf("pace delay %v after migration, want 0 (brake must release)", d)
	}
	t.Logf("paced: converged in %v, peak debt delay %v, peak SSL %d bytes, %d syncsets",
		converged, sampler.peakDelay, sampler.peakSSLBytes, rep.Propagation.Syncsets)
}

// TestUnpacedOverloadAbortsCleanly pins the "no hang" half of the
// guarantee at a smaller scale: with pacing disabled and no deadline
// margin, the watchdog aborts via rollback rather than letting Step 3 camp
// on CatchupTimeout, and the tenant is immediately usable on the source.
func TestUnpacedOverloadAbortsCleanly(t *testing.T) {
	rig := newFlowRig(t, Options{Flow: flow.Config{}},
		engine.Options{},
		slowDest(),
	)
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 0, stop, done)
	}
	defer func() {
		close(stop)
		for w := 0; w < writers; w++ {
			<-done
		}
	}()
	time.Sleep(30 * time.Millisecond)

	aborts0 := flow.DeadlineAborts()
	start := time.Now()
	_, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:      Madeus,
		DisablePacing: true,
		Deadline:      800 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, flow.ErrDeadline) {
		t.Fatalf("err = %v, want flow.ErrDeadline", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the watchdog must fire near the 800ms deadline", elapsed)
	}
	if flow.DeadlineAborts() == aborts0 {
		t.Error("deadline_aborts counter did not advance")
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after abort = %v, want normal", st)
	}
	// Service continues on the source.
	c := rig.connect(t, "a")
	defer c.Close()
	if _, err := c.Exec("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatalf("source unusable after abort: %v", err)
	}
}
