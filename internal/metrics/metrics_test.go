package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	r := NewRecorder()
	for _, ms := range []int{10, 20, 30, 40, 100} {
		r.Observe(time.Duration(ms) * time.Millisecond)
	}
	r.ObserveError()
	s := r.Summarize()
	if s.Count != 5 || s.Errors != 1 {
		t.Errorf("count/errors = %d/%d", s.Count, s.Errors)
	}
	if s.Mean != 40*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.P50 != 30*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 != 100*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
}

func TestEmptySummary(t *testing.T) {
	r := NewRecorder()
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.Throughput != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if got := r.Series(time.Second); got != nil {
		t.Errorf("empty series: %v", got)
	}
}

func TestSeriesBucketsByElapsedTime(t *testing.T) {
	r := NewRecorder()
	r.Observe(5 * time.Millisecond)
	r.Observe(15 * time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	r.Observe(30 * time.Millisecond)
	buckets := r.Series(20 * time.Millisecond)
	if len(buckets) < 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Count != 2 {
		t.Errorf("bucket0 count = %d, want 2", buckets[0].Count)
	}
	if buckets[0].Mean != 10*time.Millisecond {
		t.Errorf("bucket0 mean = %v", buckets[0].Mean)
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 3 {
		t.Errorf("series total = %d, want 3", total)
	}
	if buckets[0].Throughput != 100 { // 2 per 20ms
		t.Errorf("bucket0 throughput = %v", buckets[0].Throughput)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(time.Millisecond)
				r.ObserveError()
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 || r.Errors() != 800 {
		t.Errorf("count=%d errors=%d", r.Count(), r.Errors())
	}
}

// TestPropertyQuantileOrdering: for random observation sets, p50 <= p95 <=
// p99 <= max and the mean lies within [min, max].
func TestPropertyQuantileOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder()
		n := 1 + rng.Intn(200)
		minL, maxL := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < n; i++ {
			l := time.Duration(rng.Intn(1000)+1) * time.Microsecond
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			r.Observe(l)
		}
		s := r.Summarize()
		return s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Mean >= minL && s.Mean <= maxL && s.Max == maxL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Observe(time.Millisecond)
	if s := r.Summarize().String(); s == "" {
		t.Error("empty String()")
	}
}

func TestDroppedAfterClose(t *testing.T) {
	r := NewRecorder()
	r.Observe(time.Millisecond)
	r.Close()
	r.Observe(2 * time.Millisecond)
	r.ObserveError()
	if r.Count() != 1 || r.Errors() != 0 || r.Dropped() != 2 {
		t.Errorf("count=%d errors=%d dropped=%d, want 1/0/2", r.Count(), r.Errors(), r.Dropped())
	}
	s := r.Summarize()
	if s.Dropped != 2 {
		t.Errorf("summary dropped = %d, want 2", s.Dropped)
	}
	if got := s.String(); !strings.Contains(got, "dropped=2") {
		t.Errorf("String() = %q, want dropped=2", got)
	}
	// A clean summary keeps its original shape.
	if got := NewRecorder().Summarize().String(); strings.Contains(got, "dropped") {
		t.Errorf("clean String() = %q, should omit dropped", got)
	}
}

func TestDroppedAtCap(t *testing.T) {
	r := NewRecorder()
	r.SetCap(2)
	for i := 0; i < 5; i++ {
		r.Observe(time.Millisecond)
	}
	if r.Count() != 2 || r.Dropped() != 3 {
		t.Errorf("count=%d dropped=%d, want 2/3", r.Count(), r.Dropped())
	}
	// Errors are not subject to the observation cap.
	r.ObserveError()
	if r.Errors() != 1 {
		t.Errorf("errors = %d, want 1", r.Errors())
	}
}

func TestSingleObservation(t *testing.T) {
	r := NewRecorder()
	r.ObserveAt(7*time.Millisecond, 10*time.Millisecond)
	s := r.Summarize()
	// n=1: every quantile, the mean, and the max are the lone observation.
	if s.Count != 1 || s.Mean != 7*time.Millisecond || s.P50 != 7*time.Millisecond ||
		s.P95 != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Errorf("single-observation summary: %+v", s)
	}
	if s.Span != 10*time.Millisecond {
		t.Errorf("span = %v, want 10ms", s.Span)
	}
	if s.Throughput != 100 { // 1 observation over 10ms
		t.Errorf("throughput = %v, want 100/s", s.Throughput)
	}
}

func TestTwoObservationQuantiles(t *testing.T) {
	r := NewRecorder()
	r.ObserveAt(10*time.Millisecond, time.Millisecond)
	r.ObserveAt(20*time.Millisecond, 2*time.Millisecond)
	s := r.Summarize()
	// n=2: ceil(0.5*2)=1 → p50 is the lower value; p95/p99 the upper.
	if s.P50 != 10*time.Millisecond {
		t.Errorf("p50 = %v, want 10ms", s.P50)
	}
	if s.P95 != 20*time.Millisecond || s.P99 != 20*time.Millisecond {
		t.Errorf("p95/p99 = %v/%v, want 20ms", s.P95, s.P99)
	}
	if s.Mean != 15*time.Millisecond || s.Max != 20*time.Millisecond {
		t.Errorf("mean/max = %v/%v", s.Mean, s.Max)
	}
}

func TestSeriesBucketBoundary(t *testing.T) {
	r := NewRecorder()
	width := 20 * time.Millisecond
	// Exactly on the boundary: elapsed == width belongs to bucket 1, not 0
	// (intervals are half-open [start, start+width)).
	r.ObserveAt(time.Millisecond, 0)
	r.ObserveAt(2*time.Millisecond, width)
	buckets := r.Series(width)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[0].Count != 1 || buckets[1].Count != 1 {
		t.Errorf("bucket counts = %d/%d, want 1/1", buckets[0].Count, buckets[1].Count)
	}
	if buckets[1].Start != width {
		t.Errorf("bucket1 start = %v, want %v", buckets[1].Start, width)
	}
	if buckets[1].Mean != 2*time.Millisecond || buckets[1].Max != 2*time.Millisecond {
		t.Errorf("bucket1 mean/max = %v/%v", buckets[1].Mean, buckets[1].Max)
	}
}
