package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/flow"
	"madeus/internal/obs"
	"madeus/internal/sqlmini"
)

// AdminDB is the pseudo-database name operators connect to for control
// operations (the channel cmd/madeusctl uses).
const AdminDB = "_admin"

// adminConn serves operator commands over the ordinary wire protocol:
//
//	ADD NODE <name> <addr>            (not supported over the wire; nodes
//	                                   are registered at startup)
//	ADD TENANT <tenant> ON <node>
//	MIGRATE <tenant> TO <node> [STRATEGY <B-ALL|B-MIN|B-CON|Madeus>]
//	REMOVE TENANT <tenant>
//	STATUS
//	STATS [tenant]
//	EVENTS [n]
//	EVENTS SINCE <seq> [tenant]
//	TRACE <tenant> [n]
//	HISTORY
//	HISTORY <tenant> [n]
//	HISTORY CADENCE <duration>
//	BUNDLE [id]
//	FAULT LIST | RESET | SEED <n>
//	FAULT ENABLE <site> <ERROR|DROP|HANG> [times]
//	FAULT ENABLE <site> DELAY <duration> [times]
//	FAULT ENABLE <site> P <probability>
//	FAULT DISABLE <site> | RELEASE <site>
//	FLOW
//	FLOW SET <knob> <value>
//
// FAULT drives the failpoint registry (internal/fault) for chaos drills;
// it errors unless the daemon was built with -tags faultinject. FLOW
// lists the backpressure knobs (internal/flow) with the layer's live
// counters; FLOW SET retunes one knob at runtime (re-validated).
type adminConn struct {
	mw *Middleware
}

// Close implements wire.Conn.
func (a *adminConn) Close() {}

// Exec implements wire.Conn for the admin channel.
func (a *adminConn) Exec(cmd string) (*engine.Result, error) {
	fields := strings.Fields(cmd)
	upper := make([]string, len(fields))
	for i, f := range fields {
		upper[i] = strings.ToUpper(f)
	}
	switch {
	case len(fields) >= 2 && upper[0] == "ADD" && upper[1] == "TENANT":
		if len(fields) != 5 || upper[3] != "ON" {
			return nil, fmt.Errorf("core: usage: ADD TENANT <tenant> ON <node>")
		}
		if err := a.mw.ProvisionTenant(fields[2], fields[4]); err != nil {
			return nil, err
		}
		return &engine.Result{Tag: "ADD TENANT"}, nil

	case len(fields) >= 1 && upper[0] == "MIGRATE":
		if len(fields) < 4 || upper[2] != "TO" {
			return nil, fmt.Errorf("core: usage: MIGRATE <tenant> TO <node> [STRATEGY <name>]")
		}
		opts := MigrateOptions{Strategy: Madeus}
		if len(fields) >= 6 && upper[4] == "STRATEGY" {
			st, err := ParseStrategy(fields[5])
			if err != nil {
				return nil, err
			}
			opts.Strategy = st
		} else if len(fields) != 4 {
			return nil, fmt.Errorf("core: usage: MIGRATE <tenant> TO <node> [STRATEGY <name>]")
		}
		rep, err := a.mw.Migrate(fields[1], fields[3], opts)
		if err != nil {
			return nil, err
		}
		return &engine.Result{
			Columns: []string{"report"},
			Rows:    [][]sqlmini.Value{{sqlmini.NewText(rep.String())}},
			Tag:     "MIGRATE",
		}, nil

	case len(fields) == 1 && upper[0] == "STATUS":
		res := &engine.Result{
			Columns: []string{"tenant", "node", "mlc", "state", "lag", "debt"},
			Tag:     "STATUS",
		}
		for _, name := range a.mw.Tenants() {
			t, ok := a.mw.Tenant(name)
			if !ok {
				continue
			}
			node, _ := t.Node()
			phase, lag, debt := t.Progress()
			res.Rows = append(res.Rows, []sqlmini.Value{
				sqlmini.NewText(name),
				sqlmini.NewText(node.BackendName()),
				sqlmini.NewInt(int64(t.MLC())),
				sqlmini.NewText(phase),
				sqlmini.NewInt(int64(lag)),
				sqlmini.NewInt(int64(debt)),
			})
		}
		return res, nil

	case len(fields) >= 1 && upper[0] == "STATS":
		switch len(fields) {
		case 1:
			return a.execStats()
		case 2:
			return a.execTenantStats(fields[1])
		}
		return nil, fmt.Errorf("core: usage: STATS [tenant]")

	case len(fields) >= 2 && upper[0] == "REMOVE" && upper[1] == "TENANT":
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: usage: REMOVE TENANT <tenant>")
		}
		if err := a.mw.RemoveTenant(fields[2]); err != nil {
			return nil, err
		}
		return &engine.Result{Tag: "REMOVE TENANT"}, nil

	case len(fields) >= 2 && upper[0] == "EVENTS" && upper[1] == "SINCE":
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("core: usage: EVENTS SINCE <seq> [tenant]")
		}
		seq, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: usage: EVENTS SINCE <seq> [tenant]")
		}
		tenant := ""
		if len(fields) == 4 {
			tenant = fields[3]
		}
		return renderEvents(obs.Trace.Since(seq, tenant)), nil

	case len(fields) >= 1 && upper[0] == "EVENTS":
		n := 50
		if len(fields) == 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("core: usage: EVENTS [n] (n > 0)")
			}
			n = v
		} else if len(fields) != 1 {
			return nil, fmt.Errorf("core: usage: EVENTS [n]")
		}
		return a.execEvents(n)

	case len(fields) >= 1 && upper[0] == "TRACE":
		n := 0
		switch len(fields) {
		case 2:
		case 3:
			v, err := strconv.Atoi(fields[2])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("core: usage: TRACE <tenant> [n] (n > 0)")
			}
			n = v
		default:
			return nil, fmt.Errorf("core: usage: TRACE <tenant> [n]")
		}
		return a.execTrace(fields[1], n)

	case len(fields) >= 1 && upper[0] == "HISTORY":
		return a.execHistory(fields, upper)

	case len(fields) >= 1 && upper[0] == "BUNDLE":
		switch len(fields) {
		case 1:
			return a.execBundleList()
		case 2:
			id, err := strconv.Atoi(fields[1])
			if err != nil || id <= 0 {
				return nil, fmt.Errorf("core: usage: BUNDLE [id] (id > 0)")
			}
			return a.execBundleGet(id)
		}
		return nil, fmt.Errorf("core: usage: BUNDLE [id]")

	case len(fields) >= 1 && upper[0] == "FAULT":
		return a.execFault(fields, upper)

	case len(fields) >= 1 && upper[0] == "FLOW":
		return a.execFlow(fields, upper)
	}
	return nil, fmt.Errorf("core: unknown admin command %q", cmd)
}

// execFault drives the failpoint registry over the admin channel.
func (a *adminConn) execFault(fields, upper []string) (*engine.Result, error) {
	if !fault.Enabled {
		return nil, fmt.Errorf("core: fault injection not compiled in (rebuild with -tags faultinject)")
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("core: usage: FAULT LIST|ENABLE|DISABLE|RELEASE|RESET|SEED ...")
	}
	switch upper[1] {
	case "LIST":
		res := &engine.Result{Columns: []string{"site", "hits", "fired"}, Tag: "FAULT"}
		for _, site := range fault.List() {
			res.Rows = append(res.Rows, []sqlmini.Value{
				sqlmini.NewText(site),
				sqlmini.NewInt(int64(fault.SiteHits(site))),
				sqlmini.NewInt(int64(fault.SiteFired(site))),
			})
		}
		return res, nil
	case "RESET":
		fault.Reset()
		return &engine.Result{Tag: "FAULT"}, nil
	case "SEED":
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: usage: FAULT SEED <n>")
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: usage: FAULT SEED <n>")
		}
		fault.Seed(n)
		return &engine.Result{Tag: "FAULT"}, nil
	case "DISABLE", "RELEASE":
		if len(fields) != 3 {
			return nil, fmt.Errorf("core: usage: FAULT %s <site>", upper[1])
		}
		if upper[1] == "DISABLE" {
			fault.Disable(fields[2])
		} else {
			fault.Release(fields[2])
		}
		return &engine.Result{Tag: "FAULT"}, nil
	case "ENABLE":
		if len(fields) < 4 {
			return nil, fmt.Errorf("core: usage: FAULT ENABLE <site> <ERROR|DROP|HANG|DELAY dur|P prob> [times]")
		}
		site := fields[2]
		var p fault.Policy
		rest := fields[4:]
		switch upper[3] {
		case "ERROR":
			// zero-value policy: fail with ErrInjected
		case "DROP":
			p.Drop = true
		case "HANG":
			p.Hang = true
		case "DELAY":
			if len(rest) < 1 {
				return nil, fmt.Errorf("core: usage: FAULT ENABLE <site> DELAY <duration> [times]")
			}
			d, err := time.ParseDuration(rest[0])
			if err != nil {
				return nil, fmt.Errorf("core: bad DELAY duration %q: %v", rest[0], err)
			}
			p.Delay = d
			rest = rest[1:]
		case "P":
			if len(rest) != 1 {
				return nil, fmt.Errorf("core: usage: FAULT ENABLE <site> P <probability>")
			}
			prob, err := strconv.ParseFloat(rest[0], 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("core: bad probability %q", rest[0])
			}
			p.P = prob
			rest = nil
		default:
			return nil, fmt.Errorf("core: unknown fault policy %q", fields[3])
		}
		if len(rest) == 1 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("core: bad fire count %q", rest[0])
			}
			p.Times = n
		} else if len(rest) > 1 {
			return nil, fmt.Errorf("core: trailing arguments after fault policy: %v", rest[1:])
		}
		fault.Enable(site, p)
		return &engine.Result{Tag: "FAULT"}, nil
	}
	return nil, fmt.Errorf("core: unknown FAULT subcommand %q", fields[1])
}

// execFlow serves the backpressure surface: FLOW lists every knob plus
// the layer's live gauges/counters; FLOW SET retunes one knob (the new
// configuration is validated before it is installed, so a bad value
// leaves the running config untouched).
func (a *adminConn) execFlow(fields, upper []string) (*engine.Result, error) {
	gov := a.mw.Flow()
	switch {
	case len(fields) == 1:
		res := &engine.Result{Columns: []string{"knob", "value"}, Tag: "FLOW"}
		row := func(k, v string) {
			res.Rows = append(res.Rows, []sqlmini.Value{sqlmini.NewText(k), sqlmini.NewText(v)})
		}
		cfg := gov.Config()
		for _, k := range flow.KnobNames() {
			row(k, cfg.Knob(k))
		}
		row("sessions", strconv.FormatInt(flow.Sessions(), 10))
		row("admit_queue_depth", strconv.FormatInt(flow.AdmitQueueDepth(), 10))
		row("ssl_bytes", strconv.FormatInt(flow.SSLBytes(), 10))
		row("sheds", strconv.FormatUint(flow.Sheds(), 10))
		row("stalls", strconv.FormatUint(flow.Stalls(), 10))
		row("deadline_aborts", strconv.FormatUint(flow.DeadlineAborts(), 10))
		row("ssl_overflows", strconv.FormatUint(flow.Overflows(), 10))
		return res, nil
	case len(fields) == 4 && upper[1] == "SET":
		if err := gov.Set(strings.ToLower(fields[2]), fields[3]); err != nil {
			return nil, err
		}
		return &engine.Result{Tag: "FLOW"}, nil
	}
	return nil, fmt.Errorf("core: usage: FLOW | FLOW SET <knob> <value>")
}

// execStats renders the process-wide metric registry (STATS).
func (a *adminConn) execStats() (*engine.Result, error) {
	res := &engine.Result{Columns: []string{"metric", "value"}, Tag: "STATS"}
	for _, m := range obs.Default.Snapshot() {
		res.Rows = append(res.Rows, []sqlmini.Value{
			sqlmini.NewText(m.Name),
			sqlmini.NewText(m.Render()),
		})
	}
	return res, nil
}

// execTenantStats renders one tenant's live monitor (STATS <tenant>).
func (a *adminConn) execTenantStats(tenant string) (*engine.Result, error) {
	t, ok := a.mw.Tenant(tenant)
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", tenant)
	}
	mon := t.Monitor()
	res := &engine.Result{Columns: []string{"field", "value"}, Tag: "STATS"}
	row := func(k, v string) {
		res.Rows = append(res.Rows, []sqlmini.Value{sqlmini.NewText(k), sqlmini.NewText(v)})
	}
	row("tenant", tenant)
	row("node", mon.Node)
	row("mlc", strconv.FormatUint(mon.MLC, 10))
	row("state", mon.Phase)
	row("lag", strconv.Itoa(mon.Lag))
	row("debt", strconv.Itoa(mon.Debt))
	row("ssl_depth", strconv.Itoa(mon.SSLDepth))
	row("ssl_bytes", strconv.FormatInt(mon.SSLBytes, 10))
	row("pace_delay", mon.PaceDelay.String())
	row("active_txns", strconv.Itoa(mon.ActiveTxns))
	row("captured_ssbs", strconv.Itoa(mon.CapturedSSBs))
	row("captured_ops", strconv.Itoa(mon.CapturedOps))
	return res, nil
}

// eventDetail renders an event's duration and fields as one "k=v ..."
// string (the detail column of EVENTS/TRACE rows).
func eventDetail(e obs.Event) string {
	var detail strings.Builder
	if e.Dur > 0 {
		fmt.Fprintf(&detail, "dur=%v", e.Dur)
	}
	for _, f := range e.Fields {
		if detail.Len() > 0 {
			detail.WriteByte(' ')
		}
		fmt.Fprintf(&detail, "%s=%s", f.Key, f.Value)
	}
	return detail.String()
}

// renderEvents builds the EVENTS result rows for an event slice.
func renderEvents(events []obs.Event) *engine.Result {
	res := &engine.Result{
		Columns: []string{"seq", "at", "tenant", "event", "detail"},
		Tag:     "EVENTS",
	}
	for _, e := range events {
		res.Rows = append(res.Rows, []sqlmini.Value{
			sqlmini.NewInt(int64(e.Seq)),
			sqlmini.NewText(e.At.Format("15:04:05.000")),
			sqlmini.NewText(e.Tenant),
			sqlmini.NewText(e.Name),
			sqlmini.NewText(eventDetail(e)),
		})
	}
	return res
}

// execEvents renders the tail of the migration event trace (EVENTS [n]).
func (a *adminConn) execEvents(n int) (*engine.Result, error) {
	return renderEvents(obs.Trace.Last(n)), nil
}

// execTrace renders the merged cross-process timeline for one tenant
// (TRACE <tenant> [n]): middleware events plus every scrapable node's,
// source- and skew-annotated, ordered on the middleware clock.
func (a *adminConn) execTrace(tenant string, n int) (*engine.Result, error) {
	if _, ok := a.mw.Tenant(tenant); !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", tenant)
	}
	res := &engine.Result{
		Columns: []string{"source", "skew", "seq", "at", "tenant", "event", "detail"},
		Tag:     "TRACE",
	}
	for _, e := range a.mw.Timeline(tenant, n) {
		res.Rows = append(res.Rows, []sqlmini.Value{
			sqlmini.NewText(e.Source),
			sqlmini.NewText(e.Skew.Round(time.Microsecond).String()),
			sqlmini.NewInt(int64(e.Seq)),
			sqlmini.NewText(e.AdjustedAt().Format("15:04:05.000")),
			sqlmini.NewText(e.Tenant),
			sqlmini.NewText(e.Name),
			sqlmini.NewText(eventDetail(e.Event)),
		})
	}
	return res, nil
}

// execHistory serves the time-series surface: HISTORY summarizes every
// tenant's ring, HISTORY <tenant> [n] dumps raw samples, HISTORY CADENCE
// retunes the sampler.
func (a *adminConn) execHistory(fields, upper []string) (*engine.Result, error) {
	switch {
	case len(fields) == 1:
		res := &engine.Result{
			Columns: []string{"tenant", "samples", "lag_avg", "debt_avg", "ops_s_avg", "ops_s_max", "pace_avg", "sessions_max"},
			Tag:     "HISTORY",
		}
		for _, tenant := range obs.Hist.Tenants() {
			st := obs.Hist.Stats(tenant, 0)
			res.Rows = append(res.Rows, []sqlmini.Value{
				sqlmini.NewText(tenant),
				sqlmini.NewInt(int64(st.Count)),
				sqlmini.NewFloat(st.Lag.Avg),
				sqlmini.NewFloat(st.Debt.Avg),
				sqlmini.NewFloat(st.OpsPerSec.Avg),
				sqlmini.NewInt(st.OpsPerSec.Max),
				sqlmini.NewText(time.Duration(st.PaceNs.Avg).Round(time.Microsecond).String()),
				sqlmini.NewInt(st.Sessions.Max),
			})
		}
		return res, nil

	case len(fields) == 3 && upper[1] == "CADENCE":
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("core: bad HISTORY CADENCE duration %q: %v", fields[2], err)
		}
		a.mw.SetHistoryCadence(d)
		return &engine.Result{Tag: "HISTORY"}, nil

	case len(fields) == 2 || len(fields) == 3:
		n := 60
		if len(fields) == 3 {
			v, err := strconv.Atoi(fields[2])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("core: usage: HISTORY <tenant> [n] (n > 0)")
			}
			n = v
		}
		res := &engine.Result{
			Columns: []string{"at", "lag", "debt", "ops_s", "pace", "ssl_bytes", "sessions"},
			Tag:     "HISTORY",
		}
		for _, s := range obs.Hist.Last(fields[1], n) {
			res.Rows = append(res.Rows, []sqlmini.Value{
				sqlmini.NewText(s.At.Format("15:04:05.000")),
				sqlmini.NewInt(s.Lag),
				sqlmini.NewInt(s.Debt),
				sqlmini.NewFloat(s.OpsPerSec),
				sqlmini.NewText(s.PaceDelay.Round(time.Microsecond).String()),
				sqlmini.NewInt(s.SSLBytes),
				sqlmini.NewInt(s.Sessions),
			})
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: usage: HISTORY | HISTORY <tenant> [n] | HISTORY CADENCE <duration>")
}

// execBundleList renders the flight recorder's retained bundles.
func (a *adminConn) execBundleList() (*engine.Result, error) {
	res := &engine.Result{
		Columns: []string{"id", "at", "tenant", "reason", "events", "history"},
		Tag:     "BUNDLE",
	}
	for _, b := range obs.Flight.Bundles() {
		res.Rows = append(res.Rows, []sqlmini.Value{
			sqlmini.NewInt(int64(b.ID)),
			sqlmini.NewText(b.At.Format("15:04:05.000")),
			sqlmini.NewText(b.Tenant),
			sqlmini.NewText(b.Reason),
			sqlmini.NewInt(int64(len(b.Events))),
			sqlmini.NewInt(int64(len(b.History))),
		})
	}
	return res, nil
}

// execBundleGet dumps one bundle as a single JSON value — the payload
// `madeusctl bundle -o` writes to a file for offline analysis.
func (a *adminConn) execBundleGet(id int) (*engine.Result, error) {
	b, ok := obs.Flight.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: no flight bundle %d (evicted or never captured)", id)
	}
	body, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: encode bundle %d: %w", id, err)
	}
	return &engine.Result{
		Columns: []string{"bundle"},
		Rows:    [][]sqlmini.Value{{sqlmini.NewText(string(body))}},
		Tag:     "BUNDLE",
	}, nil
}

// ParseStrategy converts a strategy name (as printed by String) to its
// value. Case-insensitive; accepts "BALL"/"B-ALL" style variants.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "-", "")) {
	case "MADEUS":
		return Madeus, nil
	case "BALL":
		return BAll, nil
	case "BMIN":
		return BMin, nil
	case "BCON":
		return BCon, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", s)
}
