//go:build !parityprobe

package tagparity

// Enabled differs in VALUE between the variants — allowed.
const Enabled = false

// Probe matches the tagged variant exactly: no finding.
func Probe() error { return nil }

// Mismatch drifted from the tagged variant's (int) parameter.
func Mismatch(s string) {} // want

// StubOnly is missing from the parityprobe-tagged variant.
func StubOnly() {} // want
