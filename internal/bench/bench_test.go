package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"madeus/internal/core"
	"madeus/internal/tpcw"
)

// tinyConfig keeps unit tests fast; experiment-shape assertions use the
// root-level benches and EXPERIMENTS.md instead.
func tinyConfig() Config {
	c := Default()
	c.RowFactor = 1000
	c.Warm = 50 * time.Millisecond
	c.Measure = 200 * time.Millisecond
	c.Think = 2 * time.Millisecond
	c.FsyncDelay = 300 * time.Microsecond
	c.StmtCost = 50 * time.Microsecond
	c.CatchupTimeout = 10 * time.Second
	return c
}

func TestConfigEBsScaling(t *testing.T) {
	cfg := Default()
	if got := cfg.EBs(700); got != 700/cfg.EBFactor {
		t.Errorf("EBs(700) = %d, want %d", got, 700/cfg.EBFactor)
	}
	if cfg.EBs(1) != 1 {
		t.Error("EBs floor")
	}
	q := Quick()
	if q.RowFactor <= cfg.RowFactor {
		t.Error("Quick should shrink populations")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bee"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("n=%d", 7)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a    bee", "333", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Madeus row has all three mechanisms.
	var madeus []string
	for _, r := range tb.Rows {
		if r[0] == "Madeus" {
			madeus = r
		}
	}
	if madeus == nil || madeus[1] != "yes" || madeus[2] != "yes" || madeus[3] != "yes" {
		t.Errorf("Madeus row = %v", madeus)
	}
}

func TestHarnessProvisionAndMeasure(t *testing.T) {
	cfg := tinyConfig()
	h, err := NewHarness(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		t.Fatal(err)
	}
	sum, err := h.MeasureLoad("tenantA", 3, tpcw.Ordering, scale)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Count == 0 {
		t.Error("no interactions measured")
	}
}

func TestMigrateUnderLoadSmoke(t *testing.T) {
	cfg := tinyConfig()
	h, err := NewHarness(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		t.Fatal(err)
	}
	rep, rec, err := h.MigrateUnderLoad("tenantA", "node1", 4, tpcw.Ordering, scale,
		core.MigrateOptions{Strategy: core.Madeus})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatalf("migration failed: %s", rep)
	}
	if rec.Count() == 0 {
		t.Error("no interactions during migration window")
	}
}

func TestFig5SmallLevels(t *testing.T) {
	cfg := tinyConfig()
	tb, err := Fig5(cfg, []int{100, 700})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][5] != "light" {
		t.Errorf("first level band = %q, want light", tb.Rows[0][5])
	}
}

func TestFig6SingleLevel(t *testing.T) {
	cfg := tinyConfig()
	tb, err := Fig6(cfg, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 5 {
		t.Fatalf("shape = %v", tb.Rows)
	}
	for i := 1; i < 5; i++ {
		if tb.Rows[0][i] == "" {
			t.Errorf("empty cell %d", i)
		}
	}
}

func TestRegistryCoversAllFiguresAndTables(t *testing.T) {
	want := []string{
		"table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"case1", "case2", "mixes", "ablation-groupcommit", "ablation-overhead",
		"step1",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestRunByIDUnknown(t *testing.T) {
	if err := RunByID("nope", tinyConfig(), &bytes.Buffer{}); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestRunByIDTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByID("table2", tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Madeus") {
		t.Error("table2 output missing Madeus row")
	}
}

func TestWindowStats(t *testing.T) {
	cfg := tinyConfig()
	_ = cfg
	// window() aggregation is covered via a synthetic recorder in the
	// metrics package; here check the degenerate empty window.
	ws := windowStats{}
	if ws.Mean != 0 || ws.Throughput != 0 {
		t.Error("zero value not zero")
	}
}

func TestClassify(t *testing.T) {
	base := 10 * time.Millisecond
	if classify(base, base) != "light" {
		t.Error("1x should be light")
	}
	if classify(10*base, base) != "medium" {
		t.Error("10x should be medium")
	}
	if classify(50*base, base) != "heavy" {
		t.Error("50x should be heavy")
	}
	if classify(base, 0) != "light" {
		t.Error("zero baseline")
	}
}

func TestStep1AblationSmoke(t *testing.T) {
	tbl, err := Step1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 legs", len(tbl.Rows))
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, leg := range []string{"monolithic", "pipelined/16", "pipelined/64", "pipelined/256"} {
		if !strings.Contains(out, leg) {
			t.Errorf("output missing %s leg:\n%s", leg, out)
		}
	}
}
