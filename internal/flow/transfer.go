package flow

import (
	"errors"
	"sync"
)

// ErrTransferAborted is returned by TransferBudget.Acquire when the caller's
// abort channel closed while it was waiting for headroom.
var ErrTransferAborted = errors.New("flow: snapshot transfer aborted")

// TransferBudget caps the resident bytes of one pipelined Step-1 snapshot
// transfer: every chunk acquires its byte cost before it is shipped and
// releases it once every slave has applied (or discarded) it, so peak
// transfer memory is bounded like the SSL instead of growing with the
// tenant. The budget is per-migration; the process-wide flow.transfer.bytes
// gauge aggregates all in-flight transfers.
//
// Acquire blocks the dump stage — never customer transactions — when the
// cap is reached. A chunk larger than the whole cap is admitted alone
// (waits until the budget is empty) rather than deadlocking.
type TransferBudget struct {
	capBytes int64 // 0 = unlimited (accounting only)

	mu      sync.Mutex //madeusvet:lockrank flow-transfer 24
	used    int64
	peak    int64
	waiters []chan struct{}
}

// NewTransferBudget builds a budget with the given cap; capBytes <= 0
// disables blocking but keeps the accounting (gauge, peak).
func NewTransferBudget(capBytes int64) *TransferBudget {
	if capBytes < 0 {
		capBytes = 0
	}
	return &TransferBudget{capBytes: capBytes}
}

// Cap returns the configured byte cap (0 = unlimited).
func (b *TransferBudget) Cap() int64 { return b.capBytes }

// Acquire blocks until n bytes fit under the cap or abort closes.
func (b *TransferBudget) Acquire(n int64, abort <-chan struct{}) error {
	for {
		b.mu.Lock()
		if b.capBytes <= 0 || b.used == 0 || b.used+n <= b.capBytes {
			b.used += n
			if b.used > b.peak {
				b.peak = b.used
			}
			b.mu.Unlock()
			obsTransferBytes.Add(n)
			return nil
		}
		ch := make(chan struct{})
		b.waiters = append(b.waiters, ch)
		b.mu.Unlock()
		select {
		case <-ch:
		case <-abort:
			return ErrTransferAborted
		}
	}
}

// Release returns n bytes to the budget and wakes every waiter (each
// re-checks under the lock, so spurious wakeups only cost a retry).
func (b *TransferBudget) Release(n int64) {
	b.mu.Lock()
	b.used -= n
	waiters := b.waiters
	b.waiters = nil
	b.mu.Unlock()
	obsTransferBytes.Add(-n)
	for _, ch := range waiters {
		close(ch)
	}
}

// Used returns the bytes currently in flight.
func (b *TransferBudget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak returns the high-water mark of in-flight bytes (the ablation's
// "peak transfer bytes" column).
func (b *TransferBudget) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}
