package lsir

import "sort"

// Syncset is the output of the mapping function ℱ for one committed update
// transaction (Definition 2): its first read, all its writes in order, and
// its commit. STS and ETS are the start/end timestamps the Madeus worker
// stamps on the syncset buffer (Sec 4.4.1): STS is the master logical clock
// (MLC) value at the first read, ETS the MLC value at commit; the MLC
// increments by one at every update-transaction commit.
type Syncset struct {
	Txn      int
	Ops      []Op
	STS, ETS int
}

// MapHistory applies the mapping function ℱ to every transaction of a
// master history and stamps STS/ETS with the worker's MLC discipline.
// Read-only and aborted transactions map to the empty set; for committed
// update transactions the first read is preserved, the remaining reads are
// discarded, and writes and the commit are preserved in order.
//
// The returned syncsets are ordered by ETS (which equals master commit
// order, since the MLC increments exactly once per update commit).
func MapHistory(h History) []Syncset {
	txns := h.Txns()
	isMapped := func(id int) bool {
		ti := txns[id]
		return ti != nil && ti.Committed && ti.Update
	}

	sets := make(map[int]*Syncset)
	mlc := 0
	for _, op := range h.Ops {
		if !isMapped(op.Txn) {
			continue
		}
		ss, ok := sets[op.Txn]
		switch op.Kind {
		case OpRead:
			if !ok {
				// First read: preserved, stamps STS.
				ss = &Syncset{Txn: op.Txn, STS: mlc}
				ss.Ops = append(ss.Ops, op)
				sets[op.Txn] = ss
			}
			// Later reads discarded (Definition 2, rule 2).
		case OpWrite:
			if !ok {
				// No blind writes (Sec 3.1): a write before any
				// read cannot occur in well-formed histories;
				// tolerate by synthesizing the buffer.
				ss = &Syncset{Txn: op.Txn, STS: mlc}
				sets[op.Txn] = ss
			}
			ss.Ops = append(ss.Ops, op)
		case OpCommit:
			if ss == nil {
				continue
			}
			ss.Ops = append(ss.Ops, op)
			ss.ETS = mlc
			mlc++
		}
	}

	out := make([]Syncset, 0, len(sets))
	for _, ss := range sets {
		out = append(out, *ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ETS < out[j].ETS })
	return out
}

// FirstRead returns the syncset's first read op, or nil.
func (s *Syncset) FirstRead() *Op {
	if len(s.Ops) > 0 && s.Ops[0].Kind == OpRead {
		return &s.Ops[0]
	}
	return nil
}

// Writes returns the syncset's write ops in order.
func (s *Syncset) Writes() []Op {
	var out []Op
	for _, op := range s.Ops {
		if op.Kind == OpWrite {
			out = append(out, op)
		}
	}
	return out
}
