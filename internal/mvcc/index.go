package mvcc

import (
	"fmt"
	"sync"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// Secondary indexes: equality indexes mapping a column value to the set of
// primary keys whose version chains contain that value. Entries are a
// SUPERSET of the visible truth — readers re-check visibility and the
// predicate against the fetched row — so index maintenance never needs
// transactional coordination: writers add entries eagerly, and stale
// entries are swept by Vacuum. The registry has its own small mutex (imu)
// so index fan-out does not touch the striped row maps.

// colIndex is one secondary index.
type colIndex struct {
	name string
	col  int

	mu      sync.RWMutex //madeusvet:lockrank mvcc-index 46
	entries map[sqlmini.Value]map[sqlmini.Value]struct{} // value -> set of PKs
}

func (ix *colIndex) add(val, pk sqlmini.Value) {
	if val.IsNull() {
		return // NULL never matches an equality predicate
	}
	ix.mu.Lock()
	set, ok := ix.entries[val]
	if !ok {
		set = make(map[sqlmini.Value]struct{})
		ix.entries[val] = set
	}
	set[pk] = struct{}{}
	ix.mu.Unlock()
}

func (ix *colIndex) lookup(val sqlmini.Value) []sqlmini.Value {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	set := ix.entries[val]
	out := make([]sqlmini.Value, 0, len(set))
	for pk := range set {
		out = append(out, pk)
	}
	return out
}

// CreateIndex builds a secondary equality index over the named column. The
// build is online: the index is registered and the existing chain set
// snapshotted under the all-stripes lock (stripe order, DESIGN.md §5i) so
// every chain either lands in the backfill snapshot or was created by a
// writer that already sees the registered index; then existing chains are
// backfilled (duplicates are harmless).
func (tb *Table) CreateIndex(name, column string) error {
	col := tb.Schema.ColumnIndex(column)
	if col < 0 {
		return fmt.Errorf("mvcc: table %s has no column %q", tb.Schema.Name, column)
	}
	ix := &colIndex{name: name, col: col, entries: make(map[sqlmini.Value]map[sqlmini.Value]struct{})}

	tb.lockAllStripes()
	tb.imu.Lock()
	if tb.indexes == nil {
		tb.indexes = make(map[string]*colIndex)
	}
	if _, dup := tb.indexes[name]; dup {
		tb.imu.Unlock()
		tb.unlockAllStripes()
		return fmt.Errorf("mvcc: index %q already exists on %s", name, tb.Schema.Name)
	}
	tb.indexes[name] = ix
	tb.imu.Unlock()
	chains := make(map[sqlmini.Value]*rowChain)
	for si := range tb.stripes {
		for pk, ch := range tb.stripes[si].rows {
			chains[pk] = ch
		}
	}
	tb.unlockAllStripes()

	// Backfill every version's value (any version might be visible to
	// some snapshot).
	for pk, ch := range chains {
		ch.mu.Lock()
		for i := range ch.versions {
			ix.add(ch.versions[i].row[col], pk)
		}
		ch.mu.Unlock()
	}
	return nil
}

// DropIndex removes a secondary index.
func (tb *Table) DropIndex(name string) error {
	tb.imu.Lock()
	defer tb.imu.Unlock()
	if _, ok := tb.indexes[name]; !ok {
		return fmt.Errorf("mvcc: index %q does not exist on %s", name, tb.Schema.Name)
	}
	delete(tb.indexes, name)
	return nil
}

// Indexes lists index names and their columns (dump support).
func (tb *Table) Indexes() map[string]string {
	tb.imu.Lock()
	defer tb.imu.Unlock()
	out := make(map[string]string, len(tb.indexes))
	for name, ix := range tb.indexes {
		out[name] = tb.Schema.Columns[ix.col].Name
	}
	return out
}

// IndexLookup returns the candidate primary keys whose chains may hold
// value in the named COLUMN (not index name), or ok=false when no index
// covers that column. Candidates are a superset: callers must fetch each
// row with Get and re-apply the predicate.
func (tb *Table) IndexLookup(column string, val sqlmini.Value) (pks []sqlmini.Value, ok bool) {
	col := tb.Schema.ColumnIndex(column)
	if col < 0 {
		return nil, false
	}
	tb.imu.Lock()
	var ix *colIndex
	for _, cand := range tb.indexes {
		if cand.col == col {
			ix = cand
			break
		}
	}
	tb.imu.Unlock()
	if ix == nil {
		return nil, false
	}
	return ix.lookup(val), true
}

// indexAdd fans a new version's value out to all matching indexes.
func (tb *Table) indexAdd(row storage.Row, pk sqlmini.Value) {
	tb.imu.Lock()
	idxs := make([]*colIndex, 0, len(tb.indexes))
	for _, ix := range tb.indexes {
		idxs = append(idxs, ix)
	}
	tb.imu.Unlock()
	for _, ix := range idxs {
		ix.add(row[ix.col], pk)
	}
}

// sweepIndexes drops entries whose chains no longer contain the value in
// any version. Called by Vacuum after version pruning.
func (tb *Table) sweepIndexes() int {
	tb.imu.Lock()
	idxs := make([]*colIndex, 0, len(tb.indexes))
	for _, ix := range tb.indexes {
		idxs = append(idxs, ix)
	}
	tb.imu.Unlock()

	removed := 0
	for _, ix := range idxs {
		ix.mu.Lock()
		for val, set := range ix.entries {
			for pk := range set {
				if !tb.chainContains(pk, ix.col, val) {
					delete(set, pk)
					removed++
				}
			}
			if len(set) == 0 {
				delete(ix.entries, val)
			}
		}
		ix.mu.Unlock()
	}
	return removed
}

func (tb *Table) chainContains(pk sqlmini.Value, col int, val sqlmini.Value) bool {
	ch := tb.chain(pk, false)
	if ch == nil {
		return false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for i := range ch.versions {
		if ch.versions[i].row[col] == val {
			return true
		}
	}
	return false
}
