// Quickstart: boot two DBMS nodes and the Madeus middleware, run a tenant,
// and live-migrate it between the nodes while a writer keeps committing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/wal"
	"madeus/internal/wire"
)

func main() {
	// Two nodes, each one shared-process DBMS instance.
	opts := cluster.NodeOptions{Engine: engine.Options{
		WAL:         wal.Options{SyncDelay: 2 * time.Millisecond, Mode: wal.GroupCommit},
		LockTimeout: time.Second,
	}}
	node0, err := cluster.NewNode("node0", opts)
	check(err)
	defer node0.Close()
	node1, err := cluster.NewNode("node1", opts)
	check(err)
	defer node1.Close()

	// The middleware in front of them.
	mw, err := core.New(core.Options{})
	check(err)
	defer mw.Close()
	mw.AddNode(node0)
	mw.AddNode(node1)
	check(mw.ProvisionTenant("shop", "node0"))
	fmt.Printf("middleware at %s, tenant 'shop' on node0\n", mw.Addr())

	// A customer connection: ordinary SQL through the middleware.
	c, err := wire.Dial(mw.Addr(), "shop")
	check(err)
	defer c.Close()
	exec(c, "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)")
	exec(c, "INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 200), (3, 300)")

	// A writer that keeps transferring money during the migration.
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		w, err := wire.Dial(mw.Addr(), "shop")
		check(err)
		defer w.Close()
		commits := 0
		for {
			select {
			case <-stop:
				done <- commits
				return
			default:
			}
			exec(w, "BEGIN")
			exec(w, "SELECT balance FROM accounts WHERE id = 1")
			exec(w, "UPDATE accounts SET balance = balance - 1 WHERE id = 1")
			exec(w, "UPDATE accounts SET balance = balance + 1 WHERE id = 2")
			res := exec(w, "COMMIT")
			if res.Tag == "COMMIT" {
				commits++
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	time.Sleep(100 * time.Millisecond)

	// Live-migrate the tenant while the writer runs.
	rep, err := mw.Migrate("shop", "node1", core.MigrateOptions{Strategy: core.Madeus})
	check(err)
	fmt.Println(rep)

	time.Sleep(100 * time.Millisecond)
	close(stop)
	commits := <-done

	// The same connection keeps working; it now talks to node1.
	res := exec(c, "SELECT SUM(balance) FROM accounts")
	fmt.Printf("after migration: %d commits total, SUM(balance) = %v (invariant: 600)\n",
		commits, res.Rows[0][0])
	tn, _ := mw.Tenant("shop")
	node, _ := tn.Node()
	fmt.Printf("tenant 'shop' now lives on %s\n", node.BackendName())
	if res.Rows[0][0].Int != 600 {
		log.Fatal("balance invariant violated!")
	}
}

func exec(c *wire.Client, sql string) *engine.Result {
	res, err := c.Exec(sql)
	if err != nil {
		// Serialization conflicts would surface here in a contended
		// workload; the quickstart writer touches disjoint rows.
		log.Fatalf("%s: %v", sql, err)
	}
	return res
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
