package mvcc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"madeus/internal/invariant"
	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// version is one physical tuple version in a row chain.
type version struct {
	xmin TxnID // creator
	xmax TxnID // deleter/updater; 0 when live
	row  storage.Row
}

// rowChain holds all versions of one logical row (one primary key) plus the
// row write lock used for first-updater-wins. Lock ordering: Table.mu (map
// access) is never held while a rowChain.mu is held, and at most one
// rowChain.mu is held at a time; row-lock *waits* happen on waiter channels
// with ch.mu released, so mutexes are never held across blocking waits.
type rowChain struct {
	mu        sync.Mutex //madeusvet:lockrank mvcc-row 42
	versions  []version
	lockOwner TxnID
	waiters   []chan struct{}
}

// Table is an MVCC table: a schema plus row chains keyed by primary key.
type Table struct {
	Schema *storage.Schema

	mgr  *Manager
	//madeusvet:lockrank mvcc-table 40
	mu   sync.Mutex // guards rows map and indexes registry
	rows map[sqlmini.Value]*rowChain

	indexes map[string]*colIndex
}

// NewTable creates an empty MVCC table bound to a transaction manager.
func NewTable(schema *storage.Schema, mgr *Manager) *Table {
	return &Table{
		Schema: schema,
		mgr:    mgr,
		rows:   make(map[sqlmini.Value]*rowChain),
	}
}

func (tb *Table) chain(pk sqlmini.Value, create bool) *rowChain {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	ch := tb.rows[pk]
	if ch == nil && create {
		ch = &rowChain{}
		tb.rows[pk] = ch
	}
	return ch
}

// Get returns the version of the row with primary key pk visible to t, or
// nil when none is visible.
func (tb *Table) Get(t *Txn, pk sqlmini.Value) storage.Row {
	ch := tb.chain(pk, false)
	if ch == nil {
		return nil
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	// SI sanity: a snapshot sees at most one version per logical row.
	invariant.Check(func() error { return ch.checkAtMostOneVisible(t) })
	return ch.visibleRow(t)
}

// checkAtMostOneVisible verifies the snapshot-isolation guarantee that a
// transaction's snapshot exposes at most one version of each logical row.
// Caller holds ch.mu. Invariants builds only.
func (ch *rowChain) checkAtMostOneVisible(t *Txn) error {
	n := 0
	for i := range ch.versions {
		if t.visible(&ch.versions[i]) {
			n++
		}
	}
	if n > 1 {
		return fmt.Errorf("mvcc: %d versions of one row visible to txn %d (snapshot %d)", n, t.ID, t.Snapshot)
	}
	return nil
}

// visibleRow returns (a clone of) the visible version in ch, newest first.
// Caller holds ch.mu.
func (ch *rowChain) visibleRow(t *Txn) storage.Row {
	for i := len(ch.versions) - 1; i >= 0; i-- {
		if t.visible(&ch.versions[i]) {
			return ch.versions[i].row.Clone()
		}
	}
	return nil
}

// Scan calls fn for every row visible to t, in primary-key order. fn
// returning false stops the scan. Ordering is deterministic so that dumps
// and state comparisons are stable.
func (tb *Table) Scan(t *Txn, fn func(storage.Row) bool) error {
	tb.mu.Lock()
	pks := make([]sqlmini.Value, 0, len(tb.rows))
	for pk := range tb.rows {
		pks = append(pks, pk)
	}
	tb.mu.Unlock()
	sort.Slice(pks, func(i, j int) bool {
		c, err := pks[i].Compare(pks[j])
		if err != nil {
			// Mixed-kind keys cannot occur: CheckRow enforces kinds.
			return false
		}
		return c < 0
	})
	for _, pk := range pks {
		ch := tb.chain(pk, false)
		if ch == nil {
			continue
		}
		ch.mu.Lock()
		row := ch.visibleRow(t)
		ch.mu.Unlock()
		if row != nil && !fn(row) {
			return nil
		}
	}
	return nil
}

// Len reports the number of rows visible to t.
func (tb *Table) Len(t *Txn) int {
	n := 0
	tb.Scan(t, func(storage.Row) bool { n++; return true })
	return n
}

// Insert adds a new row. It fails with ErrUniqueViolation when a visible or
// newly committed row with the same key exists, and respects
// first-updater-wins against a concurrent inserter of the same key.
func (tb *Table) Insert(t *Txn, row storage.Row) error {
	if t.done {
		return ErrTxnDone
	}
	row = tb.Schema.Coerce(row)
	if err := tb.Schema.CheckRow(row); err != nil {
		return err
	}
	pk := tb.Schema.PK(row)
	ch := tb.chain(pk, true)

	deadline := time.Now().Add(t.lockTimeout())
	ch.mu.Lock()
	for {
		// Any committed version the snapshot can't see means a
		// concurrent inserter already won.
		if ch.committedAfter(t) {
			ch.mu.Unlock()
			return ErrUniqueViolation
		}
		if ch.visibleRow(t) != nil {
			ch.mu.Unlock()
			return ErrUniqueViolation
		}
		if ch.lockOwner == 0 || ch.lockOwner == t.ID {
			break
		}
		if err := ch.waitUnlocked(t, deadline); err != nil {
			return err
		}
	}
	ch.acquire(t)
	ch.versions = append(ch.versions, version{xmin: t.ID, row: row.Clone()})
	ch.mu.Unlock()
	tb.indexAdd(row, pk)
	t.writes++
	return nil
}

// Update replaces the visible version of the row keyed pk with newRow
// (same primary key). It returns false when no version is visible, and
// ErrSerialization under first-updater-wins.
func (tb *Table) Update(t *Txn, pk sqlmini.Value, newRow storage.Row) (bool, error) {
	return tb.write(t, pk, newRow, false)
}

// Delete removes the visible version of the row keyed pk. It returns false
// when no version is visible.
func (tb *Table) Delete(t *Txn, pk sqlmini.Value) (bool, error) {
	return tb.write(t, pk, nil, true)
}

func (tb *Table) write(t *Txn, pk sqlmini.Value, newRow storage.Row, del bool) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	if !del {
		newRow = tb.Schema.Coerce(newRow)
		if err := tb.Schema.CheckRow(newRow); err != nil {
			return false, err
		}
		if tb.Schema.PK(newRow) != pk {
			return false, ErrPKImmutable
		}
	}
	ch := tb.chain(pk, false)
	if ch == nil {
		return false, nil
	}

	deadline := time.Now().Add(t.lockTimeout())
	ch.mu.Lock()
	for {
		// First-updater-wins, committed-winner path: a concurrent
		// transaction already committed a newer version of this row.
		if ch.committedAfter(t) {
			ch.mu.Unlock()
			return false, ErrSerialization
		}
		if ch.lockOwner == 0 || ch.lockOwner == t.ID {
			break
		}
		// First-updater-wins, active-winner path: wait for the lock
		// holder; if it commits we will see committedAfter above and
		// abort, if it aborts we proceed.
		if err := ch.waitUnlocked(t, deadline); err != nil {
			return false, err
		}
	}
	// Find the version visible to t and supersede it.
	idx := -1
	for i := len(ch.versions) - 1; i >= 0; i-- {
		if t.visible(&ch.versions[i]) {
			idx = i
			break
		}
	}
	if idx < 0 {
		ch.mu.Unlock()
		return false, nil
	}
	ch.acquire(t)
	// First-updater-wins must hold at the moment of superseding: with the
	// row lock ours, no concurrent committed winner may exist.
	invariant.Check(func() error {
		if ch.committedAfter(t) {
			return fmt.Errorf("mvcc: txn %d superseding a row with a committed-after-snapshot version", t.ID)
		}
		return nil
	})
	ch.versions[idx].xmax = t.ID
	if !del {
		ch.versions = append(ch.versions, version{xmin: t.ID, row: newRow.Clone()})
	}
	ch.mu.Unlock()
	if !del {
		tb.indexAdd(newRow, pk)
	}
	t.writes++
	return true, nil
}

// ErrPKImmutable reports an attempt to change a row's primary key in place.
var ErrPKImmutable = errPKImmutable{}

type errPKImmutable struct{}

func (errPKImmutable) Error() string { return "mvcc: primary key is immutable; delete and insert" }

// committedAfter reports whether any version of this chain was created or
// deleted by a transaction that committed after t's snapshot. Caller holds
// ch.mu.
func (ch *rowChain) committedAfter(t *Txn) bool {
	for i := range ch.versions {
		v := &ch.versions[i]
		if v.xmin != t.ID {
			if st, csn := t.mgr.statusOf(v.xmin); st == StatusCommitted && csn > t.Snapshot {
				return true
			}
		}
		if v.xmax != 0 && v.xmax != t.ID {
			if st, csn := t.mgr.statusOf(v.xmax); st == StatusCommitted && csn > t.Snapshot {
				return true
			}
		}
	}
	return false
}

// acquire takes the row lock for t (idempotent). Caller holds ch.mu.
func (ch *rowChain) acquire(t *Txn) {
	invariant.Assertf(ch.lockOwner == 0 || ch.lockOwner == t.ID,
		"mvcc: txn %d acquiring a row lock held by txn %d", t.ID, ch.lockOwner)
	if ch.lockOwner == t.ID {
		return
	}
	ch.lockOwner = t.ID
	t.locks = append(t.locks, ch)
}

// waitUnlocked releases ch.mu, waits until the lock holder resolves or the
// deadline passes, and reacquires ch.mu. Caller holds ch.mu on entry; on a
// nil return the caller holds it again and must recheck all conditions.
func (ch *rowChain) waitUnlocked(t *Txn, deadline time.Time) error {
	wake := make(chan struct{})
	ch.waiters = append(ch.waiters, wake)
	ch.mu.Unlock()

	wait := time.Until(deadline)
	if wait <= 0 {
		ch.mu.Lock()
		ch.dropWaiter(wake)
		ch.mu.Unlock()
		return ErrLockTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-wake:
		ch.mu.Lock()
		return nil
	case <-timer.C:
		ch.mu.Lock()
		ch.dropWaiter(wake)
		ch.mu.Unlock()
		return ErrLockTimeout
	}
}

// dropWaiter removes a timed-out waiter channel. Caller holds ch.mu.
func (ch *rowChain) dropWaiter(w chan struct{}) {
	for i, x := range ch.waiters {
		if x == w {
			ch.waiters = append(ch.waiters[:i], ch.waiters[i+1:]...)
			return
		}
	}
}

// unlock releases the lock if owned by id and wakes all waiters.
func (ch *rowChain) unlock(id TxnID) {
	ch.mu.Lock()
	if ch.lockOwner == id {
		ch.lockOwner = 0
		for _, w := range ch.waiters {
			close(w)
		}
		ch.waiters = nil
	}
	ch.mu.Unlock()
}
