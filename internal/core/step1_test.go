package core

import (
	"testing"

	"madeus/internal/engine"
	"madeus/internal/flow"
)

// TestPipelinedMigrateReportsChunks: the default (pipelined) Step 1 moves a
// tenant correctly and reports its chunk count and peak resident transfer
// bytes.
func TestPipelinedMigrateReportsChunks(t *testing.T) {
	rig := newRig(t, 2, engine.Options{DumpBatch: 10})
	rig.provision(t, "a", 200)

	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:        Madeus,
		ChunkStatements: 4,
		KeepSource:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks < 2 {
		t.Errorf("Chunks = %d, want several for 200 rows at DumpBatch 10 / 4 stmts per chunk", rep.Chunks)
	}
	if rep.PeakTransferBytes <= 0 {
		t.Errorf("PeakTransferBytes = %d, want > 0", rep.PeakTransferBytes)
	}
	src, _ := rig.mw.Node("node0")
	dst, _ := rig.mw.Node("node1")
	if s, d := sumBal(t, src, "a"), sumBal(t, dst, "a"); s != d || d != 200*100 {
		t.Errorf("sums diverge after pipelined migrate: src=%d dst=%d", s, d)
	}
}

// TestMonolithicDumpAblation: the pre-pipelining path stays available as
// the benchmark baseline and reports no chunks.
func TestMonolithicDumpAblation(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 60)

	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:       Madeus,
		MonolithicDump: true,
		KeepSource:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 0 || rep.PeakTransferBytes != 0 {
		t.Errorf("monolithic dump reported chunks=%d peak=%d", rep.Chunks, rep.PeakTransferBytes)
	}
	dst, _ := rig.mw.Node("node1")
	if d := sumBal(t, dst, "a"); d != 60*100 {
		t.Errorf("dest sum = %d", d)
	}
}

// TestPipelinedTransferBudgetCapsPeak: with a byte cap configured in the
// flow layer, the pipeline's peak resident transfer memory honors it.
func TestPipelinedTransferBudgetCapsPeak(t *testing.T) {
	const capBytes = 2048
	rig := newFlowRig(t, Options{Flow: flow.Config{MaxTransferBytes: capBytes}},
		engine.Options{DumpBatch: 5}, engine.Options{DumpBatch: 5})
	rig.provision(t, "a", 300)

	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:        Madeus,
		ChunkStatements: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakTransferBytes <= 0 || rep.PeakTransferBytes > capBytes {
		t.Errorf("PeakTransferBytes = %d, want in (0, %d]", rep.PeakTransferBytes, capBytes)
	}
	if flow.TransferBytes() != 0 {
		t.Errorf("flow.transfer.bytes gauge = %d after migration, want 0", flow.TransferBytes())
	}
	dst, _ := rig.mw.Node("node1")
	if d := sumBal(t, dst, "a"); d != 300*100 {
		t.Errorf("dest sum = %d", d)
	}
}

// TestPipelinedMigrateWithBackups: chunks broadcast to the primary and the
// backups; every slave ends with the full data set.
func TestPipelinedMigrateWithBackups(t *testing.T) {
	rig := newRig(t, 3, engine.Options{DumpBatch: 10})
	rig.provision(t, "a", 100)

	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:        Madeus,
		Backups:         []string{"node2"},
		ChunkStatements: 4,
		KeepSource:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Discarded) != 0 {
		t.Fatalf("discarded %v with healthy slaves", rep.Discarded)
	}
	// The promoted primary holds the data; the unpromoted backup copy is
	// dropped after switch-over (see TestMultiSlave tests).
	dst, _ := rig.mw.Node("node1")
	if d := sumBal(t, dst, "a"); d != 100*100 {
		t.Errorf("node1 sum = %d", d)
	}
}
