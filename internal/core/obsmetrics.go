package core

import "madeus/internal/obs"

// Process-wide middleware observability. Counters and histograms are the
// hot-path side (worker relays, propagation players); the migration
// lifecycle itself is traced as events through obs.Trace (see manager.go).
var (
	// Worker / normal processing (Algorithms 1-2).
	obsWorkerOps  = obs.NewCounter("core.worker.ops", "customer operations relayed through workers")
	obsWorkerTxns = obs.NewCounter("core.worker.txns", "customer transactions begun")
	obsGateWait   = obs.NewHistogram("core.gate.wait", "time new transactions spent blocked at a migration gate", obs.DurationBuckets())
	obsMLCAdvance = obs.NewCounter("core.mlc.advance", "MLC increments (update-transaction commits)")

	// Syncset capture (Step 1-3 source side).
	obsSSBLinked = obs.NewCounter("core.ssl.linked", "syncsets linked to an SSL")
	obsSSLDepth  = obs.NewGauge("core.ssl.depth", "linked syncsets of the most recently updated migrating tenant")

	// Pipelined Step-1 snapshot transfer (dump → transfer → restore).
	obsChunks       = obs.NewCounter("core.step1.chunks", "snapshot chunks streamed from sources")
	obsChunkBytes   = obs.NewHistogram("core.step1.chunk.bytes", "accounted bytes per snapshot chunk", obs.SizeBuckets())
	obsChunkStall   = obs.NewHistogram("core.step1.stall", "dump-stage stall per chunk (transfer budget + slave queues)", obs.DurationBuckets())
	obsApplyLatency = obs.NewHistogram("core.step1.apply", "restore apply latency per chunk", obs.DurationBuckets())

	// Propagation (Step 3 destination side).
	obsPlayersActive   = obs.NewGauge("core.players.active", "propagation players in flight")
	obsGroupSize       = obs.NewHistogram("core.commit_group.size", "commit group sizes released to slaves", obs.SizeBuckets())
	obsSyncsetsApplied = obs.NewCounter("core.propagation.syncsets", "syncsets applied on slaves")
	obsPropOps         = obs.NewCounter("core.propagation.ops", "operations replayed on slaves (incl. BEGIN/COMMIT)")

	// Migration outcomes.
	obsMigStarted   = obs.NewCounter("core.migrations.started", "migrations begun")
	obsMigCompleted = obs.NewCounter("core.migrations.completed", "migrations switched over")
	obsMigFailed    = obs.NewCounter("core.migrations.failed", "migrations aborted")

	// Fault tolerance (the rollback path and its retries).
	obsMigRollbacks = obs.NewCounter("core.migrations.rollbacks", "failed migrations rolled back to normal service on the source")
	obsMigRetries   = obs.NewCounter("core.migrations.retries", "destination dials retried during migration")
)
