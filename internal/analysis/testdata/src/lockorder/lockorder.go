// Package lockorder exercises the lockorder analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none. The
// seeded cycle (chainFirst/chainSecond) must be diagnosed with the full
// acquisition cycle in the inversion message.
package lockorder

import "sync"

type shared struct {
	low  sync.Mutex //madeusvet:lockrank lo-low 10
	high sync.Mutex //madeusvet:lockrank lo-high 20

	first  sync.Mutex //madeusvet:lockrank lo-first 30
	second sync.Mutex //madeusvet:lockrank lo-second 40

	self sync.Mutex //madeusvet:lockrank lo-self 50

	rw sync.RWMutex //madeusvet:lockrank lo-rw 60
}

// directInversion acquires a lower rank while holding a higher one — the
// plain single-function violation. Together with increasingOK (the
// opposite, sanctioned order) it also forms a low↔high acquisition cycle,
// so the inversion message carries the cycle too.
func directInversion(s *shared) {
	s.high.Lock()
	defer s.high.Unlock()
	s.low.Lock() // want
	s.low.Unlock()
}

// increasingOK is the sanctioned order: strictly increasing ranks.
func increasingOK(s *shared) {
	s.low.Lock()
	defer s.low.Unlock()
	s.high.Lock()
	s.high.Unlock()
}

// chainFirst establishes the first→second edge in rank order (no finding).
func chainFirst(s *shared) {
	s.first.Lock()
	defer s.first.Unlock()
	s.second.Lock()
	s.second.Unlock()
}

func lockFirst(s *shared) {
	s.first.Lock()
	s.first.Unlock()
}

// chainSecond closes the cycle through a call: holding second, the callee
// acquires first. The inversion is reported at the call site and carries
// the full first→second→first acquisition cycle.
func chainSecond(s *shared) {
	s.second.Lock()
	defer s.second.Unlock()
	lockFirst(s) // want
}

func lockSelf(s *shared) {
	s.self.Lock()
	s.self.Unlock()
}

// reacquires self-deadlocks through a call: the callee takes a mutex the
// caller already holds.
func reacquires(s *shared) {
	s.self.Lock()
	defer s.self.Unlock()
	lockSelf(s) // want
}

func readMore(s *shared) {
	s.rw.RLock()
	s.rw.RUnlock()
}

// sharedReaders re-enters the read side of an RWMutex through a call —
// shared-mode re-entry is exempt from the self-deadlock rule.
func sharedReaders(s *shared) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	readMore(s)
}

// suppressedInversion carries the same violation as directInversion with an
// inline suppression; it must stay silent.
func suppressedInversion(s *shared) {
	s.high.Lock()
	defer s.high.Unlock()
	//madeusvet:ignore lockorder seeded inversion kept to prove the suppression path
	s.low.Lock()
	s.low.Unlock()
}
