package sqlmini

import "strings"

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL (normalized form).
	String() string
}

// Expr is any expression usable in WHERE / SET clauses.
type Expr interface {
	expr()
	String() string
}

// ColumnDef declares one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       ValueKind
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Table string
}

// CreateIndex is CREATE INDEX name ON table (column): a secondary
// equality index.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// DropIndex is DROP INDEX name ON table.
type DropIndex struct {
	Name  string
	Table string
}

// Insert is INSERT INTO t (cols) VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// SelectItem is one projection item: a column name, *, or an aggregate.
type SelectItem struct {
	Star      bool   // SELECT *
	Column    string // plain column reference
	Aggregate string // "COUNT" or "SUM" when set
	AggArg    string // column for SUM; empty for COUNT(*)
}

// Select is a single-table SELECT.
type Select struct {
	Items     []SelectItem
	Table     string
	Where     Expr // nil when absent
	OrderBy   string
	OrderDesc bool
	Limit     int64 // -1 when absent
	ForShare  bool  // SELECT ... FOR SHARE (parsed, treated as a read)
}

// Assignment is one c = expr pair in UPDATE ... SET.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE t SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// Begin is BEGIN.
type Begin struct{}

// Commit is COMMIT.
type Commit struct{}

// Rollback is ROLLBACK or ABORT.
type Rollback struct{}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*CreateIndex) stmt() {}
func (*DropIndex) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Begin) stmt()       {}
func (*Commit) stmt()      {}
func (*Rollback) stmt()    {}

// Literal is a constant value.
type Literal struct {
	Val Value
}

// ColumnRef references a column by name.
type ColumnRef struct {
	Name string
}

// BinaryOp identifies a binary operator.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Not is logical negation.
type Not struct {
	E Expr
}

// Neg is arithmetic negation.
type Neg struct {
	E Expr
}

func (*Literal) expr()   {}
func (*ColumnRef) expr() {}
func (*Binary) expr()    {}
func (*Not) expr()       {}
func (*Neg) expr()       {}

func (l *Literal) String() string   { return l.Val.String() }
func (c *ColumnRef) String() string { return c.Name }
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}
func (n *Not) String() string { return "(NOT " + n.E.String() + ")" }
func (n *Neg) String() string { return "(-" + n.E.String() + ")" }

func (s *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(s.Table)
	sb.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteString(" ")
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (s *DropTable) String() string { return "DROP TABLE " + s.Table }

func (s *CreateIndex) String() string {
	return "CREATE INDEX " + s.Name + " ON " + s.Table + " (" + s.Column + ")"
}

func (s *DropIndex) String() string { return "DROP INDEX " + s.Name + " ON " + s.Table }

func (s *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(s.Table)
	sb.WriteString(" (")
	sb.WriteString(strings.Join(s.Columns, ", "))
	sb.WriteString(") VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star:
			sb.WriteString("*")
		case it.Aggregate == "COUNT":
			sb.WriteString("COUNT(*)")
		case it.Aggregate == "SUM":
			sb.WriteString("SUM(" + it.AggArg + ")")
		default:
			sb.WriteString(it.Column)
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(s.Table)
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if s.OrderBy != "" {
		sb.WriteString(" ORDER BY ")
		sb.WriteString(s.OrderBy)
		if s.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(NewInt(s.Limit).String())
	}
	if s.ForShare {
		sb.WriteString(" FOR SHARE")
	}
	return sb.String()
}

func (s *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(s.Table)
	sb.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column)
		sb.WriteString(" = ")
		sb.WriteString(a.Value.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	return sb.String()
}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

func (*Begin) String() string    { return "BEGIN" }
func (*Commit) String() string   { return "COMMIT" }
func (*Rollback) String() string { return "ROLLBACK" }
