package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// fresh gives each test its own registry so names never collide across
// tests (Default is reserved for the real subsystems).
func fresh() *Registry { return NewRegistry() }

func TestCounterConcurrent(t *testing.T) {
	r := fresh()
	c := r.NewCounter("test.ops", "")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestCounterDisabled(t *testing.T) {
	r := fresh()
	c := r.NewCounter("test.disabled", "")
	c.Add(5)
	SetEnabled(false)
	defer SetEnabled(true)
	c.Add(100)
	if got := c.Value(); got != 5 {
		t.Fatalf("disabled Add moved the counter: %d", got)
	}
}

func TestGauge(t *testing.T) {
	r := fresh()
	g := r.NewGauge("test.depth", "")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("Value = %d, want 6", got)
	}
	f := r.NewGaugeFunc("test.fn", "", func() int64 { return 42 })
	if f.Value() != 42 {
		t.Fatal("GaugeFunc value")
	}
}

func TestHistogram(t *testing.T) {
	r := fresh()
	h := r.NewHistogram("test.sizes", "", SizeBuckets())
	for _, v := range []int64{1, 1, 2, 3, 1024, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Max != 5000 || s.Sum != 1+1+2+3+1024+5000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Bounds 1,2,4,...: value 1 -> bucket 0, 2 -> bucket 1, 3 -> bucket 2
	// (bound 4), 1024 -> last real bucket, 5000 -> overflow.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow count = %v", s.Counts)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	if q := s.Quantile(1.0); q != 5000 {
		t.Fatalf("p100 = %d, want overflow max", q)
	}
	if s.Mean() == 0 {
		t.Fatal("mean")
	}
}

func TestHistogramBoundary(t *testing.T) {
	r := fresh()
	h := r.NewHistogram("test.bound", "", []int64{10, 20})
	h.Observe(10) // exactly on a bound: inclusive upper -> bucket 0
	h.Observe(11)
	h.Observe(21)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := fresh()
	r.NewCounter("z.last", "")
	r.NewGauge("a.first", "")
	r.NewHistogram("m.mid", "", SizeBuckets())
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a.first" || snap[1].Name != "m.mid" || snap[2].Name != "z.last" {
		t.Fatalf("snapshot order = %+v", snap)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := fresh()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "")
}

func TestTracerRingAndSince(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Emit("shop", "tick", F("i", i))
	}
	last := tr.Last(8)
	if len(last) != 8 {
		t.Fatalf("Last(8) returned %d events", len(last))
	}
	if last[0].Seq != 32 || last[7].Seq != 39 {
		t.Fatalf("Last window = [%d,%d]", last[0].Seq, last[7].Seq)
	}
	// The ring holds 16; asking since an evicted seq returns what remains.
	since := tr.Since(0, "")
	if len(since) != 16 || since[0].Seq != 24 {
		t.Fatalf("Since(0) = %d events from %d", len(since), since[0].Seq)
	}
	// Tenant filter.
	tr.Emit("other", "tick")
	if got := tr.Since(0, "other"); len(got) != 1 || got[0].Tenant != "other" {
		t.Fatalf("tenant filter = %+v", got)
	}
}

func TestTracerSpan(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("shop", "step2.restore", F("slaves", 2))
	time.Sleep(time.Millisecond)
	sp.End(F("rows", 100))
	evs := tr.Last(2)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Name != "step2.restore.begin" || evs[1].Name != "step2.restore" {
		t.Fatalf("span names = %q %q", evs[0].Name, evs[1].Name)
	}
	if evs[1].Dur <= 0 {
		t.Fatal("span end has no duration")
	}
	if !strings.Contains(evs[1].String(), "rows=100") {
		t.Fatalf("String() = %q", evs[1].String())
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(16)
	SetEnabled(false)
	tr.Emit("shop", "tick")
	SetEnabled(true)
	if got := tr.Last(10); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
}

func TestEncoders(t *testing.T) {
	r := fresh()
	c := r.NewCounter("enc.ops", "operations")
	c.Add(3)
	h := r.NewHistogram("enc.lat", "", DurationBuckets())
	h.ObserveDuration(250 * time.Microsecond)
	tr := NewTracer(16)
	tr.Emit("shop", "step1.dump.begin")

	var text bytes.Buffer
	if err := WriteText(&text, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "enc.ops") || !strings.Contains(text.String(), "3") {
		t.Fatalf("text = %q", text.String())
	}
	if !strings.Contains(text.String(), "count=1") {
		t.Fatalf("histogram digest missing: %q", text.String())
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, r.Snapshot(), tr.Last(10)); err != nil {
		t.Fatal(err)
	}
	var snap DebugSnapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(snap.Metrics) != 2 || len(snap.Events) != 1 {
		t.Fatalf("decoded snapshot: %d metrics, %d events", len(snap.Metrics), len(snap.Events))
	}
	if snap.Events[0].Name != "step1.dump.begin" {
		t.Fatalf("decoded event = %+v", snap.Events[0])
	}

	var evText bytes.Buffer
	if err := WriteEventsText(&evText, tr.Last(10)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(evText.String(), "step1.dump.begin") {
		t.Fatalf("events text = %q", evText.String())
	}
}

// errWriter fails after n bytes so encoder error paths are covered.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe // any sentinel error
	}
	w.n -= len(p)
	return len(p), nil
}

func TestEncoderErrorsPropagate(t *testing.T) {
	r := fresh()
	r.NewCounter("e.one", "")
	r.NewCounter("e.two", "")
	if err := WriteText(&errWriter{n: 1}, r.Snapshot()); err == nil {
		t.Fatal("WriteText swallowed the writer error")
	}
	tr := NewTracer(16)
	tr.Emit("x", "a")
	tr.Emit("x", "b")
	if err := WriteEventsText(&errWriter{n: 1}, tr.Last(10)); err == nil {
		t.Fatal("WriteEventsText swallowed the writer error")
	}
	if err := WriteJSON(&errWriter{}, r.Snapshot(), nil); err == nil {
		t.Fatal("WriteJSON swallowed the writer error")
	}
}
