// Package core implements Madeus, the database live-migration middleware
// (Section 4 of the paper), together with the three baseline middleware
// approaches it is evaluated against (Section 5.3.1).
//
// Madeus sits between customers and DBMS nodes. Its worker path (Algorithm
// 1/2) relays operations to the tenant's master node while capturing
// syncsets — the minimal query sets of the LSIR mapping function — into
// syncset buffers (SSBs) stamped with the master logical clock (MLC). A
// migration (Algorithm 3) dumps a snapshot, creates the slave, propagates
// syncsets with the conductor/players (Algorithms 4/5), and switches the
// tenant over. The lazy snapshot isolation rule guarantees the slave ends
// consistent with the master (Theorems 1 and 2).
package core

// Strategy selects a propagation protocol (Table 2).
type Strategy int

const (
	// Madeus propagates the minimum query set with first reads, writes,
	// AND commits concurrent, per the LSIR (MIN + CON-FW + CON-COM).
	Madeus Strategy = iota
	// BAll propagates every operation of every transaction serially in
	// commit order (no MIN, no concurrency).
	BAll
	// BMin propagates the minimum query set serially in commit order
	// (MIN only), like the lazy middleware of Ganymed/FAS [36, 37].
	BMin
	// BCon propagates first reads and writes concurrently but commits
	// serially in master commit order (MIN + CON-FW), like the rule of
	// Daudjee and Salem [24]; its players contend on a commit token.
	BCon
)

func (s Strategy) String() string {
	switch s {
	case Madeus:
		return "Madeus"
	case BAll:
		return "B-ALL"
	case BMin:
		return "B-MIN"
	case BCon:
		return "B-CON"
	}
	return "Strategy(?)"
}

// Capabilities reports which of the paper's three mechanisms a strategy
// implements: MIN (minimum query set), CON-FW (concurrent first reads and
// writes), CON-COM (concurrent commits). This is exactly Table 2.
type Capabilities struct {
	Min    bool // minimum query set (LSIR mapping function)
	ConFW  bool // concurrent first-read/write propagation
	ConCom bool // concurrent commit propagation (group commit)
}

// Capabilities returns the Table-2 row for s.
func (s Strategy) Capabilities() Capabilities {
	switch s {
	case BMin:
		return Capabilities{Min: true}
	case BCon:
		return Capabilities{Min: true, ConFW: true}
	case Madeus:
		return Capabilities{Min: true, ConFW: true, ConCom: true}
	default: // BAll
		return Capabilities{}
	}
}

// Strategies lists all four in the paper's presentation order.
func Strategies() []Strategy { return []Strategy{BAll, BMin, BCon, Madeus} }

// captureAll reports whether the strategy requires capturing every
// operation of every transaction (B-ALL) rather than the LSIR minimum.
func (s Strategy) captureAll() bool { return s == BAll }
