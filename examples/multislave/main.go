// Multislave: the Section 4.2 fault-tolerance extension. The migration
// streams the snapshot and syncsets to TWO slaves at once; this example
// kills the primary destination mid-migration and shows the backup being
// promoted, with the workload never losing its data.
//
//	go run ./examples/multislave
package main

import (
	"fmt"
	"log"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/wal"
	"madeus/internal/wire"
)

func main() {
	opts := cluster.NodeOptions{Engine: engine.Options{
		WAL:         wal.Options{SyncDelay: 2 * time.Millisecond, Mode: wal.GroupCommit},
		LockTimeout: time.Second,
	}}
	nodes := make([]*cluster.Node, 3)
	for i := range nodes {
		n, err := cluster.NewNode(fmt.Sprintf("node%d", i), opts)
		check(err)
		defer n.Close()
		nodes[i] = n
	}

	mw, err := core.New(core.Options{})
	check(err)
	defer mw.Close()
	for _, n := range nodes {
		mw.AddNode(n)
	}
	check(mw.ProvisionTenant("shop", "node0"))

	c, err := wire.Dial(mw.Addr(), "shop")
	check(err)
	defer c.Close()
	mustExec(c, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 200; i += 50 {
		sql := "INSERT INTO t (id, v) VALUES "
		for j := i; j < i+50; j++ {
			if j > i {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, %d)", j, j)
		}
		mustExec(c, sql)
	}

	// A writer keeps the syncset stream busy.
	stop := make(chan struct{})
	go func() {
		w, err := wire.Dial(mw.Addr(), "shop")
		check(err)
		defer w.Close()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			// Errors are expected around the crash and the switch-over
			// drains; the writer just keeps pushing.
			_, _ = w.Exec("BEGIN")
			_, _ = w.Exec(fmt.Sprintf("SELECT v FROM t WHERE id = %d", i%200))
			_, _ = w.Exec(fmt.Sprintf("UPDATE t SET v = v + 1 WHERE id = %d", i%200))
			_, _ = w.Exec("COMMIT")
			time.Sleep(3 * time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// Kill the PRIMARY destination shortly after the migration starts.
	crash := time.AfterFunc(150*time.Millisecond, func() {
		fmt.Println("!! node1 (the primary destination) just crashed")
		nodes[1].Close()
	})
	defer crash.Stop()

	fmt.Println("migrating shop: node0 -> node1, with node2 as a backup slave")
	rep, err := mw.Migrate("shop", "node1", core.MigrateOptions{
		Strategy: core.Madeus,
		Backups:  []string{"node2"},
	})
	check(err)
	close(stop)

	fmt.Printf("\nmigration finished on %s (discarded: %v)\n", rep.Dest, rep.Discarded)
	fmt.Println(rep)
	res := mustExec(c, "SELECT COUNT(*) FROM t")
	fmt.Printf("tenant intact on the promoted slave: %v rows\n", res.Rows[0][0])
}

func mustExec(c *wire.Client, sql string) *engine.Result {
	res, err := c.Exec(sql)
	if err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
	return res
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
