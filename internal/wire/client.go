package wire

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"madeus/internal/engine"
)

// Client is a protocol client bound to one database session. A Client is
// used by one goroutine at a time (matching the request/response discipline:
// "After receiving the response of the operation, the customer sends a new
// operation", Sec 4.2).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rtt  time.Duration
}

// Dial connects to addr and starts a session on database.
func Dial(addr, database string) (*Client, error) {
	return DialRTT(addr, database, 0)
}

// DialRTT is Dial with a simulated network round-trip time added to every
// Exec (the latency-injection knob standing in for the paper's 1 GbE LAN).
func DialRTT(addr, database string, rtt time.Duration) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		rtt:  rtt,
	}
	if err := c.startup(database); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) startup(database string) error {
	if err := writeMsg(c.bw, MsgStartup, []byte(database)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return err
	}
	switch typ {
	case MsgReady:
		return nil
	case MsgError:
		return &ServerError{Msg: string(payload)}
	}
	return fmt.Errorf("wire: unexpected startup response %q", typ)
}

// Exec sends one statement and waits for its result. A *ServerError return
// means the server processed the request and reported a failure (e.g. a
// serialization abort); other errors are transport failures.
func (c *Client) Exec(sql string) (*engine.Result, error) {
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	if err := writeMsg(c.bw, MsgQuery, []byte(sql)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		return nil, err
	}
	switch typ {
	case MsgResult:
		return DecodeResult(payload)
	case MsgError:
		return nil, &ServerError{Msg: string(payload)}
	}
	return nil, fmt.Errorf("wire: unexpected response type %q", typ)
}

// Close terminates the session and the connection. The terminate message is
// best-effort: the connection is closed regardless.
func (c *Client) Close() error {
	_ = writeMsg(c.bw, MsgTerminate, nil)
	_ = c.bw.Flush()
	return c.conn.Close()
}
