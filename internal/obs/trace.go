package obs

import (
	"fmt"
	"sync"
	"time"
)

// Field is one key/value pair on an event. Values are formatted at emit
// time so events hold no live references into the subsystems they describe.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// F builds a field from any value.
func F(key string, v any) Field {
	switch x := v.(type) {
	case string:
		return Field{Key: key, Value: x}
	case time.Duration:
		return Field{Key: key, Value: x.Round(time.Microsecond).String()}
	case error:
		return Field{Key: key, Value: x.Error()}
	}
	return Field{Key: key, Value: fmt.Sprint(v)}
}

// Event is one tracer record: a named point (or completed span) in a
// tenant's migration lifecycle.
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Time     `json:"at"`
	Tenant string        `json:"tenant,omitempty"`
	Name   string        `json:"name"`
	Dur    time.Duration `json:"dur,omitempty"` // set for span-end events
	Fields []Field       `json:"fields,omitempty"`
}

// String renders the event as one log-style line.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s %s", e.Seq, e.At.Format("15:04:05.000"), e.Tenant, e.Name)
	if e.Dur > 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur.Round(time.Microsecond))
	}
	for _, f := range e.Fields {
		s += fmt.Sprintf(" %s=%s", f.Key, f.Value)
	}
	return s
}

// Tracer records events into a fixed-size ring. Emission is a short
// critical section (no allocation beyond the event's own fields, no I/O);
// readers copy out under the same lock.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever emitted; ring[next%len] is the oldest slot
}

// DefaultTracerCap is the ring size of the package-level tracer: enough for
// several full migrations' lifecycles (a migration emits tens of events
// plus periodic samples).
const DefaultTracerCap = 4096

// Trace is the process-wide tracer, the one the admin EVENTS command and
// the HTTP endpoint read.
var Trace = NewTracer(DefaultTracerCap)

// NewTracer creates a tracer with a ring of n events (minimum 16).
func NewTracer(n int) *Tracer {
	if n < 16 {
		n = 16
	}
	return &Tracer{ring: make([]Event, n)}
}

// Emit records one event. No-op while obs is disabled — but guard the call
// with On() anyway so the fields are never built.
func (t *Tracer) Emit(tenant, name string, fields ...Field) {
	t.emit(Event{At: time.Now(), Tenant: tenant, Name: name, Fields: fields})
}

func (t *Tracer) emit(e Event) {
	if !enabled.Load() {
		return
	}
	t.mu.Lock()
	e.Seq = t.next
	t.ring[t.next%uint64(len(t.ring))] = e
	t.next++
	t.mu.Unlock()
}

// EmitDur records one completed-span event whose duration was measured
// inline by the caller (e.g. a wire server timing a traced query) rather
// than through Start/End.
func (t *Tracer) EmitDur(tenant, name string, dur time.Duration, fields ...Field) {
	t.emit(Event{At: time.Now(), Tenant: tenant, Name: name, Dur: dur, Fields: fields})
}

// Span is an in-progress phase measurement started by Start.
type Span struct {
	tr     *Tracer
	tenant string
	name   string
	begin  time.Time
}

// Start emits "<name>.begin" and returns a span whose End emits "<name>"
// with the elapsed duration. Spans mark the migration steps (step1.dump,
// step2.restore, ...); the pair lets a tail of the event stream show both
// when a phase started and what it cost.
func (t *Tracer) Start(tenant, name string, fields ...Field) *Span {
	t.Emit(tenant, name+".begin", fields...)
	return &Span{tr: t, tenant: tenant, name: name, begin: time.Now()}
}

// End completes the span.
func (s *Span) End(fields ...Field) {
	s.tr.emit(Event{
		At:     time.Now(),
		Tenant: s.tenant,
		Name:   s.name,
		Dur:    time.Since(s.begin),
		Fields: fields,
	})
}

// Seq returns the sequence number the next emitted event will get. Use it
// to bookmark a window: Since(bookmark) returns everything emitted after.
func (t *Tracer) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Last returns the most recent n events, oldest first.
func (t *Tracer) Last(n int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.copyLocked(n)
}

// Since returns events with Seq >= seq still present in the ring, oldest
// first, optionally filtered by tenant ("" matches all).
func (t *Tracer) Since(seq uint64, tenant string) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	all := t.copyLocked(len(t.ring))
	out := make([]Event, 0, len(all))
	for _, e := range all {
		if e.Seq >= seq && (tenant == "" || e.Tenant == tenant) {
			out = append(out, e)
		}
	}
	return out
}

// copyLocked returns up to n most recent events, oldest first. Caller holds
// t.mu.
func (t *Tracer) copyLocked(n int) []Event {
	size := uint64(len(t.ring))
	have := t.next
	if have > size {
		have = size
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Event, 0, have)
	for i := t.next - have; i < t.next; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}
