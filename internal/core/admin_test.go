package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/obs"
)

func TestAdminChannel(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()

	// Provision a tenant through the control channel.
	if _, err := admin.Exec("ADD TENANT shop ON node0"); err != nil {
		t.Fatal(err)
	}
	c := rig.connect(t, "shop")
	mustExecAll(t, c, "CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)")
	c.Close()

	// STATUS lists the tenant on node0 with its migration state columns.
	res, err := admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"tenant", "node", "mlc", "state", "lag", "debt"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("STATUS columns = %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("STATUS columns = %v, want %v", res.Columns, wantCols)
		}
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "shop" || res.Rows[0][1].Str != "node0" {
		t.Fatalf("STATUS rows = %v", res.Rows)
	}
	if res.Rows[0][3].Str != "idle" || res.Rows[0][4].Int != 0 || res.Rows[0][5].Int != 0 {
		t.Fatalf("idle tenant state = %v", res.Rows[0][3:])
	}

	// Migrate via the control channel.
	res, err = admin.Exec("MIGRATE shop TO node1 STRATEGY B-MIN")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Str, "B-MIN") {
		t.Fatalf("MIGRATE report = %v", res.Rows)
	}
	res, err = admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Str != "node1" {
		t.Errorf("tenant still on %s", res.Rows[0][1].Str)
	}
}

func TestAdminStatsAndEvents(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()
	if _, err := admin.Exec("ADD TENANT shop ON node0"); err != nil {
		t.Fatal(err)
	}

	// Process-wide STATS includes the core worker counter.
	res, err := admin.Exec("STATS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "metric" {
		t.Fatalf("STATS columns = %v", res.Columns)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].Str == "core.worker.ops" {
			found = true
		}
	}
	if !found {
		t.Fatalf("STATS missing core.worker.ops; %d rows", len(res.Rows))
	}

	// Per-tenant STATS reflects the published migration phase.
	tn, _ := rig.mw.Tenant("shop")
	tn.setProgress("step3.propagate", nil)
	res, err = admin.Exec("STATS shop")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].Str] = row[1].Str
	}
	if got["tenant"] != "shop" || got["node"] != "node0" || got["state"] != "step3.propagate" {
		t.Fatalf("STATS shop = %v", got)
	}
	// STATUS mirrors the same live phase.
	res, err = admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][3].Str != "step3.propagate" {
		t.Fatalf("STATUS state = %v", res.Rows[0][3].Str)
	}
	tn.setProgress("", nil)

	if _, err := admin.Exec("STATS nope"); err == nil {
		t.Error("STATS nope: want error")
	}

	// EVENTS tails the tracer.
	obs.Trace.Emit("shop", "admintest.ping", obs.F("k", "v"))
	res, err = admin.Exec("EVENTS 500")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || res.Columns[3] != "event" {
		t.Fatalf("EVENTS columns = %v", res.Columns)
	}
	found = false
	for _, row := range res.Rows {
		if row[3].Str == "admintest.ping" && row[2].Str == "shop" && row[4].Str == "k=v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EVENTS missing admintest.ping in %d rows", len(res.Rows))
	}
	for _, bad := range []string{"EVENTS 0", "EVENTS -3", "EVENTS x", "EVENTS 1 2"} {
		if _, err := admin.Exec(bad); err == nil {
			t.Errorf("Exec(%q): want error", bad)
		}
	}
}

func TestAdminErrors(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()
	for _, cmd := range []string{
		"",
		"FLY ME",
		"ADD TENANT x",
		"ADD TENANT x ON nope",
		"MIGRATE x TO node0",
		"MIGRATE x TO node0 STRATEGY warp",
		"MIGRATE x y z",
	} {
		if _, err := admin.Exec(cmd); err == nil {
			t.Errorf("Exec(%q): want error", cmd)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"madeus": Madeus, "Madeus": Madeus, "MADEUS": Madeus,
		"b-all": BAll, "BALL": BAll,
		"B-MIN": BMin, "bmin": BMin,
		"B-CON": BCon, "bcon": BCon,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("turbo"); err == nil {
		t.Error("want error for unknown strategy")
	}
	// Round trip through String().
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
	}
}

// TestAdminScopeCommands drives the madeusscope admin surface end to end:
// EVENTS SINCE bookmarks, the merged TRACE view, the HISTORY family, the
// flight-recorder BUNDLE commands, and REMOVE TENANT teardown.
func TestAdminScopeCommands(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()

	tenant := "adminscope"
	if _, err := admin.Exec("ADD TENANT " + tenant + " ON node0"); err != nil {
		t.Fatal(err)
	}
	defer obs.Hist.Drop(tenant)
	c := rig.connect(t, tenant)
	mustExecAll(t, c, "CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)")
	c.Close()
	if _, err := admin.Exec("MIGRATE " + tenant + " TO node1"); err != nil {
		t.Fatal(err)
	}

	// EVENTS SINCE: a bookmark past the ring's head returns nothing; a
	// zero bookmark returns the migration's events for the tenant.
	res, err := admin.Exec("EVENTS SINCE 0 " + tenant)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("EVENTS SINCE 0 returned no rows after a migration")
	}
	lastSeq := res.Rows[len(res.Rows)-1][0].Int
	res, err = admin.Exec(fmt.Sprintf("EVENTS SINCE %d %s", lastSeq+1, tenant))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("EVENTS SINCE past the head returned %d rows", len(res.Rows))
	}

	// TRACE: merged timeline with the step spans.
	res, err = admin.Exec("TRACE " + tenant)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Columns, ","); got != "source,skew,seq,at,tenant,event,detail" {
		t.Fatalf("TRACE columns = %q", got)
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row[5].Str] = true
	}
	for _, want := range []string{"migrate.begin", "step1.mts", "migrate.end"} {
		if !names[want] {
			t.Fatalf("TRACE missing %q; events: %v", want, names)
		}
	}
	if _, err := admin.Exec("TRACE nobody"); err == nil {
		t.Fatal("TRACE on unknown tenant must error")
	}

	// HISTORY: force one sample via a fast cadence, then read both views.
	if _, err := admin.Exec("HISTORY CADENCE 10ms"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(obs.Hist.Last(tenant, -1)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no history sample after CADENCE 10ms")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err = admin.Exec("HISTORY")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].Str == tenant {
			found = true
		}
	}
	if !found {
		t.Fatalf("HISTORY summary misses %q: %v", tenant, res.Rows)
	}
	res, err = admin.Exec("HISTORY " + tenant + " 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("HISTORY %s 5 returned %d rows", tenant, len(res.Rows))
	}
	if _, err := admin.Exec("HISTORY CADENCE nonsense"); err == nil {
		t.Fatal("bad cadence must error")
	}

	// BUNDLE: list and fetch a capture.
	obs.Flight.Reset()
	id := obs.Flight.Capture(obs.Bundle{Tenant: tenant, Reason: "test capture"})
	res, err = admin.Exec("BUNDLE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][2].Str != tenant {
		t.Fatalf("BUNDLE list = %v", res.Rows)
	}
	res, err = admin.Exec(fmt.Sprintf("BUNDLE %d", id))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Rows[0][0].Str, `"reason": "test capture"`) {
		t.Fatalf("BUNDLE %d payload = %q", id, res.Rows[0][0].Str)
	}
	if _, err := admin.Exec("BUNDLE 99999"); err == nil {
		t.Fatal("unknown bundle id must error")
	}

	// REMOVE TENANT tears the tenant down.
	if _, err := admin.Exec("REMOVE TENANT " + tenant); err != nil {
		t.Fatal(err)
	}
	if _, ok := rig.mw.Tenant(tenant); ok {
		t.Fatal("tenant survived REMOVE TENANT")
	}
	if _, err := admin.Exec("REMOVE TENANT " + tenant); err == nil {
		t.Fatal("removing a removed tenant must error")
	}
}
