package wire

import (
	"encoding/json"
	"fmt"

	"madeus/internal/obs"
)

// TraceContext identifies the middleware-side migration a wire operation
// belongs to. When a client carries one, Exec/ExecStream switch to the
// traced frame types and the receiving server stamps its per-operation
// trace events with these fields — which is what lets `madeusctl trace`
// join middleware Step 1–4 spans with the dbnode-side wire and WAL work
// they caused, across process boundaries, keyed by the migration's MTS.
type TraceContext struct {
	Tenant string // migrating tenant (dbnode-side events adopt it)
	MTS    uint64 // migration timestamp: MLC at snapshot (Algorithm 3 Step 1)
	Span   uint64 // middleware-assigned id for this migration attempt
}

// appendTraced builds a traced-query payload into dst: the fixed-width
// context first so a decoder can reject short frames before touching the
// SQL.
func appendTraced(dst []byte, tc *TraceContext, sql string) []byte {
	e := encoder{buf: dst}
	e.u64(tc.MTS)
	e.u64(tc.Span)
	e.str(tc.Tenant)
	return append(e.buf, sql...)
}

// decodeTraced splits a traced-query payload into its context and SQL.
func decodeTraced(payload []byte) (TraceContext, string, error) {
	d := decoder{buf: payload}
	var tc TraceContext
	var err error
	if tc.MTS, err = d.u64(); err != nil {
		return tc, "", fmt.Errorf("wire: short traced frame: %w", err)
	}
	if tc.Span, err = d.u64(); err != nil {
		return tc, "", fmt.Errorf("wire: short traced frame: %w", err)
	}
	if tc.Tenant, err = d.str(); err != nil {
		return tc, "", fmt.Errorf("wire: short traced frame: %w", err)
	}
	return tc, string(payload[d.off:]), nil
}

// encodeScrapeReq builds a MsgObsScrape payload.
func encodeScrapeReq(since uint64, maxEvents int, tenant string) []byte {
	var e encoder
	e.u64(since)
	e.u32(uint32(maxEvents))
	e.str(tenant)
	return e.buf
}

// decodeScrapeReq parses a MsgObsScrape payload.
func decodeScrapeReq(payload []byte) (since uint64, maxEvents int, tenant string, err error) {
	d := decoder{buf: payload}
	if since, err = d.u64(); err != nil {
		return 0, 0, "", fmt.Errorf("wire: short scrape request: %w", err)
	}
	max32, err := d.u32()
	if err != nil {
		return 0, 0, "", fmt.Errorf("wire: short scrape request: %w", err)
	}
	if tenant, err = d.str(); err != nil {
		return 0, 0, "", fmt.Errorf("wire: short scrape request: %w", err)
	}
	return since, int(max32), tenant, nil
}

// encodeSnapshot serializes a scrape reply. JSON rather than the binary
// value encoding: the snapshot is diagnostic data read by humans and the
// middleware's timeline merger, not a hot-path payload, and JSON keeps it
// self-describing as the metric set evolves.
func encodeSnapshot(snap *obs.RemoteSnapshot) ([]byte, error) {
	return json.Marshal(snap)
}

// decodeSnapshot parses a scrape reply.
func decodeSnapshot(payload []byte) (*obs.RemoteSnapshot, error) {
	var snap obs.RemoteSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("wire: bad snapshot payload: %w", err)
	}
	return &snap, nil
}
