package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket` series with `le` labels plus
// `_sum` and `_count`. Metric names are sanitized to the Prometheus
// charset (every non-[a-zA-Z0-9_:] byte becomes '_', so "wire.ops" scrapes
// as "wire_ops"). Histogram bounds stay in the unit the instrumentation
// chose (nanoseconds for latencies) — converting would silently change
// series semantics between the text and Prometheus views.
func WritePrometheus(w io.Writer, snap []Metric) error {
	for _, m := range snap {
		name := promName(m.Name)
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscapeHelp(m.Help)); err != nil {
				return err
			}
		}
		switch m.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value); err != nil {
				return err
			}
		case KindHistogram:
			if m.Hist == nil {
				continue
			}
			if err := writePromHistogram(w, name, m.Hist); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	return err
}

// promName sanitizes a dotted metric name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes backslashes and newlines per the exposition
// format's HELP rules.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
