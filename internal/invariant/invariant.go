// Package invariant provides build-tag-gated runtime assertions for the
// concurrency-critical core (WAL, MVCC, LSIR).
//
// By default every function in this package is an empty no-op that the
// compiler inlines away, so production builds pay nothing for the assertion
// call sites sprinkled through the hot paths (bench guard:
// TestInvariantZeroOverhead at the repo root). Building with
//
//	go test -tags invariants ./...
//
// turns the same call sites into enforced checks that panic on violation and
// bump a global counter, so tests can verify the assertions were actually
// reachable (Count > 0) and the protocol invariants — WAL LSN monotonicity,
// MVCC snapshot-visibility discipline, LSIR propagation ordering — held
// throughout the run.
//
// Discipline for call sites (enforced statically by the invariantcall
// analyzer in internal/analysis):
//
//   - Assert/Assertf conditions must be cheap expressions (comparisons on
//     values already in hand). They are evaluated even in no-tag builds,
//     where only dead-code elimination saves the cost.
//   - Anything that needs a function call — scans, lock acquisitions,
//     re-derivations — goes through Check(func() error {...}); the closure
//     is never invoked in no-tag builds.
package invariant
