package analysis

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestAnalyzerFixtures drives every analyzer over its fixture package under
// testdata/src (a self-contained module loaded with the real loader). A
// fixture line carrying a `// want` marker must yield exactly one finding of
// the package's namesake rule; every other line must yield none. The errdrop
// fixture additionally covers the //madeusvet:ignore suppression path.
//
// staleignore is the one analyzer exercised outside this harness: its
// findings land ON the //madeusvet:ignore directive line, which cannot also
// carry a `// want` comment, so TestStaleIgnore asserts it directly.
func TestAnalyzerFixtures(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := make(map[string]*Analyzer)
	for _, a := range All() {
		analyzers[a.Name] = a
	}

	tested := map[string]bool{StaleIgnore.Name: true}
	for _, pkg := range pkgs {
		base := pkg.Path[strings.LastIndex(pkg.Path, "/")+1:]
		a, ok := analyzers[base]
		if !ok || base == StaleIgnore.Name {
			continue // helper packages (the invariant stub, degraded)
		}
		tested[base] = true
		pkg := pkg
		t.Run(base, func(t *testing.T) {
			if pkg.TypeErr != nil {
				t.Fatalf("fixture failed to type-check: %v", pkg.TypeErr)
			}
			got := make(map[string]int)
			for _, d := range RunAnalyzers(pkg, []*Analyzer{a}) {
				got[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]++
			}
			want := wantMarkers(pkg)
			for loc, n := range want {
				if got[loc] != n {
					t.Errorf("%s: got %d findings, want %d", loc, got[loc], n)
				}
			}
			for loc, n := range got {
				if want[loc] == 0 {
					t.Errorf("%s: %d unexpected finding(s)", loc, n)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture has no want markers; the positive case is missing")
			}
		})
	}
	for name := range analyzers {
		if !tested[name] {
			t.Errorf("analyzer %s has no fixture package under testdata/src", name)
		}
	}
}

// wantMarkers returns the expected finding count per "file:line", parsed
// from `// want` trailing comments. Tag-excluded files are scanned too:
// tagparity reports at positions inside them.
func wantMarkers(pkg *Package) map[string]int {
	out := make(map[string]int)
	scanFile := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]++
			}
		}
	}
	for _, f := range pkg.Files {
		scanFile(f)
	}
	for _, tf := range pkg.Tagged {
		scanFile(tf.File)
	}
	return out
}

// TestIgnoreDirectiveScope pins the suppression contract: a directive
// suppresses its own line and the next, for the named rules only.
func TestIgnoreDirectiveScope(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := RunAnalyzers(pkgs[0], All())
	n := 0
	for _, d := range diags {
		if d.Rule == "errdrop" {
			n++
		}
	}
	// The fixture carries three `// want` positives (dropsCommit plus the
	// two obs-encoder drops); dropsIgnored must NOT add a fourth.
	if n != 3 {
		t.Fatalf("got %d errdrop findings in the fixture, want exactly 3 (the ignored site must be suppressed): %v", n, diags)
	}
}

// TestStaleIgnore pins stale-suppression reporting on the staleignore
// fixture: the directive guarding a live errdrop finding stays silent, the
// one guarding nothing is reported, and the one naming an unknown rule is
// never eligible.
func TestStaleIgnore(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./staleignore")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := RunAnalyzers(pkgs[0], All())
	var stale []Diagnostic
	for _, d := range diags {
		if d.Rule == StaleIgnore.Name {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("got %d staleignore findings, want exactly 1: %v", len(stale), diags)
	}
	if !strings.Contains(stale[0].Message, "errdrop") {
		t.Errorf("stale finding should name the dead rule list: %s", stale[0].Message)
	}
	// The stale directive sits inside deadDirective; the live one inside
	// liveDirective must not be flagged.
	if !strings.Contains(readFixtureLine(t, stale[0]), "outlived its finding") {
		t.Errorf("stale finding anchored at the wrong directive: %s", stale[0])
	}

	// With a narrowed rule set that does not include errdrop, the dead
	// directive is NOT eligible (its rule did not run) and stays silent.
	narrowed := RunAnalyzers(pkgs[0], []*Analyzer{TimerChurn, StaleIgnore})
	for _, d := range narrowed {
		if d.Rule == StaleIgnore.Name {
			t.Errorf("stale reported under a narrowed rule set that never ran errdrop: %s", d)
		}
	}
}

// readFixtureLine returns the source line a diagnostic points at.
func readFixtureLine(t *testing.T, d Diagnostic) string {
	t.Helper()
	data, err := os.ReadFile(d.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if d.Pos.Line-1 >= len(lines) {
		t.Fatalf("diagnostic line %d out of range for %s", d.Pos.Line, d.Pos.Filename)
	}
	return lines[d.Pos.Line-1]
}

// TestLockOrderCycleMessage pins the headline diagnostic: the seeded
// call-graph rank inversion in the lockorder fixture (chainSecond) must be
// diagnosed with the full acquisition cycle spelled out in the message.
func TestLockOrderCycleMessage(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	var inversion *Diagnostic
	for _, d := range RunAnalyzers(pkgs[0], []*Analyzer{LockOrder}) {
		d := d
		if strings.Contains(d.Message, "via lockorder.lockFirst") {
			inversion = &d
			break
		}
	}
	if inversion == nil {
		t.Fatal("the chainSecond call-graph inversion was not reported")
	}
	for _, frag := range []string{
		"lock order violation",
		"acquiring lo-first (rank 30)",
		"while holding lo-second (rank 40)",
		"acquisition cycle:",
		"lo-first → lo-second",
		"→ lo-first (acquired at",
	} {
		if !strings.Contains(inversion.Message, frag) {
			t.Errorf("inversion message missing %q:\n%s", frag, inversion.Message)
		}
	}
}

// TestLoaderDegradedMode pins the degraded contract: a package with a type
// error still loads, records the failure, and runs the AST-heuristic rules.
func TestLoaderDegradedMode(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./degraded")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.TypeErr == nil {
		t.Fatal("the degraded fixture must fail type-checking; its seeded error disappeared")
	}
	diags := RunAnalyzers(pkg, All())
	churn := 0
	for _, d := range diags {
		if d.Rule == "timerchurn" {
			churn++
		}
		if d.Rule == StaleIgnore.Name {
			t.Errorf("staleignore must not fire on a package that failed type-checking: %s", d)
		}
	}
	if churn != 1 {
		t.Fatalf("got %d timerchurn findings in degraded mode, want 1 (AST heuristics must survive the type error): %v", churn, diags)
	}
}

// TestLoaderCache pins the process-wide loader cache (and records the
// timing win): re-loading the same pattern re-parses and re-type-checks
// nothing, which is what keeps `madeusvet ./...` linear in the number of
// packages instead of quadratic (each target re-checking the shared
// dependency spine).
func TestLoaderCache(t *testing.T) {
	dir := filepath.Join("testdata", "src")
	start := time.Now()
	if _, err := Load(dir, "./..."); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	parsed0, hits0, checked0 := CacheStats()

	start = time.Now()
	if _, err := Load(dir, "./..."); err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	parsed1, hits1, checked1 := CacheStats()

	if parsed1 != parsed0 {
		t.Errorf("second Load parsed %d new package(s); want 0 (cache miss)", parsed1-parsed0)
	}
	if checked1 != checked0 {
		t.Errorf("second Load type-checked %d new package(s); want 0 (cache miss)", checked1-checked0)
	}
	if hits1 <= hits0 {
		t.Errorf("second Load recorded no cache hits (got %d -> %d)", hits0, hits1)
	}
	// Timing note: the warm load is typically orders of magnitude faster
	// than the cold one (which compiles the stdlib slice the fixtures
	// import from source). Logged, not asserted — CI machines vary.
	t.Logf("loader cache: cold=%v warm=%v (parsed=%d, cacheHits=%d, typeChecked=%d)",
		cold, warm, parsed1, hits1, checked1)
}
