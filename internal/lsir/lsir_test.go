package lsir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// appendixCHistory is the worked example of Appendix C:
//
//	T_i = r_i(x_p) w_i(x_i) c_i
//	T_j = r_j(y_q) w_j(y_j) c_j   (concurrent with T_i)
//	T_k = r_k(x_i) w_k(x_k) c_k   (starts after both committed)
func appendixCHistory() History {
	return History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 2, Kind: OpRead, Item: "y", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "x"},
		{Txn: 2, Kind: OpWrite, Item: "y"},
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpCommit},
		{Txn: 3, Kind: OpRead, Item: "x", ReadVer: 1},
		{Txn: 3, Kind: OpWrite, Item: "x"},
		{Txn: 3, Kind: OpCommit},
	}}
}

func TestAppendixCTimestamps(t *testing.T) {
	sets := MapHistory(appendixCHistory())
	if len(sets) != 3 {
		t.Fatalf("got %d syncsets, want 3", len(sets))
	}
	// The paper's example starts the MLC at 3; ours starts at 0, so the
	// expected stamps are shifted by 3: STS_i=STS_j=0, ETS_i=0, ETS_j=1,
	// STS_k=ETS_k=2.
	byTxn := make(map[int]Syncset)
	for _, ss := range sets {
		byTxn[ss.Txn] = ss
	}
	if s := byTxn[1]; s.STS != 0 || s.ETS != 0 {
		t.Errorf("T_i STS/ETS = %d/%d, want 0/0", s.STS, s.ETS)
	}
	if s := byTxn[2]; s.STS != 0 || s.ETS != 1 {
		t.Errorf("T_j STS/ETS = %d/%d, want 0/1", s.STS, s.ETS)
	}
	if s := byTxn[3]; s.STS != 2 || s.ETS != 2 {
		t.Errorf("T_k STS/ETS = %d/%d, want 2/2", s.STS, s.ETS)
	}
}

func TestAppendixCScheduleAndGroupCommit(t *testing.T) {
	h := appendixCHistory()
	sets := MapHistory(h)
	sched := MadeusSchedule(sets)

	// Expected shape: r_i r_j | w_i w_j | c_i c_j (one group commit) |
	// r_k | w_k | c_k.
	var kinds []string
	for _, op := range sched.Ops {
		kinds = append(kinds, op.String())
	}
	got := strings.Join(kinds, " ")
	want := "r1(x_0) r2(y_0) w1(x_1) w2(y_2) c1 c2 r3(x_1) w3(x_3) c3"
	if got != want {
		t.Errorf("schedule = %s\nwant       %s", got, want)
	}

	if err := CheckLSIR(h, sched); err != nil {
		t.Errorf("CheckLSIR: %v", err)
	}
	if err := Replay(h, sched); err != nil {
		t.Errorf("Replay: %v", err)
	}

	batches := CommitBatches(sets)
	if len(batches) != 2 || batches[0] != 2 || batches[1] != 1 {
		t.Errorf("CommitBatches = %v, want [2 1] (c_i and c_j group committed)", batches)
	}
}

func TestMappingDiscardsReadOnlyAndAborted(t *testing.T) {
	h := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0}, // read-only txn
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpRead, Item: "x", ReadVer: 0}, // aborted update txn
		{Txn: 2, Kind: OpWrite, Item: "x"},
		{Txn: 2, Kind: OpAbort},
		{Txn: 3, Kind: OpRead, Item: "x", ReadVer: 0}, // committed update txn
		{Txn: 3, Kind: OpRead, Item: "y", ReadVer: 0}, // second read: discarded
		{Txn: 3, Kind: OpWrite, Item: "x"},
		{Txn: 3, Kind: OpCommit},
	}}
	sets := MapHistory(h)
	if len(sets) != 1 || sets[0].Txn != 3 {
		t.Fatalf("sets = %+v, want only T3", sets)
	}
	ops := sets[0].Ops
	if len(ops) != 3 || ops[0].Kind != OpRead || ops[1].Kind != OpWrite || ops[2].Kind != OpCommit {
		t.Errorf("T3 syncset = %v, want [first read, write, commit]", ops)
	}
	if ops[0].Item != "x" {
		t.Errorf("first read kept %q, want the FIRST read x", ops[0].Item)
	}
}

func TestMLCIncrementsOnlyOnUpdateCommits(t *testing.T) {
	h := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0}, // read-only
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 2, Kind: OpWrite, Item: "x"},
		{Txn: 2, Kind: OpCommit},
		{Txn: 3, Kind: OpRead, Item: "x", ReadVer: 2},
		{Txn: 3, Kind: OpWrite, Item: "x"},
		{Txn: 3, Kind: OpCommit},
	}}
	sets := MapHistory(h)
	byTxn := make(map[int]Syncset)
	for _, ss := range sets {
		byTxn[ss.Txn] = ss
	}
	// T1 is read-only: no MLC bump, so T2 has STS=0,ETS=0; T3 STS=1,ETS=1.
	if s := byTxn[2]; s.STS != 0 || s.ETS != 0 {
		t.Errorf("T2 = %d/%d, want 0/0", s.STS, s.ETS)
	}
	if s := byTxn[3]; s.STS != 1 || s.ETS != 1 {
		t.Errorf("T3 = %d/%d, want 1/1", s.STS, s.ETS)
	}
}

func TestDependencyClassification(t *testing.T) {
	// T1 writes x and commits; T2 reads x_1 (inter-wr), rewrites x twice
	// (intra-ww, and its first read -> own write is intra-rw), commits.
	// T3 concurrent with T2 read x_1 before T2's commit (inter-rw with
	// T2's write).
	h := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "x"},
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpRead, Item: "x", ReadVer: 1},
		{Txn: 3, Kind: OpRead, Item: "x", ReadVer: 1},
		{Txn: 2, Kind: OpWrite, Item: "x"},
		{Txn: 2, Kind: OpWrite, Item: "x"},
		{Txn: 2, Kind: OpCommit},
		{Txn: 3, Kind: OpCommit},
	}}
	deps := Dependencies(h)

	if n := len(FilterDeps(deps, DepWR, false)); n != 2 {
		t.Errorf("inter-wr = %d, want 2 (w1->r2, w1->r3)", n)
	}
	if n := len(FilterDeps(deps, DepRW, true)); n != 2 {
		t.Errorf("intra-rw = %d, want 2 (r1 -> w1, r2 -> w2)", n)
	}
	if n := len(FilterDeps(deps, DepRW, false)); n != 1 {
		t.Errorf("inter-rw = %d, want 1 (r3 -> w2)", n)
	}
	if n := len(FilterDeps(deps, DepWW, true)); n < 1 {
		t.Errorf("intra-ww = %d, want >= 1 (w2 -> w2)", n)
	}
}

// TestLemma1NoConcurrentInterWW: the first-updater-wins rule means no SI
// history contains an inter-ww dependency between concurrent transactions —
// every inter-ww is between serially ordered transactions, whose order the
// LSIR already fixes via (1-a).
func TestLemma1NoConcurrentInterWW(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := Generate(rng, DefaultGenConfig())
		txns := h.Txns()
		for _, d := range FilterDeps(Dependencies(h), DepWW, false) {
			i, j := h.Ops[d.From].Txn, h.Ops[d.To].Txn
			// T_j must have started after T_i committed: its first
			// op index > T_i's commit index.
			firstJ := -1
			for idx, op := range h.Ops {
				if op.Txn == j {
					firstJ = idx
					break
				}
			}
			if firstJ < txns[i].End {
				t.Fatalf("trial %d: concurrent inter-ww between %d and %d in %s", trial, i, j, h)
			}
		}
	}
}

// TestPropertyMadeusScheduleValidAndConsistent is the machine check of
// Theorem 1 + Theorem 2's scheduling half: for randomized SI histories, the
// Madeus schedule always satisfies the LSIR and always replays to a slave
// state consistent with the master.
func TestPropertyMadeusScheduleValidAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultGenConfig()
		cfg.Txns = 5 + rng.Intn(15)
		h := Generate(rng, cfg)
		sets := MapHistory(h)
		sched := MadeusSchedule(sets)
		if err := CheckLSIR(h, sched); err != nil {
			t.Logf("history: %s", h)
			t.Logf("CheckLSIR: %v", err)
			return false
		}
		if err := Replay(h, sched); err != nil {
			t.Logf("history: %s", h)
			t.Logf("Replay: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// SerialSchedule lays each syncset out whole, in master commit (ETS) order —
// the B-ALL / B-MIN propagation order.
func serialSchedule(sets []Syncset) Schedule {
	var out []Op
	for _, ss := range sets {
		out = append(out, ss.Ops...)
	}
	return Schedule{Ops: out}
}

// TestSerialCommitOrderCanViolateLSIR documents why the LSIR orders first
// reads before later commits (rule 1-b): serial commit-order replay places a
// concurrent transaction's first read AFTER a commit it preceded on the
// master, so its replayed snapshot would differ. (The serial baselines are
// still state-consistent for workloads whose update statements read only
// rows they also write — the TPC-W property — but the model check is
// strict.)
func TestSerialCommitOrderCanViolateLSIR(t *testing.T) {
	// T1 and T2 concurrent; T1 commits first; T2's first read preceded
	// T1's commit.
	h := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 2, Kind: OpRead, Item: "y", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "x"},
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpWrite, Item: "y"},
		{Txn: 2, Kind: OpCommit},
	}}
	sets := MapHistory(h)
	serial := serialSchedule(sets)
	if err := CheckLSIR(h, serial); err == nil {
		t.Error("serial commit-order schedule unexpectedly satisfies the LSIR")
	}
	if err := Replay(h, serial); err == nil {
		t.Error("strict replay unexpectedly accepts the serial schedule")
	}
	// The Madeus schedule for the same history is valid.
	if err := CheckLSIR(h, MadeusSchedule(sets)); err != nil {
		t.Errorf("Madeus schedule: %v", err)
	}
}

func TestCheckLSIRDetectsRuleViolations(t *testing.T) {
	h := appendixCHistory()
	sets := MapHistory(h)
	good := MadeusSchedule(sets)

	// (1-a): move c1 after r3 (c1 < r3,1 on master).
	bad1 := Schedule{Ops: swapOps(good.Ops, findOp(good.Ops, 1, OpCommit), findOp(good.Ops, 3, OpRead))}
	if err := CheckLSIR(h, bad1); err == nil || !strings.Contains(err.Error(), "1-a") {
		t.Errorf("rule 1-a violation not caught: %v", err)
	}

	// (2): reverse a transaction's write order.
	h2 := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "x"},
		{Txn: 1, Kind: OpRead, Item: "y", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "y"},
		{Txn: 1, Kind: OpCommit},
	}}
	sets2 := MapHistory(h2)
	good2 := MadeusSchedule(sets2)
	bad2 := Schedule{Ops: swapOps(good2.Ops, 1, 2)} // swap w(x) and w(y)
	if err := CheckLSIR(h2, bad2); err == nil {
		t.Error("rule 2 violation not caught")
	}

	// Completeness: drop an op.
	bad3 := Schedule{Ops: good.Ops[:len(good.Ops)-1]}
	if err := CheckLSIR(h, bad3); err == nil {
		t.Error("missing op not caught")
	}

	// Extra transaction.
	bad4 := Schedule{Ops: append(append([]Op{}, good.Ops...), Op{Txn: 99, Kind: OpCommit})}
	if err := CheckLSIR(h, bad4); err == nil {
		t.Error("extra txn not caught")
	}
}

func findOp(ops []Op, txn int, kind OpKind) int {
	for i, op := range ops {
		if op.Txn == txn && op.Kind == kind {
			return i
		}
	}
	return -1
}

func swapOps(ops []Op, i, j int) []Op {
	out := append([]Op{}, ops...)
	out[i], out[j] = out[j], out[i]
	return out
}

func TestFinalStateAndItems(t *testing.T) {
	h := appendixCHistory()
	fs := h.FinalState()
	if fs["x"] != 3 || fs["y"] != 2 {
		t.Errorf("FinalState = %v", fs)
	}
	items := h.Items()
	if len(items) != 2 || items[0] != "x" || items[1] != "y" {
		t.Errorf("Items = %v", items)
	}
}

func TestHistoryString(t *testing.T) {
	h := History{Ops: []Op{
		{Txn: 1, Kind: OpRead, Item: "x", ReadVer: 0},
		{Txn: 1, Kind: OpWrite, Item: "x"},
		{Txn: 1, Kind: OpCommit},
		{Txn: 2, Kind: OpAbort},
	}}
	want := "r1(x_0) w1(x_1) c1 a2"
	if got := h.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// TestGeneratorProducesValidSIHistories sanity-checks the generator itself:
// reads observe committed versions consistent with snapshots, and no two
// concurrent committed transactions write the same item.
func TestGeneratorProducesValidSIHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sawCommit, sawAbort, sawReadOnly := false, false, false
	for trial := 0; trial < 100; trial++ {
		h := Generate(rng, DefaultGenConfig())
		txns := h.Txns()
		for _, ti := range txns {
			if ti.Committed {
				sawCommit = true
				if !ti.Update {
					sawReadOnly = true
				}
			}
			if ti.Aborted {
				sawAbort = true
			}
			if ti.Committed && ti.Aborted {
				t.Fatal("txn both committed and aborted")
			}
			if ti.End < 0 {
				t.Fatal("unfinished txn in history")
			}
		}
		// No blind writes: each write preceded by a read of the item
		// in the same txn.
		seenRead := make(map[[2]interface{}]bool)
		for _, op := range h.Ops {
			if op.Kind == OpRead {
				seenRead[[2]interface{}{op.Txn, op.Item}] = true
			}
			if op.Kind == OpWrite && !seenRead[[2]interface{}{op.Txn, op.Item}] {
				t.Fatalf("blind write in %s", h)
			}
		}
	}
	if !sawCommit || !sawAbort || !sawReadOnly {
		t.Errorf("generator coverage: commit=%v abort=%v readonly=%v", sawCommit, sawAbort, sawReadOnly)
	}
}

// TestPropertyGroupCommitGrowsWithConcurrency: more concurrent transactions
// yield larger Madeus commit batches — the mechanism behind the paper's
// "migration time decreases under heavy workload" observation.
func TestPropertyGroupCommitGrowsWithConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	maxBatch := func(txns int) int {
		best := 0
		for trial := 0; trial < 50; trial++ {
			cfg := DefaultGenConfig()
			cfg.Txns = txns
			cfg.PReadTxn = 0
			cfg.PAbort = 0
			cfg.Items = 50 // low contention -> high concurrency
			h := Generate(rng, cfg)
			for _, b := range CommitBatches(MapHistory(h)) {
				if b > best {
					best = b
				}
			}
		}
		return best
	}
	low := maxBatch(2)
	high := maxBatch(30)
	if high <= low {
		t.Errorf("max batch under heavy concurrency (%d) not larger than light (%d)", high, low)
	}
}

func BenchmarkMapHistory(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultGenConfig()
	cfg.Txns = 100
	h := Generate(rng, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MapHistory(h)
	}
}

func BenchmarkMadeusSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultGenConfig()
	cfg.Txns = 100
	sets := MapHistory(Generate(rng, cfg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MadeusSchedule(sets)
	}
}
