package wire

import (
	"bufio"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/sqlmini"
)

// rawConn opens a TCP connection to the server without the client wrapper.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	var hdr [5]byte
	hdr[0] = MsgStartup
	binary.BigEndian.PutUint32(hdr[1:], 1<<31) // absurd length
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection rather than allocate.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection close or error")
	}
}

func TestServerHandlesAbruptDisconnectMidFrame(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	var hdr [5]byte
	hdr[0] = MsgStartup
	binary.BigEndian.PutUint32(hdr[1:], 100) // promise 100 bytes
	conn.Write(hdr[:])
	conn.Write([]byte("db")) // send only 2
	conn.Close()
	// Server must not hang or crash; a fresh client still works.
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsUnexpectedMessageType(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	// Valid startup first.
	if err := writeMsg(conn, MsgStartup, []byte("db")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	typ, _, err := readMsg(br)
	if err != nil || typ != MsgReady {
		t.Fatalf("startup: %c %v", typ, err)
	}
	// Then garbage type.
	if err := writeMsg(conn, 'Z', nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readMsg(br)
	if err != nil {
		t.Fatalf("read error response: %v", err)
	}
	if typ != MsgError {
		t.Errorf("got %c %q, want error", typ, payload)
	}
}

func TestQueryBeforeStartupDropsConnection(t *testing.T) {
	_, srv := newServer(t)
	conn := rawConn(t, srv.Addr())
	if err := writeMsg(conn, MsgQuery, []byte("SELECT 1 FROM t")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected close for query before startup")
	}
}

func TestDecodeResultBadValueKind(t *testing.T) {
	full := EncodeResult(&engine.Result{
		Tag: "SELECT 1", Columns: []string{"a"},
		Rows: [][]sqlmini.Value{{sqlmini.NewInt(1)}},
	})
	full[len(full)-9] = 0xFF // the kind byte of the single INT value
	if _, err := DecodeResult(full); err == nil {
		t.Error("corrupt kind not detected")
	}
}
