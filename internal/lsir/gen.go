package lsir

import (
	"fmt"
	"math/rand"
)

// GenConfig bounds the random history generator.
type GenConfig struct {
	Txns     int     // number of transactions to run
	Items    int     // size of the data-item universe
	MaxOps   int     // max read/write operations per transaction
	PReadTxn float64 // probability a transaction is read-only
	PAbort   float64 // probability a transaction voluntarily aborts
}

// DefaultGenConfig returns sensible fuzzing bounds.
func DefaultGenConfig() GenConfig {
	return GenConfig{Txns: 12, Items: 5, MaxOps: 5, PReadTxn: 0.3, PAbort: 0.1}
}

// Generate produces a random, well-formed SI history: transactions
// interleave arbitrarily; snapshots are taken at the first operation; reads
// observe the latest version committed before the snapshot (or the
// transaction's own write); writers respect the first-updater-wins rule
// (losers abort); there are no blind writes (every write is preceded by a
// read of the same item in the same transaction).
//
// The generator is itself a model SI engine; its output feeds the
// dependency analyzer, the mapping function, and the Theorem-1 replayer.
func Generate(rng *rand.Rand, cfg GenConfig) History {
	type verEntry struct {
		commitSeq int // global commit counter when this version committed
		writer    int
	}
	versions := make(map[string][]verEntry) // committed versions per item, oldest first
	locks := make(map[string]int)           // item -> active writer txn

	type genTxn struct {
		id       int
		plan     []Op // reads/writes to attempt
		pc       int
		snapSeq  int // commit counter at snapshot; -1 = not yet taken
		writes   map[string]bool
		readSet  map[string]bool
		finished bool
	}

	itemName := func(i int) string { return fmt.Sprintf("x%d", i) }

	var txns []*genTxn
	for i := 1; i <= cfg.Txns; i++ {
		t := &genTxn{id: i, snapSeq: -1, writes: make(map[string]bool), readSet: make(map[string]bool)}
		readOnly := rng.Float64() < cfg.PReadTxn
		n := 1 + rng.Intn(cfg.MaxOps)
		for j := 0; j < n; j++ {
			item := itemName(rng.Intn(cfg.Items))
			if readOnly || rng.Float64() < 0.5 {
				t.plan = append(t.plan, Op{Txn: i, Kind: OpRead, Item: item})
			} else {
				// No blind writes: ensure a prior read of item.
				already := false
				for _, p := range t.plan {
					if p.Kind == OpRead && p.Item == item {
						already = true
						break
					}
				}
				if !already {
					t.plan = append(t.plan, Op{Txn: i, Kind: OpRead, Item: item})
				}
				t.plan = append(t.plan, Op{Txn: i, Kind: OpWrite, Item: item})
			}
		}
		txns = append(txns, t)
	}

	var h History
	commitSeq := 0
	readVersion := func(t *genTxn, item string) int {
		if t.writes[item] {
			return t.id // read own write
		}
		best := 0
		for _, v := range versions[item] {
			if v.commitSeq <= t.snapSeq {
				best = v.writer
			}
		}
		return best
	}
	abort := func(t *genTxn) {
		for item, owner := range locks {
			if owner == t.id {
				delete(locks, item)
			}
		}
		h.Ops = append(h.Ops, Op{Txn: t.id, Kind: OpAbort})
		t.finished = true
	}
	commit := func(t *genTxn) {
		commitSeq++
		for item := range t.writes {
			versions[item] = append(versions[item], verEntry{commitSeq: commitSeq, writer: t.id})
			delete(locks, item)
		}
		h.Ops = append(h.Ops, Op{Txn: t.id, Kind: OpCommit})
		t.finished = true
	}

	active := len(txns)
	for active > 0 {
		t := txns[rng.Intn(len(txns))]
		if t.finished {
			continue
		}
		if t.pc >= len(t.plan) {
			if len(t.writes) > 0 && rng.Float64() < cfg.PAbort {
				abort(t)
			} else {
				commit(t)
			}
			active--
			continue
		}
		op := t.plan[t.pc]
		t.pc++
		if t.snapSeq < 0 {
			t.snapSeq = commitSeq // snapshot at first operation
		}
		switch op.Kind {
		case OpRead:
			op.ReadVer = readVersion(t, op.Item)
			t.readSet[op.Item] = true
			h.Ops = append(h.Ops, op)
		case OpWrite:
			if t.writes[op.Item] {
				// Rewriting its own version: allowed.
				h.Ops = append(h.Ops, op)
				continue
			}
			// First-updater-wins, committed-winner case: a version
			// committed after our snapshot exists.
			conflict := false
			for _, v := range versions[op.Item] {
				if v.commitSeq > t.snapSeq {
					conflict = true
					break
				}
			}
			if conflict {
				abort(t)
				active--
				continue
			}
			// Active-winner case: another active writer holds the
			// lock. Rather than modeling blocking, the loser aborts
			// (equivalent to a lock-wait timeout; still a valid SI
			// history).
			if owner, held := locks[op.Item]; held && owner != t.id {
				abort(t)
				active--
				continue
			}
			locks[op.Item] = t.id
			t.writes[op.Item] = true
			h.Ops = append(h.Ops, op)
		}
	}
	return h
}
