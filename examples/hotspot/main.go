// Hotspot: the paper's Section 5.6 scenario. Three tenants share node0;
// tenant B runs a heavy workload and makes the node a hot spot. The example
// migrates B to the empty node1 and shows every tenant's response time
// before and after — then contrasts with what migrating a LIGHT tenant
// would have achieved.
//
//	go run ./examples/hotspot
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"madeus/internal/bench"
	"madeus/internal/core"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

func main() {
	cfg := bench.Default()
	cfg.RowFactor = 200 // small data so the demo is quick

	h, err := bench.NewHarness(cfg, 2)
	check(err)
	defer h.Close()

	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
	tenants := map[string]int{ // paper EB counts
		"tenantA": 200, "tenantB": 700, "tenantC": 200,
	}
	for tn := range tenants {
		check(h.Provision(tn, "node0", scale))
	}
	fmt.Println("three tenants on node0; tenant B is heavy — node0 is a hot spot")

	// Run all three workloads.
	ctx, cancel := context.WithCancel(context.Background())
	recs := make(map[string]*metrics.Recorder)
	for tn, paperEBs := range tenants {
		rec := metrics.NewRecorder()
		recs[tn] = rec
		tnName := tn
		ebs := cfg.EBs(paperEBs)
		go func() {
			tpcw.RunFleet(ctx, ebs, tpcw.Ordering, scale, cfg.Think, func() (tpcw.Execer, error) {
				return wire.Dial(h.MW.Addr(), tnName)
			}, rec)
		}()
	}
	time.Sleep(2 * time.Second)
	before := snapshot(recs)

	// Case 1: migrate the heavy tenant (the paper's recommendation).
	rep, err := h.MW.Migrate("tenantB", "node1", core.MigrateOptions{Strategy: core.Madeus})
	check(err)
	fmt.Printf("\nmigrated heavy tenant B in %v\n", rep.Total().Round(time.Millisecond))

	time.Sleep(2 * time.Second)
	after := snapshot(recs)
	cancel()

	fmt.Printf("\n%-8s  %-12s  %-12s\n", "tenant", "RT before", "RT after")
	for _, tn := range []string{"tenantA", "tenantB", "tenantC"} {
		fmt.Printf("%-8s  %-12v  %-12v\n", tn,
			before[tn].Round(time.Millisecond), after[tn].Round(time.Millisecond))
	}
	fmt.Println("\nmigrating the HEAVY tenant relieves everyone: the paper's answer")
	fmt.Println("to 'which tenant should be migrated?' (Sec 5.6). Migrating a light")
	fmt.Println("tenant instead leaves the hot spot in place — try it by changing")
	fmt.Println("the Migrate call to tenantC.")
}

// snapshot reports each tenant's mean response time over the most recent
// two seconds.
func snapshot(recs map[string]*metrics.Recorder) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for tn, rec := range recs {
		buckets := rec.Series(200 * time.Millisecond)
		var total time.Duration
		n := 0
		start := len(buckets) - 10
		if start < 0 {
			start = 0
		}
		for _, b := range buckets[start:] {
			total += b.Mean * time.Duration(b.Count)
			n += b.Count
		}
		if n > 0 {
			out[tn] = total / time.Duration(n)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
