package sqlmini

import (
	"fmt"
	"strings"
)

// Lexer turns a SQL string into a token stream.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Lex tokenizes the whole input, returning the tokens (terminated by a
// TokEOF token) or a lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// Next returns the next token in the input.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isAlpha(c):
		return lx.lexWord(start), nil
	case isDigit(c):
		return lx.lexNumber(start)
	case c == '\'':
		return lx.lexString(start)
	default:
		return lx.lexSymbol(start)
	}
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case ' ', '\t', '\n', '\r':
			lx.pos++
		case '-':
			// "--" starts a line comment.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
				for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
					lx.pos++
				}
				continue
			}
			return
		default:
			return
		}
	}
}

func (lx *Lexer) lexWord(start int) Token {
	for lx.pos < len(lx.src) && isWordChar(lx.src[lx.pos]) {
		lx.pos++
	}
	word := lx.src[start:lx.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}
}

func (lx *Lexer) lexNumber(start int) (Token, error) {
	kind := TokInt
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		kind = TokFloat
		lx.pos++
		if lx.pos >= len(lx.src) || !isDigit(lx.src[lx.pos]) {
			return Token{}, fmt.Errorf("sqlmini: malformed number at offset %d", start)
		}
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	return Token{Kind: kind, Text: lx.src[start:lx.pos], Pos: start}, nil
}

// lexString scans a single-quoted SQL string literal. A doubled quote (”)
// inside the literal denotes one quote character.
func (lx *Lexer) lexString(start int) (Token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
}

func (lx *Lexer) lexSymbol(start int) (Token, error) {
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		lx.pos += 2
		return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', ';', '.':
		lx.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, start)
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isWordChar(c byte) bool { return isAlpha(c) || isDigit(c) }
