//go:build faultinject

package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestErrorOnceAndTimes(t *testing.T) {
	defer Reset()
	Enable("t.once", Policy{Times: 1})
	if err := Inject("t.once"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first hit: got %v, want ErrInjected", err)
	}
	if err := Inject("t.once"); err != nil {
		t.Fatalf("second hit after Times=1: got %v, want nil", err)
	}
	if got := SiteHits("t.once"); got != 2 {
		t.Fatalf("SiteHits = %d, want 2", got)
	}
	if got := SiteFired("t.once"); got != 1 {
		t.Fatalf("SiteFired = %d, want 1", got)
	}

	Enable("t.thrice", Policy{Times: 3})
	var fired int
	for i := 0; i < 5; i++ {
		if Inject("t.thrice") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Times=3 fired %d times over 5 hits", fired)
	}
}

func TestSkipTargetsLaterHits(t *testing.T) {
	defer Reset()
	Enable("t.skip", Policy{Skip: 2, Times: 1})
	for i := 0; i < 2; i++ {
		if err := Inject("t.skip"); err != nil {
			t.Fatalf("hit %d within Skip window: got %v", i+1, err)
		}
	}
	if err := Inject("t.skip"); err == nil {
		t.Fatal("third hit should fire")
	}
}

func TestCustomError(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("t.err", Policy{Err: boom, Times: 1})
	if err := Inject("t.err"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestDropIsTypedAndInjected(t *testing.T) {
	defer Reset()
	Enable("t.drop", Policy{Drop: true, Times: 1})
	err := Inject("t.drop")
	if !IsConnDrop(err) {
		t.Fatalf("got %v, want conn drop", err)
	}
	if !IsInjected(err) {
		t.Fatal("drop error should also satisfy IsInjected")
	}
	var de *DropError
	if !errors.As(err, &de) || de.Site != "t.drop" {
		t.Fatalf("drop error should carry the site name, got %v", err)
	}
}

func TestDelayReturnsNil(t *testing.T) {
	defer Reset()
	Enable("t.delay", Policy{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject("t.delay"); err != nil {
		t.Fatalf("pure delay should return nil, got %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay policy returned after %v, want ≥20ms", d)
	}
}

func TestHangUntilReleased(t *testing.T) {
	defer Reset()
	Enable("t.hang", Policy{Hang: true, Times: 1})
	done := make(chan error, 1)
	go func() { done <- Inject("t.hang") }()

	// The goroutine must park, not return.
	select {
	case err := <-done:
		t.Fatalf("hang site returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	Release("t.hang")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released hang should return nil, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Release did not free the parked goroutine")
	}
	// After the Times=1 hang fired, later hits pass straight through.
	if err := Inject("t.hang"); err != nil {
		t.Fatalf("post-hang hit: got %v", err)
	}
}

func TestResetFreesHangers(t *testing.T) {
	defer Reset()
	Enable("t.hang2", Policy{Hang: true})
	done := make(chan struct{})
	go func() { _ = Inject("t.hang2"); close(done) }()
	time.Sleep(10 * time.Millisecond)
	Reset()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Reset did not free the parked goroutine")
	}
	if err := Inject("t.hang2"); err != nil {
		t.Fatalf("after Reset the site must be unarmed, got %v", err)
	}
}

func TestProbabilisticIsSeededAndDeterministic(t *testing.T) {
	defer Reset()
	run := func() []bool {
		Seed(42)
		Enable("t.p", Policy{P: 0.5})
		out := make([]bool, 100)
		for i := range out {
			out[i] = Inject("t.p") != nil
		}
		Disable("t.p")
		return out
	}
	a, b := run(), run()
	firedCount := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			firedCount++
		}
	}
	if firedCount == 0 || firedCount == len(a) {
		t.Fatalf("P=0.5 fired %d/%d times; want a mix", firedCount, len(a))
	}
}

func TestUnarmedSitesPassAndListSorts(t *testing.T) {
	defer Reset()
	if err := Inject("t.never-armed"); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
	Enable("t.b", Policy{})
	Enable("t.a", Policy{})
	got := List()
	if len(got) != 2 || got[0] != "t.a" || got[1] != "t.b" {
		t.Fatalf("List = %v, want [t.a t.b]", got)
	}
	Disable("t.a")
	Disable("t.b")
	// Registry fully disarmed: fast path active again.
	if err := Inject("t.a"); err != nil {
		t.Fatalf("disabled site returned %v", err)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	defer Reset()
	Enable("t.conc", Policy{Times: 50})
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Inject("t.conc") != nil {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 50 {
		t.Fatalf("Times=50 fired %d times across goroutines", total)
	}
	if got := SiteHits("t.conc"); got != 800 {
		t.Fatalf("SiteHits = %d, want 800", got)
	}
}
