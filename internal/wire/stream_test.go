package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"madeus/internal/engine"
)

// TestStreamChunkCodecRoundTrip exercises the chunk/end frame codecs.
func TestStreamChunkCodecRoundTrip(t *testing.T) {
	stmts := []string{"CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)", ""}
	seq, got, err := DecodeStreamChunk(EncodeStreamChunk(7, stmts))
	if err != nil || seq != 7 {
		t.Fatalf("seq=%d err=%v", seq, err)
	}
	if strings.Join(got, "|") != strings.Join(stmts, "|") {
		t.Fatalf("stmts = %v", got)
	}
	if _, _, err := DecodeStreamChunk([]byte{1, 2}); err == nil {
		t.Error("truncated chunk not detected")
	}

	chunks, res, err := DecodeStreamEnd(EncodeStreamEnd(3, &engine.Result{Tag: "DUMP STREAM 9"}))
	if err != nil || chunks != 3 || res.Tag != "DUMP STREAM 9" {
		t.Fatalf("chunks=%d res=%+v err=%v", chunks, res, err)
	}
	if _, _, err := DecodeStreamEnd([]byte{0}); err == nil {
		t.Error("truncated trailer not detected")
	}
}

// TestExecStreamRoundTrip: a DUMP STREAM against a real engine-backed
// server delivers ordered chunks whose statements reassemble the dump.
func TestExecStreamRoundTrip(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%d, 'n%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := c.Exec("DUMP")
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	var lastSeq uint32
	nChunks := 0
	res, err := c.ExecStream("DUMP STREAM 1", func(seq uint32, stmts []string) error {
		if seq != uint32(nChunks) {
			t.Errorf("chunk seq %d, want %d", seq, nChunks)
		}
		lastSeq = seq
		nChunks++
		got = append(got, stmts...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lastSeq
	if want := fmt.Sprintf("DUMP STREAM %d", len(got)); res.Tag != want {
		t.Errorf("tag = %q, want %q", res.Tag, want)
	}
	if len(got) != len(full.Rows) {
		t.Fatalf("streamed %d stmts, full dump has %d", len(got), len(full.Rows))
	}
	for i, row := range full.Rows {
		if got[i] != row[0].Str {
			t.Errorf("stmt %d = %q, want %q", i, got[i], row[0].Str)
		}
	}
	// The client stays usable for plain queries afterwards.
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
}

// TestExecStreamServerError: a server-reported error mid-protocol is a
// *ServerError and does NOT poison the connection.
func TestExecStreamServerError(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecStream("DUMP STREAM -5", func(uint32, []string) error { return nil })
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %T %v, want *ServerError", err, err)
	}
	if c.broken {
		t.Fatal("server error poisoned the stream connection")
	}
	// The conn still answers plain queries.
	if _, err := c.Exec("CREATE TABLE alive (id INT PRIMARY KEY)"); err != nil {
		t.Fatalf("conn unusable after server error: %v", err)
	}
}

// TestExecStreamSinkErrorPoisons: a sink failure mid-stream leaves frames
// in flight, so the client must poison the conn (the cause stays
// inspectable through Unwrap).
func TestExecStreamSinkErrorPoisons(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO t (id) VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("applier refused chunk")
	_, err = c.ExecStream("DUMP STREAM 1", func(uint32, []string) error { return boom })
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if _, err := c.Exec("SELECT id FROM t"); !errors.Is(err, ErrConnLost) {
		t.Fatalf("poisoned conn accepted a query: %v", err)
	}
}

// TestExecStreamSeqGapPoisons: a scripted server that skips a sequence
// number desyncs the stream; the client must treat it as conn loss.
func TestExecStreamSeqGapPoisons(t *testing.T) {
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		if _, _, err := readMsg(br); err != nil {
			return
		}
		writeMsg(conn, MsgStreamChunk, EncodeStreamChunk(0, []string{"a"}))
		writeMsg(conn, MsgStreamChunk, EncodeStreamChunk(2, []string{"b"})) // gap!
		writeMsg(conn, MsgStreamEnd, EncodeStreamEnd(3, &engine.Result{}))
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecStream("DUMP STREAM 4", func(uint32, []string) error { return nil })
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost on sequence gap", err)
	}
}

// TestExecStreamDropMidStreamIsConnLoss: the server dies between chunks;
// the client reports a typed transport loss (the trigger for the
// migration rollback protocol upstream).
func TestExecStreamDropMidStreamIsConnLoss(t *testing.T) {
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		if _, _, err := readMsg(br); err != nil {
			return
		}
		writeMsg(conn, MsgStreamChunk, EncodeStreamChunk(0, []string{"CREATE TABLE t (id INT PRIMARY KEY)"}))
		// return → conn closes mid-stream
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seen := 0
	_, err = c.ExecStream("DUMP STREAM 4", func(uint32, []string) error { seen++; return nil })
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost", err)
	}
	if seen != 1 {
		t.Fatalf("sink saw %d chunks, want 1", seen)
	}
}

// TestExecStreamChunkTotalMismatchPoisons: a trailer claiming the wrong
// chunk count is a protocol violation.
func TestExecStreamChunkTotalMismatchPoisons(t *testing.T) {
	addr := scriptedAddr(t, func(sess int, conn net.Conn, br *bufio.Reader) {
		if !startupOK(conn, br) {
			return
		}
		if _, _, err := readMsg(br); err != nil {
			return
		}
		writeMsg(conn, MsgStreamChunk, EncodeStreamChunk(0, []string{"a"}))
		writeMsg(conn, MsgStreamEnd, EncodeStreamEnd(5, &engine.Result{})) // only 1 sent
	})
	c, err := Dial(addr, "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecStream("DUMP STREAM 4", func(uint32, []string) error { return nil })
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("got %v, want ErrConnLost on chunk-count mismatch", err)
	}
}

// TestQueryStreamAgainstNonStreamingStatement: MsgQueryStream with a plain
// statement gets a chunkless trailer — streaming is opt-in per statement
// but safe for any SQL.
func TestQueryStreamAgainstNonStreamingStatement(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecStream("SELECT id FROM t", func(uint32, []string) error {
		t.Error("plain statement produced a chunk")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "SELECT 0" {
		t.Errorf("tag = %q", res.Tag)
	}
}
