package sqlmini

import (
	"strings"
	"testing"
)

func TestLexSimpleSelect(t *testing.T) {
	toks, err := Lex("SELECT id, name FROM users WHERE id = 42")
	if err != nil {
		t.Fatal(err)
	}
	want := []Token{
		{TokKeyword, "SELECT", 0},
		{TokIdent, "id", 7},
		{TokSymbol, ",", 9},
		{TokIdent, "name", 11},
		{TokKeyword, "FROM", 16},
		{TokIdent, "users", 21},
		{TokKeyword, "WHERE", 27},
		{TokIdent, "id", 33},
		{TokSymbol, "=", 36},
		{TokInt, "42", 38},
		{TokEOF, "", 40},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d: got %+v, want %+v", i, toks[i], want[i])
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := Lex("select * from t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("lowercase select: got %v", toks[0])
	}
	if toks[2].Kind != TokKeyword || toks[2].Text != "FROM" {
		t.Errorf("lowercase from: got %v", toks[2])
	}
}

func TestLexStringLiteral(t *testing.T) {
	toks, err := Lex("'hello world'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Errorf("got %v", toks[0])
	}
}

func TestLexStringEscapedQuote(t *testing.T) {
	toks, err := Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("got %q, want %q", toks[0].Text, "it's")
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex("'oops"); err == nil {
		t.Error("want error for unterminated string")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 23 4.5 0.125")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokenKind{TokInt, TokInt, TokFloat, TokFloat, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got kind %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexMalformedFloat(t *testing.T) {
	if _, err := Lex("SELECT 4. FROM t"); err == nil {
		t.Error("want error for malformed float")
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	for _, op := range []string{"<=", ">=", "<>", "!="} {
		toks, err := Lex("a " + op + " b")
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if toks[1].Kind != TokSymbol || toks[1].Text != op {
			t.Errorf("%s: got %v", op, toks[1])
		}
	}
}

func TestLexLineComment(t *testing.T) {
	toks, err := Lex("SELECT a -- trailing comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if strings.Contains(joined, "comment") {
		t.Errorf("comment not skipped: %v", toks)
	}
	if toks[2].Text != "FROM" {
		t.Errorf("got %v after comment, want FROM", toks[2])
	}
}

func TestLexMinusIsOperatorNotComment(t *testing.T) {
	toks, err := Lex("1 - 2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokSymbol || toks[1].Text != "-" {
		t.Errorf("got %v, want '-'", toks[1])
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	if _, err := Lex("SELECT @ FROM t"); err == nil {
		t.Error("want error for '@'")
	}
}

func TestLexEmptyInput(t *testing.T) {
	toks, err := Lex("   \n\t ")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Kind != TokEOF {
		t.Errorf("got %v, want just EOF", toks)
	}
}
