package obs

import (
	"testing"
	"time"
)

// TestScopeSnapshot covers the scrape-response builder: bookmark, tenant
// filter, tail cap, and the clock/seq anchors.
func TestScopeSnapshot(t *testing.T) {
	s := NewScope("test-scope")
	s.Registry.NewCounter("x.ops", "").Add(2)
	s.Tracer.Emit("a", "ev.one")
	s.Tracer.Emit("b", "ev.two")
	s.Tracer.Emit("a", "ev.three")

	snap := s.Snapshot(0, "", 0)
	if snap.Instance != "test-scope" {
		t.Fatalf("Instance = %q", snap.Instance)
	}
	if snap.NextSeq != 3 || len(snap.Events) != 3 {
		t.Fatalf("NextSeq=%d events=%d, want 3/3", snap.NextSeq, len(snap.Events))
	}
	if snap.Now.IsZero() {
		t.Fatal("no clock anchor")
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 2 {
		t.Fatalf("Metrics = %v", snap.Metrics)
	}
	if got := s.Snapshot(0, "a", 0).Events; len(got) != 2 {
		t.Fatalf("tenant filter got %d events, want 2", len(got))
	}
	if got := s.Snapshot(0, "", 2).Events; len(got) != 2 || got[1].Name != "ev.three" {
		t.Fatalf("tail cap got %v, want the 2 newest", got)
	}
	if got := s.Snapshot(snap.NextSeq, "", 0).Events; len(got) != 0 {
		t.Fatalf("bookmark scrape got %d events, want 0", len(got))
	}
}

// TestNewScopeUniqueIDs: generated private-scope IDs never collide with
// the process instance or each other.
func TestNewScopeUniqueIDs(t *testing.T) {
	a, b := NewScope(""), NewScope("")
	if a.ID == b.ID || a.ID == Instance() || b.ID == Instance() {
		t.Fatalf("scope IDs collide: %q %q (process %q)", a.ID, b.ID, Instance())
	}
	if a.Registry == nil || a.Tracer == nil {
		t.Fatal("private scope missing registry or tracer")
	}
	if Process().Registry != Default || Process().Tracer != Trace {
		t.Fatal("process scope does not wrap the package globals")
	}
}

// TestMergeTimeline pins the merged ordering: skew-adjusted time first,
// then source, then sequence within a source.
func TestMergeTimeline(t *testing.T) {
	base := time.Unix(1000, 0)
	evs := []TimelineEvent{
		{Source: "node1", Skew: time.Second, Event: Event{Seq: 1, At: base.Add(3 * time.Second)}}, // adjusted: +2s
		{Source: "madeusd", Event: Event{Seq: 9, At: base}},
		{Source: "node0", Skew: -time.Second, Event: Event{Seq: 2, At: base}},    // adjusted: +1s
		{Source: "madeusd", Event: Event{Seq: 7, At: base.Add(2 * time.Second)}}, // ties with node1's
	}
	got := MergeTimeline(evs)

	if got[0].Source != "madeusd" || got[0].Seq != 9 {
		t.Fatalf("first = %v, want madeusd #9 at base", got[0])
	}
	if got[1].Source != "node0" {
		t.Fatalf("second = %v, want node0 (skew-adjusted to +1s)", got[1])
	}
	// +2s tie: source name breaks it (madeusd < node1).
	if got[2].Source != "madeusd" || got[3].Source != "node1" {
		t.Fatalf("tie-break order = %s, %s; want madeusd then node1", got[2].Source, got[3].Source)
	}
	if adj := got[3].AdjustedAt(); !adj.Equal(base.Add(2 * time.Second)) {
		t.Fatalf("AdjustedAt = %v, want %v", adj, base.Add(2*time.Second))
	}
}
