package wire

import (
	"strings"
	"testing"

	"madeus/internal/obs"
)

// TestTracedPayloadRoundTrip pins the traced-frame and scrape encodings.
func TestTracedPayloadRoundTrip(t *testing.T) {
	tc := &TraceContext{Tenant: "shop", MTS: 42, Span: 7}
	sql := "INSERT INTO t (id) VALUES (1)"
	got, gotSQL, err := decodeTraced(appendTraced(nil, tc, sql))
	if err != nil {
		t.Fatal(err)
	}
	if got != *tc || gotSQL != sql {
		t.Fatalf("round trip = %+v %q, want %+v %q", got, gotSQL, *tc, sql)
	}

	if _, _, err := decodeTraced([]byte{1, 2, 3}); err == nil {
		t.Fatal("short traced frame must not decode")
	}

	since, max, tenant, err := decodeScrapeReq(encodeScrapeReq(99, 128, "shop"))
	if err != nil {
		t.Fatal(err)
	}
	if since != 99 || max != 128 || tenant != "shop" {
		t.Fatalf("scrape req round trip = %d %d %q", since, max, tenant)
	}

	snap := &obs.RemoteSnapshot{Instance: "node0", NextSeq: 5,
		Events: []obs.Event{{Seq: 4, Tenant: "shop", Name: "wire.exec"}}}
	payload, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.Instance != "node0" || back.NextSeq != 5 || len(back.Events) != 1 {
		t.Fatalf("snapshot round trip = %+v", back)
	}
	if _, err := decodeSnapshot([]byte("{")); err == nil {
		t.Fatal("bad snapshot JSON must not decode")
	}
}

// TestTracedExecStampsServerEvents drives traced queries end to end: a
// client carrying a TraceContext makes the server emit per-operation events
// into its scope's ring, tagged with the migration's MTS and span.
func TestTracedExecStampsServerEvents(t *testing.T) {
	_, srv := newServer(t)
	scope := obs.NewScope("nodeX")
	srv.SetScope(scope)

	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Plain exec first: no context, no events.
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if got := scope.Tracer.Since(0, ""); len(got) != 0 {
		t.Fatalf("untraced exec emitted %d events: %v", len(got), got)
	}

	c.SetTraceContext(&TraceContext{Tenant: "shop", MTS: 42, Span: 7})
	if _, err := c.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}

	events := scope.Tracer.Since(0, "shop")
	if len(events) != 2 {
		t.Fatalf("got %d traced events, want 2: %v", len(events), events)
	}
	for _, e := range events {
		if e.Name != "wire.exec" {
			t.Fatalf("event name = %q, want wire.exec", e.Name)
		}
		fields := map[string]string{}
		for _, f := range e.Fields {
			fields[f.Key] = f.Value
		}
		if fields["mts"] != "42" || fields["span"] != "7" {
			t.Fatalf("event fields = %v, want mts=42 span=7", e.Fields)
		}
		if e.Dur <= 0 {
			t.Fatalf("traced event has no duration: %v", e)
		}
	}

	// Clearing the context reverts to plain frames.
	c.SetTraceContext(nil)
	if _, err := c.Exec("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if got := scope.Tracer.Since(0, "shop"); len(got) != 2 {
		t.Fatalf("cleared context still emitted events: %v", got)
	}
}

// TestTracedExecDisabledObs pins the cost contract: with obs globally off,
// a client carrying a context still sends plain frames and the server
// stays silent.
func TestTracedExecDisabledObs(t *testing.T) {
	_, srv := newServer(t)
	scope := obs.NewScope("nodeY")
	srv.SetScope(scope)

	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTraceContext(&TraceContext{Tenant: "shop", MTS: 1, Span: 1})

	obs.SetEnabled(false)
	_, execErr := c.Exec("CREATE TABLE t2 (id INT PRIMARY KEY)")
	obs.SetEnabled(true)
	if execErr != nil {
		t.Fatal(execErr)
	}
	if got := scope.Tracer.Since(0, ""); len(got) != 0 {
		t.Fatalf("disabled obs still emitted %d events", len(got))
	}
}

// TestClientScrape exercises the remote-scrape op: the middleware-side pull
// of a node's registry snapshot and event tail.
func TestClientScrape(t *testing.T) {
	_, srv := newServer(t)
	scope := obs.NewScope("nodeZ")
	srv.SetScope(scope)
	scope.Tracer.Emit("shop", "wire.exec")
	scope.Tracer.Emit("other", "wire.exec")
	scope.Tracer.Emit("shop", "wire.stream")

	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	snap, err := c.Scrape(0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Instance != "nodeZ" {
		t.Fatalf("Instance = %q, want nodeZ", snap.Instance)
	}
	if snap.NextSeq != 3 || len(snap.Events) != 3 {
		t.Fatalf("NextSeq=%d events=%d, want 3 and 3", snap.NextSeq, len(snap.Events))
	}
	if snap.Now.IsZero() {
		t.Fatal("snapshot carries no clock anchor")
	}

	// Tenant filter and bookmark.
	snap, err = c.Scrape(0, "shop", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) != 2 {
		t.Fatalf("tenant-filtered scrape got %d events, want 2", len(snap.Events))
	}
	snap, err = c.Scrape(snap.NextSeq, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) != 0 {
		t.Fatalf("bookmark scrape got %d events, want 0", len(snap.Events))
	}

	// The registry snapshot rides along (process Default registry has the
	// wire metrics; a private scope's registry is its own).
	if scope.Registry == nil {
		t.Fatal("scope has no registry")
	}
}

// TestScrapeMaxEvents caps the returned tail.
func TestScrapeMaxEvents(t *testing.T) {
	_, srv := newServer(t)
	scope := obs.NewScope("nodeW")
	srv.SetScope(scope)
	for i := 0; i < 10; i++ {
		scope.Tracer.Emit("shop", "wire.exec")
	}
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.Scrape(0, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("capped scrape got %d events, want 4", len(snap.Events))
	}
	if snap.Events[len(snap.Events)-1].Seq != 9 {
		t.Fatalf("cap must keep the newest events, got tail seq %d", snap.Events[len(snap.Events)-1].Seq)
	}
}

// TestMalformedTracedFrame: a garbage traced frame is rejected with a
// server error, not a hang or a crash.
func TestMalformedTracedFrame(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := writeMsg(c.bw, MsgQueryTraced, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readMsg(c.br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("got frame %c, want MsgError", typ)
	}
	if !strings.Contains(string(payload), "traced") {
		t.Fatalf("error payload %q does not mention the traced frame", payload)
	}
}
