package obs

import (
	"sync"
	"time"
)

// Bundle is one flight-recorder capture: the diagnostic state frozen at
// the moment a migration died (rollback, watchdog abort, SSL overflow).
// It is deliberately generic — fields, events, metrics, samples — so the
// recorder lives below internal/core and the core formats its Report and
// flow/fault state into Detail without an import cycle.
type Bundle struct {
	ID      int       `json:"id"`
	At      time.Time `json:"at"`
	Tenant  string    `json:"tenant"`
	Reason  string    `json:"reason"`
	Detail  []Field   `json:"detail,omitempty"`
	Events  []Event   `json:"events,omitempty"`
	Metrics []Metric  `json:"metrics,omitempty"`
	History []Sample  `json:"history,omitempty"`
}

// DefaultFlightCap bounds the package-level recorder: 16 bundles is
// several distinct incidents' worth while keeping worst-case memory small
// (each bundle holds one event tail + one registry snapshot).
const DefaultFlightCap = 16

// Flight is the process-wide flight recorder the migration rollback path
// captures into and the admin BUNDLE command reads.
var Flight = NewFlightRecorder(DefaultFlightCap)

// FlightRecorder is a bounded in-memory store of diagnostic bundles:
// oldest bundles are evicted FIFO past the cap, IDs grow monotonically
// from 1 so an evicted bundle's ID is never reused.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	nextID  int
	bundles []Bundle
}

// NewFlightRecorder creates a recorder holding at most n bundles
// (minimum 1).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{cap: n, nextID: 1}
}

// Capture stores one bundle, assigning its ID and timestamp, and returns
// the ID. While obs is disabled nothing is stored and 0 is returned — the
// caller should have skipped assembling the bundle behind On() anyway.
func (f *FlightRecorder) Capture(b Bundle) int {
	if !enabled.Load() {
		return 0
	}
	f.mu.Lock()
	b.ID = f.nextID
	f.nextID++
	if b.At.IsZero() {
		b.At = time.Now()
	}
	f.bundles = append(f.bundles, b)
	if len(f.bundles) > f.cap {
		f.bundles = append(f.bundles[:0], f.bundles[len(f.bundles)-f.cap:]...)
	}
	f.mu.Unlock()
	return b.ID
}

// Bundles copies out the retained bundles, oldest first.
func (f *FlightRecorder) Bundles() []Bundle {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Bundle(nil), f.bundles...)
}

// Get returns the bundle with the given ID, if still retained.
func (f *FlightRecorder) Get(id int) (Bundle, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, b := range f.bundles {
		if b.ID == id {
			return b, true
		}
	}
	return Bundle{}, false
}

// Len reports how many bundles are retained.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.bundles)
}

// Reset drops every retained bundle (tests; IDs keep growing).
func (f *FlightRecorder) Reset() {
	f.mu.Lock()
	f.bundles = nil
	f.mu.Unlock()
}
