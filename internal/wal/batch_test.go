package wal

import (
	"testing"
	"time"
)

// TestAppendBatchMatchesAppend: a batch produces the same durable stream
// as the equivalent sequence of single Appends — consecutive LSNs, one
// frame per record, replayable.
func TestAppendBatchMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: GroupCommit, SyncDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}

	l.Append(Record{TxnID: 1, Kind: RecBegin, DB: "shop"})
	batch := []Record{
		{TxnID: 1, Kind: RecUpdate, DB: "shop", Table: "t", Data: "UPDATE t SET v = 1 WHERE id = 1"},
		{TxnID: 1, Kind: RecUpdate, DB: "shop", Table: "t", Data: "UPDATE t SET v = 2 WHERE id = 2"},
		{TxnID: 1, Kind: RecDelete, DB: "shop", Table: "t", Data: "DELETE FROM t WHERE id = 3"},
	}
	l.AppendBatch(batch)
	for i := 1; i < len(batch); i++ {
		if batch[i].LSN != batch[i-1].LSN+1 {
			t.Errorf("batch LSNs not consecutive: %d then %d", batch[i-1].LSN, batch[i].LSN)
		}
	}
	if batch[0].LSN != 2 {
		t.Errorf("first batch LSN = %d, want 2", batch[0].LSN)
	}
	l.Append(Record{TxnID: 1, Kind: RecCommit, DB: "shop"})
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen and replay: one committed unit carrying the batch in order.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var units []Unit
	if _, err := l2.Replay(func(u Unit) error { units = append(units, u); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("replayed %d units, want 1", len(units))
	}
	stmts := units[0].Stmts
	if len(stmts) != 3 {
		t.Fatalf("unit has %d stmts, want 3", len(stmts))
	}
	for i, rec := range batch {
		if stmts[i] != rec.Data {
			t.Errorf("stmt %d = %q, want %q", i, stmts[i], rec.Data)
		}
	}
}

// TestAppendBatchRetainsAndCounts: the retained prefix and record counter
// see batched records exactly like single ones, and the retention cap
// still binds.
func TestAppendBatchRetainsAndCounts(t *testing.T) {
	l := New(Options{RetainRecords: 3})
	defer l.Close()

	l.AppendBatch([]Record{
		{Kind: RecBegin, TxnID: 1},
		{Kind: RecInsert, TxnID: 1, Data: "a"},
		{Kind: RecInsert, TxnID: 1, Data: "b"},
		{Kind: RecCommit, TxnID: 1},
	})
	if got := l.Stats().Records; got != 4 {
		t.Errorf("Records = %d, want 4", got)
	}
	ret := l.Retained()
	if len(ret) != 3 {
		t.Fatalf("retained %d records, want 3 (cap)", len(ret))
	}
	for i := 1; i < len(ret); i++ {
		if ret[i].LSN != ret[i-1].LSN+1 {
			t.Errorf("retained LSNs not consecutive: %+v", ret)
		}
	}

	// Empty batch is a no-op.
	l.AppendBatch(nil)
	if got := l.Stats().Records; got != 4 {
		t.Errorf("Records after empty batch = %d, want 4", got)
	}
}
