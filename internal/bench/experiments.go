package bench

import (
	"fmt"
	"time"

	"madeus/internal/core"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
)

// Table2 renders the middleware capability matrix (paper Table 2).
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: difference among middleware approaches",
		Header: []string{"", "MIN", "CON-FW", "CON-COM"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, s := range core.Strategies() {
		c := s.Capabilities()
		t.AddRow(s.String(), mark(c.Min), mark(c.ConFW), mark(c.ConCom))
	}
	return t
}

// Fig5 reproduces the preliminary experiment (Fig 5): mean response time of
// one tenant versus load, classifying light / medium / heavy bands. levels
// are paper-scale EB counts; nil selects the paper's 100..1000.
func Fig5(cfg Config, levels []int) (*Table, error) {
	if levels == nil {
		levels = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	h, err := NewHarness(cfg, 1)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Fig 5: preliminary experiment — mean response time vs load (ordering mix)",
		Header: []string{"EBs(paper)", "EBs(run)", "mean RT", "p95 RT", "tput/s", "band"},
	}
	var baseline time.Duration
	for _, paperEBs := range levels {
		sum, err := h.MeasureLoad("tenantA", cfg.EBs(paperEBs), tpcw.Ordering, scale)
		if err != nil {
			return nil, err
		}
		if baseline == 0 && sum.Mean > 0 {
			baseline = sum.Mean
		}
		band := classify(sum.Mean, baseline)
		t.AddRow(fmt.Sprint(paperEBs), fmt.Sprint(cfg.EBs(paperEBs)),
			fmtDur(sum.Mean), fmtDur(sum.P95), fmt.Sprintf("%.0f", sum.Throughput), band)
	}
	t.Note("paper: <100 ms light (100-300 EBs), <2 s medium (400-600), >2 s heavy (700-1000)")
	t.Note("bands here are relative to the lightest level: light <5x, medium <25x, heavy >=25x")
	return t, nil
}

// classify assigns the scaled analogue of the paper's 2-second-rule bands:
// the paper's thresholds (100 ms, 2 s) sit at roughly 4x and 20x its
// lightest mean response time.
func classify(mean, baseline time.Duration) string {
	if baseline == 0 {
		return "light"
	}
	switch ratio := float64(mean) / float64(baseline); {
	case ratio < 5:
		return "light"
	case ratio < 25:
		return "medium"
	default:
		return "heavy"
	}
}

// Fig6 reproduces the migration-time comparison (Fig 6): for each workload
// level, migrate an 800 MB-equivalent tenant with each strategy. A strategy
// whose slave cannot catch up reports N/A, as B-CON does in the paper.
func Fig6(cfg Config, levels []int) (*Table, error) {
	if levels == nil {
		levels = []int{PaperLightEBs, PaperMediumEBs, PaperHeavyEBs}
	}
	t := &Table{
		Title:  "Fig 6: migration time by workload and strategy (800 MB-equivalent DB)",
		Header: []string{"EBs(paper)", "B-ALL", "B-MIN", "B-CON", "Madeus"},
	}
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	for _, paperEBs := range levels {
		row := []string{fmt.Sprint(paperEBs)}
		for _, strat := range []core.Strategy{core.BAll, core.BMin, core.BCon, core.Madeus} {
			total, err := migrateOnce(cfg, scale, paperEBs, strat)
			switch {
			case err == core.ErrCatchupTimeout:
				row = append(row, "N/A")
			case err != nil:
				return nil, fmt.Errorf("bench: fig6 %s at %d EBs: %w", strat, paperEBs, err)
			default:
				row = append(row, fmtDur(total))
			}
		}
		t.AddRow(row...)
	}
	t.Note("paper at 700 EBs: B-ALL 959 s, B-MIN 332 s, B-CON N/A, Madeus 101 s")
	t.Note("N/A = slave could not catch up within %v", cfg.CatchupTimeout)
	return t, nil
}

// migrateOnce runs one fresh cluster + load + migration and returns the
// total migration time.
func migrateOnce(cfg Config, scale tpcw.Scale, paperEBs int, strat core.Strategy) (time.Duration, error) {
	h, err := NewHarness(cfg, 2)
	if err != nil {
		return 0, err
	}
	defer h.Close()
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return 0, err
	}
	rep, _, err := h.MigrateUnderLoad("tenantA", "node1", cfg.EBs(paperEBs),
		tpcw.Ordering, scale, core.MigrateOptions{Strategy: strat})
	if err != nil {
		if rep != nil && rep.Failed {
			return 0, rep.Err
		}
		return 0, err
	}
	return rep.Total(), nil
}

// TimelineResult carries the Fig 7/8 series plus the migration window.
type TimelineResult struct {
	Table    *Table
	Report   *core.Report
	MigStart time.Duration // offset of migration start within the series
	MigEnd   time.Duration
}

// Figs7and8 reproduces the response-time (Fig 7) and throughput (Fig 8)
// timelines of one heavy-loaded tenant across a Madeus migration.
func Figs7and8(cfg Config) (*TimelineResult, error) {
	h, err := NewHarness(cfg, 2)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return nil, err
	}

	w := h.StartWorkload("tenantA", cfg.EBs(PaperHeavyEBs), tpcw.Ordering, scale)
	time.Sleep(cfg.Warm + cfg.Measure/2)
	migStart := time.Since(w.Rec.Start())
	rep, err := h.MW.Migrate("tenantA", "node1", core.MigrateOptions{Strategy: core.Madeus})
	migEnd := time.Since(w.Rec.Start())
	if err != nil {
		w.Stop()
		return nil, err
	}
	time.Sleep(cfg.Measure / 2)
	if err := w.Stop(); err != nil {
		return nil, err
	}

	width := cfg.Measure / 20
	if width < 20*time.Millisecond {
		width = 20 * time.Millisecond
	}
	t := &Table{
		Title:  "Fig 7/8: response time and throughput around a Madeus migration (heavy load)",
		Header: []string{"t", "mean RT", "max RT", "tput/s", "phase"},
	}
	for _, b := range w.Rec.Series(width) {
		if b.Count == 0 {
			continue
		}
		phase := "normal"
		if b.Start+width > migStart && b.Start < migEnd {
			phase = "MIGRATING"
		}
		if b.Start >= migEnd {
			phase = "after"
		}
		t.AddRow(fmtDur(b.Start), fmtDur(b.Mean), fmtDur(b.Max),
			fmt.Sprintf("%.0f", b.Throughput), phase)
	}
	t.Note("migration %v -> %v (%v total); paper: small dips at start (MTS critical region) and end (switch-over)",
		fmtDur(migStart), fmtDur(migEnd), fmtDur(rep.Total()))
	return &TimelineResult{Table: t, Report: rep, MigStart: migStart, MigEnd: migEnd}, nil
}

// Fig9Table3 reproduces Table 3 (database sizes) and Fig 9 (Madeus
// migration time vs database size under heavy load).
func Fig9Table3(cfg Config, sizes []struct{ Items, EBs int }) (*Table, *Table, error) {
	if sizes == nil {
		sizes = []struct{ Items, EBs int }{
			{100000, 100}, {500000, 500}, {1000000, 1000}, {2000000, 2000},
		}
	}
	t3 := &Table{
		Title:  "Table 3: database size (scaled 1/" + fmt.Sprint(cfg.RowFactor) + ")",
		Header: []string{"items(paper)", "EBs(paper)", "paper size", "rows(run)", "run size"},
	}
	f9 := &Table{
		Title:  "Fig 9: Madeus migration time vs database size (heavy load)",
		Header: []string{"paper size", "migration", "snapshot", "restore", "propagate"},
	}
	paperSizes := []string{"0.8 GB", "3.1 GB", "6.2 GB", "12 GB"}
	for i, sz := range sizes {
		scale := tpcw.ScaleFor(sz.Items, sz.EBs, cfg.RowFactor)
		label := fmt.Sprintf("size%d", i)
		if i < len(paperSizes) {
			label = paperSizes[i]
		}
		t3.AddRow(fmt.Sprint(sz.Items), fmt.Sprint(sz.EBs), label,
			fmt.Sprint(scale.Items+scale.Customers+scale.Authors),
			fmt.Sprintf("%.0f KB", float64(scale.EstimatedBytes())/1024))

		h, err := NewHarness(cfg, 2)
		if err != nil {
			return nil, nil, err
		}
		if err := h.Provision("tenantA", "node0", scale); err != nil {
			h.Close()
			return nil, nil, err
		}
		rep, _, err := h.MigrateUnderLoad("tenantA", "node1", cfg.EBs(PaperHeavyEBs),
			tpcw.Ordering, scale, core.MigrateOptions{Strategy: core.Madeus})
		h.Close()
		if err != nil {
			return nil, nil, err
		}
		f9.AddRow(label, fmtDur(rep.Total()), fmtDur(rep.SnapshotTime),
			fmtDur(rep.RestoreTime), fmtDur(rep.PropagateTime))
	}
	f9.Note("paper: 101 s, 496 s, 1365 s, 3536 s — roughly linear growth in size")
	return t3, f9, nil
}

// MultiTenantResult is the outcome of a Sec 5.6 case study.
type MultiTenantResult struct {
	Summary *Table
	Series  map[string]*Table // per-tenant timelines (Figs 10-19)
	Report  *core.Report
}

// Case1 migrates the HEAVY tenant B off a hot spot (Figs 10-13); Case2
// migrates the LIGHT tenant C instead (Figs 14-19).
func Case1(cfg Config) (*MultiTenantResult, error) { return multiTenant(cfg, "tenantB") }

// Case2 is the light-tenant counterpart of Case1.
func Case2(cfg Config) (*MultiTenantResult, error) { return multiTenant(cfg, "tenantC") }

func multiTenant(cfg Config, victim string) (*MultiTenantResult, error) {
	h, err := NewHarness(cfg, 2)
	if err != nil {
		return nil, err
	}
	defer h.Close()

	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	tenants := []string{"tenantA", "tenantB", "tenantC"}
	ebs := map[string]int{
		"tenantA": cfg.EBs(200), // light
		"tenantB": cfg.EBs(PaperHeavyEBs),
		"tenantC": cfg.EBs(200), // light
	}
	for _, tn := range tenants {
		if err := h.Provision(tn, "node0", scale); err != nil {
			return nil, err
		}
	}
	loads := make(map[string]*Workload, len(tenants))
	for _, tn := range tenants {
		loads[tn] = h.StartWorkload(tn, ebs[tn], tpcw.Ordering, scale)
	}

	time.Sleep(cfg.Warm + cfg.Measure/2)
	migStart := time.Since(loads[victim].Rec.Start())
	rep, err := h.MW.Migrate(victim, "node1", core.MigrateOptions{Strategy: core.Madeus})
	migEnd := time.Since(loads[victim].Rec.Start())
	if err != nil {
		for _, w := range loads {
			w.Stop()
		}
		return nil, err
	}
	time.Sleep(cfg.Measure / 2)
	for _, w := range loads {
		if err := w.Stop(); err != nil {
			return nil, err
		}
	}

	res := &MultiTenantResult{Report: rep, Series: make(map[string]*Table)}
	caseName := "Case 1 (migrate heavy tenant B)"
	if victim == "tenantC" {
		caseName = "Case 2 (migrate light tenant C)"
	}
	sum := &Table{
		Title: fmt.Sprintf("Sec 5.6 %s: per-tenant response time and throughput", caseName),
		Header: []string{"tenant", "load", "RT before", "RT during", "RT after",
			"tput before", "tput during", "tput after"},
	}
	width := 100 * time.Millisecond
	for _, tn := range tenants {
		rec := loads[tn].Rec
		// Skip the fleet warm-up transient in the "before" window.
		before := window(rec, width, cfg.Warm, migStart)
		during := window(rec, width, migStart, migEnd)
		after := window(rec, width, migEnd, time.Duration(1<<62))
		role := "light"
		if tn == "tenantB" {
			role = "heavy"
		}
		if tn == victim {
			role += "*"
		}
		sum.AddRow(tn, role,
			fmtDur(before.Mean), fmtDur(during.Mean), fmtDur(after.Mean),
			fmt.Sprintf("%.0f", before.Throughput), fmt.Sprintf("%.0f", during.Throughput),
			fmt.Sprintf("%.0f", after.Throughput))

		// Full timeline table (Figures 10-19 series).
		ts := &Table{
			Title:  fmt.Sprintf("%s — %s timeline", caseName, tn),
			Header: []string{"t", "mean RT", "tput/s", "phase"},
		}
		for _, b := range rec.Series(width) {
			if b.Count == 0 {
				continue
			}
			phase := "before"
			if b.Start+width > migStart && b.Start < migEnd {
				phase = "MIGRATING"
			}
			if b.Start >= migEnd {
				phase = "after"
			}
			ts.AddRow(fmtDur(b.Start), fmtDur(b.Mean), fmt.Sprintf("%.0f", b.Throughput), phase)
		}
		res.Series[tn] = ts
	}
	sum.Note("migration of %s took %v (%v -> %v); * marks the migrated tenant", victim,
		fmtDur(rep.Total()), fmtDur(migStart), fmtDur(migEnd))
	sum.Note("paper: migrating heavy B takes ~100 s and relieves the hot spot; migrating light C takes ~130 s and does not")
	res.Summary = sum
	return res, nil
}

// windowStats aggregates series buckets within [from, to).
type windowStats struct {
	Mean       time.Duration
	Throughput float64
}

func window(rec *metrics.Recorder, width time.Duration, from, to time.Duration) windowStats {
	var total time.Duration
	count := 0
	buckets := 0
	for _, b := range rec.Series(width) {
		if b.Start < from || b.Start >= to {
			continue
		}
		total += b.Mean * time.Duration(b.Count)
		count += b.Count
		buckets++
	}
	ws := windowStats{}
	if count > 0 {
		ws.Mean = total / time.Duration(count)
	}
	if buckets > 0 {
		ws.Throughput = float64(count) / (time.Duration(buckets) * width).Seconds()
	}
	return ws
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Mixes compares the three TPC-W profiles (Sec 5.1) at the paper's medium
// load: the update ratio drives both the commit pressure and the syncset
// volume a migration must move. Not a paper figure; included because the
// paper's Sec 5.1 motivates choosing the ordering mix as the hardest case.
func Mixes(cfg Config) (*Table, error) {
	h, err := NewHarness(cfg, 2)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	scale := tpcw.ScaleFor(100000, PaperLightEBs, cfg.RowFactor)
	if err := h.Provision("tenantA", "node0", scale); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "TPC-W mixes at medium load: response time and Madeus migration",
		Header: []string{"mix", "update%", "mean RT", "tput/s", "migration", "syncsets"},
	}
	for _, mix := range tpcw.Mixes() {
		sum, err := h.MeasureLoad("tenantA", cfg.EBs(PaperMediumEBs), mix, scale)
		if err != nil {
			return nil, err
		}
		rep, _, err := h.MigrateUnderLoad("tenantA", h.otherNode(), cfg.EBs(PaperMediumEBs),
			mix, scale, core.MigrateOptions{Strategy: core.Madeus})
		if err != nil {
			return nil, err
		}
		t.AddRow(mix.Name, fmt.Sprint(mix.UpdatePct), fmtDur(sum.Mean),
			fmt.Sprintf("%.0f", sum.Throughput), fmtDur(rep.Total()),
			fmt.Sprint(rep.Propagation.Syncsets))
	}
	t.Note("ordering (50%% updates) produces the most syncsets — the paper's \"more severe for replication\" choice")
	return t, nil
}
