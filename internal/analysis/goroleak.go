package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak flags `go` statements (outside tests) whose goroutine has no
// visible escape hatch: no channel operation, no context/done/stop
// selection, no WaitGroup bookkeeping — the shape of a goroutine that can
// outlive its owner and leak. The launched body is resolved for func
// literals and same-package functions/methods; launches of functions the
// analyzer cannot see into are skipped rather than guessed at.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines need a WaitGroup, done channel, or context escape hatch",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	// Index this package's function and method bodies by name.
	bodies := make(map[string]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				bodies[fn.Name.Name] = fn.Body
			}
		}
	}

	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body, what = fun.Body, "go func literal"
			case *ast.Ident:
				body, what = bodies[fun.Name], "go "+fun.Name
			case *ast.SelectorExpr:
				body, what = bodies[fun.Sel.Name], "go "+exprString(fun)
			}
			if body == nil {
				return true // cross-package launch: cannot inspect, do not guess
			}
			if !hasEscapeHatch(pass, body) {
				pass.Reportf(g.Pos(), "%s has no escape hatch (no channel op, context/done selection, or WaitGroup); it can leak", what)
			}
			return true
		})
	}
}

// hasEscapeHatch reports whether body contains any mechanism that lets the
// goroutine terminate on demand or signal completion: channel send/receive/
// close/select/range-over-channel, a context or done/stop/quit/abort
// reference, or WaitGroup Done/Add.
func hasEscapeHatch(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			// Ranging over a channel terminates when it is closed.
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				switch fun.Sel.Name {
				case "Done", "Add", "Wait": // WaitGroup bookkeeping or ctx.Done
					found = true
				}
			}
		case *ast.Ident:
			lower := strings.ToLower(n.Name)
			switch {
			case lower == "ctx" || lower == "context",
				strings.HasSuffix(lower, "done"),
				strings.HasSuffix(lower, "stop"),
				strings.HasSuffix(lower, "quit"),
				strings.HasSuffix(lower, "abort"):
				found = true
			}
		}
		return !found
	})
	return found
}
