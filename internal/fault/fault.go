// Package fault is a deterministic failpoint registry for chaos testing
// the migration pipeline. Code under test declares named sites on its hot
// paths:
//
//	if err := fault.Inject("core.step3.exec"); err != nil {
//	    return err
//	}
//
// and tests arm a site with a Policy describing how it should misbehave:
// fail once, fail N times, delay, hang until released, drop the
// connection, or fire probabilistically from a seeded PRNG (for soak
// runs). Everything is stdlib-only and deterministic: with a fixed seed
// and a fixed interleaving, the same faults fire at the same hits.
//
// The registry follows the repo's tag-gating contract (see
// internal/invariant and internal/obs): the real implementation builds
// only under `-tags faultinject`. In a default build every exported
// function is a no-op stub, Inject returns nil unconditionally, and the
// whole layer costs at most one atomic load per site — guarded by
// TestFaultDisabledOverhead at the repo root. In a faultinject build an
// unarmed registry still costs only one atomic load (the `armed` flag)
// before bailing out.
//
// Site names are dot-separated constants owned by the package declaring
// them (wire.dial, wal.fsync, core.step1.dump, ...). They must be
// precomputed constants: building the name at the call site would be paid
// in production builds, and madeusvet's invariantcall rule flags calls
// inside Inject arguments for exactly that reason.
package fault

import (
	"errors"
	"time"
)

// Policy describes how an armed site misbehaves. The zero value plus
// Times==0 means "fail every hit with ErrInjected"; fields compose, e.g.
// {Delay: d, Err: e} sleeps then fails, {Hang: true} blocks until
// released then proceeds.
type Policy struct {
	// Err is the error returned when the policy fires. When nil and
	// neither Drop, Delay, nor Hang is set, ErrInjected is returned.
	Err error

	// Times caps how often the policy fires; 0 means every hit.
	// After the cap the site stays registered but inert (its hit
	// counter keeps advancing, useful for "fired then recovered"
	// assertions).
	Times int

	// Skip lets the first N hits pass untouched before the policy
	// starts firing, to target e.g. the third fsync.
	Skip int

	// Delay is slept before the policy's error (if any) is returned.
	// With no error it models a slow peer rather than a dead one.
	Delay time.Duration

	// Hang blocks the hitting goroutine until Release(site), Disable(site),
	// or Reset() — a partition that heals when the test decides.
	// After release the policy's error (usually nil) is returned.
	Hang bool

	// Drop makes the policy return a *DropError, which call sites that
	// own a connection translate into closing it — modelling a peer
	// that vanishes mid-message rather than one that answers with an
	// error.
	Drop bool

	// P, when in (0,1), fires the policy on each hit with probability P
	// drawn from the registry's seeded PRNG. 0 (and ≥1) mean "always".
	P float64
}

// ErrInjected is the default error produced by a firing site. Every
// injected error — including connection drops — unwraps to it, so
// errors.Is(err, ErrInjected) identifies synthetic failures.
var ErrInjected = errors.New("fault: injected error")

// DropError is the typed error for Policy.Drop: the site should behave as
// if its connection died. It unwraps to ErrInjected.
type DropError struct {
	Site string
}

func (e *DropError) Error() string { return "fault: injected connection drop at " + e.Site }

func (e *DropError) Unwrap() error { return ErrInjected }

// IsInjected reports whether err originated from a firing failpoint.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// IsConnDrop reports whether err asks the call site to drop its
// connection (Policy.Drop).
func IsConnDrop(err error) bool {
	var de *DropError
	return errors.As(err, &de)
}
