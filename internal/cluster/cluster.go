// Package cluster assembles DBMS nodes the way the paper's testbed does:
// each node runs one engine instance (the shared process model) behind a
// wire server, and nodes are reached over TCP with an injectable network
// round-trip time standing in for the 1 GbE LAN of the evaluation cluster.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"madeus/internal/engine"
	"madeus/internal/obs"
	"madeus/internal/wire"
)

// NodeOptions configures one node.
type NodeOptions struct {
	// Engine configures the DBMS instance on the node.
	Engine engine.Options
	// RTT is the simulated network round trip added to every operation
	// sent to this node.
	RTT time.Duration
	// Listen overrides the default 127.0.0.1:0 listen address.
	Listen string
	// Scope overrides the node's observability scope. Defaults to the
	// process scope — correct for a real one-node-per-process deployment.
	// Tests that stand several nodes up inside one process give each a
	// private scope so trace scrapes return per-node (not process-merged)
	// timelines, exactly as a multi-machine cluster would.
	Scope *obs.Scope
}

// Node is one machine: an engine plus its wire server.
type Node struct {
	Name   string
	Engine *engine.Engine

	srv   *wire.Server
	rtt   time.Duration
	scope *obs.Scope
}

// SysDB is the control database every node carries so that remote
// administrators (and the Madeus manager) can open a session before any
// tenant database exists, e.g. to issue CREATE DATABASE.
const SysDB = "_sys"

// NewNode starts a node listening on a free localhost port (or opts.Listen).
// With a DataDir in the engine options the node recovers its tenants from
// disk first; SysDB is only provisioned when recovery did not bring it back.
func NewNode(name string, opts NodeOptions) (*Node, error) {
	e, err := engine.Open(opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	if _, ok := e.Database(SysDB); !ok {
		if err := e.CreateDatabase(SysDB); err != nil {
			e.Close()
			return nil, err
		}
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := wire.Listen(addr, wire.EngineHandler(e))
	if err != nil {
		e.Close()
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	scope := opts.Scope
	if scope == nil {
		scope = obs.Process()
	}
	srv.SetScope(scope)
	return &Node{Name: name, Engine: e, srv: srv, rtt: opts.RTT, scope: scope}, nil
}

// Scope returns the node's observability scope.
func (n *Node) Scope() *obs.Scope { return n.scope }

// ScrapeObs returns the node's observability snapshot directly (no wire
// round trip — the in-process fast path the middleware uses when the node
// handle lives in the same process).
func (n *Node) ScrapeObs(since uint64, tenant string, maxEvents int) (*obs.RemoteSnapshot, error) {
	return n.scope.Snapshot(since, tenant, maxEvents), nil
}

// BackendName implements the middleware's backend interface.
func (n *Node) BackendName() string { return n.Name }

// CreateDatabase provisions a tenant database on this node.
func (n *Node) CreateDatabase(db string) error { return n.Engine.CreateDatabase(db) }

// DropDatabase removes a tenant database from this node.
func (n *Node) DropDatabase(db string) error { return n.Engine.DropDatabase(db) }

// Remote is a handle to a DBMS node in another process, addressed over the
// wire protocol. Control operations go through the node's SysDB session.
type Remote struct {
	Name string
	Addr string
	// RTT is the simulated round trip added to every operation.
	RTT time.Duration
}

// BackendName implements the middleware's backend interface.
func (r *Remote) BackendName() string { return r.Name }

// Connect opens a client session on the named database of the remote node.
func (r *Remote) Connect(db string) (*wire.Client, error) {
	return wire.DialRTT(r.Addr, db, r.RTT)
}

// CreateDatabase provisions a tenant database via the node's control
// session.
func (r *Remote) CreateDatabase(db string) error {
	return r.controlExec("CREATE DATABASE " + db)
}

// DropDatabase removes a tenant database via the node's control session.
func (r *Remote) DropDatabase(db string) error {
	return r.controlExec("DROP DATABASE " + db)
}

func (r *Remote) controlExec(cmd string) error {
	c, err := r.Connect(SysDB)
	if err != nil {
		return err
	}
	defer c.Close()
	_, err = c.Exec(cmd)
	return err
}

// ScrapeObs pulls the remote node's observability snapshot over the wire
// through a short-lived control session.
func (r *Remote) ScrapeObs(since uint64, tenant string, maxEvents int) (*obs.RemoteSnapshot, error) {
	c, err := r.Connect(SysDB)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Scrape(since, tenant, maxEvents)
}

// Addr returns the node's wire address.
func (n *Node) Addr() string { return n.srv.Addr() }

// RTT returns the node's configured round-trip time.
func (n *Node) RTT() time.Duration { return n.rtt }

// Connect opens a client session on the named tenant database of this node,
// with the node's RTT applied.
func (n *Node) Connect(db string) (*wire.Client, error) {
	return wire.DialRTT(n.Addr(), db, n.rtt)
}

// Close shuts down the wire server and the engine.
func (n *Node) Close() {
	n.srv.Close()
	n.Engine.Close()
}

// Crash simulates kill -9: connections drop and the engine loses its
// unsynced WAL tail. A durable node restarted on the same data dir (a fresh
// NewNode with the same Engine.DataDir) then recovers exactly the committed
// prefix; for an in-memory node a crash loses everything, as before.
func (n *Node) Crash() {
	n.srv.Close()
	n.Engine.Crash()
}

// Cluster is a named set of nodes.
type Cluster struct {
	mu    sync.RWMutex
	nodes map[string]*Node
}

// New returns an empty cluster.
func New() *Cluster {
	return &Cluster{nodes: make(map[string]*Node)}
}

// AddNode creates and registers a node.
func (c *Cluster) AddNode(name string, opts NodeOptions) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; ok {
		return nil, fmt.Errorf("cluster: node %q already exists", name)
	}
	n, err := NewNode(name, opts)
	if err != nil {
		return nil, err
	}
	c.nodes[name] = n
	return n, nil
}

// Node returns a registered node.
func (c *Cluster) Node(name string) (*Node, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.nodes[name]
	return n, ok
}

// Names lists node names in sorted order.
func (c *Cluster) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close shuts every node down.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.Close()
	}
	c.nodes = make(map[string]*Node)
}
