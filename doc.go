// Package madeus is a from-scratch Go reproduction of "Madeus: Database
// Live Migration Middleware under Heavy Workloads for Cloud Environment"
// (Mishima and Fujiwara, SIGMOD 2015).
//
// The repository contains the Madeus middleware itself (internal/core), the
// lazy snapshot isolation rule as an executable formal model
// (internal/lsir), and every substrate the paper's evaluation depends on,
// built from scratch: a snapshot-isolation MVCC engine with a group-commit
// WAL that is replayable from disk — CRC-framed segments, checkpoints, and
// redo recovery of exactly the committed prefix after kill -9
// (internal/mvcc, internal/wal, internal/engine), a wire protocol
// (internal/wire), a cluster harness (internal/cluster), a TPC-W-style
// workload (internal/tpcw), and a benchmark harness regenerating every
// table and figure of the paper's evaluation (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured comparison. The testing.B
// benchmarks in bench_test.go regenerate the evaluation:
//
//	go test -bench=. -benchtime=1x .
package madeus
