package engine

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"madeus/internal/mvcc"
	"madeus/internal/sqlmini"
	"madeus/internal/storage"
	"madeus/internal/wal"
)

// execStatement runs one non-transaction-control statement inside s.txn.
// It acquires an execution slot (the CPU model) for the duration of the
// statement's in-memory work.
func (s *Session) execStatement(st sqlmini.Statement, sql string) (*Result, error) {
	release := s.eng.acquireSlot()
	defer release()
	switch st := st.(type) {
	case *sqlmini.Select:
		return s.execSelect(st)
	case *sqlmini.Insert:
		return s.execInsert(st, sql)
	case *sqlmini.Update:
		return s.execUpdate(st, sql)
	case *sqlmini.Delete:
		return s.execDelete(st, sql)
	case *sqlmini.CreateTable:
		return s.execCreateTable(st, sql)
	case *sqlmini.DropTable:
		return s.execDropTable(st, sql)
	case *sqlmini.CreateIndex:
		return s.execCreateIndex(st, sql)
	case *sqlmini.DropIndex:
		return s.execDropIndex(st, sql)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", st)
}

// logDDL records a schema change. DDL is non-transactional — applied
// immediately, replayed at its own LSN — so the catalog mutation and its
// record are fenced together against checkpoints by the caller holding
// ckptMu's read side (a checkpoint must never capture the mutation while
// the record lands on the checkpoint's side of the LSN). The transaction
// scope is marked so COMMIT pays an fsync even if no rows changed.
func (s *Session) logDDL(table, sql string) {
	s.eng.logAppend(wal.Record{Kind: wal.RecDDL, DB: s.db.Name, Table: table, Data: sql})
	s.ddl = true
}

func (s *Session) execCreateTable(st *sqlmini.CreateTable, sql string) (*Result, error) {
	cols := make([]storage.Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = storage.Column{Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey}
	}
	schema, err := storage.NewSchema(st.Table, cols)
	if err != nil {
		return nil, err
	}
	s.eng.ckptMu.RLock()
	defer s.eng.ckptMu.RUnlock()
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if _, ok := s.db.tables[st.Table]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", st.Table)
	}
	s.db.tables[st.Table] = mvcc.NewTable(schema, s.db.mgr)
	s.db.pcache.InvalidateTable(st.Table)
	s.logDDL(st.Table, sql)
	return &Result{Tag: "CREATE TABLE"}, nil
}

func (s *Session) execDropTable(st *sqlmini.DropTable, sql string) (*Result, error) {
	s.eng.ckptMu.RLock()
	defer s.eng.ckptMu.RUnlock()
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if _, ok := s.db.tables[st.Table]; !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	delete(s.db.tables, st.Table)
	s.db.pcache.InvalidateTable(st.Table)
	s.logDDL(st.Table, sql)
	return &Result{Tag: "DROP TABLE"}, nil
}

func (s *Session) execCreateIndex(st *sqlmini.CreateIndex, sql string) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	s.eng.ckptMu.RLock()
	defer s.eng.ckptMu.RUnlock()
	if err := tb.CreateIndex(st.Name, st.Column); err != nil {
		return nil, err
	}
	s.db.pcache.InvalidateTable(st.Table)
	s.logDDL(st.Table, sql)
	return &Result{Tag: "CREATE INDEX"}, nil
}

func (s *Session) execDropIndex(st *sqlmini.DropIndex, sql string) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	s.eng.ckptMu.RLock()
	defer s.eng.ckptMu.RUnlock()
	if err := tb.DropIndex(st.Name); err != nil {
		return nil, err
	}
	s.db.pcache.InvalidateTable(st.Table)
	s.logDDL(st.Table, sql)
	return &Result{Tag: "DROP INDEX"}, nil
}

func (s *Session) execInsert(st *sqlmini.Insert, sql string) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	schema := tb.Schema
	colIdx := make([]int, len(st.Columns))
	for i, name := range st.Columns {
		ci := schema.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", st.Table, name)
		}
		colIdx[i] = ci
	}
	n := 0
	var inserted []storage.Row
	for _, exprRow := range st.Rows {
		row := make(storage.Row, len(schema.Columns))
		for i := range row {
			row[i] = sqlmini.Null()
		}
		for i, e := range exprRow {
			v, err := evalExpr(e, nil, nil)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = v
		}
		if err := tb.Insert(s.txn, row); err != nil {
			return nil, err
		}
		inserted = append(inserted, row)
		n++
	}
	// Value logging: the record carries the computed rows as literals, not
	// the client's SQL, so redo never re-evaluates an expression.
	if n > 0 {
		s.eng.logAppend(wal.Record{TxnID: uint64(s.txn.ID), Kind: wal.RecInsert,
			DB: s.db.Name, Table: st.Table, Data: renderInsert(schema, st.Table, inserted)})
	}
	return &Result{Affected: n, Tag: fmt.Sprintf("INSERT %d", n)}, nil
}

func (s *Session) execUpdate(st *sqlmini.Update, sql string) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	schema := tb.Schema
	for _, a := range st.Set {
		if schema.ColumnIndex(a.Column) < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", st.Table, a.Column)
		}
	}
	matches, err := s.matchRows(tb, st.Where, -1)
	if err != nil {
		return nil, err
	}
	n := 0
	recs := s.walBatch[:0]
	for _, old := range matches {
		newRow := old.Clone()
		for _, a := range st.Set {
			v, err := evalExpr(a.Value, schema, old)
			if err != nil {
				s.walBatch = recs[:0]
				return nil, err
			}
			newRow[schema.ColumnIndex(a.Column)] = v
		}
		ok, err := tb.Update(s.txn, schema.PK(old), newRow)
		if err != nil {
			s.walBatch = recs[:0]
			return nil, err
		}
		if ok {
			// One record per row, carrying the row's final image keyed by
			// primary key: replaying the client's predicate could match
			// different rows at redo time; the literal image cannot. The
			// rows of one statement go to the log as a single batch.
			recs = append(recs, wal.Record{TxnID: uint64(s.txn.ID), Kind: wal.RecUpdate,
				DB: s.db.Name, Table: st.Table, Data: renderUpdateRow(schema, st.Table, newRow)})
			n++
		}
	}
	s.eng.logAppendBatch(recs)
	s.walBatch = recs[:0]
	return &Result{Affected: n, Tag: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) execDelete(st *sqlmini.Delete, sql string) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	matches, err := s.matchRows(tb, st.Where, -1)
	if err != nil {
		return nil, err
	}
	n := 0
	recs := s.walBatch[:0]
	for _, old := range matches {
		ok, err := tb.Delete(s.txn, tb.Schema.PK(old))
		if err != nil {
			s.walBatch = recs[:0]
			return nil, err
		}
		if ok {
			recs = append(recs, wal.Record{TxnID: uint64(s.txn.ID), Kind: wal.RecDelete,
				DB: s.db.Name, Table: st.Table, Data: renderDeleteRow(tb.Schema, st.Table, old)})
			n++
		}
	}
	s.eng.logAppendBatch(recs)
	s.walBatch = recs[:0]
	return &Result{Affected: n, Tag: fmt.Sprintf("DELETE %d", n)}, nil
}

// The render helpers produce the self-contained redo statements the WAL
// carries: literal values only, rows addressed by primary key. See the
// wal.Unit doc for why this (plus commit-order replay) is state-exact under
// snapshot isolation where raw client SQL would not be.

func renderInsert(schema *storage.Schema, table string, rows []storage.Row) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(table)
	sb.WriteString(" (")
	for i, c := range schema.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteString(") VALUES ")
	for i, r := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, v := range r {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

func renderUpdateRow(schema *storage.Schema, table string, row storage.Row) string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(table)
	sb.WriteString(" SET ")
	for i, c := range schema.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteString(" = ")
		sb.WriteString(row[i].String())
	}
	sb.WriteString(" WHERE ")
	sb.WriteString(schema.Columns[schema.PKIndex()].Name)
	sb.WriteString(" = ")
	sb.WriteString(schema.PK(row).String())
	return sb.String()
}

func renderDeleteRow(schema *storage.Schema, table string, row storage.Row) string {
	var sb strings.Builder
	sb.WriteString("DELETE FROM ")
	sb.WriteString(table)
	sb.WriteString(" WHERE ")
	sb.WriteString(schema.Columns[schema.PKIndex()].Name)
	sb.WriteString(" = ")
	sb.WriteString(schema.PK(row).String())
	return sb.String()
}

// matchRows returns the rows visible to s.txn satisfying where: via the
// primary-key map when where pins the key with an equality, via a secondary
// index when one covers an equality conjunct, and by a full scan otherwise.
// matchRows returns the rows matching where. limit >= 0 stops the
// full-scan path once that many matches are collected — sound only when
// the caller applies no further ordering (a SELECT without ORDER BY
// returns an arbitrary subset, and PK-ordered scanning keeps that subset
// deterministic); callers that sort or mutate pass -1.
func (s *Session) matchRows(tb *mvcc.Table, where sqlmini.Expr, limit int64) ([]storage.Row, error) {
	schema := tb.Schema
	if pk, ok := pkEquality(schema, where); ok {
		row := tb.Get(s.txn, pk)
		if row == nil {
			return nil, nil
		}
		match, err := evalFilter(where, schema, row)
		if err != nil {
			return nil, err
		}
		if !match {
			return nil, nil
		}
		return []storage.Row{row}, nil
	}
	if rows, ok, err := s.indexScan(tb, where); ok || err != nil {
		return rows, err
	}
	if limit == 0 {
		return nil, nil
	}
	var out []storage.Row
	var scanErr error
	tb.Scan(s.txn, func(r storage.Row) bool {
		if where != nil {
			match, err := evalFilter(where, schema, r)
			if err != nil {
				scanErr = err
				return false
			}
			if !match {
				return true
			}
		}
		out = append(out, r)
		return limit < 0 || int64(len(out)) < limit
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// pkEquality detects a top-level `pk = literal` conjunct in where, enabling
// the point-lookup fast path that makes TPC-W style workloads cheap.
func pkEquality(schema *storage.Schema, where sqlmini.Expr) (sqlmini.Value, bool) {
	b, ok := where.(*sqlmini.Binary)
	if !ok {
		return sqlmini.Value{}, false
	}
	switch b.Op {
	case sqlmini.OpAnd:
		if v, ok := pkEquality(schema, b.L); ok {
			return v, true
		}
		return pkEquality(schema, b.R)
	case sqlmini.OpEq:
		pkName := schema.Columns[schema.PKIndex()].Name
		if col, ok := b.L.(*sqlmini.ColumnRef); ok && col.Name == pkName {
			if lit, ok := b.R.(*sqlmini.Literal); ok {
				return coercePK(schema, lit.Val), true
			}
		}
		if col, ok := b.R.(*sqlmini.ColumnRef); ok && col.Name == pkName {
			if lit, ok := b.L.(*sqlmini.Literal); ok {
				return coercePK(schema, lit.Val), true
			}
		}
	}
	return sqlmini.Value{}, false
}

// indexScan serves where via a secondary index when a top-level equality
// conjunct names an indexed column. Candidates from the index are a
// superset, so the full predicate re-runs on every fetched row; results are
// sorted by primary key for deterministic output.
func (s *Session) indexScan(tb *mvcc.Table, where sqlmini.Expr) ([]storage.Row, bool, error) {
	schema := tb.Schema
	col, val, ok := indexableEquality(schema, where)
	if !ok {
		return nil, false, nil
	}
	pks, ok := tb.IndexLookup(col, val)
	if !ok {
		return nil, false, nil
	}
	sort.Slice(pks, func(i, j int) bool {
		c, err := pks[i].Compare(pks[j])
		return err == nil && c < 0
	})
	var out []storage.Row
	for _, pk := range pks {
		row := tb.Get(s.txn, pk)
		if row == nil {
			continue
		}
		match, err := evalFilter(where, schema, row)
		if err != nil {
			return nil, true, err
		}
		if match {
			out = append(out, row)
		}
	}
	return out, true, nil
}

// indexableEquality finds a top-level `col = literal` conjunct over a
// non-PK column (PK equalities use the faster point lookup).
func indexableEquality(schema *storage.Schema, where sqlmini.Expr) (string, sqlmini.Value, bool) {
	b, ok := where.(*sqlmini.Binary)
	if !ok {
		return "", sqlmini.Value{}, false
	}
	switch b.Op {
	case sqlmini.OpAnd:
		if c, v, ok := indexableEquality(schema, b.L); ok {
			return c, v, true
		}
		return indexableEquality(schema, b.R)
	case sqlmini.OpEq:
		if col, ok := b.L.(*sqlmini.ColumnRef); ok {
			if lit, ok := b.R.(*sqlmini.Literal); ok {
				return col.Name, coerceCol(schema, col.Name, lit.Val), true
			}
		}
		if col, ok := b.R.(*sqlmini.ColumnRef); ok {
			if lit, ok := b.L.(*sqlmini.Literal); ok {
				return col.Name, coerceCol(schema, col.Name, lit.Val), true
			}
		}
	}
	return "", sqlmini.Value{}, false
}

func coerceCol(schema *storage.Schema, col string, v sqlmini.Value) sqlmini.Value {
	ci := schema.ColumnIndex(col)
	if ci >= 0 && schema.Columns[ci].Type == sqlmini.KindFloat && v.Kind == sqlmini.KindInt {
		return sqlmini.NewFloat(float64(v.Int))
	}
	return v
}

// topK returns the first k rows of a stable sort of matches without
// sorting the whole slice: one pass maintaining a sorted buffer of at
// most k rows. Equal-key rows keep their scan order (a later equal row
// never displaces an earlier one), matching sort-then-truncate.
func topK(matches []storage.Row, k int, cmp func(a, b storage.Row) int) []storage.Row {
	if k <= 0 {
		return matches[:0]
	}
	buf := make([]storage.Row, 0, k)
	for _, r := range matches {
		if len(buf) == k && cmp(r, buf[k-1]) >= 0 {
			continue
		}
		i := sort.Search(len(buf), func(i int) bool { return cmp(buf[i], r) > 0 })
		if len(buf) < k {
			buf = append(buf, nil)
		}
		copy(buf[i+1:], buf[i:len(buf)-1])
		buf[i] = r
	}
	return buf
}

func coercePK(schema *storage.Schema, v sqlmini.Value) sqlmini.Value {
	if schema.Columns[schema.PKIndex()].Type == sqlmini.KindFloat && v.Kind == sqlmini.KindInt {
		return sqlmini.NewFloat(float64(v.Int))
	}
	return v
}

func (s *Session) execSelect(st *sqlmini.Select) (*Result, error) {
	tb, ok := s.db.table(st.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", st.Table)
	}
	schema := tb.Schema
	agg := len(st.Items) == 1 && st.Items[0].Aggregate != ""
	if !agg {
		for _, it := range st.Items {
			if it.Aggregate != "" {
				return nil, fmt.Errorf("engine: aggregates cannot be mixed with columns")
			}
		}
	}

	// Without ORDER BY or an aggregate, LIMIT can stop the scan early:
	// the PK-ordered scan makes the returned prefix deterministic.
	pushLimit := int64(-1)
	if !agg && st.OrderBy == "" {
		pushLimit = st.Limit
	}
	matches, err := s.matchRows(tb, st.Where, pushLimit)
	if err != nil {
		return nil, err
	}

	// Aggregate queries (single aggregate item).
	if agg {
		return aggregate(st.Items[0], schema, matches)
	}

	// ORDER BY before projection so any column is sortable.
	if st.OrderBy != "" {
		ci := schema.ColumnIndex(st.OrderBy)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", st.Table, st.OrderBy)
		}
		cmpRows := func(a, b storage.Row) int {
			c, err := a[ci].Compare(b[ci])
			if err != nil {
				return 0
			}
			if st.OrderDesc {
				return -c
			}
			return c
		}
		if st.Limit >= 0 && st.Limit < int64(len(matches)) {
			// ORDER BY ... LIMIT k (the best-seller query): one pass
			// with a bounded insertion buffer instead of sorting the
			// whole match set.
			matches = topK(matches, int(st.Limit), cmpRows)
		} else {
			slices.SortStableFunc(matches, cmpRows)
		}
	}
	if st.Limit >= 0 && int64(len(matches)) > st.Limit {
		matches = matches[:st.Limit]
	}

	// Projection.
	var cols []string
	var proj []int
	for _, it := range st.Items {
		if it.Star {
			for i, c := range schema.Columns {
				cols = append(cols, c.Name)
				proj = append(proj, i)
			}
			continue
		}
		ci := schema.ColumnIndex(it.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", st.Table, it.Column)
		}
		cols = append(cols, it.Column)
		proj = append(proj, ci)
	}
	res := &Result{Columns: cols, Tag: fmt.Sprintf("SELECT %d", len(matches))}
	for _, r := range matches {
		out := make([]sqlmini.Value, len(proj))
		for i, ci := range proj {
			out[i] = r[ci]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func aggregate(item sqlmini.SelectItem, schema *storage.Schema, rows []storage.Row) (*Result, error) {
	switch item.Aggregate {
	case "COUNT":
		return &Result{
			Columns: []string{"count"},
			Rows:    [][]sqlmini.Value{{sqlmini.NewInt(int64(len(rows)))}},
			Tag:     "SELECT 1",
		}, nil
	case "SUM":
		ci := schema.ColumnIndex(item.AggArg)
		if ci < 0 {
			return nil, fmt.Errorf("engine: no column %q for SUM", item.AggArg)
		}
		var sumI int64
		var sumF float64
		isFloat := schema.Columns[ci].Type == sqlmini.KindFloat
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				continue
			}
			if isFloat {
				sumF += v.Float
			} else {
				sumI += v.Int
			}
		}
		val := sqlmini.NewInt(sumI)
		if isFloat {
			val = sqlmini.NewFloat(sumF)
		}
		return &Result{
			Columns: []string{"sum"},
			Rows:    [][]sqlmini.Value{{val}},
			Tag:     "SELECT 1",
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported aggregate %q", item.Aggregate)
}
