package simlat

import (
	"testing"
	"time"
)

func TestCPUApproximatesDuration(t *testing.T) {
	start := time.Now()
	CPU(300 * time.Microsecond)
	got := time.Since(start)
	if got < 300*time.Microsecond {
		t.Errorf("CPU too short: %v", got)
	}
	if got > 5*time.Millisecond {
		t.Errorf("CPU way too long: %v", got)
	}
}

func TestZeroAndNegativeNoops(t *testing.T) {
	start := time.Now()
	CPU(0)
	CPU(-time.Second)
	IO(0)
	IO(-time.Second)
	if time.Since(start) > time.Millisecond {
		t.Error("noop waits took too long")
	}
}

func TestIOShortUsesBusyWait(t *testing.T) {
	start := time.Now()
	IO(200 * time.Microsecond)
	got := time.Since(start)
	if got < 200*time.Microsecond || got > 2*time.Millisecond {
		t.Errorf("short IO wait: %v", got)
	}
}

func TestIOLongSleeps(t *testing.T) {
	start := time.Now()
	IO(5 * time.Millisecond)
	if got := time.Since(start); got < 5*time.Millisecond {
		t.Errorf("long IO too short: %v", got)
	}
}
