package tpcw

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/metrics"
)

func testSession(t *testing.T) *engine.Session {
	t.Helper()
	e := engine.New(engine.Options{})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("shop"); err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession("shop")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScaleFor(t *testing.T) {
	s := ScaleFor(100000, 100, 100)
	if s.Items != 1000 {
		t.Errorf("Items = %d", s.Items)
	}
	if s.Customers != 2880 {
		t.Errorf("Customers = %d", s.Customers)
	}
	if s.Authors != 250 {
		t.Errorf("Authors = %d", s.Authors)
	}
	// Floors apply at tiny scales.
	tiny := ScaleFor(10, 1, 1000)
	if tiny.Items < 20 || tiny.Customers < 20 || tiny.Authors < 5 {
		t.Errorf("floors not applied: %+v", tiny)
	}
	if s.EstimatedBytes() <= 0 {
		t.Error("EstimatedBytes <= 0")
	}
	// Size grows with items (Table 3's trend).
	if ScaleFor(500000, 500, 100).EstimatedBytes() <= s.EstimatedBytes() {
		t.Error("size not monotone in scale")
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	s := testSession(t)
	scale := Scale{Items: 50, Customers: 120, Authors: 10}
	if err := Load(s, scale); err != nil {
		t.Fatal(err)
	}
	for table, want := range map[string]int{
		"item": 50, "customer": 120, "author": 10,
		"orders": 0, "order_line": 0, "cart": 0,
	} {
		n, err := s.RowCount(table)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if n != want {
			t.Errorf("%s rows = %d, want %d", table, n, want)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	s1 := testSession(t)
	s2 := testSession(t)
	scale := Scale{Items: 30, Customers: 30, Authors: 5}
	if err := Load(s1, scale); err != nil {
		t.Fatal(err)
	}
	if err := Load(s2, scale); err != nil {
		t.Fatal(err)
	}
	eq, diff, err := engine.StateEqual(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("loads differ: %s", diff)
	}
}

func TestMixUpdateRatios(t *testing.T) {
	if Browsing.UpdatePct != 5 || Shopping.UpdatePct != 20 || Ordering.UpdatePct != 50 {
		t.Errorf("mix percentages wrong: %v %v %v", Browsing, Shopping, Ordering)
	}
	if len(Mixes()) != 3 {
		t.Error("Mixes() should list 3")
	}
}

func TestPickRespectsMix(t *testing.T) {
	for _, mix := range Mixes() {
		eb := &EB{ID: 1, Mix: mix, Scale: Scale{Items: 100, Customers: 100, Authors: 10}}
		eb.rng = rand.New(rand.NewSource(1))
		updates := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if !eb.pick().readOnly() {
				updates++
			}
		}
		got := 100 * updates / n
		if got < mix.UpdatePct-4 || got > mix.UpdatePct+4 {
			t.Errorf("%s: update ratio %d%%, want ~%d%%", mix.Name, got, mix.UpdatePct)
		}
	}
}

func TestEveryInteractionExecutes(t *testing.T) {
	s := testSession(t)
	scale := Scale{Items: 60, Customers: 60, Authors: 10}
	if err := Load(s, scale); err != nil {
		t.Fatal(err)
	}
	eb := &EB{ID: 1, Mix: Ordering, Scale: scale}
	eb.rng = rand.New(rand.NewSource(7))
	for _, it := range []interaction{
		iHome, iProductDetail, iSearch, iBestSellers, iOrderInquiry,
		iShoppingCart, iBuyConfirm, iAdminUpdate,
	} {
		if err := eb.interact(s, it); err != nil {
			t.Errorf("%v: %v", it, err)
		}
	}
	// BuyConfirm inserted an order.
	n, err := s.RowCount("orders")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("orders = %d, want 1", n)
	}
	// OrderInquiry after a purchase hits the recorded order.
	if eb.lastOrder == 0 {
		t.Error("lastOrder not recorded")
	}
	if err := eb.interact(s, iOrderInquiry); err != nil {
		t.Errorf("OrderInquiry: %v", err)
	}
}

func TestInteractionsStartWithARead(t *testing.T) {
	// The no-blind-write assumption (Sec 3.1): every transaction's first
	// statement must be a SELECT. We check the statement lists by
	// running each interaction through a recording Execer.
	rec := &recordingExecer{}
	eb := &EB{ID: 2, Mix: Ordering, Scale: Scale{Items: 60, Customers: 60, Authors: 10}}
	eb.rng = rand.New(rand.NewSource(3))
	for _, it := range []interaction{
		iHome, iProductDetail, iSearch, iBestSellers, iOrderInquiry,
		iShoppingCart, iBuyConfirm, iAdminUpdate,
	} {
		rec.stmts = nil
		if err := eb.interact(rec, it); err != nil {
			t.Fatalf("%v: %v", it, err)
		}
		if len(rec.stmts) < 3 {
			t.Fatalf("%v: too few statements: %v", it, rec.stmts)
		}
		if rec.stmts[0] != "BEGIN" {
			t.Errorf("%v: first stmt %q, want BEGIN", it, rec.stmts[0])
		}
		if got := rec.stmts[1]; len(got) < 6 || got[:6] != "SELECT" {
			t.Errorf("%v: first operation %q is not a read (blind write!)", it, got)
		}
		if last := rec.stmts[len(rec.stmts)-1]; last != "COMMIT" {
			t.Errorf("%v: last stmt %q, want COMMIT", it, last)
		}
	}
}

// recordingExecer captures statements and answers COMMIT affirmatively.
type recordingExecer struct {
	stmts []string
}

func (r *recordingExecer) Exec(sql string) (*engine.Result, error) {
	r.stmts = append(r.stmts, sql)
	if sql == "COMMIT" {
		return &engine.Result{Tag: "COMMIT"}, nil
	}
	return &engine.Result{Tag: "OK"}, nil
}

func TestEBRunRecordsMetrics(t *testing.T) {
	s := testSession(t)
	scale := Scale{Items: 60, Customers: 60, Authors: 10}
	if err := Load(s, scale); err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	eb := &EB{ID: 1, Mix: Shopping, Scale: scale, Think: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := eb.Run(ctx, s, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Error("no interactions recorded")
	}
	sum := rec.Summarize()
	if sum.Mean <= 0 {
		t.Errorf("mean = %v", sum.Mean)
	}
}

func TestRunFleet(t *testing.T) {
	e := engine.New(engine.Options{})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("shop"); err != nil {
		t.Fatal(err)
	}
	setup, _ := e.NewSession("shop")
	scale := Scale{Items: 60, Customers: 60, Authors: 10}
	if err := Load(setup, scale); err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := RunFleet(ctx, 4, Ordering, scale, time.Millisecond, func() (Execer, error) {
		return e.NewSession("shop")
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() < 4 {
		t.Errorf("fleet recorded only %d interactions", rec.Count())
	}
}
