package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"madeus/internal/fault"
	"madeus/internal/invariant"
)

// Unit is one redo unit emitted by Replay: either a committed transaction
// (Kind == RecCommit, Stmts holding its write statements in execution
// order, LSN the commit record's LSN) or a single DDL change (Kind ==
// RecDDL, applied at its own LSN regardless of any surrounding
// transaction's outcome — DDL is non-transactional in the engine).
//
// Units arrive in strictly increasing LSN order, which is exactly commit
// order. Redo in commit order is state-exact here because write records
// carry self-contained statements (literal values, primary-key
// predicates): under snapshot isolation with first-updater-wins, the write
// sets of concurrently committed transactions are disjoint, so re-applying
// per-row final statements in commit order reproduces the committed state
// without re-running any predicate against history that no longer exists.
type Unit struct {
	LSN   uint64
	TxnID uint64
	DB    string
	Kind  RecordKind
	Stmts []string
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Segments int    // segment files scanned
	Records  uint64 // records decoded
	Bytes    int64  // bytes scanned
	Units    int    // redo units emitted
}

// Replay scans every segment of a durable log in order and invokes apply
// for each redo unit. Transactions without a durable commit record —
// in-flight at the crash, explicitly aborted, or torn off the tail — are
// discarded: the committed prefix is exactly what survives. Replay is a
// read-only pass over the files; it is safe on an open Log only before the
// log serves traffic (the engine replays immediately after Open).
func (l *Log) Replay(apply func(Unit) error) (ReplayStats, error) {
	var stats ReplayStats
	if l.opts.Dir == "" {
		return stats, fmt.Errorf("wal: replay requires a durable log (no Dir configured)")
	}
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return stats, err
	}
	open := make(map[uint64]*Unit)
	var lastLSN uint64
	for _, name := range segs {
		f, err := os.Open(filepath.Join(l.opts.Dir, name))
		if err != nil {
			return stats, err
		}
		end, torn, err := scanRecords(f, func(rec Record, _ int64) error {
			if ferr := fault.Inject(faultReplay); ferr != nil {
				return fmt.Errorf("wal: replay %s: %w", name, ferr)
			}
			invariant.Assertf(rec.LSN > lastLSN,
				"wal: replay LSN %d does not increase past %d (segment %s)", rec.LSN, lastLSN, name)
			lastLSN = rec.LSN
			stats.Records++
			switch rec.Kind {
			case RecBegin:
				// Marks the transaction in the log; no redo work.
			case RecInsert, RecUpdate, RecDelete:
				u := open[rec.TxnID]
				if u == nil {
					u = &Unit{TxnID: rec.TxnID, DB: rec.DB, Kind: RecCommit}
					open[rec.TxnID] = u
				}
				u.Stmts = append(u.Stmts, rec.Data)
			case RecAbort:
				delete(open, rec.TxnID)
			case RecCommit:
				u := open[rec.TxnID]
				delete(open, rec.TxnID)
				if u == nil {
					// Commit of a transaction with no write records
					// (e.g. a DDL-only transaction, whose changes were
					// already emitted as RecDDL units): durability
					// bookkeeping only.
					return nil
				}
				u.LSN = rec.LSN
				stats.Units++
				return apply(*u)
			case RecDDL:
				stats.Units++
				return apply(Unit{
					LSN: rec.LSN, TxnID: rec.TxnID, DB: rec.DB,
					Kind: RecDDL, Stmts: []string{rec.Data},
				})
			}
			return nil
		})
		f.Close()
		if err != nil {
			return stats, err
		}
		if torn {
			// Open truncates torn tails, so a Replay over an opened log
			// never sees one; hitting it means the caller is scanning a
			// raw file behind the log's back.
			return stats, fmt.Errorf("wal: replay %s: %w at offset %d (open the log first)", name, ErrCorrupt, end)
		}
		stats.Segments++
		stats.Bytes += end
	}
	// Transactions still open at the end of the log have no durable commit
	// record: they were never acknowledged and replay drops them.
	return stats, nil
}
