package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry names and snapshots a set of metrics. Registration happens at
// package init or setup time; reads take the lock briefly to copy the
// metric list, then read each metric atomically. The hot path (Counter.Add
// etc.) never touches the registry.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]any
	ordered []string
}

// NewRegistry creates an empty registry (tests; production code uses
// Default).
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Default is the process-wide registry every subsystem registers into.
var Default = NewRegistry()

func (r *Registry) register(name string, m any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, name)
	sort.Strings(r.ordered)
}

// NewCounter registers a striped counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// NewGaugeFunc registers a callback gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, g)
	return g
}

// NewHistogram registers a histogram with the given inclusive upper bounds
// (must be sorted ascending and non-empty).
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(name, h)
	return h
}

// Unregister removes a registered metric by name, reporting whether it
// existed. The metric object itself keeps working for holders of the
// pointer; it just stops appearing in snapshots — which is the point:
// series for departed tenants must not accumulate in long-lived processes.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return false
	}
	delete(r.byName, name)
	for i, n := range r.ordered {
		if n == name {
			r.ordered = append(r.ordered[:i], r.ordered[i+1:]...)
			break
		}
	}
	return true
}

// UnregisterPrefix removes every metric whose name starts with prefix (the
// per-tenant teardown path: one call drops the tenant's whole dynamic
// series family). Returns how many were removed.
func (r *Registry) UnregisterPrefix(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.ordered[:0]
	removed := 0
	for _, n := range r.ordered {
		if strings.HasPrefix(n, prefix) {
			delete(r.byName, n)
			removed++
			continue
		}
		kept = append(kept, n)
	}
	r.ordered = kept
	return removed
}

// ReplaceGaugeFunc registers a callback gauge, replacing any existing
// metric under the same name instead of panicking. This is the sanctioned
// API for DYNAMIC series — per-tenant gauges keyed by tenant name — where
// replace semantics keep remove/re-add cycles (and two middleware
// instances in one test process) safe. Static one-per-process metrics must
// keep using NewGaugeFunc with a constant name; the madeusvet obsname rule
// enforces that split by exempting only Replace* from the literal-name
// requirement.
func (r *Registry) ReplaceGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		r.ordered = append(r.ordered, name)
		sort.Strings(r.ordered)
	}
	r.byName[name] = g
	return g
}

// MetricKind tags a snapshot entry.
type MetricKind string

// Snapshot kinds.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Metric is one snapshot entry. Value is set for counters and gauges;
// Hist for histograms.
type Metric struct {
	Name  string             `json:"name"`
	Kind  MetricKind         `json:"kind"`
	Help  string             `json:"help,omitempty"`
	Value int64              `json:"value,omitempty"`
	Hist  *HistogramSnapshot `json:"hist,omitempty"`
}

// Render formats the metric's value the way STATS and the text encoder
// print it: a plain integer, or a histogram digest with count, mean, p99
// (durations humanized when the bounds look like nanoseconds).
func (m Metric) Render() string {
	if m.Hist == nil {
		return fmt.Sprintf("%d", m.Value)
	}
	h := m.Hist
	// Heuristic: bucket bounds at or past 100µs in ns mean a duration
	// histogram; render its stats as durations.
	if len(h.Bounds) > 0 && h.Bounds[0] >= int64(100*time.Microsecond) {
		return fmt.Sprintf("count=%d mean=%v p99=%v max=%v",
			h.Count, time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond))
	}
	return fmt.Sprintf("count=%d mean=%.1f p99=%d max=%d",
		h.Count, h.Mean(), h.Quantile(0.99), h.Max)
}

// Snapshot freezes every registered metric, sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	names := append([]string(nil), r.ordered...)
	metrics := make([]any, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for i, n := range names {
		switch m := metrics[i].(type) {
		case *Counter:
			out = append(out, Metric{Name: n, Kind: KindCounter, Help: m.help, Value: int64(m.Value())})
		case *Gauge:
			out = append(out, Metric{Name: n, Kind: KindGauge, Help: m.help, Value: m.Value()})
		case *GaugeFunc:
			out = append(out, Metric{Name: n, Kind: KindGauge, Help: m.help, Value: m.Value()})
		case *Histogram:
			s := m.Snapshot()
			out = append(out, Metric{Name: n, Kind: KindHistogram, Help: m.help, Hist: &s})
		}
	}
	return out
}

// Package-level helpers registering on Default — what subsystem files use
// for their one-per-process metric vars.

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeFunc registers a callback gauge on the Default registry.
func NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	return Default.NewGaugeFunc(name, help, fn)
}

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []int64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}
