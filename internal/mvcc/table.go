package mvcc

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"madeus/internal/invariant"
	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// version is one physical tuple version in a row chain.
type version struct {
	xmin TxnID // creator
	xmax TxnID // deleter/updater; 0 when live
	row  storage.Row
}

// rowChain holds all versions of one logical row (one primary key) plus the
// row write lock used for first-updater-wins. Lock ordering: a row-map
// stripe mutex is never held while a rowChain.mu is held, and at most one
// rowChain.mu is held at a time; row-lock *waits* happen on waiter channels
// with ch.mu released, so mutexes are never held across blocking waits.
type rowChain struct {
	mu        sync.Mutex //madeusvet:lockrank mvcc-row 42
	versions  []version
	lockOwner TxnID
	waiters   []chan struct{}
}

// tableStripe is one shard of the row map. Single-stripe operations hash
// the primary key to a stripe; cross-stripe operations (full scans, index
// DDL) take stripes in index order via lockAllStripes.
type tableStripe struct {
	mu   sync.Mutex //madeusvet:lockrank mvcc-table 40 striped
	rows map[sqlmini.Value]*rowChain
}

// Table is an MVCC table: a schema plus row chains keyed by primary key,
// striped by key hash (DESIGN.md §5i).
type Table struct {
	Schema *storage.Schema

	mgr     *Manager
	mask    uint64
	stripes []tableStripe

	// spine is the chain directory sorted by primary key, maintained
	// incrementally as chains are created (chains are never removed, see
	// Vacuum). A scan copies it with one memmove instead of collecting
	// and sorting the whole key set per call. spineMu is never held
	// together with any other lock: chain creation inserts after the
	// stripe section, scans copy before taking any chain lock.
	spineMu sync.Mutex //madeusvet:lockrank mvcc-spine 39
	spine   []pkChain

	imu     sync.Mutex //madeusvet:lockrank mvcc-tableidx 45
	indexes map[string]*colIndex
}

// NewTable creates an empty MVCC table bound to a transaction manager,
// inheriting the manager's stripe count.
func NewTable(schema *storage.Schema, mgr *Manager) *Table {
	n := mgr.tableStripes
	if n < 1 {
		n = 1
	}
	tb := &Table{
		Schema:  schema,
		mgr:     mgr,
		mask:    uint64(n - 1),
		stripes: make([]tableStripe, n),
	}
	for i := range tb.stripes {
		tb.stripes[i].rows = make(map[sqlmini.Value]*rowChain)
	}
	return tb
}

// FNV-1a, inlined so key hashing allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvU64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x>>(8*i)))
	}
	return h
}

// hashValue hashes a primary key to pick a stripe. Keys of one table share
// a kind (CheckRow enforces it), so mixing the kind only guards against
// degenerate cross-kind collisions.
func hashValue(v sqlmini.Value) uint64 {
	h := fnvByte(fnvOffset, byte(v.Kind))
	switch v.Kind {
	case sqlmini.KindInt:
		h = fnvU64(h, uint64(v.Int))
	case sqlmini.KindFloat:
		h = fnvU64(h, math.Float64bits(v.Float))
	case sqlmini.KindText:
		for i := 0; i < len(v.Str); i++ {
			h = fnvByte(h, v.Str[i])
		}
	case sqlmini.KindBool:
		if v.Bool {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}

func (tb *Table) stripeFor(pk sqlmini.Value) *tableStripe {
	return &tb.stripes[hashValue(pk)&tb.mask]
}

// Stripes reports the row-map stripe count (observability and tests).
func (tb *Table) Stripes() int { return len(tb.stripes) }

// lockAllStripes acquires every row-map stripe in index order. This is the
// stripe-order invariant (DESIGN.md §5i): every cross-stripe section walks
// stripes 0..n-1, so two cross-stripe operations can never deadlock
// against each other, and a single-stripe operation (which holds at most
// one stripe) can never participate in a cycle.
//
//madeusvet:stripeorder
func (tb *Table) lockAllStripes() {
	for i := range tb.stripes {
		//madeusvet:ignore lockdiscipline cross-stripe section: every stripe is held on return; unlockAllStripes is the paired release
		tb.stripes[i].mu.Lock()
	}
}

// unlockAllStripes releases every stripe in reverse order.
func (tb *Table) unlockAllStripes() {
	for i := len(tb.stripes) - 1; i >= 0; i-- {
		tb.stripes[i].mu.Unlock()
	}
}

func (tb *Table) chain(pk sqlmini.Value, create bool) *rowChain {
	s := tb.stripeFor(pk)
	s.mu.Lock()
	ch := s.rows[pk]
	created := false
	if ch == nil && create {
		ch = &rowChain{}
		s.rows[pk] = ch
		created = true
	}
	s.mu.Unlock()
	if created {
		// Outside the stripe section so spineMu never nests under a
		// stripe mutex. A scan that copies the spine in this window
		// misses a chain that is still empty (the creator appends its
		// first version only after chain returns), so no visible row
		// is ever skipped.
		tb.spineInsert(pk, ch)
	}
	return ch
}

// spineInsert adds a newly created chain to the sorted chain directory.
// The map insert under the stripe lock already deduplicated creators, so
// each chain is inserted exactly once.
func (tb *Table) spineInsert(pk sqlmini.Value, ch *rowChain) {
	tb.spineMu.Lock()
	i := sort.Search(len(tb.spine), func(i int) bool { return comparePK(tb.spine[i].pk, pk) > 0 })
	tb.spine = append(tb.spine, pkChain{})
	copy(tb.spine[i+1:], tb.spine[i:])
	tb.spine[i] = pkChain{pk: pk, ch: ch}
	tb.spineMu.Unlock()
}

// comparePK orders primary keys with an integer fast path. Keys of one
// table share a kind (CheckRow enforces it), so the error from the
// general comparison cannot fire.
func comparePK(a, b sqlmini.Value) int {
	if a.Kind == sqlmini.KindInt && b.Kind == sqlmini.KindInt {
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	}
	c, _ := a.Compare(b)
	return c
}

// Get returns the version of the row with primary key pk visible to t, or
// nil when none is visible. The row is borrowed from version storage and
// must not be mutated (see visibleRow); set Manager.LegacyReads to get the
// old copy-on-read behavior back.
func (tb *Table) Get(t *Txn, pk sqlmini.Value) storage.Row {
	ch := tb.chain(pk, false)
	if ch == nil {
		return nil
	}
	ch.mu.Lock()
	// SI sanity: a snapshot sees at most one version per logical row.
	invariant.Check(func() error { return ch.checkAtMostOneVisible(t) })
	row := ch.visibleRow(t)
	ch.mu.Unlock()
	if row != nil && tb.mgr.LegacyReads {
		row = row.Clone()
	}
	return row
}

// checkAtMostOneVisible verifies the snapshot-isolation guarantee that a
// transaction's snapshot exposes at most one version of each logical row.
// Caller holds ch.mu. Invariants builds only.
func (ch *rowChain) checkAtMostOneVisible(t *Txn) error {
	n := 0
	for i := range ch.versions {
		if t.visible(&ch.versions[i]) {
			n++
		}
	}
	if n > 1 {
		return fmt.Errorf("mvcc: %d versions of one row visible to txn %d (snapshot %d)", n, t.ID, t.Snapshot)
	}
	return nil
}

// visibleRow returns the visible version in ch, newest first. Caller
// holds ch.mu. The returned row is the stored version itself, NOT a copy:
// stored rows are immutable (Insert and Update clone on the way in, and
// nothing rewrites a version's row in place), so borrowing is safe for
// every reader that does not mutate. Readers that need an owned copy
// clone explicitly; Manager.LegacyReads restores unconditional copying.
func (ch *rowChain) visibleRow(t *Txn) storage.Row {
	for i := len(ch.versions) - 1; i >= 0; i-- {
		if t.visible(&ch.versions[i]) {
			return ch.versions[i].row
		}
	}
	return nil
}

// pkChain pairs a primary key with its chain so a scan resolves each row
// without a second map lookup.
type pkChain struct {
	pk sqlmini.Value
	ch *rowChain
}

// scanBufPool recycles scan snapshot buffers: a full scan of an N-row
// table would otherwise allocate an N-entry slice per statement, which
// under the heavy TPC-W mix is the dominant GC pressure.
var scanBufPool = sync.Pool{New: func() any { return new([]pkChain) }}

// snapshotChains collects every (pk, chain) pair into buf under the
// all-stripes lock, so the key set is one atomic cut (the same guarantee
// the old single-mutex rows map gave dumps).
func (tb *Table) snapshotChains(buf []pkChain) []pkChain {
	tb.lockAllStripes()
	for i := range tb.stripes {
		for pk, ch := range tb.stripes[i].rows {
			buf = append(buf, pkChain{pk: pk, ch: ch})
		}
	}
	tb.unlockAllStripes()
	return buf
}

// sortPKChains orders a scan snapshot by primary key. Integer keys (every
// TPC-W table) take a direct comparator; the general path falls back to
// Value.Compare. Both avoid reflection-based sort.Slice.
func sortPKChains(pairs []pkChain) {
	allInt := true
	for i := range pairs {
		if pairs[i].pk.Kind != sqlmini.KindInt {
			allInt = false
			break
		}
	}
	if allInt {
		sort.Sort(byIntPK(pairs))
		return
	}
	sort.Sort(byValuePK(pairs))
}

type byIntPK []pkChain

func (s byIntPK) Len() int           { return len(s) }
func (s byIntPK) Less(i, j int) bool { return s[i].pk.Int < s[j].pk.Int }
func (s byIntPK) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

type byValuePK []pkChain

func (s byValuePK) Len() int { return len(s) }
func (s byValuePK) Less(i, j int) bool {
	c, err := s[i].pk.Compare(s[j].pk)
	// Mixed-kind keys cannot occur: CheckRow enforces kinds.
	return err == nil && c < 0
}
func (s byValuePK) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// Scan calls fn for every row visible to t, in primary-key order. fn
// returning false stops the scan. Ordering is deterministic so that dumps
// and state comparisons are stable. Rows are borrowed from version
// storage (see visibleRow): stored rows are immutable so fn may retain
// them, but must never mutate one — clone first (or set
// Manager.LegacyReads) to get an owned copy.
//
// The fast path copies the presorted spine (one memmove); LegacyReads
// selects the pre-sharding path that collects and sorts the key set
// under the all-stripes lock on every call.
func (tb *Table) Scan(t *Txn, fn func(storage.Row) bool) error {
	bufp := scanBufPool.Get().(*[]pkChain)
	legacy := tb.mgr.LegacyReads
	var pairs []pkChain
	if legacy {
		pairs = tb.snapshotChains((*bufp)[:0])
		sortPKChains(pairs)
	} else {
		tb.spineMu.Lock()
		pairs = append((*bufp)[:0], tb.spine...)
		tb.spineMu.Unlock()
	}
	clone := legacy
	for i := range pairs {
		ch := pairs[i].ch
		ch.mu.Lock()
		row := ch.visibleRow(t)
		ch.mu.Unlock()
		if row == nil {
			continue
		}
		if clone {
			row = row.Clone()
		}
		if !fn(row) {
			break
		}
	}
	for i := range pairs {
		pairs[i] = pkChain{} // drop chain references before pooling
	}
	*bufp = pairs
	scanBufPool.Put(bufp)
	return nil
}

// Len reports the number of rows visible to t.
func (tb *Table) Len(t *Txn) int {
	n := 0
	tb.Scan(t, func(storage.Row) bool { n++; return true })
	return n
}

// Insert adds a new row. It fails with ErrUniqueViolation when a visible or
// newly committed row with the same key exists, and respects
// first-updater-wins against a concurrent inserter of the same key.
func (tb *Table) Insert(t *Txn, row storage.Row) error {
	if t.done {
		return ErrTxnDone
	}
	row = tb.Schema.Coerce(row)
	if err := tb.Schema.CheckRow(row); err != nil {
		return err
	}
	pk := tb.Schema.PK(row)
	ch := tb.chain(pk, true)

	deadline := time.Now().Add(t.lockTimeout())
	ch.mu.Lock()
	for {
		// Any committed version the snapshot can't see means a
		// concurrent inserter already won.
		if ch.committedAfter(t) {
			ch.mu.Unlock()
			return ErrUniqueViolation
		}
		if ch.visibleRow(t) != nil {
			ch.mu.Unlock()
			return ErrUniqueViolation
		}
		if ch.lockOwner == 0 || ch.lockOwner == t.ID {
			break
		}
		if err := ch.waitUnlocked(t, deadline); err != nil {
			return err
		}
	}
	ch.acquire(t)
	ch.versions = append(ch.versions, version{xmin: t.ID, row: row.Clone()})
	ch.mu.Unlock()
	tb.indexAdd(row, pk)
	t.writes++
	return nil
}

// Update replaces the visible version of the row keyed pk with newRow
// (same primary key). It returns false when no version is visible, and
// ErrSerialization under first-updater-wins.
func (tb *Table) Update(t *Txn, pk sqlmini.Value, newRow storage.Row) (bool, error) {
	return tb.write(t, pk, newRow, false)
}

// Delete removes the visible version of the row keyed pk. It returns false
// when no version is visible.
func (tb *Table) Delete(t *Txn, pk sqlmini.Value) (bool, error) {
	return tb.write(t, pk, nil, true)
}

func (tb *Table) write(t *Txn, pk sqlmini.Value, newRow storage.Row, del bool) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	if !del {
		newRow = tb.Schema.Coerce(newRow)
		if err := tb.Schema.CheckRow(newRow); err != nil {
			return false, err
		}
		if tb.Schema.PK(newRow) != pk {
			return false, ErrPKImmutable
		}
	}
	ch := tb.chain(pk, false)
	if ch == nil {
		return false, nil
	}

	deadline := time.Now().Add(t.lockTimeout())
	ch.mu.Lock()
	for {
		// First-updater-wins, committed-winner path: a concurrent
		// transaction already committed a newer version of this row.
		if ch.committedAfter(t) {
			ch.mu.Unlock()
			return false, ErrSerialization
		}
		if ch.lockOwner == 0 || ch.lockOwner == t.ID {
			break
		}
		// First-updater-wins, active-winner path: wait for the lock
		// holder; if it commits we will see committedAfter above and
		// abort, if it aborts we proceed.
		if err := ch.waitUnlocked(t, deadline); err != nil {
			return false, err
		}
	}
	// Find the version visible to t and supersede it.
	idx := -1
	for i := len(ch.versions) - 1; i >= 0; i-- {
		if t.visible(&ch.versions[i]) {
			idx = i
			break
		}
	}
	if idx < 0 {
		ch.mu.Unlock()
		return false, nil
	}
	ch.acquire(t)
	// First-updater-wins must hold at the moment of superseding: with the
	// row lock ours, no concurrent committed winner may exist.
	invariant.Check(func() error {
		if ch.committedAfter(t) {
			return fmt.Errorf("mvcc: txn %d superseding a row with a committed-after-snapshot version", t.ID)
		}
		return nil
	})
	ch.versions[idx].xmax = t.ID
	if !del {
		ch.versions = append(ch.versions, version{xmin: t.ID, row: newRow.Clone()})
	}
	ch.mu.Unlock()
	if !del {
		tb.indexAdd(newRow, pk)
	}
	t.writes++
	return true, nil
}

// ErrPKImmutable reports an attempt to change a row's primary key in place.
var ErrPKImmutable = errPKImmutable{}

type errPKImmutable struct{}

func (errPKImmutable) Error() string { return "mvcc: primary key is immutable; delete and insert" }

// committedAfter reports whether any version of this chain was created or
// deleted by a transaction that committed after t's snapshot. Caller holds
// ch.mu.
func (ch *rowChain) committedAfter(t *Txn) bool {
	for i := range ch.versions {
		v := &ch.versions[i]
		if v.xmin != t.ID {
			if st, csn := t.mgr.statusOf(v.xmin); st == StatusCommitted && csn > t.Snapshot {
				return true
			}
		}
		if v.xmax != 0 && v.xmax != t.ID {
			if st, csn := t.mgr.statusOf(v.xmax); st == StatusCommitted && csn > t.Snapshot {
				return true
			}
		}
	}
	return false
}

// acquire takes the row lock for t (idempotent). Caller holds ch.mu.
func (ch *rowChain) acquire(t *Txn) {
	invariant.Assertf(ch.lockOwner == 0 || ch.lockOwner == t.ID,
		"mvcc: txn %d acquiring a row lock held by txn %d", t.ID, ch.lockOwner)
	if ch.lockOwner == t.ID {
		return
	}
	ch.lockOwner = t.ID
	t.locks = append(t.locks, ch)
}

// waitUnlocked releases ch.mu, waits until the lock holder resolves or the
// deadline passes, and reacquires ch.mu. Caller holds ch.mu on entry; on a
// nil return the caller holds it again and must recheck all conditions.
//
// The wake channel is registered before ch.mu is released and the holder
// closes it under ch.mu, so a release between our unlock and our select
// cannot be missed — the close is already observable on the channel.
func (ch *rowChain) waitUnlocked(t *Txn, deadline time.Time) error {
	wake := make(chan struct{})
	ch.waiters = append(ch.waiters, wake)
	ch.mu.Unlock()

	wait := time.Until(deadline)
	if wait <= 0 {
		ch.mu.Lock()
		ch.dropWaiter(wake)
		ch.mu.Unlock()
		return ErrLockTimeout
	}
	select {
	case <-wake:
		ch.mu.Lock()
		return nil
	case <-t.waitTimerFor(wait):
		ch.mu.Lock()
		ch.dropWaiter(wake)
		ch.mu.Unlock()
		return ErrLockTimeout
	}
}

// dropWaiter removes a timed-out waiter channel. Caller holds ch.mu.
func (ch *rowChain) dropWaiter(w chan struct{}) {
	for i, x := range ch.waiters {
		if x == w {
			ch.waiters = append(ch.waiters[:i], ch.waiters[i+1:]...)
			return
		}
	}
}

// unlock releases the lock if owned by id and wakes all waiters.
func (ch *rowChain) unlock(id TxnID) {
	ch.mu.Lock()
	if ch.lockOwner == id {
		ch.lockOwner = 0
		for _, w := range ch.waiters {
			close(w)
		}
		ch.waiters = nil
	}
	ch.mu.Unlock()
}

// undo physically removes an aborted transaction's trace from one chain:
// versions it created disappear, supersession marks it left are cleared.
// Safe because id's versions were never visible to any other transaction
// and statusOf already reports the (dropped) transaction as aborted.
func (ch *rowChain) undo(id TxnID) {
	ch.mu.Lock()
	kept := ch.versions[:0]
	for i := range ch.versions {
		v := ch.versions[i]
		if v.xmin == id {
			continue
		}
		if v.xmax == id {
			v.xmax = 0
		}
		kept = append(kept, v)
	}
	for i := len(kept); i < len(ch.versions); i++ {
		ch.versions[i] = version{}
	}
	ch.versions = kept
	ch.mu.Unlock()
}
