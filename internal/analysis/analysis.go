// Package analysis is madeus's in-tree static-analysis framework: a small
// analyzer harness built entirely on the stdlib go/ast, go/parser, and
// go/types packages (no golang.org/x/tools dependency), plus the
// repo-tailored concurrency analyzers that cmd/madeusvet runs over ./...
//
// The framework exists because the repo's correctness rests on concurrency
// discipline that generic go vet cannot see: which mutexes guard which
// critical regions, which calls block, which errors are load-bearing on the
// commit/WAL/wire paths, and which assertions must stay behind the
// `invariants` build tag. Each analyzer encodes one such rule; DESIGN.md
// ("Concurrency invariants & lock hierarchy" and "Interprocedural
// analysis") documents the discipline they enforce.
//
// Two tiers of analyzer share the harness. Per-package rules walk one
// package's ASTs (lockdiscipline, lockcopy, goroleak, errdrop,
// invariantcall, timerchurn, tagparity). Interprocedural rules (lockorder,
// holdblock) consult a Program: a whole-load static call graph with
// per-function summaries of mutexes acquired and blocking operations
// reached, built once per run and shared by every package's pass.
//
// Findings can be suppressed at a specific site with an inline directive on
// the same line or the line directly above:
//
//	//madeusvet:ignore rulename reason for the exemption
//
// Suppressions are for intentional, documented deviations (e.g. the WAL's
// serial mode holding its mutex across the modeled fsync); use sparingly. A
// directive that no longer suppresses anything is itself reported (rule
// staleignore), so dead exemptions cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package to an analyzer. Info and Types may be incomplete
// when type-checking partially failed (the loader records the error and
// continues); analyzers must degrade to AST heuristics in that case. Prog
// is the whole-load interprocedural view shared by every pass of one run.
type Pass struct {
	Analyzer    *Analyzer
	Fset        *token.FileSet
	Files       []*ast.File
	TaggedFiles []TaggedFile
	Constraints map[*ast.File]constraint.Expr
	PkgPath     string
	Types       *types.Package
	Info        *types.Info
	Prog        *Program

	ownFiles map[string]bool
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// adoptOwned copies the program-wide findings that live in this pass's
// package. Interprocedural analyzers compute findings once per Program and
// each package's pass claims its own, so suppression and reporting stay
// per-package.
func (p *Pass) adoptOwned(all []Diagnostic) {
	for _, d := range all {
		if p.ownFiles[d.Pos.Filename] {
			d.Rule = p.Analyzer.Name
			p.diags = append(p.diags, d)
		}
	}
}

// TypeOf returns the type of e, or nil when type info is unavailable.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// All returns the default analyzer set cmd/madeusvet runs.
func All() []*Analyzer {
	return []*Analyzer{
		LockDiscipline,
		LockCopy,
		GoroLeak,
		ErrDrop,
		InvariantCall,
		TimerChurn,
		LockOrder,
		StripeOrder,
		HoldBlock,
		TagParity,
		ObsName,
		FsyncAck,
		StaleIgnore,
	}
}

// StaleIgnore reports //madeusvet:ignore directives that no longer suppress
// any finding. The harness applies it after every other selected rule has
// run on a package: a directive is stale only when each rule it names ran
// in this very invocation and still produced nothing at the directive's
// site, so a narrowed -rules run never mislabels a live exemption. Packages
// whose type-check failed are skipped (degraded rules may simply have
// missed the finding the directive guards).
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc:  "an //madeusvet:ignore directive that suppresses nothing is itself a finding",
	Run:  func(*Pass) {}, // applied by the harness after all rules run
}

// RunAnalyzers applies each analyzer to pkg in isolation (the package plus
// its cached dependency closure form the interprocedural Program) and
// returns the surviving findings, sorted by position, with
// //madeusvet:ignore directives applied.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return runPackage(NewProgram([]*Package{pkg}), pkg, analyzers)
}

// RunAll builds one Program over every target package and runs the
// analyzers package by package; interprocedural rules see the whole load.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, runPackage(prog, pkg, analyzers)...)
	}
	return out
}

func runPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ignores := collectIgnores(pkg.Fset, pkg.Files, pkg.Tagged)
	own := make(map[string]bool, len(pkg.Files)+len(pkg.Tagged))
	for _, f := range pkg.Files {
		own[pkg.Fset.Position(f.Pos()).Filename] = true
	}
	for _, tf := range pkg.Tagged {
		own[pkg.Fset.Position(tf.File.Pos()).Filename] = true
	}

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			TaggedFiles: pkg.Tagged,
			Constraints: pkg.Constraints,
			PkgPath:     pkg.Path,
			Types:       pkg.Types,
			Info:        pkg.Info,
			Prog:        prog,
			ownFiles:    own,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if ignores.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}

	// Stale-suppression pass: after every selected rule has run, an
	// eligible directive that suppressed nothing is dead weight.
	if hasAnalyzer(analyzers, StaleIgnore.Name) && pkg.TypeErr == nil {
		names := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			names[a.Name] = true
		}
		full := true
		for _, a := range All() {
			if !names[a.Name] {
				full = false
				break
			}
		}
		for _, dir := range ignores.directives {
			if dir.used || dir.inTagged {
				continue
			}
			if dir.all && !full {
				continue
			}
			eligible := true
			for _, r := range dir.rules {
				if !names[r] {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			d := Diagnostic{
				Pos:  dir.pos,
				Rule: StaleIgnore.Name,
				Message: fmt.Sprintf("stale suppression: //madeusvet:ignore %s no longer suppresses any finding; delete it or restate why it is needed",
					strings.Join(dir.rules, ",")),
			}
			if ignores.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

func hasAnalyzer(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ignoreDirective is one //madeusvet:ignore occurrence, tracked for
// staleness.
type ignoreDirective struct {
	pos      token.Position
	rules    []string
	all      bool
	used     bool
	inTagged bool
}

func (d *ignoreDirective) matches(rule string) bool {
	if d.all {
		return true
	}
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// ignoreIndex maps file -> line -> directives covering that line.
type ignoreIndex struct {
	directives []*ignoreDirective
	byLine     map[string]map[int][]*ignoreDirective
}

// collectIgnores scans comments for madeusvet:ignore directives. A directive
// suppresses the named rules (comma-separated; "all" matches every rule) on
// its own line and on the line that follows it, so both trailing and
// preceding comment placement work. Directives in tag-excluded files are
// honored (tagparity reports at positions inside them) but exempt from
// staleness, since most rules never see those files.
func collectIgnores(fset *token.FileSet, files []*ast.File, tagged []TaggedFile) *ignoreIndex {
	idx := &ignoreIndex{byLine: make(map[string]map[int][]*ignoreDirective)}
	scan := func(f *ast.File, inTagged bool) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "madeusvet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "madeusvet:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				dir := &ignoreDirective{pos: pos, inTagged: inTagged}
				for _, r := range strings.Split(fields[0], ",") {
					r = strings.TrimSpace(r)
					if r == "all" {
						dir.all = true
					} else if r != "" {
						dir.rules = append(dir.rules, r)
					}
				}
				idx.directives = append(idx.directives, dir)
				byLine := idx.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*ignoreDirective)
					idx.byLine[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine[line] = append(byLine[line], dir)
				}
			}
		}
	}
	for _, f := range files {
		scan(f, false)
	}
	for _, tf := range tagged {
		scan(tf.File, true)
	}
	return idx
}

// suppressed reports whether a directive covers d, marking the directive
// used.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	for _, dir := range idx.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.matches(d.Rule) {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// --- shared AST helpers used by several analyzers ---

// exprString renders a (simple) expression as source-ish text, enough to key
// lock identity ("t.mu", "ch.mu", "p.herdMu"). Unrenderable expressions
// return "".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "[...]"
	}
	return ""
}

// isTestFile reports whether the file holding pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// namedType dereferences pointers and returns the *types.Named behind t,
// or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isSyncType reports whether t is sync.<name> (or a pointer to it).
func isSyncType(t types.Type, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == name
}
