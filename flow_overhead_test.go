package madeus

import (
	"fmt"
	"testing"

	"madeus/internal/flow"
)

// TestFlowDisabledOverhead guards the backpressure layer's cost contract,
// the sibling of TestFaultDisabledOverhead: a tenant that is not being paced
// pays one atomic load per commit at the Throttle.Wait site, and a tenant
// with no session cap pays one config load per connection at Admit. Neither
// may allocate, and the paced-commit site must stay within noise of the bare
// loop — backpressure that is off has to be free, or it could never sit on
// the commit path of every tenant.
func TestFlowDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments atomics; run without -race")
	}

	var th flow.Throttle // zero value: delay 0, the disabled state
	gov, err := flow.NewGovernor(flow.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lim := flow.NewLimiter("overhead", gov)

	if allocs := testing.AllocsPerRun(1000, th.Wait); allocs != 0 {
		t.Fatalf("idle Throttle.Wait allocates %.1f objects/op", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		release, err := lim.Admit()
		if err != nil {
			t.Fatal(err)
		}
		release()
	}); allocs != 0 {
		t.Fatalf("uncapped Admit allocates %.1f objects/op", allocs)
	}

	var sink uint64
	bare := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	}
	instrumented := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th.Wait()
			sink += uint64(i)
		}
	}

	const attempts = 5
	var last string
	for try := 0; try < attempts; try++ {
		rBare := testing.Benchmark(bare)
		rInst := testing.Benchmark(instrumented)
		nsBare := float64(rBare.NsPerOp())
		nsInst := float64(rInst.NsPerOp())
		if nsBare <= 0 {
			nsBare = 0.1
		}
		// Allow one atomic-flag load plus slack: 4x + 2ns absolute.
		if nsInst <= 4*nsBare+2 {
			return
		}
		last = fmt.Sprintf("%.1fns/op vs %.1fns/op (%.1fx)", nsInst, nsBare, nsInst/nsBare)
	}
	t.Fatalf("idle pace point is not free: %s across %d attempts", last, attempts)
}

// BenchmarkThrottleWaitIdle measures the per-commit price of the pace point
// when no migration is braking the tenant — the steady state for every
// commit in the system.
func BenchmarkThrottleWaitIdle(b *testing.B) {
	var th flow.Throttle
	for i := 0; i < b.N; i++ {
		th.Wait()
	}
}

// BenchmarkAdmitUncapped measures the per-connection price of admission
// control when MaxSessions is 0 (unlimited).
func BenchmarkAdmitUncapped(b *testing.B) {
	gov, err := flow.NewGovernor(flow.Config{})
	if err != nil {
		b.Fatal(err)
	}
	lim := flow.NewLimiter("bench", gov)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release, err := lim.Admit()
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}
