package engine

import (
	"fmt"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// evalFilter evaluates a WHERE expression against a row: only a result of
// boolean TRUE selects the row (NULL behaves as not-selected, matching SQL).
func evalFilter(e sqlmini.Expr, schema *storage.Schema, row storage.Row) (bool, error) {
	v, err := evalExpr(e, schema, row)
	if err != nil {
		return false, err
	}
	return v.Kind == sqlmini.KindBool && v.Bool, nil
}

// evalExpr evaluates an expression. schema/row may be nil for constant
// expressions (INSERT values). Comparisons or arithmetic with NULL yield
// NULL.
func evalExpr(e sqlmini.Expr, schema *storage.Schema, row storage.Row) (sqlmini.Value, error) {
	switch e := e.(type) {
	case *sqlmini.Literal:
		return e.Val, nil
	case *sqlmini.ColumnRef:
		if schema == nil {
			return sqlmini.Value{}, fmt.Errorf("engine: column %q in constant context", e.Name)
		}
		ci := schema.ColumnIndex(e.Name)
		if ci < 0 {
			return sqlmini.Value{}, fmt.Errorf("engine: unknown column %q", e.Name)
		}
		return row[ci], nil
	case *sqlmini.Neg:
		v, err := evalExpr(e.E, schema, row)
		if err != nil {
			return sqlmini.Value{}, err
		}
		switch v.Kind {
		case sqlmini.KindNull:
			return sqlmini.Null(), nil
		case sqlmini.KindInt:
			return sqlmini.NewInt(-v.Int), nil
		case sqlmini.KindFloat:
			return sqlmini.NewFloat(-v.Float), nil
		}
		return sqlmini.Value{}, fmt.Errorf("engine: cannot negate %s", v.Kind)
	case *sqlmini.Not:
		v, err := evalExpr(e.E, schema, row)
		if err != nil {
			return sqlmini.Value{}, err
		}
		if v.IsNull() {
			return sqlmini.Null(), nil
		}
		if v.Kind != sqlmini.KindBool {
			return sqlmini.Value{}, fmt.Errorf("engine: NOT of %s", v.Kind)
		}
		return sqlmini.NewBool(!v.Bool), nil
	case *sqlmini.Binary:
		return evalBinary(e, schema, row)
	}
	return sqlmini.Value{}, fmt.Errorf("engine: unsupported expression %T", e)
}

func evalBinary(e *sqlmini.Binary, schema *storage.Schema, row storage.Row) (sqlmini.Value, error) {
	l, err := evalExpr(e.L, schema, row)
	if err != nil {
		return sqlmini.Value{}, err
	}
	// AND/OR get SQL three-valued shortcuts.
	if e.Op == sqlmini.OpAnd || e.Op == sqlmini.OpOr {
		r, err := evalExpr(e.R, schema, row)
		if err != nil {
			return sqlmini.Value{}, err
		}
		return evalLogic(e.Op, l, r)
	}
	r, err := evalExpr(e.R, schema, row)
	if err != nil {
		return sqlmini.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return sqlmini.Null(), nil
	}
	switch e.Op {
	case sqlmini.OpEq, sqlmini.OpNe, sqlmini.OpLt, sqlmini.OpLe, sqlmini.OpGt, sqlmini.OpGe:
		c, err := l.Compare(r)
		if err != nil {
			return sqlmini.Value{}, err
		}
		switch e.Op {
		case sqlmini.OpEq:
			return sqlmini.NewBool(c == 0), nil
		case sqlmini.OpNe:
			return sqlmini.NewBool(c != 0), nil
		case sqlmini.OpLt:
			return sqlmini.NewBool(c < 0), nil
		case sqlmini.OpLe:
			return sqlmini.NewBool(c <= 0), nil
		case sqlmini.OpGt:
			return sqlmini.NewBool(c > 0), nil
		default:
			return sqlmini.NewBool(c >= 0), nil
		}
	case sqlmini.OpAdd, sqlmini.OpSub, sqlmini.OpMul, sqlmini.OpDiv:
		return evalArith(e.Op, l, r)
	}
	return sqlmini.Value{}, fmt.Errorf("engine: unsupported operator %s", e.Op)
}

func evalLogic(op sqlmini.BinaryOp, l, r sqlmini.Value) (sqlmini.Value, error) {
	toBool := func(v sqlmini.Value) (b, null bool, err error) {
		if v.IsNull() {
			return false, true, nil
		}
		if v.Kind != sqlmini.KindBool {
			return false, false, fmt.Errorf("engine: %s operand is %s, want BOOL", op, v.Kind)
		}
		return v.Bool, false, nil
	}
	lb, ln, err := toBool(l)
	if err != nil {
		return sqlmini.Value{}, err
	}
	rb, rn, err := toBool(r)
	if err != nil {
		return sqlmini.Value{}, err
	}
	if op == sqlmini.OpAnd {
		switch {
		case !ln && !lb, !rn && !rb:
			return sqlmini.NewBool(false), nil
		case ln || rn:
			return sqlmini.Null(), nil
		default:
			return sqlmini.NewBool(true), nil
		}
	}
	// OR
	switch {
	case !ln && lb, !rn && rb:
		return sqlmini.NewBool(true), nil
	case ln || rn:
		return sqlmini.Null(), nil
	default:
		return sqlmini.NewBool(false), nil
	}
}

func evalArith(op sqlmini.BinaryOp, l, r sqlmini.Value) (sqlmini.Value, error) {
	if l.Kind == sqlmini.KindInt && r.Kind == sqlmini.KindInt {
		a, b := l.Int, r.Int
		switch op {
		case sqlmini.OpAdd:
			return sqlmini.NewInt(a + b), nil
		case sqlmini.OpSub:
			return sqlmini.NewInt(a - b), nil
		case sqlmini.OpMul:
			return sqlmini.NewInt(a * b), nil
		case sqlmini.OpDiv:
			if b == 0 {
				return sqlmini.Value{}, fmt.Errorf("engine: division by zero")
			}
			return sqlmini.NewInt(a / b), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return sqlmini.Value{}, fmt.Errorf("engine: arithmetic on %s and %s", l.Kind, r.Kind)
	}
	switch op {
	case sqlmini.OpAdd:
		return sqlmini.NewFloat(lf + rf), nil
	case sqlmini.OpSub:
		return sqlmini.NewFloat(lf - rf), nil
	case sqlmini.OpMul:
		return sqlmini.NewFloat(lf * rf), nil
	case sqlmini.OpDiv:
		if rf == 0 {
			return sqlmini.Value{}, fmt.Errorf("engine: division by zero")
		}
		return sqlmini.NewFloat(lf / rf), nil
	}
	return sqlmini.Value{}, fmt.Errorf("engine: unsupported arithmetic %s", op)
}
