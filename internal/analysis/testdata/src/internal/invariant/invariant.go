// Package invariant is a fixture stand-in for madeus/internal/invariant; the
// invariantcall analyzer matches it by its "internal/invariant" path suffix.
package invariant

// Assert is the fixture no-op assertion.
func Assert(cond bool, msg string) {}

// Assertf is the fixture no-op formatted assertion.
func Assertf(cond bool, format string, args ...any) {}

// Check is the fixture no-op deferred-work assertion.
func Check(f func() error) {}
