package sqlmini

import (
	"fmt"
	"strconv"
)

// ValueKind enumerates the runtime types of SQL values.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("ValueKind(%d)", int(k))
}

// Value is a SQL runtime value. The zero value is NULL. Value is comparable
// and therefore usable as a map key (e.g. primary-key indexes).
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{Kind: KindText, Str: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders v as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return quoteSQL(v.Str)
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// quoteSQL renders s as a single-quoted SQL string literal.
func quoteSQL(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '\'')
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	out = append(out, '\'')
	return string(out)
}

// AsFloat converts numeric values to float64 for mixed-type arithmetic.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	}
	return 0, false
}

// Compare orders two values of the same (or numeric-compatible) kind.
// It returns -1, 0, or +1, and an error when the kinds are incomparable.
// NULL compares less than every non-NULL value (used for ORDER BY only;
// WHERE-clause comparisons with NULL yield no match, handled by the engine).
func (v Value) Compare(o Value) (int, error) {
	if v.IsNull() || o.IsNull() {
		switch {
		case v.IsNull() && o.IsNull():
			return 0, nil
		case v.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.Kind != o.Kind {
		vf, vok := v.AsFloat()
		of, ook := o.AsFloat()
		if vok && ook {
			return cmpFloat(vf, of), nil
		}
		return 0, fmt.Errorf("sqlmini: cannot compare %s with %s", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.Int < o.Int:
			return -1, nil
		case v.Int > o.Int:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		return cmpFloat(v.Float, o.Float), nil
	case KindText:
		switch {
		case v.Str < o.Str:
			return -1, nil
		case v.Str > o.Str:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !v.Bool && o.Bool:
			return -1, nil
		case v.Bool && !o.Bool:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("sqlmini: cannot compare %s values", v.Kind)
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
