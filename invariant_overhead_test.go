package madeus

import (
	"fmt"
	"testing"

	"madeus/internal/invariant"
)

// TestInvariantZeroOverhead guards the design contract of internal/invariant:
// without the `invariants` build tag, Assert must inline to nothing, so a hot
// loop with an assertion costs the same as the bare loop. The comparison is
// deliberately lenient (3x + retries) — it exists to catch the package
// regressing into real per-call work (a function call that no longer
// inlines, a map lookup, an atomic), not to police nanoseconds.
func TestInvariantZeroOverhead(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariants tag active: assertions intentionally do work")
	}
	if testing.Short() {
		t.Skip("timing-sensitive")
	}

	var sink uint64
	bare := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	}
	asserted := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			invariant.Assert(sink >= 0, "sink underflow")
			invariant.Assertf(i >= 0, "negative loop index %d", i)
			sink += uint64(i)
		}
	}

	// Timing on a shared machine is noisy; pass if ANY attempt lands under
	// the (already generous) ratio.
	const attempts = 5
	var last string
	for try := 0; try < attempts; try++ {
		rBare := testing.Benchmark(bare)
		rAsserted := testing.Benchmark(asserted)
		nsBare := float64(rBare.NsPerOp())
		nsAsserted := float64(rAsserted.NsPerOp())
		if nsBare <= 0 {
			nsBare = 0.1
		}
		if nsAsserted <= 3*nsBare+1 {
			return
		}
		last = fmt.Sprintf("%.1fns/op vs %.1fns/op (%.1fx)", nsAsserted, nsBare, nsAsserted/nsBare)
	}
	t.Fatalf("no-tag invariant.Assert is not free: asserted loop ran at %s across %d attempts", last, attempts)
}
