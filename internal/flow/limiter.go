package flow

import (
	"sync"
	"time"

	"madeus/internal/fault"
)

// faultAdmit sits on the admission decision so the chaos suite can force
// sheds or delay grants deterministically.
const faultAdmit = "flow.admit"

// noRelease is the shared no-op returned on the unlimited fast path, so
// an uncapped Admit allocates nothing.
var noRelease = func() {}

// Limiter is per-tenant session admission control: a slot cap, a bounded
// FIFO wait queue, and typed shedding. With MaxSessions 0 (the zero
// value), Admit is one atomic config load and a shared no-op func —
// seed-equivalent cost.
//
// The proxy calls Admit when a customer session binds to the tenant and
// the returned release exactly once when the session closes. Queued
// waiters receive slots in arrival order via direct handoff, so a burst
// drains fairly; arrivals past cap+queue (or that outwait AdmitTimeout)
// are shed with an OverloadError, which the wire server delivers as a
// clean startup error — degradation the client can retry, not a hang.
type Limiter struct {
	tenant string
	gov    *Governor

	mu      sync.Mutex //madeusvet:lockrank flow-limiter 22
	inUse   int
	waiters []chan struct{} // FIFO; closed channel = slot granted
}

// NewLimiter builds the admission gate for one tenant.
func NewLimiter(tenant string, gov *Governor) *Limiter {
	return &Limiter{tenant: tenant, gov: gov}
}

// Admit claims a session slot, waiting in the queue if the tenant is at
// its cap. On success the returned func releases the slot (idempotence is
// the caller's job). On overload it returns a typed *OverloadError.
func (l *Limiter) Admit() (release func(), err error) {
	cfg := l.gov.cfg.Load()
	if cfg.MaxSessions == 0 {
		return noRelease, nil
	}
	if err := fault.Inject(faultAdmit); err != nil {
		obsSheds.Inc()
		return nil, err
	}
	l.mu.Lock()
	if l.inUse < cfg.MaxSessions {
		l.inUse++
		l.mu.Unlock()
		obsSessions.Inc()
		return l.release, nil
	}
	if len(l.waiters) >= cfg.AdmitQueue {
		l.mu.Unlock()
		obsSheds.Inc()
		return nil, &OverloadError{Tenant: l.tenant, Reason: ReasonQueueFull}
	}
	grant := make(chan struct{})
	l.waiters = append(l.waiters, grant)
	l.mu.Unlock()
	obsAdmitQueue.Inc()

	timeout := cfg.AdmitTimeout
	if timeout <= 0 {
		timeout = DefaultAdmitTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-grant:
		obsAdmitQueue.Dec()
		obsSessions.Inc()
		return l.release, nil
	case <-timer.C:
	}
	// Timed out — but the grant may have raced the timer. Remove ourselves
	// under the lock; if we are already gone, a releaser handed us the
	// slot and we keep it.
	l.mu.Lock()
	for i, w := range l.waiters {
		if w == grant {
			l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
			l.mu.Unlock()
			obsAdmitQueue.Dec()
			obsSheds.Inc()
			return nil, &OverloadError{Tenant: l.tenant, Reason: ReasonAdmitTimeout}
		}
	}
	l.mu.Unlock()
	obsAdmitQueue.Dec()
	obsSessions.Inc()
	return l.release, nil
}

// release returns a slot, handing it to the oldest waiter if any. The
// session count transfers with the slot, so obsSessions only moves when
// no waiter takes over (the waiter's Admit increments it on grant).
func (l *Limiter) release() {
	l.mu.Lock()
	if len(l.waiters) > 0 {
		grant := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.mu.Unlock()
		obsSessions.Dec()
		close(grant)
		return
	}
	l.inUse--
	l.mu.Unlock()
	obsSessions.Dec()
}

// InUse reports the currently held slots (admitted sessions), for the
// admin FLOW listing and tests.
func (l *Limiter) InUse() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Waiting reports the queued sessions.
func (l *Limiter) Waiting() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}
