// Package obsname exercises the obsname analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package obsname

import (
	"fmt"
	"time"

	"fixture/internal/obs"
)

// Package constants are the blessed way to name metrics and events.
const (
	evMigrate    = "core.migrate"
	metricPrefix = "wire"
)

// constantNames passes literals and package consts everywhere — no findings.
func constantNames(tr *obs.Tracer) {
	obs.NewCounter("wire.ops", "operations relayed")
	obs.NewGauge(metricPrefix+".sessions", "open sessions") // const-folded concat
	obs.Default.NewHistogram("wire.latency", "latency", []int64{1, 2})
	tr.Emit("tenantA", evMigrate, obs.F("step", 1))
	tr.EmitDur("tenantA", "wire.exec", time.Second)
	tr.Start("tenantA", evMigrate).End()
}

// dynamicTenantIsFine: only the NAME argument is constrained; tenant and
// field values may be runtime data.
func dynamicTenantIsFine(tr *obs.Tracer, tenant string) {
	tr.Emit(tenant, evMigrate, obs.F("tenant", tenant))
}

// computedConstructorNames build the metric name at the call site.
func computedConstructorNames(tenant string) {
	obs.NewCounter("tenant."+tenant+".ops", "per-tenant ops")            // want
	obs.NewGauge(fmt.Sprintf("tenant.%s.mlc", tenant), "MLC")            // want
	obs.Default.NewGaugeFunc(name(), "depth", func() int64 { return 0 }) // want
}

// computedEventNames build the trace-event name at the call site.
func computedEventNames(tr *obs.Tracer, step int) {
	tr.Emit("tenantA", fmt.Sprintf("step%d", step))           // want
	tr.EmitDur("tenantA", "step"+suffix(step), time.Second)   // want
	obs.Trace.Start("tenantA", "migrate."+suffix(step)).End() // want
}

// replaceGaugeFuncIsExempt: the one sanctioned dynamic-name door.
func replaceGaugeFuncIsExempt(tenant string) {
	obs.Default.ReplaceGaugeFunc("core.tenant."+tenant+".mlc", "MLC", func() int64 { return 0 })
	obs.Default.Unregister("core.tenant." + tenant + ".mlc")
}

// lookalike has an Emit method but is not the obs tracer; dynamic names on
// it are none of obsname's business.
type lookalike struct{}

func (lookalike) Emit(tenant, name string, extra ...int) {}

func notObs(l lookalike, step int) {
	l.Emit("tenantA", fmt.Sprintf("step%d", step))
}

func name() string        { return "dynamic" }
func suffix(i int) string { return fmt.Sprint(i) }
