package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/testutil"
	"madeus/internal/wal"
	"madeus/internal/wire"
)

// testRig is a middleware in front of two (or more) nodes with one tenant
// provisioned on node0.
type testRig struct {
	mw    *Middleware
	nodes []*cluster.Node
}

func newRig(t *testing.T, nNodes int, engOpts engine.Options) *testRig {
	t.Helper()
	// Registered before the node/middleware cleanups so it runs after them
	// (LIFO) and sees the fully torn-down state.
	testutil.CheckGoroutines(t)
	mw, err := New(Options{CatchupTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	rig := &testRig{mw: mw}
	for i := 0; i < nNodes; i++ {
		n, err := cluster.NewNode(fmt.Sprintf("node%d", i), cluster.NodeOptions{Engine: engOpts})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		mw.AddNode(n)
		rig.nodes = append(rig.nodes, n)
	}
	return rig
}

// provision creates a tenant on node0 with a small table.
func (r *testRig) provision(t *testing.T, tenant string, rows int) {
	t.Helper()
	if err := r.mw.ProvisionTenant(tenant, "node0"); err != nil {
		t.Fatal(err)
	}
	c := r.connect(t, tenant)
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i += 50 {
		sql := "INSERT INTO acct (id, bal) VALUES "
		for j := i; j < i+50 && j < rows; j++ {
			if j > i {
				sql += ", "
			}
			sql += fmt.Sprintf("(%d, 100)", j)
		}
		if _, err := c.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
}

// connect opens a customer connection through the middleware.
func (r *testRig) connect(t *testing.T, tenant string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(r.mw.Addr(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProxyRelaysOperations(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 10)
	c := rig.connect(t, "a")
	defer c.Close()

	res, err := c.Exec("SELECT bal FROM acct WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 100 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
	if _, err := c.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec("SELECT bal FROM acct WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 101 {
		t.Errorf("bal = %v", res.Rows[0][0])
	}
}

func TestProxyRelaysServerErrors(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 1)
	c := rig.connect(t, "a")
	defer c.Close()
	_, err := c.Exec("SELECT * FROM missing")
	var se *wire.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v", err)
	}
	// Session still usable.
	if _, err := c.Exec("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatal(err)
	}
}

func TestProxyUnknownTenant(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	if _, err := wire.Dial(rig.mw.Addr(), "ghost"); err == nil {
		t.Error("want error for unknown tenant")
	}
}

func TestMLCAdvancesOnUpdateCommitsOnly(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 5)
	tn, _ := rig.mw.Tenant("a")
	base := tn.MLC()

	c := rig.connect(t, "a")
	defer c.Close()

	// Read-only transaction: MLC unchanged.
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1", "COMMIT")
	if got := tn.MLC(); got != base {
		t.Errorf("MLC after read-only txn = %d, want %d", got, base)
	}
	// Update transaction: MLC +1.
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1",
		"UPDATE acct SET bal = bal - 1 WHERE id = 1", "COMMIT")
	if got := tn.MLC(); got != base+1 {
		t.Errorf("MLC after update txn = %d, want %d", got, base+1)
	}
	// Rolled-back update: unchanged.
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1",
		"UPDATE acct SET bal = bal - 1 WHERE id = 1", "ROLLBACK")
	if got := tn.MLC(); got != base+1 {
		t.Errorf("MLC after rollback = %d, want %d", got, base+1)
	}
	// Autocommit write: +1.
	mustExecAll(t, c, "UPDATE acct SET bal = bal + 1 WHERE id = 2")
	if got := tn.MLC(); got != base+2 {
		t.Errorf("MLC after autocommit write = %d, want %d", got, base+2)
	}
}

func mustExecAll(t *testing.T, c *wire.Client, sqls ...string) {
	t.Helper()
	for _, sql := range sqls {
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("Exec(%q): %v", sql, err)
		}
	}
}

// TestAppendixCExample replays the paper's Appendix-C scenario through the
// real worker path and checks the resulting SSL: T_i and T_j concurrent
// (same STS, consecutive ETS), T_k after both (STS = ETS = MTS+2), and the
// captured syncsets hold [first read, write] with reads of T_k's extra
// queries discarded.
func TestAppendixCExample(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 10)
	tn, _ := rig.mw.Tenant("a")

	// Capture without a full migration.
	tn.startCapture(false)
	defer tn.stopCapture()
	base := tn.MLC()

	ci := rig.connect(t, "a")
	defer ci.Close()
	cj := rig.connect(t, "a")
	defer cj.Close()
	ck := rig.connect(t, "a")
	defer ck.Close()

	// T_i and T_j interleaved (concurrent).
	mustExecAll(t, ci, "BEGIN", "SELECT bal FROM acct WHERE id = 1")
	mustExecAll(t, cj, "BEGIN", "SELECT bal FROM acct WHERE id = 2")
	mustExecAll(t, ci, "UPDATE acct SET bal = bal + 1 WHERE id = 1")
	mustExecAll(t, cj, "UPDATE acct SET bal = bal + 1 WHERE id = 2")
	mustExecAll(t, ci, "COMMIT")
	mustExecAll(t, cj, "COMMIT")
	// T_k strictly after.
	mustExecAll(t, ck, "BEGIN",
		"SELECT bal FROM acct WHERE id = 1",
		"SELECT bal FROM acct WHERE id = 2", // non-first read: discarded
		"UPDATE acct SET bal = bal + 1 WHERE id = 1",
		"COMMIT")

	tn.mu.Lock()
	ssl := append([]*SSB{}, tn.ssl...)
	tn.mu.Unlock()
	if len(ssl) != 3 {
		t.Fatalf("SSL has %d SSBs, want 3", len(ssl))
	}
	ti, tj, tk := ssl[0], ssl[1], ssl[2]
	if ti.STS != base || ti.ETS != base {
		t.Errorf("T_i STS/ETS = %d/%d, want %d/%d", ti.STS, ti.ETS, base, base)
	}
	if tj.STS != base || tj.ETS != base+1 {
		t.Errorf("T_j STS/ETS = %d/%d, want %d/%d", tj.STS, tj.ETS, base, base+1)
	}
	if tk.STS != base+2 || tk.ETS != base+2 {
		t.Errorf("T_k STS/ETS = %d/%d, want %d/%d", tk.STS, tk.ETS, base+2, base+2)
	}
	// T_k's syncset: first read + one write only (second read discarded).
	if len(tk.Entries) != 2 {
		t.Fatalf("T_k entries = %d, want 2: %+v", len(tk.Entries), tk.Entries)
	}
	if tk.Entries[0].SQL != "SELECT bal FROM acct WHERE id = 1" {
		t.Errorf("T_k first entry = %q", tk.Entries[0].SQL)
	}
	if got := tn.MLC(); got != base+3 {
		t.Errorf("MLC = %d, want %d", got, base+3)
	}
}

func TestReadOnlyAndAbortedTxnsNotLinked(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 5)
	tn, _ := rig.mw.Tenant("a")
	tn.startCapture(false)
	defer tn.stopCapture()

	c := rig.connect(t, "a")
	defer c.Close()
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1", "COMMIT")
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1",
		"UPDATE acct SET bal = 0 WHERE id = 1", "ROLLBACK")
	if n := tn.sslLen(); n != 0 {
		t.Errorf("SSL = %d SSBs, want 0", n)
	}
	// B-ALL capture links read-only transactions too.
	tn.stopCapture()
	tn.startCapture(true)
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1", "COMMIT")
	if n := tn.sslLen(); n != 1 {
		t.Errorf("B-ALL SSL = %d SSBs, want 1", n)
	}
}

func TestFailedTxnCommitNotLinked(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	rig.provision(t, "a", 5)
	tn, _ := rig.mw.Tenant("a")
	tn.startCapture(false)
	defer tn.stopCapture()

	c := rig.connect(t, "a")
	defer c.Close()
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1",
		"UPDATE acct SET bal = 0 WHERE id = 1")
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("want error")
	}
	// COMMIT of a poisoned txn acts as ROLLBACK; nothing links, MLC holds.
	base := tn.MLC()
	if _, err := c.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if n := tn.sslLen(); n != 0 {
		t.Errorf("SSL = %d, want 0", n)
	}
	if got := tn.MLC(); got != base {
		t.Errorf("MLC moved on poisoned commit: %d -> %d", base, got)
	}
}

// nodeDump dumps a tenant database directly from a node.
func nodeDump(t *testing.T, n Backend, db string) []string {
	t.Helper()
	c, err := n.Connect(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("DUMP")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[0].Str)
	}
	return out
}

func assertStateEqual(t *testing.T, a, b Backend, db string) {
	t.Helper()
	da := nodeDump(t, a, db)
	db2 := nodeDump(t, b, db)
	if len(da) != len(db2) {
		t.Fatalf("dump lengths differ: %s=%d %s=%d", a.BackendName(), len(da), b.BackendName(), len(db2))
	}
	for i := range da {
		if da[i] != db2[i] {
			t.Fatalf("dump line %d differs:\n  %s: %s\n  %s: %s", i, a.BackendName(), da[i], b.BackendName(), db2[i])
		}
	}
}

func TestMigrateIdleTenantAllStrategies(t *testing.T) {
	for _, st := range Strategies() {
		t.Run(st.String(), func(t *testing.T) {
			rig := newRig(t, 2, engine.Options{})
			rig.provision(t, "a", 120)
			rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: st, KeepSource: true})
			if err != nil {
				t.Fatalf("migrate: %v (%s)", err, rep)
			}
			if rep.Failed {
				t.Fatalf("report failed: %s", rep)
			}
			assertStateEqual(t, rig.nodes[0], rig.nodes[1], "a")

			// Routing follows the tenant.
			tn, _ := rig.mw.Tenant("a")
			node, _ := tn.Node()
			if node.BackendName() != "node1" {
				t.Errorf("tenant on %s, want node1", node.BackendName())
			}
			c := rig.connect(t, "a")
			defer c.Close()
			res, err := c.Exec("SELECT COUNT(*) FROM acct")
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].Int != 120 {
				t.Errorf("count after migration = %v", res.Rows[0][0])
			}
		})
	}
}

// loadgen runs a closed-loop writer with think time against the tenant
// until stop is closed; it reports the number of committed transactions.
// The think time matters: the paper's EBs pace themselves, and a baseline
// like B-ALL genuinely cannot catch up with an unthrottled closed loop.
func loadgen(t *testing.T, rig *testRig, tenant string, id int, think time.Duration, stop chan struct{}, done chan int) {
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	c, err := wire.Dial(rig.mw.Addr(), tenant)
	if err != nil {
		if !stopped() {
			t.Error(err)
		}
		done <- 0
		return
	}
	defer c.Close()
	commits := 0
	i := 0
	for !stopped() {
		i++
		row := (id*131 + i*7) % 120
		if _, err := c.Exec("BEGIN"); err != nil {
			if !stopped() {
				t.Errorf("writer %d BEGIN: %v", id, err)
			}
			break
		}
		ops := []string{
			fmt.Sprintf("SELECT bal FROM acct WHERE id = %d", row),
			fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", row),
		}
		failed := false
		for _, op := range ops {
			if _, err := c.Exec(op); err != nil {
				// Serialization conflicts are expected; roll back.
				c.Exec("ROLLBACK")
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		res, err := c.Exec("COMMIT")
		if err != nil {
			if !stopped() {
				t.Errorf("writer %d COMMIT: %v", id, err)
			}
			break
		}
		if res.Tag == "COMMIT" {
			commits++
		}
		if think > 0 {
			time.Sleep(think)
		}
	}
	done <- commits
}

func TestMigrateUnderLoadAllStrategiesConsistent(t *testing.T) {
	for _, st := range Strategies() {
		t.Run(st.String(), func(t *testing.T) {
			rig := newRig(t, 2, engine.Options{
				WAL: wal.Options{SyncDelay: 100 * time.Microsecond, Mode: wal.GroupCommit},
			})
			rig.provision(t, "a", 120)

			const writers = 4
			stop := make(chan struct{})
			done := make(chan int, writers)
			for w := 0; w < writers; w++ {
				go loadgen(t, rig, "a", w, 10*time.Millisecond, stop, done)
			}
			time.Sleep(50 * time.Millisecond) // build up some load

			rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: st, KeepSource: true})
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}

			// Writers keep going against the new master, proving
			// switch-over; then stop and verify.
			time.Sleep(50 * time.Millisecond)
			close(stop)
			total := 0
			for w := 0; w < writers; w++ {
				total += <-done
			}
			if total == 0 {
				t.Fatal("no transactions committed during the test")
			}
			if rep.Propagation.Syncsets == 0 {
				t.Error("no syncsets propagated despite concurrent load")
			}

			// The source copy froze at switch-over; replaying the sum
			// invariant: source balances + post-switch commits on dest.
			src, _ := rig.mw.Node("node0")
			dst, _ := rig.mw.Node("node1")
			srcSum := sumBal(t, src, "a")
			dstSum := sumBal(t, dst, "a")
			if dstSum < srcSum {
				t.Errorf("dest sum %d < source sum %d (lost updates)", dstSum, srcSum)
			}
			// Every committed increment must be present: initial 120*100
			// plus one per commit.
			if want := 120*100 + total; dstSum != want {
				t.Errorf("dest sum = %d, want %d (commits=%d)", dstSum, want, total)
			}
		})
	}
}

func sumBal(t *testing.T, n Backend, db string) int {
	t.Helper()
	c, err := n.Connect(db)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT SUM(bal) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	return int(res.Rows[0][0].Int)
}

func TestMadeusGroupCommitDuringMigration(t *testing.T) {
	rig := newRig(t, 2, engine.Options{
		WAL: wal.Options{SyncDelay: time.Millisecond, Mode: wal.GroupCommit},
	})
	rig.provision(t, "a", 120)

	const writers = 8
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, time.Millisecond, stop, done)
	}
	time.Sleep(50 * time.Millisecond)
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	close(stop)
	for w := 0; w < writers; w++ {
		<-done
	}
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if rep.Propagation.MaxGroup < 2 {
		t.Errorf("MaxGroup = %d, want >= 2 (no group commit happened under %d writers)",
			rep.Propagation.MaxGroup, writers)
	}
}

func TestBConNeverGroupsCommits(t *testing.T) {
	rig := newRig(t, 2, engine.Options{
		WAL: wal.Options{SyncDelay: 200 * time.Microsecond, Mode: wal.GroupCommit},
	})
	rig.provision(t, "a", 120)
	const writers = 6
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 2*time.Millisecond, stop, done)
	}
	time.Sleep(50 * time.Millisecond)
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: BCon})
	close(stop)
	for w := 0; w < writers; w++ {
		<-done
	}
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	for _, g := range rep.Propagation.CommitGroups {
		if g != 1 {
			t.Fatalf("B-CON propagated a commit group of %d", g)
		}
	}
}

func TestMigrateErrors(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 10)
	if _, err := rig.mw.Migrate("ghost", "node1", MigrateOptions{}); err == nil {
		t.Error("unknown tenant: want error")
	}
	if _, err := rig.mw.Migrate("a", "ghost", MigrateOptions{}); err == nil {
		t.Error("unknown node: want error")
	}
	if _, err := rig.mw.Migrate("a", "node0", MigrateOptions{}); err == nil {
		t.Error("same node: want error")
	}
}

func TestCatchupTimeoutAbortsAndServiceContinues(t *testing.T) {
	// A large fsync delay makes the serial B-ALL replay (one fsync per
	// transaction) strictly slower than the master's group-committed
	// arrival rate, so the slave genuinely cannot catch up.
	rig := newRig(t, 2, engine.Options{
		WAL: wal.Options{SyncDelay: 5 * time.Millisecond, Mode: wal.GroupCommit},
	})
	rig.provision(t, "a", 120)

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		// No think time: an unthrottled closed loop that B-ALL cannot
		// catch up with, forcing the N/A path quickly.
		go loadgen(t, rig, "a", w, 0, stop, done)
	}
	time.Sleep(50 * time.Millisecond)
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:       BAll,
		CatchupLag:     1,
		CatchupTimeout: 300 * time.Millisecond,
	})
	if !errors.Is(err, ErrCatchupTimeout) {
		t.Fatalf("got %v, want ErrCatchupTimeout", err)
	}
	if !rep.Failed {
		t.Error("report not marked failed")
	}
	// Service continues on the source.
	tn, _ := rig.mw.Tenant("a")
	node, _ := tn.Node()
	if node.BackendName() != "node0" {
		t.Errorf("tenant moved to %s on failed migration", node.BackendName())
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	total := 0
	for w := 0; w < writers; w++ {
		total += <-done
	}
	if total == 0 {
		t.Error("no commits; service did not continue after failed migration")
	}
	// The partial slave was discarded.
	if _, ok := rig.nodes[1].Engine.Database("a"); ok {
		t.Error("partial slave left on destination")
	}
}

func TestSecondMigrationAfterFirst(t *testing.T) {
	rig := newRig(t, 3, engine.Options{})
	rig.provision(t, "a", 30)
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.mw.Migrate("a", "node2", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatal(err)
	}
	tn, _ := rig.mw.Tenant("a")
	node, _ := tn.Node()
	if node.BackendName() != "node2" {
		t.Errorf("tenant on %s, want node2", node.BackendName())
	}
	c := rig.connect(t, "a")
	defer c.Close()
	res, err := c.Exec("SELECT COUNT(*) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 30 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestOtherTenantUnaffectedByMigration(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 30)
	if err := rig.mw.ProvisionTenant("b", "node0"); err != nil {
		t.Fatal(err)
	}
	cb := rig.connect(t, "b")
	defer cb.Close()
	mustExecAll(t, cb, "CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)")

	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		c := rig.connect(t, "b")
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Exec("SELECT COUNT(*) FROM t"); err != nil {
				errs <- err
				return
			}
		}
	}()
	if _, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Errorf("tenant b disturbed: %v", err)
	}
	// b still lives on node0.
	tnB, _ := rig.mw.Tenant("b")
	node, _ := tnB.Node()
	if node.BackendName() != "node0" {
		t.Errorf("tenant b moved to %s", node.BackendName())
	}
}

func TestTable2CapabilityMatrix(t *testing.T) {
	want := map[Strategy]Capabilities{
		BAll:   {},
		BMin:   {Min: true},
		BCon:   {Min: true, ConFW: true},
		Madeus: {Min: true, ConFW: true, ConCom: true},
	}
	for st, caps := range want {
		if got := st.Capabilities(); got != caps {
			t.Errorf("%s capabilities = %+v, want %+v", st, got, caps)
		}
	}
	if len(Strategies()) != 4 {
		t.Error("Strategies() should list all four")
	}
}
