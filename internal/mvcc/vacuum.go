package mvcc

// Vacuum support: version chains grow with every update (old versions are
// superseded, not removed, and aborted versions linger invisibly until the
// abort-time undo or this pass removes them). Vacuum prunes versions that
// no current or future snapshot can see, bounded by the oldest snapshot
// still held by an active transaction — the same horizon rule PostgreSQL's
// VACUUM uses. Eager state pruning (manager.go) handles the common case;
// Vacuum remains the backstop that also sweeps index entries.

// Horizon returns the oldest snapshot any active transaction holds (or the
// latest CSN when none are active): versions superseded at or before the
// horizon are unreachable.
//
// The watermark is loaded before the stripe scan and Begin reads the
// watermark under its stripe lock, so any transaction the scan misses
// started with a snapshot at or above the returned horizon.
func (m *Manager) Horizon() CSN {
	h := CSN(m.lastCSN.Load())
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		for _, st := range s.states {
			if st.status == StatusActive && st.snap < h {
				h = st.snap
			}
		}
		s.mu.RUnlock()
	}
	return h
}

// Vacuum removes dead versions from the table: versions created by aborted
// transactions, and versions superseded (deleted or overwritten) by a
// transaction that committed at or before the horizon. It returns the
// number of versions removed. Empty chains are kept (their map entries are
// negligible and removing them would race in-flight primary-key lookups).
func (tb *Table) Vacuum(horizon CSN) int {
	removed := 0
	for si := range tb.stripes {
		s := &tb.stripes[si]
		s.mu.Lock()
		chains := make([]*rowChain, 0, len(s.rows))
		for _, ch := range s.rows {
			chains = append(chains, ch)
		}
		s.mu.Unlock()

		for _, ch := range chains {
			ch.mu.Lock()
			kept := ch.versions[:0]
			for i := range ch.versions {
				v := ch.versions[i]
				if tb.dead(&v, horizon) {
					removed++
					continue
				}
				kept = append(kept, v)
			}
			// Zero the tail so dropped rows are collectable.
			for i := len(kept); i < len(ch.versions); i++ {
				ch.versions[i] = version{}
			}
			ch.versions = kept
			ch.mu.Unlock()
		}
	}
	tb.sweepIndexes()
	return removed
}

// dead reports whether no snapshot at or after the horizon can see v.
// FrozenTxn creators report committed (statusOf), so frozen versions are
// only removed once a committed deleter passes the horizon like any other.
func (tb *Table) dead(v *version, horizon CSN) bool {
	cst, ccsn := tb.mgr.statusOf(v.xmin)
	switch cst {
	case StatusAborted:
		return true
	case StatusActive:
		return false
	}
	_ = ccsn
	if v.xmax == 0 {
		return false
	}
	dst, dcsn := tb.mgr.statusOf(v.xmax)
	// Superseded before the horizon: every snapshot ≥ horizon sees the
	// deleter's outcome instead of this version.
	return dst == StatusCommitted && dcsn <= horizon
}
