// Command madeusd runs the Madeus middleware in front of DBMS nodes.
//
// Nodes may be remote dbnode processes (-node name=addr) or booted inside
// this process for a self-contained demo (-localnode name). Tenants are
// registered with -tenant name@node (they must already exist on remote
// nodes; on local nodes and with -provision they are created).
//
//	dbnode -listen 127.0.0.1:7001 &
//	dbnode -listen 127.0.0.1:7002 &
//	madeusd -listen 127.0.0.1:6000 \
//	        -node node0=127.0.0.1:7001 -node node1=127.0.0.1:7002 \
//	        -tenant shop@node0 -provision
//
// Customers then connect to 127.0.0.1:6000 with database "shop"; operators
// drive migrations with cmd/madeusctl.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/engine"
	"madeus/internal/flow"
	"madeus/internal/obs"
	"madeus/internal/wal"
)

type stringList []string

func (s *stringList) String() string     { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var nodes, localNodes, tenants stringList
	var (
		listen    = flag.String("listen", "127.0.0.1:6000", "customer-facing listen address")
		provision = flag.Bool("provision", false, "create tenant databases on their nodes at startup")
		players   = flag.Int("players", 64, "max concurrent propagation players")
		catchup   = flag.Duration("catchup", 2*time.Minute, "catch-up timeout before a migration reports N/A")
		fsync     = flag.Duration("fsync", 2*time.Millisecond, "fsync latency for -localnode engines")
		debugAddr = flag.String("debug", "", "serve /debug/madeus JSON stats on this address (empty: disabled)")
		noFlow    = flag.Bool("no-flow", false, "disable the backpressure/admission layer (flow knobs all zero)")
		history   = flag.Duration("history", time.Second, "per-tenant time-series sampling cadence (negative: disabled)")
	)
	flag.Var(&nodes, "node", "remote DBMS node as name=addr (repeatable)")
	flag.Var(&localNodes, "localnode", "boot an in-process DBMS node with this name (repeatable)")
	flag.Var(&tenants, "tenant", "tenant as name@node (repeatable)")
	flag.Parse()

	// The daemon ships with the calibrated backpressure defaults (bounded
	// SSL, adaptive pacing, watchdog, admission control); individual knobs
	// are retunable at runtime with `madeusctl flow set`.
	fcfg := flow.DefaultConfig()
	if *noFlow {
		fcfg = flow.Config{}
	}
	mw, err := core.New(core.Options{
		ListenAddr:     *listen,
		Players:        *players,
		CatchupTimeout: *catchup,
		Flow:           fcfg,
		HistoryCadence: *history,
	})
	if err != nil {
		fatal(err)
	}
	defer mw.Close()

	for _, spec := range nodes {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -node %q, want name=addr", spec))
		}
		mw.AddNode(&cluster.Remote{Name: name, Addr: addr})
	}
	for _, name := range localNodes {
		n, err := cluster.NewNode(name, cluster.NodeOptions{
			Engine: engine.Options{
				WAL:         wal.Options{SyncDelay: *fsync, Mode: wal.GroupCommit},
				LockTimeout: time.Second,
			},
		})
		if err != nil {
			fatal(err)
		}
		defer n.Close()
		mw.AddNode(n)
		fmt.Printf("madeusd: local node %s at %s\n", name, n.Addr())
	}

	for _, spec := range tenants {
		tenant, node, ok := strings.Cut(spec, "@")
		if !ok {
			fatal(fmt.Errorf("bad -tenant %q, want name@node", spec))
		}
		if *provision {
			err = mw.ProvisionTenant(tenant, node)
		} else {
			err = mw.AddTenant(tenant, node)
		}
		if err != nil {
			fatal(err)
		}
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: obs.Handler(obs.Default, obs.Trace, obs.Hist)}
		//madeusvet:ignore goroleak Serve returns ErrServerClosed when the deferred srv.Close runs at shutdown
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "madeusd: debug server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("madeusd: debug stats at http://%s/debug/madeus\n", ln.Addr())
	}

	fmt.Printf("madeusd listening on %s (tenants: %v)\n", mw.Addr(), mw.Tenants())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("madeusd: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "madeusd:", err)
	os.Exit(1)
}
