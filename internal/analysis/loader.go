package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	Path  string // import path, e.g. madeus/internal/wal
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	// Tagged holds files excluded from the production build by a custom
	// build tag (e.g. `//go:build invariants`). They are parsed but never
	// type-checked; the tagparity analyzer compares their exported
	// surface against the no-tag variants in Files.
	Tagged []TaggedFile

	// Constraints records the //go:build expression of each *included*
	// file that carries one (e.g. the `!faultinject` stub variant); files
	// without constraints are absent.
	Constraints map[*ast.File]constraint.Expr

	// Target marks packages matched by the Load patterns. Dependencies
	// pulled in only so the targets type-check completely are loaded with
	// Target=false and are not returned by Load (they stay in the cache
	// and are reachable through the call graph).
	Target bool

	Types   *types.Package // nil when type-checking failed outright
	Info    *types.Info    // always non-nil after Load; may be partial
	TypeErr error          // first type-checking error, if any

	imports []string // module-internal import paths
	checked bool     // type-check attempted (success or not)
}

// TaggedFile is a parsed file excluded by a custom build tag.
type TaggedFile struct {
	File *ast.File
	Expr constraint.Expr
}

// loaderCache shares parse and type-check work across Load calls in one
// process: each package directory is parsed and type-checked at most once,
// and the stdlib source importer (by far the dominant cost — it compiles
// the imported standard library from source) is built once. madeusvet
// invokes Load once per run, so the cache mostly pays off in the analysis
// test suite, which loads the fixture module dozens of times; CacheStats
// exposes the counters the timing test asserts on.
var loaderCache = struct {
	mu     sync.Mutex
	fset   *token.FileSet
	std    types.ImporterFrom
	byDir  map[string]*Package
	byPath map[string]*Package

	parsed  int // packages parsed (cache misses)
	hits    int // packages served from cache
	checked int // packages type-checked
}{
	fset:   token.NewFileSet(),
	byDir:  make(map[string]*Package),
	byPath: make(map[string]*Package),
}

// CacheStats reports how many package loads were served from the
// process-wide cache versus parsed and type-checked fresh.
func CacheStats() (parsed, cacheHits, typeChecked int) {
	loaderCache.mu.Lock()
	defer loaderCache.mu.Unlock()
	return loaderCache.parsed, loaderCache.hits, loaderCache.checked
}

// Load parses and type-checks the packages matched by patterns, rooted at
// dir (the directory holding go.mod). Patterns follow the go tool's shape:
// "./..." walks everything; "./internal/wal" is one package. Test files are
// skipped, and files excluded by default build tags (notably `invariants`
// and `faultinject`) are parsed but withheld from type-checking — madeusvet
// checks the production build, while tagparity still sees the tagged
// variants.
//
// Module-internal dependencies of the matched packages are loaded and
// type-checked too (once each, shared through a process-wide cache), so a
// narrow `madeusvet ./internal/core` run resolves imports exactly like a
// full `./...` run instead of degrading to AST heuristics. Only the
// pattern-matched packages are returned. Standard-library imports compile
// from stdlib source (go/importer "source" mode), so the loader needs no
// pre-built export data and no external dependencies. A package that fails
// to type-check is still analyzed with whatever partial info was collected.
func Load(dir string, patterns ...string) ([]*Package, error) {
	loaderCache.mu.Lock()
	defer loaderCache.mu.Unlock()

	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			rec, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !rec {
			dirs[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs[filepath.Clean(p)] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var targets []*Package
	var loaded []*Package // targets + dependency closure, this call
	for _, d := range sortedKeys(dirs) {
		pkg, err := loadPackage(d, modRoot, modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.Target = true
			targets = append(targets, pkg)
			loaded = append(loaded, pkg)
		}
	}

	// Pull in the module-internal dependency closure so every target
	// type-checks against real signatures. Dependencies parsed here are
	// cached but not returned.
	queue := append([]*Package(nil), targets...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, ip := range p.imports {
			if loaderCache.byPath[ip] != nil {
				continue
			}
			depDir := filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(ip, modPath+"/")))
			if ip == modPath {
				depDir = modRoot
			}
			dep, err := loadPackage(depDir, modRoot, modPath)
			if err != nil || dep == nil {
				continue // missing dep surfaces as a type error on the importer
			}
			loaded = append(loaded, dep)
			queue = append(queue, dep)
		}
	}

	typeCheck(loaderCache.fset, modPath, loaded)
	return targets, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// loadPackage returns the cached package for dir or parses it fresh.
// Must hold loaderCache.mu.
func loadPackage(dir, modRoot, modPath string) (*Package, error) {
	if p, ok := loaderCache.byDir[dir]; ok {
		loaderCache.hits++
		return p, nil
	}
	pkg, err := parseDir(loaderCache.fset, dir, modRoot, modPath)
	if err != nil || pkg == nil {
		return nil, err
	}
	loaderCache.parsed++
	loaderCache.byDir[dir] = pkg
	loaderCache.byPath[pkg.Path] = pkg
	return pkg, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// parseDir parses the production (non-test) files of one directory, keeping
// default-tag-excluded files aside as Tagged. It returns nil when the
// directory holds no production files.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var tagged []TaggedFile
	constraints := make(map[*ast.File]constraint.Expr)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		expr, satisfied := buildConstraint(string(src))
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if satisfied {
				return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
			}
			continue // a tagged file that does not parse is not our build
		}
		if satisfied {
			files = append(files, f)
			if expr != nil {
				constraints[f] = expr
			}
		} else {
			tagged = append(tagged, TaggedFile{File: f, Expr: expr})
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Drop tagged files that belong to a different package (e.g.
	// `//go:build ignore` tool files with package main).
	pkgName := files[0].Name.Name
	kept := tagged[:0]
	for _, tf := range tagged {
		if tf.File.Name.Name == pkgName {
			kept = append(kept, tf)
		}
	}
	tagged = kept

	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{
		Path:        path,
		Dir:         dir,
		Fset:        fset,
		Files:       files,
		Tagged:      tagged,
		Constraints: constraints,
	}
	for _, f := range files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				pkg.imports = append(pkg.imports, ip)
			}
		}
	}
	return pkg, nil
}

// buildConstraint extracts a file's //go:build (or // +build) expression and
// evaluates it against the default production tag set: GOOS, GOARCH, the
// compiler, and every supported go1.N release tag — and nothing else, so
// files gated on custom tags like `invariants` report satisfied=false.
func buildConstraint(src string) (expr constraint.Expr, satisfied bool) {
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if e, err := constraint.Parse(trimmed); err == nil {
				return e, e.Eval(defaultTag)
			}
			continue
		}
		break // first non-comment, non-blank line: constraints must precede it
	}
	return nil, true
}

func defaultTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler || tag == "unix" {
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		if n, err := strconv.Atoi(rest); err == nil {
			cur := strings.TrimPrefix(runtime.Version(), "go1.")
			if i := strings.IndexByte(cur, '.'); i >= 0 {
				cur = cur[:i]
			}
			if c, err := strconv.Atoi(cur); err == nil {
				return n <= c
			}
		}
	}
	return false
}

// moduleImporter resolves module-internal imports from the loaded package
// set and everything else from stdlib source.
type moduleImporter struct {
	modPath string
	std     types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		p := loaderCache.byPath[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("analysis: internal import %q not loaded", path)
		}
		return p.Types, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// typeCheck type-checks the not-yet-checked packages among pkgs in
// dependency order, sharing the process-wide importer so stdlib packages
// are compiled once. Must hold loaderCache.mu.
func typeCheck(fset *token.FileSet, modPath string, pkgs []*Package) {
	if loaderCache.std == nil {
		loaderCache.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	}
	imp := &moduleImporter{modPath: modPath, std: loaderCache.std}

	// Topological order over module-internal imports (cycles are a compile
	// error anyway; visit order falls back to as-listed).
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return
		}
		state[p.Path] = 1
		for _, dep := range p.imports {
			if d := loaderCache.byPath[dep]; d != nil {
				visit(d)
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	for _, p := range order {
		if p.checked {
			continue
		}
		p.checked = true
		loaderCache.checked++
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if p.TypeErr == nil {
					p.TypeErr = err
				}
			},
		}
		tpkg, err := conf.Check(p.Path, fset, p.Files, info)
		if err != nil && p.TypeErr == nil {
			p.TypeErr = err
		}
		p.Types = tpkg
		p.Info = info
	}
}

// depPackages returns the cached module-internal dependency closure of
// pkgs (excluding pkgs themselves). The call graph uses it so summaries of
// target packages see through calls into their dependencies.
func depPackages(pkgs []*Package) []*Package {
	loaderCache.mu.Lock()
	defer loaderCache.mu.Unlock()
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	var out []*Package
	queue := append([]*Package(nil), pkgs...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, ip := range p.imports {
			if seen[ip] {
				continue
			}
			seen[ip] = true
			if d := loaderCache.byPath[ip]; d != nil {
				out = append(out, d)
				queue = append(queue, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
