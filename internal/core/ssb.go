package core

import "madeus/internal/sqlmini"

// Entry is one captured operation inside an SSB. Entries are held in FIFO
// order (Fig 3): the syncset's first operation, then its writes (or, in
// B-ALL capture mode, every subsequent operation).
type Entry struct {
	SQL   string
	Class sqlmini.OpClass
}

// SSB is a syncset buffer (Fig 3): the captured operations of one
// transaction plus its start timestamp (STS, the MLC at its first
// operation) and end timestamp (ETS, the MLC at its commit).
type SSB struct {
	STS, ETS uint64
	Entries  []Entry

	// update records whether the transaction wrote anything; read-only
	// SSBs are discarded at commit (mapping function, Definition 2) —
	// except under B-ALL capture, which propagates them too.
	update bool

	// propagation state, owned by the conductor.
	started   bool // first operation dispatched to a player
	firstDone bool // first operation completed on the slave
	allDone   bool // writes completed; commit may be ordered
}

// FirstOp returns the first captured operation.
func (b *SSB) FirstOp() Entry {
	if len(b.Entries) == 0 {
		return Entry{}
	}
	return b.Entries[0]
}

// Rest returns the captured operations after the first.
func (b *SSB) Rest() []Entry {
	if len(b.Entries) <= 1 {
		return nil
	}
	return b.Entries[1:]
}

// OpCount is the number of captured operations plus the commit.
func (b *SSB) OpCount() int { return len(b.Entries) + 1 }

// Per-SSB memory accounting used by the flow layer's byte cap: the struct
// itself plus slice headers, rounded up, and each entry's header plus its
// SQL text. Deliberately a slight over-estimate — the cap protects the
// process, so erring high is the safe side.
const (
	ssbOverhead   = 96
	entryOverhead = 32
)

// MemSize estimates the SSB's resident footprint in bytes.
func (b *SSB) MemSize() int64 {
	n := int64(ssbOverhead)
	for _, e := range b.Entries {
		n += entryOverhead + int64(len(e.SQL))
	}
	return n
}
