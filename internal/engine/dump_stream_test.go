package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestDumpStreamMatchesDump: the chunked iterator must yield exactly the
// monolithic dump's statement sequence, for every chunk size.
func TestDumpStreamMatchesDump(t *testing.T) {
	e := newTestEngine(t)
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, s, "CREATE INDEX t_name ON t (name)")
	for i := 0; i < 25; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO t (id, name) VALUES (%d, 'n%d')", i, i))
	}
	mustExec(t, s, "CREATE TABLE u (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO u (id) VALUES (1), (2)")

	want, err := s.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{1, 2, 7, 64, 0} {
		var got []string
		var sizes []int
		total, err := s.DumpStream(chunkSize, func(stmts []string) error {
			got = append(got, stmts...)
			sizes = append(sizes, len(stmts))
			return nil
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunkSize, err)
		}
		if total != len(got) {
			t.Errorf("chunk %d: total %d, sunk %d", chunkSize, total, len(got))
		}
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("chunk %d: stream differs from Dump:\n got %v\nwant %v", chunkSize, got, want)
		}
		for i, n := range sizes {
			if chunkSize > 0 && n > chunkSize {
				t.Errorf("chunk %d: batch %d has %d stmts", chunkSize, i, n)
			}
		}
		if chunkSize <= 0 && len(sizes) != 1 {
			t.Errorf("unbounded stream made %d chunks, want 1", len(sizes))
		}
	}
}

// TestDumpStreamSinkError: a failing sink stops the scan and surfaces the
// error without wedging the session.
func TestDumpStreamSinkError(t *testing.T) {
	e := newTestEngine(t)
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t (id) VALUES (1), (2), (3), (4)")

	boom := errors.New("sink refused")
	calls := 0
	_, err := s.DumpStream(1, func(stmts []string) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if calls != 2 {
		t.Fatalf("sink called %d times after error, want 2", calls)
	}
	// The session stays usable.
	mustExec(t, s, "SELECT id FROM t")
}

// TestDumpStreamSnapshot: inside a transaction the stream sees the pinned
// snapshot, not concurrent updates.
func TestDumpStreamSnapshot(t *testing.T) {
	e := newTestEngine(t)
	s, _ := e.NewSession("shop")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 1)")
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "SELECT v FROM t") // pin the snapshot

	other, _ := e.NewSession("shop")
	mustExec(t, other, "UPDATE t SET v = 99 WHERE id = 1")

	var got []string
	if _, err := s.DumpStream(8, func(stmts []string) error {
		got = append(got, stmts...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "COMMIT")
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "(1, 1)") || strings.Contains(joined, "99") {
		t.Errorf("stream leaked concurrent update: %v", got)
	}
}

// TestExecStreamMeta: the DUMP STREAM meta command streams chunks through
// ExecStream and reports the statement total in its tag, while plain Exec
// falls back to a full single-result dump for non-streaming transports.
func TestExecStreamMeta(t *testing.T) {
	s := newShopSession(t)
	for i := 0; i < 10; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO items (id, title, cost, stock) VALUES (%d, 't', 1, 1)", i))
	}

	var chunks [][]string
	res, handled, err := s.ExecStream("DUMP STREAM 1", func(stmts []string) error {
		cp := make([]string, len(stmts))
		copy(cp, stmts)
		chunks = append(chunks, cp)
		return nil
	})
	if err != nil || !handled {
		t.Fatalf("ExecStream: handled=%v err=%v", handled, err)
	}
	total := 0
	for _, c := range chunks {
		if len(c) > 1 {
			t.Errorf("chunk of %d stmts, want <= 1", len(c))
		}
		total += len(c)
	}
	if want := fmt.Sprintf("DUMP STREAM %d", total); res.Tag != want {
		t.Errorf("tag = %q, want %q", res.Tag, want)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}

	// Non-stream statements are not handled.
	if _, handled, err := s.ExecStream("SELECT id FROM items", nil); handled || err != nil {
		t.Fatalf("SELECT: handled=%v err=%v", handled, err)
	}

	// Plain Exec path: full dump as one result (relay fallback).
	res = mustExec(t, s, "DUMP STREAM 1")
	if len(res.Rows) != total {
		t.Errorf("fallback rows = %d, want %d", len(res.Rows), total)
	}
	if !strings.HasPrefix(res.Tag, "DUMP ") {
		t.Errorf("fallback tag = %q", res.Tag)
	}

	// Bad chunk sizes are usage errors.
	for _, bad := range []string{"DUMP STREAM 0", "DUMP STREAM -1", "DUMP STREAM x", "DUMP STREAM 1 2"} {
		if _, _, err := s.ExecStream(bad, func([]string) error { return nil }); err == nil {
			t.Errorf("%q: want usage error", bad)
		}
	}
}
