package sqlmini

import "testing"

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(8)
	sql := "SELECT id FROM t WHERE id = 1"
	if _, ok := c.Get(sql); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(sql, mustParse(t, sql))
	if _, ok := c.Get(sql); !ok {
		t.Fatal("miss after Put")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Fatalf("Stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	a := "SELECT id FROM t WHERE id = 1"
	b := "SELECT id FROM t WHERE id = 2"
	d := "SELECT id FROM t WHERE id = 3"
	c.Put(a, mustParse(t, a))
	c.Put(b, mustParse(t, b))
	// Touch a so b becomes the LRU entry.
	if _, ok := c.Get(a); !ok {
		t.Fatal("a should be cached")
	}
	c.Put(d, mustParse(t, d))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(b); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get(d); !ok {
		t.Error("d should be cached (just inserted)")
	}
}

func TestCacheDDLNotCached(t *testing.T) {
	c := NewCache(8)
	for _, sql := range []string{
		"CREATE TABLE t (id INT PRIMARY KEY)",
		"DROP TABLE t",
		"CREATE INDEX idx ON t (id)",
		"DROP INDEX idx ON t",
	} {
		c.Put(sql, mustParse(t, sql))
		if _, ok := c.Get(sql); ok {
			t.Errorf("DDL %q was cached", sql)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCacheInvalidateTable(t *testing.T) {
	c := NewCache(16)
	stmts := map[string]string{
		"SELECT id FROM t WHERE id = 1":   "t",
		"UPDATE t SET v = 2 WHERE id = 1": "t",
		"SELECT id FROM u WHERE id = 1":   "u",
		"BEGIN":                           "",
	}
	for sql := range stmts {
		c.Put(sql, mustParse(t, sql))
	}
	if n := c.InvalidateTable("t"); n != 2 {
		t.Fatalf("InvalidateTable(t) = %d, want 2", n)
	}
	for sql, table := range stmts {
		_, ok := c.Get(sql)
		if table == "t" && ok {
			t.Errorf("%q survived invalidation of t", sql)
		}
		if table != "t" && !ok {
			t.Errorf("%q was wrongly flushed", sql)
		}
	}
}

func TestCacheNilIsDisabled(t *testing.T) {
	var c *Cache
	if c != NewCache(0) || c != NewCache(-1) {
		t.Fatal("NewCache(<=0) should return nil")
	}
	c.Put("BEGIN", mustParse(t, "BEGIN"))
	if _, ok := c.Get("BEGIN"); ok {
		t.Error("nil cache returned a hit")
	}
	if c.InvalidateTable("t") != 0 || c.Len() != 0 {
		t.Error("nil cache should report zero everywhere")
	}
	c.Reset()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4)
	sql := "SELECT id FROM t WHERE id = 1"
	c.Put(sql, mustParse(t, sql))
	c.Get(sql)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("counters should survive Reset, got %+v", st)
	}
}
