package sqlmini

import "sync"

// Cache is a bounded LRU parse cache keyed on exact statement text — the
// C-JDBC trick for middleware-side statement processing: the TPC-W mix
// draws its literals from bounded id domains, so hot statements repeat
// verbatim and the lexer/parser drop out of the per-statement path.
//
// Cached statements are shared across sessions and MUST be treated as
// immutable by execution (the engine's evaluators only read the AST; the
// race-enabled concurrent-execution test pins this). DDL on a table
// invalidates every cached statement targeting it.
//
// A nil *Cache is valid and means "caching disabled": every method is a
// cheap no-op, which is how the hotpath ablation runs its baseline leg.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key        string
	st         Statement
	table      string // target table, for DDL invalidation; "" when none
	prev, next *cacheEntry
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	Len    int
}

// NewCache returns a parse cache bounded to capacity entries, or nil
// (caching disabled) when capacity <= 0.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, entries: make(map[string]*cacheEntry, capacity)}
}

// Get returns the cached parse of sql, promoting the entry to most
// recently used.
func (c *Cache) Get(sql string) (Statement, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[sql]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	st := e.st
	c.mu.Unlock()
	return st, true
}

// Put caches the parse of sql, evicting the least recently used entry at
// capacity. DDL statements are never cached: they run once, and caching
// them would complicate their own invalidation story for no win.
func (c *Cache) Put(sql string, st Statement) {
	if c == nil || !cacheable(st) {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[sql]; ok {
		e.st = st
		e.table = TargetTable(st)
		c.moveToFront(e)
		c.mu.Unlock()
		return
	}
	e := &cacheEntry{key: sql, st: st, table: TargetTable(st)}
	c.entries[sql] = e
	c.pushFront(e)
	if len(c.entries) > c.cap {
		lru := c.tail
		c.remove(lru)
		delete(c.entries, lru.key)
	}
	c.mu.Unlock()
}

// InvalidateTable drops every cached statement targeting the named table.
// Called by DDL execution (CREATE/DROP TABLE, CREATE/DROP INDEX).
func (c *Cache) InvalidateTable(table string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := 0
	for key, e := range c.entries {
		if e.table == table {
			c.remove(e)
			delete(c.entries, key)
			n++
		}
	}
	c.mu.Unlock()
	return n
}

// Reset empties the cache (counters survive).
func (c *Cache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries = make(map[string]*cacheEntry, c.cap)
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

// Stats returns hit/miss counters and the current size.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Len: len(c.entries)}
}

// Len reports the number of cached statements.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) remove(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// cacheable reports whether a statement kind may be cached. DML and
// transaction control repeat; DDL does not.
func cacheable(st Statement) bool {
	switch st.(type) {
	case *CreateTable, *DropTable, *CreateIndex, *DropIndex:
		return false
	case nil:
		return false
	}
	return true
}

// TargetTable returns the table a statement reads or writes ("" for
// statements without one, e.g. BEGIN). Used for cache invalidation.
func TargetTable(st Statement) string {
	switch st := st.(type) {
	case *Insert:
		return st.Table
	case *Select:
		return st.Table
	case *Update:
		return st.Table
	case *Delete:
		return st.Table
	case *CreateTable:
		return st.Table
	case *DropTable:
		return st.Table
	case *CreateIndex:
		return st.Table
	case *DropIndex:
		return st.Table
	}
	return ""
}
