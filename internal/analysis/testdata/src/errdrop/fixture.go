// Package errdrop exercises the errdrop analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package errdrop

import (
	"errors"
	"strings"
)

type store struct{ dirty bool }

// Commit is a risky-verb method returning an error.
func (s *store) Commit() error {
	if s.dirty {
		return errors.New("dirty")
	}
	return nil
}

// Flush returns no error; the type checker clears it despite the verb.
func (s *store) Flush() {}

// Lookup has no risky verb in its name.
func (s *store) Lookup() error { return nil }

// dropsCommit silently discards the commit error.
func dropsCommit(s *store) {
	s.Commit() // want
}

// dropsIgnored documents the discard with a suppression directive; the
// finding must be suppressed.
func dropsIgnored(s *store) {
	//madeusvet:ignore errdrop fixture: documented best-effort site
	s.Commit()
}

// explicitDiscard uses the accepted `_ =` form.
func explicitDiscard(s *store) {
	_ = s.Commit()
}

// handled checks the error.
func handled(s *store) error {
	if err := s.Commit(); err != nil {
		return err
	}
	return nil
}

// flushNoError calls a risky-named method that returns nothing.
func flushNoError(s *store) {
	s.Flush()
}

// lookupDropped drops an error, but not on a risky path.
func lookupDropped(s *store) {
	s.Lookup()
}

// builderWrites hits the infallible-writer exemption.
func builderWrites() string {
	var b strings.Builder
	b.WriteString("hello")
	b.WriteByte(' ')
	return b.String()
}
