package sqlmini

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewText("abc"), "'abc'"},
		{NewText("it's"), "'it''s'"},
		{NewText(""), "''"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null not null")
	}
	if NewInt(0).IsNull() {
		t.Error("0 is null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("int: %v %v", f, ok)
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("float: %v %v", f, ok)
	}
	if _, ok := NewText("x").AsFloat(); ok {
		t.Error("text converted")
	}
	if _, ok := NewBool(true).AsFloat(); ok {
		t.Error("bool converted")
	}
}

func TestValueCompare(t *testing.T) {
	type cmp struct {
		a, b Value
		want int
	}
	cases := []cmp{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewInt(2), NewFloat(2.5), -1}, // mixed numeric
		{NewFloat(2.5), NewInt(2), 1},
		{NewText("a"), NewText("b"), -1},
		{NewText("b"), NewText("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{Null(), Null(), 0},
		{Null(), NewInt(1), -1},
		{NewInt(1), Null(), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Incomparable kinds.
	if _, err := NewText("a").Compare(NewInt(1)); err == nil {
		t.Error("text vs int: want error")
	}
	if _, err := NewBool(true).Compare(NewFloat(1)); err == nil {
		t.Error("bool vs float: want error")
	}
}

// TestPropertyCompareAntisymmetric: Compare(a,b) == -Compare(b,a) for
// comparable values, and Compare is transitive on integers.
func TestPropertyCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := []Value{
			NewInt(rng.Int63n(10) - 5),
			NewFloat(rng.Float64()*10 - 5),
			Null(),
		}
		a, b := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
		ab, err1 := a.Compare(b)
		ba, err2 := b.Compare(a)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // errors must be symmetric
		}
		return ab == -ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTextLiteralRoundTrip: any string rendered as a SQL literal
// lexes back to the same string.
func TestPropertyTextLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// The lexer works on byte strings without newlines in literals;
		// quoteSQL handles quotes only, so restrict to no-NUL inputs
		// (NUL is fine actually; allow everything).
		lit := NewText(s).String()
		toks, err := Lex(lit)
		if err != nil {
			return false
		}
		return len(toks) == 2 && toks[0].Kind == TokString && toks[0].Text == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueKindString(t *testing.T) {
	for k, want := range map[ValueKind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindText: "TEXT", KindBool: "BOOL",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}
