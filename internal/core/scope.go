package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/fault"
	"madeus/internal/flow"
	"madeus/internal/obs"
)

// Scraper is the optional observability capability of a Backend: pulling
// the node's registry snapshot and event-ring tail. Kept out of the
// Backend interface itself so test doubles that only route queries keep
// compiling; the timeline merger just skips backends without it. Both
// cluster backend flavors implement it — the in-process Node directly,
// the Remote over the wire's MsgObsScrape op.
type Scraper interface {
	ScrapeObs(since uint64, tenant string, maxEvents int) (*obs.RemoteSnapshot, error)
}

var (
	_ Scraper = (*cluster.Node)(nil)
	_ Scraper = (*cluster.Remote)(nil)
)

// localSource labels the middleware's own events in merged timelines.
const localSource = "madeusd"

// Trace event names emitted by the timeline/flight machinery.
const (
	obsEvScrapeError   = "scrape.error"
	obsEvFlightCapture = "flight.capture"
)

// Timeline builds one merged cross-process timeline for a tenant: the
// middleware's own trace tail plus every scrapable node's, each remote
// event annotated with its source and an estimated clock skew (measured
// against the scrape round trip, midpoint method) and ordered on the
// middleware's clock. Nodes sharing an already-merged scope — in-process
// nodes using the process globals — are deduplicated by instance ID, so
// a timeline never shows the same event twice. A node that fails to
// scrape contributes a synthetic error event instead of aborting the
// merge: a half-dead cluster is exactly when the timeline matters.
func (m *Middleware) Timeline(tenant string, maxEvents int) []obs.TimelineEvent {
	if maxEvents <= 0 {
		maxEvents = obs.DefaultTracerCap
	}
	local := obs.Trace.Since(0, tenant)
	if len(local) > maxEvents {
		local = local[len(local)-maxEvents:]
	}
	out := make([]obs.TimelineEvent, 0, len(local))
	for _, e := range local {
		out = append(out, obs.TimelineEvent{Source: localSource, Event: e})
	}
	seen := map[string]bool{obs.Instance(): true}

	m.mu.RLock()
	names := make([]string, 0, len(m.nodes))
	nodes := make(map[string]Backend, len(m.nodes))
	for name, n := range m.nodes {
		names = append(names, name)
		nodes[name] = n
	}
	m.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		sc, ok := nodes[name].(Scraper)
		if !ok {
			continue
		}
		t0 := time.Now()
		snap, err := sc.ScrapeObs(0, tenant, maxEvents)
		rtt := time.Since(t0)
		if err != nil {
			out = append(out, obs.TimelineEvent{Source: name, Event: obs.Event{
				At: time.Now(), Tenant: tenant, Name: obsEvScrapeError,
				Fields: []obs.Field{obs.F("err", err)},
			}})
			continue
		}
		if seen[snap.Instance] {
			continue // shares a scope already merged (in-process node)
		}
		seen[snap.Instance] = true
		// Midpoint skew estimate: the remote stamped snap.Now somewhere
		// inside our [t0, t0+rtt] window; assume the middle. Positive skew
		// means the remote clock runs ahead of ours.
		skew := snap.Now.Sub(t0.Add(rtt / 2))
		for _, e := range snap.Events {
			out = append(out, obs.TimelineEvent{Source: name, Skew: skew, Event: e})
		}
	}
	return obs.MergeTimeline(out)
}

// --- history sampler ---

// SetHistoryCadence retunes the sampler interval at runtime (the admin
// HISTORY CADENCE command). Zero or negative pauses sampling; the loop
// keeps polling at a slow idle rate so a later re-enable takes effect
// without restarting the middleware.
func (m *Middleware) SetHistoryCadence(d time.Duration) {
	m.sampleCadence.Store(int64(d))
}

// HistoryCadence reports the current sampler interval.
func (m *Middleware) HistoryCadence() time.Duration {
	return time.Duration(m.sampleCadence.Load())
}

// sampleLoop drives the history sampler until Close. One reused timer —
// the cadence is re-read every cycle so HISTORY CADENCE retunes a live
// loop.
func (m *Middleware) sampleLoop() {
	defer close(m.sampleDone)
	// While sampling is disabled (cadence <= 0) the loop still wakes at a
	// slow idle rate to notice a re-enable.
	const idlePoll = 250 * time.Millisecond
	next := func() time.Duration {
		if d := time.Duration(m.sampleCadence.Load()); d > 0 {
			return d
		}
		return idlePoll
	}
	timer := time.NewTimer(next())
	defer timer.Stop()
	for {
		select {
		case <-m.sampleStop:
			return
		case <-timer.C:
			m.sampleOnce(time.Now())
			timer.Reset(next())
		}
	}
}

// sampleOnce records one Sample per tenant into the process history. The
// disabled-obs (and paused-cadence) path returns before touching any
// tenant, keeping the idle cost of the sampler a couple of atomic loads.
func (m *Middleware) sampleOnce(now time.Time) {
	if !obs.On() || m.sampleCadence.Load() <= 0 {
		return
	}
	m.mu.RLock()
	tenants := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.RUnlock()
	for _, t := range tenants {
		mon := t.Monitor()
		obs.Hist.Record(t.Name, obs.Sample{
			At:        now,
			Lag:       int64(mon.Lag),
			Debt:      int64(mon.Debt),
			Ops:       t.ops.Load(),
			PaceDelay: mon.PaceDelay,
			SSLBytes:  mon.SSLBytes,
			Sessions:  t.sessions.Load(),
		})
	}
}

// --- flight recorder ---

// captureFlight freezes a diagnostic bundle at the moment a migration
// died: the failing report's identity and rollback cause, the tenant's
// live monitor, the flow layer's counters, the armed fault sites, the
// migration's event tail, the full registry, and the tenant's recent
// history curve. Called from Migrate's fail path — which covers every
// abort flavor (step failures, watchdog deadline/stall, SSL overflow) —
// after the report's Timeline is populated.
func (m *Middleware) captureFlight(t *Tenant, rep *Report, step string, cause error) {
	if !obs.On() {
		return
	}
	mon := t.Monitor()
	detail := []obs.Field{
		obs.F("step", step),
		obs.F("err", cause),
		obs.F("source", rep.Source),
		obs.F("dest", rep.Dest),
		obs.F("strategy", rep.Strategy),
		obs.F("mts", rep.MTS),
		obs.F("span", rep.Span),
		obs.F("node", mon.Node),
		obs.F("mlc", mon.MLC),
		obs.F("lag", mon.Lag),
		obs.F("debt", mon.Debt),
		obs.F("ssl_depth", mon.SSLDepth),
		obs.F("ssl_bytes", mon.SSLBytes),
		obs.F("pace_delay", mon.PaceDelay),
		obs.F("active_txns", mon.ActiveTxns),
		obs.F("flow.sessions", flow.Sessions()),
		obs.F("flow.sheds", flow.Sheds()),
		obs.F("flow.stalls", flow.Stalls()),
		obs.F("flow.deadline_aborts", flow.DeadlineAborts()),
		obs.F("flow.ssl_overflows", flow.Overflows()),
	}
	if fault.Enabled {
		detail = append(detail, obs.F("fault.sites", strings.Join(fault.List(), ",")))
	}
	id := obs.Flight.Capture(obs.Bundle{
		Tenant:  t.Name,
		Reason:  fmt.Sprintf("rollback at %s: %v", step, cause),
		Detail:  detail,
		Events:  rep.Timeline,
		Metrics: obs.Default.Snapshot(),
		History: obs.Hist.Last(t.Name, 128),
	})
	if id > 0 {
		obs.Trace.Emit(t.Name, obsEvFlightCapture,
			obs.F("bundle", id), obs.F("step", step))
	}
}
