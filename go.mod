module madeus

go 1.22
