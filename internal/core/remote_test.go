package core

import (
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
)

// TestMigrateBetweenRemoteBackends drives a migration where the middleware
// knows the nodes only by wire address (cluster.Remote) — the deployment
// shape of cmd/madeusd with separate dbnode processes.
func TestMigrateBetweenRemoteBackends(t *testing.T) {
	// The "remote" nodes: in-process servers reached purely by address.
	var remotes []*cluster.Remote
	for i := 0; i < 2; i++ {
		n, err := cluster.NewNode("ignored", cluster.NodeOptions{Engine: engine.Options{}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		remotes = append(remotes, &cluster.Remote{Name: nodeName(i), Addr: n.Addr()})
	}

	mw, err := New(Options{CatchupTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	for _, r := range remotes {
		mw.AddNode(r)
	}

	if err := mw.ProvisionTenant("shop", "node0"); err != nil {
		t.Fatal(err)
	}
	c, err := remotes[0].Connect("shop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	rep, err := mw.Migrate("shop", "node1", MigrateOptions{Strategy: Madeus})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if rep.Source != "node0" || rep.Dest != "node1" {
		t.Errorf("report source/dest = %s/%s", rep.Source, rep.Dest)
	}

	// The tenant now answers on node1, and node0's copy is gone.
	c1, err := remotes[1].Connect("shop")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	res, err := c1.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("count on dest = %v", res.Rows[0][0])
	}
	if _, err := remotes[0].Connect("shop"); err == nil {
		t.Error("source copy still answering after migration")
	}
}

func nodeName(i int) string {
	return map[int]string{0: "node0", 1: "node1"}[i]
}
