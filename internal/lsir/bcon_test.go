package lsir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyBConScheduleValidAndConsistent: B-CON's stricter rule also
// satisfies the LSIR and replays consistently — it is correct, just devoid
// of commit concurrency.
func TestPropertyBConScheduleValidAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultGenConfig()
		cfg.Txns = 5 + rng.Intn(15)
		h := Generate(rng, cfg)
		sets := MapHistory(h)
		sched := BConSchedule(sets)
		if err := CheckLSIR(h, sched); err != nil {
			t.Logf("history: %s", h)
			t.Logf("CheckLSIR: %v", err)
			return false
		}
		if err := Replay(h, sched); err != nil {
			t.Logf("Replay: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBConCommitsStrictlyInMasterOrder: the commit subsequence of a B-CON
// schedule equals the master's commit order.
func TestBConCommitsStrictlyInMasterOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		h := Generate(rng, DefaultGenConfig())
		sets := MapHistory(h)
		sched := BConSchedule(sets)
		var commits []int
		for _, op := range sched.Ops {
			if op.Kind == OpCommit {
				commits = append(commits, op.Txn)
			}
		}
		// Master commit order of mapped txns = ETS order = sets order.
		if len(commits) != len(sets) {
			t.Fatalf("trial %d: %d commits, want %d", trial, len(commits), len(sets))
		}
		for i, ss := range sets {
			if commits[i] != ss.Txn {
				t.Fatalf("trial %d: commit %d is T%d, want T%d", trial, i, commits[i], ss.Txn)
			}
		}
	}
}

// TestMadeusBatchesWhereBConCannot quantifies the LSIR's relaxation on the
// Appendix-C example: the Madeus schedule groups c_i and c_j; B-CON's has
// no group at all (every commit alone).
func TestMadeusBatchesWhereBConCannot(t *testing.T) {
	sets := MapHistory(appendixCHistory())
	batches := CommitBatches(sets)
	if len(batches) != 2 || batches[0] != 2 {
		t.Errorf("Madeus batches = %v, want [2 1]", batches)
	}
	// B-CON: same first-read/write concurrency, but its commit stream is
	// serial by construction; verify by checking adjacency in the
	// schedule: between any two commits there is a response boundary
	// (modeled here simply as: commits never form groups — the
	// propagation layer enforces it; the model's guarantee is ordering,
	// tested above).
	sched := BConSchedule(sets)
	if err := CheckLSIR(appendixCHistory(), sched); err != nil {
		t.Errorf("B-CON on appendix C: %v", err)
	}
}
