// Package invariantcall exercises the invariantcall analyzer: each line
// marked `// want` must produce exactly one finding; unmarked lines none.
package invariantcall

import (
	"fixture/internal/fault"
	"fixture/internal/invariant"
)

func expensive() bool { return true }

func checker() func() error { return func() error { return nil } }

type state struct {
	items []int
	n     uint32
}

// eagerAssert evaluates a real call in the condition of every production
// hit — the analyzer must flag the inner call.
func eagerAssert(s *state) {
	invariant.Assert(expensive(), "state consistent") // want
}

// eagerAssertf does the same through Assertf's condition.
func eagerAssertf(s *state) {
	invariant.Assertf(expensive(), "state consistent: %d", s.n) // want
}

// eagerCheck passes a call RESULT to Check, evaluating checker() eagerly.
func eagerCheck() {
	invariant.Check(checker()) // want
}

// cheapAssert uses only builtins and type conversions — allowed.
func cheapAssert(s *state) {
	invariant.Assert(len(s.items) > 0, "items present")
	invariant.Assertf(uint64(s.n) < 1<<32, "n fits: %d", s.n)
	invariant.Assertf(min(len(s.items), cap(s.items)) >= 0, "lengths sane")
}

// deferredCheck passes a func literal — the sanctioned shape for expensive
// verification.
func deferredCheck(s *state) {
	invariant.Check(func() error { return verify(s) })
}

func verify(s *state) error { return nil }

func siteName(step int) string { return "step" }

// errOutOfRange is what the config fixtures return on a failed range check.
var errOutOfRange error

const faultSiteOK = "core.step1.dump"

// eagerFaultSite builds the site name with a call on every production hit
// of the failpoint — the analyzer must flag the inner call.
func eagerFaultSite(step int) {
	_ = fault.Inject(siteName(step)) // want
}

// constFaultSite uses a precomputed constant (concatenation of constants
// included) — allowed.
func constFaultSite() {
	_ = fault.Inject(faultSiteOK)
	_ = fault.Inject("core." + "step2.restore")
}

// A //madeusvet:knobs block: constants nothing in the package reads are
// flagged; referenced ones pass.

//madeusvet:knobs
const (
	defaultWiredKnob  = 10
	defaultOrphanKnob = 20 // want
)

// An unmarked const block may hold unreferenced constants freely.
const unmarkedUnused = 30

var knobSink = defaultWiredKnob

// goodConfig's Validate touches every field — no findings.

//madeusvet:config
type goodConfig struct {
	Low  int
	High int
}

func (c goodConfig) Validate() error {
	if c.Low < 0 || c.High < c.Low {
		return errOutOfRange
	}
	return nil
}

// holeyConfig's Validate checks Low but never mentions Skipped — the
// unvalidated field is flagged at its declaration.

//madeusvet:config
type holeyConfig struct {
	Low     int
	Skipped int // want
}

func (c *holeyConfig) Validate() error {
	if c.Low < 0 {
		return errOutOfRange
	}
	return nil
}

// orphanConfig carries the directive but has no Validate method at all.

//madeusvet:config
type orphanConfig struct { // want
	Low int
}

// plainStruct has no directive: no Validate required.
type plainStruct struct {
	Whatever int
}
