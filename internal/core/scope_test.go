package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/obs"
	"madeus/internal/testutil"
	"madeus/internal/wire"
)

// newScopedRig is newRig with a private observability scope per node, so
// node-side trace events land in per-node rings and the middleware must
// actually scrape them over the backend — the same shape as separate
// dbnode processes.
func newScopedRig(t *testing.T, nNodes int) *testRig {
	t.Helper()
	testutil.CheckGoroutines(t)
	mw, err := New(Options{CatchupTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	rig := &testRig{mw: mw}
	for i := 0; i < nNodes; i++ {
		name := fmt.Sprintf("node%d", i)
		n, err := cluster.NewNode(name, cluster.NodeOptions{
			Engine: engine.Options{},
			Scope:  obs.NewScope("scope-" + name),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		mw.AddNode(n)
		rig.nodes = append(rig.nodes, n)
	}
	return rig
}

// TestClusterTraceMergedTimeline migrates a tenant across nodes with
// private scopes and checks `madeusctl trace`'s data source: one merged
// timeline where the middleware's Step 1-4 spans and the dbnode-side wire
// events share the migration's MTS and span.
func TestClusterTraceMergedTimeline(t *testing.T) {
	rig := newScopedRig(t, 2)
	tenant := "scopetrace"
	rig.provision(t, tenant, 100)

	rep, err := rig.mw.Migrate(tenant, "node1", MigrateOptions{Strategy: Madeus})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MTS == 0 || rep.Span == 0 {
		t.Fatalf("report carries MTS=%d span=%d, want both nonzero", rep.MTS, rep.Span)
	}

	tl := rig.mw.Timeline(tenant, 0)
	if len(tl) == 0 {
		t.Fatal("empty merged timeline after a migration")
	}

	bySource := map[string]int{}
	steps := map[string]bool{}
	mtsWant := fmt.Sprint(rep.MTS)
	spanWant := fmt.Sprint(rep.Span)
	remoteStamped := 0
	for _, te := range tl {
		bySource[te.Source]++
		if te.Source == localSource {
			steps[te.Event.Name] = true
			continue
		}
		// Remote wire events must carry this migration's identity.
		fields := map[string]string{}
		for _, f := range te.Event.Fields {
			fields[f.Key] = f.Value
		}
		if !strings.HasPrefix(te.Event.Name, "wire.") {
			t.Fatalf("unexpected remote event %q from %s", te.Event.Name, te.Source)
		}
		if fields["mts"] == mtsWant && fields["span"] == spanWant {
			remoteStamped++
		}
	}
	for _, want := range []string{"migrate.begin", "step1.mts", "step2.restore", "step3.propagate", "step4.switchover", "migrate.end"} {
		if !steps[want] {
			t.Fatalf("middleware timeline missing %q; have %v", want, steps)
		}
	}
	// The destination always sees traced work (restore and catch-up happen
	// after the MTS is fixed).
	if bySource["node1"] == 0 {
		t.Fatalf("no events scraped from the destination node; sources: %v", bySource)
	}
	if remoteStamped == 0 {
		t.Fatalf("no remote event stamped with mts=%s span=%s; sources: %v", mtsWant, spanWant, bySource)
	}

	// Merged order: sorted on the middleware clock (skew-adjusted).
	for i := 1; i < len(tl); i++ {
		if tl[i].AdjustedAt().Before(tl[i-1].AdjustedAt()) {
			t.Fatalf("timeline out of order at %d: %v after %v", i, tl[i-1], tl[i])
		}
	}
}

// TestTimelineDedupsSharedScope: in-process nodes on the process scope
// would be scraped back as the middleware's own events; the instance-ID
// dedup must drop them so nothing appears twice.
func TestTimelineDedupsSharedScope(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	tenant := "scopededup"
	rig.provision(t, tenant, 20)
	if _, err := rig.mw.Migrate(tenant, "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatal(err)
	}
	tl := rig.mw.Timeline(tenant, 0)
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	seen := map[string]bool{}
	for _, te := range tl {
		if te.Source != localSource {
			t.Fatalf("process-scope node leaked through dedup as source %q", te.Source)
		}
		key := fmt.Sprintf("%s/%d", te.Source, te.Event.Seq)
		if seen[key] {
			t.Fatalf("duplicate event %s in merged timeline", key)
		}
		seen[key] = true
	}
}

// failingScraper is a Backend whose scrape always fails: the timeline must
// degrade to a synthetic error event, not abort.
type failingScraper struct{ Backend }

func (failingScraper) ScrapeObs(uint64, string, int) (*obs.RemoteSnapshot, error) {
	return nil, errors.New("scrape boom")
}

func TestTimelineScrapeErrorIsSynthetic(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	tenant := "scopeerr"
	rig.provision(t, tenant, 10)
	rig.mw.AddNode(failingScraper{Backend: rig.nodes[0]})

	found := false
	for _, te := range rig.mw.Timeline(tenant, 0) {
		if te.Event.Name == obsEvScrapeError {
			found = true
			if len(te.Event.Fields) == 0 || !strings.Contains(te.Event.Fields[0].Value, "scrape boom") {
				t.Fatalf("synthetic event lacks the cause: %v", te.Event)
			}
		}
	}
	if !found {
		t.Fatal("failing scraper produced no synthetic scrape.error event")
	}
}

// TestHistorySampler checks the middleware's sampling loop end to end:
// per-tenant samples appear at the configured cadence, pause and resume
// with HISTORY CADENCE retunes, and vanish with the tenant.
func TestHistorySampler(t *testing.T) {
	testutil.CheckGoroutines(t)
	mw, err := New(Options{CatchupTimeout: 30 * time.Second, HistoryCadence: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	n, err := cluster.NewNode("node0", cluster.NodeOptions{Engine: engine.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	mw.AddNode(n)

	tenant := "scopehist"
	if err := mw.ProvisionTenant(tenant, "node0"); err != nil {
		t.Fatal(err)
	}
	defer obs.Hist.Drop(tenant)
	c, err := wire.Dial(mw.Addr(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := obs.Hist.Last(tenant, -1); len(s) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler recorded no samples within 5s at 10ms cadence")
		}
		time.Sleep(5 * time.Millisecond)
	}
	last := obs.Hist.Last(tenant, 1)[0]
	if last.Ops < 1 {
		t.Fatalf("sample has Ops=%d, want >=1 (the CREATE TABLE)", last.Ops)
	}
	if last.Sessions < 1 {
		t.Fatalf("sample has Sessions=%d, want >=1 (open client)", last.Sessions)
	}

	// Pause: counts must stop growing (allow one in-flight tick).
	mw.SetHistoryCadence(-1)
	if got := mw.HistoryCadence(); got != -1 {
		t.Fatalf("HistoryCadence() = %v after retune", got)
	}
	time.Sleep(50 * time.Millisecond)
	n1 := len(obs.Hist.Last(tenant, -1))
	time.Sleep(150 * time.Millisecond)
	if n2 := len(obs.Hist.Last(tenant, -1)); n2 > n1 {
		t.Fatalf("paused sampler still recording: %d -> %d samples", n1, n2)
	}

	// Resume through the idle poll.
	mw.SetHistoryCadence(10 * time.Millisecond)
	deadline = time.Now().Add(5 * time.Second)
	for len(obs.Hist.Last(tenant, -1)) <= n1 {
		if time.Now().After(deadline) {
			t.Fatal("sampler did not resume after cadence re-enable")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Teardown: RemoveTenant unregisters the per-tenant gauges and drops
	// the series.
	c.Close()
	if err := mw.RemoveTenant(tenant); err != nil {
		t.Fatal(err)
	}
	if got := obs.Hist.Last(tenant, -1); got != nil {
		t.Fatalf("tenant series survived RemoveTenant: %d samples", len(got))
	}
	for _, m := range obs.Default.Snapshot() {
		if strings.HasPrefix(m.Name, tenantMetricPrefix+tenant+".") {
			t.Fatalf("tenant gauge %q survived RemoveTenant", m.Name)
		}
	}
	if err := mw.RemoveTenant(tenant); err == nil {
		t.Fatal("removing an unknown tenant must error")
	}
}

// TestTenantGaugesRegistered: adding a tenant exposes its MLC, session,
// and SSL-depth gauges under the core.tenant. prefix.
func TestTenantGaugesRegistered(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	tenant := "scopegauge"
	rig.provision(t, tenant, 10)
	want := map[string]bool{
		tenantMetricPrefix + tenant + ".mlc":       false,
		tenantMetricPrefix + tenant + ".sessions":  false,
		tenantMetricPrefix + tenant + ".ssl.depth": false,
	}
	for _, m := range obs.Default.Snapshot() {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Fatalf("gauge %q not registered on AddTenant", name)
		}
	}
	if err := rig.mw.RemoveTenant(tenant); err != nil {
		t.Fatal(err)
	}
}
