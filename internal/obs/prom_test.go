package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheus renders a mixed registry and checks the exposition
// essentials: sanitized names, TYPE lines, and cumulative histogram buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("wire.ops", "operations relayed")
	c.Add(3)
	g := r.NewGauge("core.tenants", "registered tenants")
	g.Set(2)
	h := r.NewHistogram("wire.latency-ns", "exec latency", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP wire_ops operations relayed",
		"# TYPE wire_ops counter",
		"wire_ops 3",
		"# TYPE core_tenants gauge",
		"core_tenants 2",
		"# TYPE wire_latency_ns histogram",
		`wire_latency_ns_bucket{le="10"} 1`,
		`wire_latency_ns_bucket{le="100"} 2`,
		`wire_latency_ns_bucket{le="+Inf"} 3`,
		"wire_latency_ns_sum 555",
		"wire_latency_ns_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wire.ops") {
		t.Fatalf("unsanitized metric name leaked into exposition:\n%s", out)
	}
}

// TestPromNameSanitize pins the charset mapping, including the
// leading-digit rule.
func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"wire.ops":       "wire_ops",
		"a-b c.d":        "a_b_c_d",
		"9lives":         "_9lives",
		"ok_name:colon":  "ok_name:colon",
		"ünïcode.metric": "__n__code_metric", // multi-byte runes become one '_' per byte
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromHelpEscaping covers the HELP escaping rules for backslash and
// newline.
func TestPromHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "line1\nline2 \\ done")
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP x line1\nline2 \\ done`) {
		t.Fatalf("help not escaped:\n%s", b.String())
	}
}
