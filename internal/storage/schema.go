// Package storage defines the physical layer shared by the MVCC engine:
// table schemas, rows, and value helpers. It is deliberately free of any
// transaction logic so that the formal-model tests can use it directly.
package storage

import (
	"fmt"

	"madeus/internal/sqlmini"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       sqlmini.ValueKind
	PrimaryKey bool
}

// Schema describes a table: its name, columns, and primary key.
// Every table has exactly one primary-key column (sufficient for the TPC-W
// style workloads Madeus targets; composite keys are emulated with an
// encoded TEXT key column).
type Schema struct {
	Name    string
	Columns []Column
	pkIndex int
	colIdx  map[string]int
}

// NewSchema validates the column list and builds a schema.
func NewSchema(name string, cols []Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: table %s has no columns", name)
	}
	s := &Schema{Name: name, Columns: cols, pkIndex: -1, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: table %s: empty column name", name)
		}
		if _, dup := s.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("storage: table %s: duplicate column %s", name, c.Name)
		}
		s.colIdx[c.Name] = i
		if c.PrimaryKey {
			if s.pkIndex >= 0 {
				return nil, fmt.Errorf("storage: table %s: multiple primary keys", name)
			}
			s.pkIndex = i
		}
	}
	if s.pkIndex < 0 {
		return nil, fmt.Errorf("storage: table %s: no primary key", name)
	}
	return s, nil
}

// PKIndex returns the index of the primary-key column.
func (s *Schema) PKIndex() int { return s.pkIndex }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.colIdx[name]; ok {
		return i
	}
	return -1
}

// Row is one tuple; Row[i] corresponds to Schema.Columns[i].
type Row []sqlmini.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows hold identical values.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// PK returns the primary-key value of the row under schema s.
func (s *Schema) PK(r Row) sqlmini.Value { return r[s.pkIndex] }

// CheckRow validates that the row matches the schema's arity and types.
// NULL is accepted for any non-PK column; integers widen to FLOAT columns.
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("storage: table %s: row has %d values, want %d",
			s.Name, len(r), len(s.Columns))
	}
	for i, v := range r {
		col := s.Columns[i]
		if v.IsNull() {
			if col.PrimaryKey {
				return fmt.Errorf("storage: table %s: NULL primary key", s.Name)
			}
			continue
		}
		if v.Kind != col.Type {
			if v.Kind == sqlmini.KindInt && col.Type == sqlmini.KindFloat {
				continue // widened at coercion time
			}
			return fmt.Errorf("storage: table %s: column %s: got %s, want %s",
				s.Name, col.Name, v.Kind, col.Type)
		}
	}
	return nil
}

// Coerce returns a copy of the row with INT values widened to FLOAT where
// the schema requires FLOAT.
func (s *Schema) Coerce(r Row) Row {
	out := r.Clone()
	for i := range out {
		if s.Columns[i].Type == sqlmini.KindFloat && out[i].Kind == sqlmini.KindInt {
			out[i] = sqlmini.NewFloat(float64(out[i].Int))
		}
	}
	return out
}
