//go:build faultinject

package core

// Overload chaos: the backpressure layer under deliberately hostile
// conditions. A dial burst against a full admission queue must shed with
// typed busy errors instead of hanging; a destination slowed by injected
// replay latency must hit the migration deadline and roll back with an
// accurate report; and a destination that hangs mid-replay must be caught
// by the stall watchdog long before the per-operation timeout storm.
// Run with: go test -tags faultinject -race .

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/flow"
	"madeus/internal/wire"
)

// TestChaosAdmissionBurst slams one tenant with a dial burst several times
// the cap+queue budget. Everything past the budget must shed immediately
// with a typed overload error; queued dials past AdmitTimeout must shed
// too; nothing may hang.
func TestChaosAdmissionBurst(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newFlowRig(t, Options{Flow: flow.Config{
		MaxSessions: 2, AdmitQueue: 2, AdmitTimeout: 300 * time.Millisecond,
	}}, engine.Options{})
	s0 := flow.Sessions()
	rig.provision(t, "a", 10)
	waitForCond(t, func() bool { return flow.Sessions() == s0 })

	const burst = 12
	var (
		mu        sync.Mutex
		admitted  []*wire.Client
		sheds     int
		slowest   time.Duration
		badErrors []error
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			c, err := wire.Dial(rig.mw.Addr(), "a")
			el := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			if el > slowest {
				slowest = el
			}
			if err == nil {
				admitted = append(admitted, c)
				return
			}
			var se *wire.ServerError
			if errors.As(err, &se) && strings.Contains(se.Msg, "overloaded") {
				sheds++
			} else {
				badErrors = append(badErrors, err)
			}
		}()
	}
	wg.Wait()
	defer func() {
		for _, c := range admitted {
			c.Close()
		}
	}()

	if len(badErrors) > 0 {
		t.Fatalf("burst produced non-overload errors: %v", badErrors)
	}
	// Exactly MaxSessions dials hold slots; the rest shed (the two queued
	// dials time out at 300ms because the holders never release).
	if len(admitted) != 2 || sheds != burst-2 {
		t.Errorf("admitted %d sheds %d, want 2 and %d", len(admitted), sheds, burst-2)
	}
	if slowest > 5*time.Second {
		t.Errorf("slowest dial took %v; shedding must not hang", slowest)
	}
	// The admitted sessions still work — shedding is load management, not
	// an outage.
	for _, c := range admitted {
		if _, err := c.Exec("SELECT COUNT(*) FROM acct"); err != nil {
			t.Fatalf("admitted session unusable: %v", err)
		}
	}
}

// TestChaosInjectedAdmissionShed drives the flow.admit failpoint directly:
// an injected admission error must reach the client as a clean startup
// failure and count as a shed.
func TestChaosInjectedAdmissionShed(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newFlowRig(t, Options{Flow: flow.Config{MaxSessions: 8}}, engine.Options{})
	s0 := flow.Sessions()
	rig.provision(t, "a", 10)
	waitForCond(t, func() bool { return flow.Sessions() == s0 })

	sheds0 := flow.Sheds()
	fault.Enable("flow.admit", fault.Policy{Times: 1})
	_, err := wire.Dial(rig.mw.Addr(), "a")
	var se *wire.ServerError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("dial with injected admission fault = %v, want ServerError", err)
	}
	if flow.Sheds() == sheds0 {
		t.Error("injected admission error not counted as a shed")
	}
	// The fault was Times:1 — the next dial is admitted.
	c, err := wire.Dial(rig.mw.Addr(), "a")
	if err != nil {
		t.Fatalf("dial after fault drained: %v", err)
	}
	c.Close()
}

// TestChaosInjectedReplayLatencyHitsDeadline slows every replayed statement
// with injected latency so the destination cannot catch up, and pins that
// the unpaced migration dies at its deadline — through the rollback
// protocol, with an accurate report — and is re-migratable once the fault
// is lifted.
func TestChaosInjectedReplayLatencyHitsDeadline(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 3
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 3*time.Millisecond, stop, done)
	}
	defer func() {
		close(stop)
		for w := 0; w < writers; w++ {
			<-done
		}
	}()
	time.Sleep(30 * time.Millisecond)

	aborts0 := flow.DeadlineAborts()
	fault.Enable(faultStep3Exec, fault.Policy{Delay: 20 * time.Millisecond})
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:      Madeus,
		DisablePacing: true,
		Deadline:      time.Second,
	})
	fault.Reset()
	if !errors.Is(err, flow.ErrDeadline) {
		t.Fatalf("err = %v, want flow.ErrDeadline", err)
	}
	if !rep.Failed || rep.RollbackStep != "step3.propagate" || !strings.Contains(rep.RollbackReason, "deadline") {
		t.Errorf("report: failed=%v step=%q reason=%q", rep.Failed, rep.RollbackStep, rep.RollbackReason)
	}
	if flow.DeadlineAborts() == aborts0 {
		t.Error("deadline_aborts counter did not advance")
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("state after deadline rollback = %v, want normal", st)
	}
	// Fault lifted: the same migration now completes.
	rep2, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	if err != nil || rep2.Failed {
		t.Fatalf("re-migration after deadline rollback: %v (failed=%v)", err, rep2 != nil && rep2.Failed)
	}
}

// TestChaosHungSlaveStallDetected hangs the destination mid-replay. The
// per-operation timeout (10s by default) would eventually surface it as a
// connection loss, but the stall watchdog must catch the flat-lined
// progress first: StallWindow is 400ms here and the whole abort completes
// in a small fraction of the op-timeout storm it preempts.
func TestChaosHungSlaveStallDetected(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 3
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 3*time.Millisecond, stop, done)
	}
	defer func() {
		close(stop)
		for w := 0; w < writers; w++ {
			<-done
		}
	}()
	time.Sleep(30 * time.Millisecond)

	stalls0 := flow.Stalls()
	fault.Enable(faultStep3Exec, fault.Policy{Hang: true, Times: 1})
	// A hung player parks inside fault.Inject and blocks the group
	// pipeline, so the rollback's abortAll cannot join until the site is
	// released. The release hook waits for the watchdog to fire first —
	// proving detection does not depend on the hang clearing.
	released := make(chan struct{})
	go func() {
		defer close(released)
		deadline := time.Now().Add(20 * time.Second)
		for flow.Stalls() == stalls0 {
			if time.Now().After(deadline) {
				t.Error("stall watchdog never fired")
				return
			}
			time.Sleep(time.Millisecond)
		}
		fault.Release(faultStep3Exec)
	}()

	start := time.Now()
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:    Madeus,
		StallWindow: 400 * time.Millisecond,
	})
	elapsed := time.Since(start)
	<-released
	fault.Reset()

	if !errors.Is(err, flow.ErrStalled) {
		t.Fatalf("err = %v, want flow.ErrStalled", err)
	}
	if !rep.Failed || rep.RollbackStep != "step3.propagate" || !strings.Contains(rep.RollbackReason, "stalled") {
		t.Errorf("report: failed=%v step=%q reason=%q", rep.Failed, rep.RollbackStep, rep.RollbackReason)
	}
	if elapsed > 5*time.Second {
		t.Errorf("stall abort took %v; must beat the 10s op-timeout storm", elapsed)
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("state after stall rollback = %v, want normal", st)
	}
	// The hang was Times:1 and has been released: re-migration succeeds.
	rep2, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	if err != nil || rep2.Failed {
		t.Fatalf("re-migration after stall rollback: %v", err)
	}
}
