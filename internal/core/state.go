package core

import (
	"encoding/json"
	"fmt"
)

// State is the small amount of information a standby Madeus instance needs
// to take over normal processing (Sec 4.2: "Since Madeus keeps a small
// amount of state information for normal processing, we can smoothly switch
// the active Madeus node to the standby Madeus node"). It deliberately
// excludes migration progress: per the paper, a standby restarts an
// in-flight migration from Step 1.
type State struct {
	Tenants []TenantPlacement `json:"tenants"`
}

// TenantPlacement records where a tenant lives and its logical clock.
type TenantPlacement struct {
	Name string `json:"name"`
	Node string `json:"node"`
	MLC  uint64 `json:"mlc"`
}

// ExportState snapshots the tenant placements. Safe to call at any time;
// in-flight migrations are represented by their CURRENT master (the source
// until switch-over), which is exactly where a standby must route.
func (m *Middleware) ExportState() *State {
	st := &State{}
	for _, name := range m.Tenants() {
		t, ok := m.Tenant(name)
		if !ok {
			continue
		}
		node, _ := t.Node()
		st.Tenants = append(st.Tenants, TenantPlacement{
			Name: name,
			Node: node.BackendName(),
			MLC:  t.MLC(),
		})
	}
	return st
}

// Marshal renders the state as JSON (what an active instance would ship to
// its standby).
func (s *State) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalState parses a serialized state.
func UnmarshalState(data []byte) (*State, error) {
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: bad state: %w", err)
	}
	return &s, nil
}

// ImportState registers every tenant from a serialized state onto this
// (standby) middleware. All referenced nodes must already be registered
// with AddNode. Tenant logical clocks resume from their exported values so
// timestamps stay monotone across the takeover.
func (m *Middleware) ImportState(st *State) error {
	for _, tp := range st.Tenants {
		if err := m.AddTenant(tp.Name, tp.Node); err != nil {
			return err
		}
		t, _ := m.Tenant(tp.Name)
		t.mu.Lock()
		t.mlc = tp.MLC
		t.mu.Unlock()
	}
	return nil
}
