//go:build faultinject

package core

// Full-fleet kill testing: with durable engines (PR 8) the chaos suite can
// finally crash SOURCES, not just destinations. These scenarios kill -9 a
// node mid-migration (the WAL drops its unsynced tail, exactly like a power
// cut), restart it from its data directory, and assert the recovered state
// is the committed prefix, the tenant is re-migratable, and stale partial
// slave state is discarded per the Sec 4.2 rule.
// Run with: go test -tags faultinject -race .

import (
	"fmt"
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/testutil"
	"madeus/internal/wire"
)

// newDurableRig is newRig with every node durable: node i keeps its WAL and
// checkpoints under dirs[i], so it can be crashed and restarted.
func newDurableRig(t *testing.T, nNodes int) (*testRig, []string) {
	t.Helper()
	testutil.CheckGoroutines(t)
	mw, err := New(Options{CatchupTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	rig := &testRig{mw: mw}
	dirs := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		dirs[i] = t.TempDir()
		// DumpBatch 2 keeps dump chunks small, so a single-statement
		// chunk stream is long enough to crash into mid-restore.
		n, err := cluster.NewNode(fmt.Sprintf("node%d", i), cluster.NodeOptions{
			Engine: engine.Options{DataDir: dirs[i], DumpBatch: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		mw.AddNode(n)
		rig.nodes = append(rig.nodes, n)
	}
	return rig, dirs
}

// restartNode boots a fresh node from the crashed node's data dir (real
// recovery: checkpoint load + WAL replay) and swaps it into the middleware,
// rebinding every tenant that lived on it.
func (r *testRig) restartNode(t *testing.T, i int, dir string) *cluster.Node {
	t.Helper()
	n, err := cluster.NewNode(fmt.Sprintf("node%d", i), cluster.NodeOptions{
		Engine: engine.Options{DataDir: dir, DumpBatch: 2},
	})
	if err != nil {
		t.Fatalf("restart node%d from %s: %v", i, dir, err)
	}
	t.Cleanup(n.Close)
	if err := r.mw.ReplaceNode(n); err != nil {
		t.Fatal(err)
	}
	r.nodes[i] = n
	return n
}

// crashWriter is loadgen's crash-tolerant sibling: it hammers the tenant
// with balance transfers and counts ACKNOWLEDGED commits, but treats errors
// as the end of its run instead of failing the test — the node it is talking
// to is going to be killed under it, and surfacing that error to the client
// is expected behaviour, not a bug.
func crashWriter(rig *testRig, tenant string, id int, stop chan struct{}, done chan int) {
	c, err := wire.Dial(rig.mw.Addr(), tenant)
	if err != nil {
		done <- 0
		return
	}
	defer c.Close()
	commits := 0
	for i := 0; ; i++ {
		select {
		case <-stop:
			done <- commits
			return
		default:
		}
		row := (id*131 + i*7) % 120
		if _, err := c.Exec("BEGIN"); err != nil {
			done <- commits
			return
		}
		if _, err := c.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", row)); err != nil {
			c.Exec("ROLLBACK")
			continue // serialization conflict: retry
		}
		res, err := c.Exec("COMMIT")
		if err != nil {
			done <- commits
			return
		}
		if res.Tag == "COMMIT" {
			commits++
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosSourceCrashMidStep3Restart kills the SOURCE during syncset
// propagation while writers are committing, then restarts it from its data
// directory. Whatever way the interrupted migration resolves, the recovered
// source must hold at least every acknowledged commit (and at most the
// attempted ones — an unacknowledged commit may legally have reached the
// WAL), and the restarted node must complete a fresh migration.
func TestChaosSourceCrashMidStep3Restart(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig, dirs := newDurableRig(t, 2)
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 3
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go crashWriter(rig, "a", w, stop, done)
	}
	time.Sleep(30 * time.Millisecond)

	type migResult struct {
		rep *Report
		err error
	}
	migDone := make(chan migResult, 1)
	go func() {
		rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus, KeepSource: true})
		migDone <- migResult{rep, err}
	}()

	// Kill -9 the source once propagation is running and writers have
	// committed through it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		phase, _, _ := tn.Progress()
		if phase == "step3.propagate" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never reached step3.propagate")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let some mid-step-3 commits through
	rig.nodes[0].Crash()

	mig := <-migDone
	close(stop)
	acked := 0
	for w := 0; w < writers; w++ {
		acked += <-done
	}
	if acked == 0 {
		t.Fatal("no commits were acknowledged before the crash")
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after interrupted migration = %v, want normal", st)
	}

	// Restart the source from its data dir: recovery must rebuild the
	// committed prefix. The acknowledged commits are the floor (a commit
	// whose fsync completed but whose ack was cut off by the crash may
	// add on top — that is the documented kill -9 contract).
	n0 := rig.restartNode(t, 0, dirs[0])
	if _, ok := n0.Engine.Database("a"); !ok {
		t.Fatal("restarted source lost tenant a")
	}
	srcSum := sumBal(t, n0, "a")
	if seeded := 120 * 100; srcSum < seeded {
		t.Fatalf("recovered source sum = %d, below the seeded %d", srcSum, seeded)
	}
	if mig.err == nil {
		// The migration finished on the destination's copy: every
		// acknowledged commit was captured and propagated, so the new
		// master must carry at least seed + acked.
		node, _ := tn.Node()
		if node.BackendName() != "node1" {
			t.Fatalf("successful migration left tenant on %s", node.BackendName())
		}
		if got, min := sumBal(t, node, "a"), 120*100+acked; got < min {
			t.Fatalf("destination sum = %d, want at least %d (lost acked commits)", got, min)
		}
		// Re-migratability of the RESTARTED node: bring the tenant home.
		rep, err := rig.mw.Migrate("a", "node0", MigrateOptions{Strategy: Madeus})
		if err != nil {
			t.Fatalf("migration back onto the restarted source: %v", err)
		}
		if rep.Failed {
			t.Fatalf("migration back onto restarted source failed: %v", rep.Err)
		}
	} else {
		// The migration rolled back: the tenant stays on the (now
		// restarted) source, whose recovered state must hold every
		// acknowledged commit.
		if mig.rep == nil || !mig.rep.Failed {
			t.Fatalf("failed migration returned no rollback report (err: %v)", mig.err)
		}
		if srcSum < 120*100+acked {
			t.Fatalf("recovered source sum = %d, want at least %d (lost acked commits)", srcSum, 120*100+acked)
		}
		rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
		if err != nil {
			t.Fatalf("re-migration from the restarted source: %v", err)
		}
		if rep.Failed {
			t.Fatalf("re-migration failed: %v", rep.Err)
		}
		node, _ := tn.Node()
		if node.BackendName() != "node1" {
			t.Fatalf("after re-migration tenant is on %s, want node1", node.BackendName())
		}
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("final tenant state = %v, want normal", st)
	}
}

// TestChaosDestCrashRestartDiscardsPartialSlave kills a DURABLE destination
// mid-restore: the partially-restored slave database survives the crash in
// the destination's WAL (each restore chunk was a committed transaction) and
// is recovered on restart — stale state a fresh migration must throw away.
// The re-migration's createFreshDatabase drops it (Sec 4.2: discard, never
// reuse, partial slave state) and the migration completes with a consistent
// copy.
func TestChaosDestCrashRestartDiscardsPartialSlave(t *testing.T) {
	t.Cleanup(fault.Reset)
	rig, dirs := newDurableRig(t, 2)
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	// One statement per chunk and a per-chunk delay give the restore a
	// long window to crash into, after a handful of chunks have durably
	// committed on the destination.
	fault.Enable(faultStep1Restore, fault.Policy{Delay: 2 * time.Millisecond, Times: 5000, Skip: 8})

	type migResult struct {
		rep *Report
		err error
	}
	migDone := make(chan migResult, 1)
	go func() {
		rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
			Strategy: Madeus, ChunkStatements: 1,
		})
		migDone <- migResult{rep, err}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for fault.SiteFired(faultStep1Restore) < 10 {
		if time.Now().After(deadline) {
			t.Fatal("restore never progressed past 10 chunks")
		}
		time.Sleep(time.Millisecond)
	}
	rig.nodes[1].Crash()

	mig := <-migDone
	fault.Reset()
	if mig.err == nil {
		t.Fatal("migration succeeded despite the destination dying mid-restore")
	}
	if mig.rep == nil || !mig.rep.Failed {
		t.Fatalf("no rollback report (err: %v)", mig.err)
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after rollback = %v, want normal", st)
	}
	if node, _ := tn.Node(); node.BackendName() != "node0" {
		t.Fatalf("after rollback tenant is on %s, want node0", node.BackendName())
	}

	// Restart the destination: the partial slave copy comes back from its
	// WAL (the rollback's dropDatabase could not reach the dead node).
	n1 := rig.restartNode(t, 1, dirs[1])
	if _, ok := n1.Engine.Database("a"); !ok {
		t.Fatal("expected the partial slave database to survive the crash (restore chunks committed durably)")
	}

	// Re-migrate: the fresh attempt must detect and discard the stale
	// partial copy, then build a consistent one.
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus, KeepSource: true})
	if err != nil {
		t.Fatalf("re-migration onto the restarted destination: %v", err)
	}
	if rep.Failed {
		t.Fatalf("re-migration failed: %v", rep.Err)
	}
	discarded := false
	for _, ev := range rep.Timeline {
		if ev.Name == "step2.slave.stale_discarded" {
			discarded = true
		}
	}
	if !discarded {
		t.Error("re-migration did not emit step2.slave.stale_discarded for the recovered partial copy")
	}
	if node, _ := tn.Node(); node.BackendName() != "node1" {
		t.Fatalf("after re-migration tenant is on %s, want node1", node.BackendName())
	}
	// Consistency diff: the rebuilt destination matches the kept source.
	src, _ := rig.mw.Node("node0")
	if got, want := sumBal(t, n1, "a"), sumBal(t, src, "a"); got != want {
		t.Fatalf("destination sum = %d, source sum = %d after re-migration", got, want)
	}
}
