// Package lsir is an executable rendering of the paper's formal model
// (Sections 2–3 and the appendix proofs): operations, histories, the six
// transactional dependency types, the mapping function ℱ (Definition 2),
// and the lazy snapshot isolation rule itself (Definition 3), together with
// a model replayer used to machine-check Theorem 1 on randomized histories.
//
// The package is independent of the storage engine: it works on abstract
// data items and version numbers, exactly like the paper's notation
// (x_i is the version of item x written by transaction T_i).
package lsir

import (
	"fmt"
	"sort"
)

// OpKind is the kind of an operation.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpCommit
	OpAbort
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "r"
	case OpWrite:
		return "w"
	case OpCommit:
		return "c"
	case OpAbort:
		return "a"
	}
	return "?"
}

// Op is one operation in a history. For reads, ReadVer is the transaction
// whose version was read (0 = the initial version). Writes create version
// Txn of Item.
type Op struct {
	Txn     int    // transaction id (the paper's subscript i)
	Kind    OpKind // r, w, c, a
	Item    string // data item for r/w
	ReadVer int    // version read (reads only): writer transaction id
}

func (o Op) String() string {
	switch o.Kind {
	case OpRead:
		return fmt.Sprintf("r%d(%s_%d)", o.Txn, o.Item, o.ReadVer)
	case OpWrite:
		return fmt.Sprintf("w%d(%s_%d)", o.Txn, o.Item, o.Txn)
	case OpCommit:
		return fmt.Sprintf("c%d", o.Txn)
	default:
		return fmt.Sprintf("a%d", o.Txn)
	}
}

// History is a totally ordered sequence of operations (the order in which
// the operations were actually executed, Sec 2.1).
type History struct {
	Ops []Op
}

// TxnInfo summarizes one transaction inside a history.
type TxnInfo struct {
	ID        int
	Committed bool
	Aborted   bool
	Update    bool // performed at least one write
	FirstRead int  // index in Ops of the first read, -1 if none
	End       int  // index of commit/abort, -1 if none
}

// Txns extracts per-transaction summaries, keyed by transaction id.
func (h History) Txns() map[int]*TxnInfo {
	out := make(map[int]*TxnInfo)
	get := func(id int) *TxnInfo {
		ti, ok := out[id]
		if !ok {
			ti = &TxnInfo{ID: id, FirstRead: -1, End: -1}
			out[id] = ti
		}
		return ti
	}
	for i, op := range h.Ops {
		ti := get(op.Txn)
		switch op.Kind {
		case OpRead:
			if ti.FirstRead < 0 {
				ti.FirstRead = i
			}
		case OpWrite:
			ti.Update = true
		case OpCommit:
			ti.Committed = true
			ti.End = i
		case OpAbort:
			ti.Aborted = true
			ti.End = i
		}
	}
	return out
}

// String renders the history in paper notation.
func (h History) String() string {
	s := ""
	for i, op := range h.Ops {
		if i > 0 {
			s += " "
		}
		s += op.String()
	}
	return s
}

// FinalState computes, for each item, the version (writer transaction id)
// visible after all committed transactions: the last committed write per
// item in history order. Items never written map to version 0 and are
// omitted.
func (h History) FinalState() map[string]int {
	txns := h.Txns()
	state := make(map[string]int)
	for _, op := range h.Ops {
		if op.Kind != OpWrite {
			continue
		}
		if ti := txns[op.Txn]; ti != nil && ti.Committed {
			state[op.Item] = op.Txn
		}
	}
	return state
}

// Items returns the sorted set of items touched by the history.
func (h History) Items() []string {
	set := make(map[string]bool)
	for _, op := range h.Ops {
		if op.Item != "" {
			set[op.Item] = true
		}
	}
	out := make([]string, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	sort.Strings(out)
	return out
}
