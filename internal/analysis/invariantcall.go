package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// InvariantCall polices the internal/invariant call sites: assertion
// arguments are evaluated even in production (no-tag) builds, so only the
// `invariants` build tag may gate real work. Concretely:
//
//   - invariant.Assert / Assertf conditions and message args must not
//     contain function calls — a call there runs on every production hit of
//     the hot path. Wrap expensive checks in invariant.Check(func() error)
//     instead; the closure is only invoked under -tags invariants.
//   - invariant.Check takes a func literal or func value, not the result of
//     calling something — invariant.Check(f()) evaluates f eagerly.
//
// The internal/fault failpoint registry has the same contract under its
// faultinject tag: fault.Inject(site) arguments are evaluated even in
// production builds where Inject is a no-op stub, so site names must be
// precomputed constants, never built by a call on the hot path.
var InvariantCall = &Analyzer{
	Name: "invariantcall",
	Doc:  "invariant assertions and fault sites must only do real work under their build tags",
	Run:  runInvariantCall,
}

func runInvariantCall(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if isFaultPkg(pass, pkg) && sel.Sel.Name == "Inject" {
				for _, arg := range call.Args {
					if inner := firstCall(pass, arg); inner != nil {
						pass.Reportf(inner.Pos(),
							"call inside fault.Inject argument is evaluated even without -tags faultinject; use a precomputed site-name constant")
					}
				}
				return true
			}
			if !isInvariantPkg(pass, pkg) {
				return true
			}
			switch sel.Sel.Name {
			case "Assert", "Assertf":
				for i, arg := range call.Args {
					if i == 1 && sel.Sel.Name == "Assertf" {
						continue // the format string literal
					}
					if i == 1 && sel.Sel.Name == "Assert" {
						continue // the message literal
					}
					if inner := firstCall(pass, arg); inner != nil {
						pass.Reportf(inner.Pos(),
							"call inside invariant.%s argument is evaluated even without -tags invariants; move it into invariant.Check(func() error {...})",
							sel.Sel.Name)
					}
				}
			case "Check":
				if len(call.Args) == 1 {
					if inner, isCall := call.Args[0].(*ast.CallExpr); isCall {
						pass.Reportf(inner.Pos(),
							"invariant.Check argument is a call result, evaluated even without -tags invariants; pass a func literal or func value")
					}
				}
			}
			return true
		})
	}
}

// isInvariantPkg reports whether ident names the internal/invariant package
// (by import resolution when type info is present, by name otherwise).
func isInvariantPkg(pass *Pass, ident *ast.Ident) bool {
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return strings.HasSuffix(pn.Imported().Path(), "internal/invariant")
			}
			return ident.Name == "invariant"
		}
	}
	return ident.Name == "invariant"
}

// isFaultPkg reports whether ident names the internal/fault package (by
// import resolution when type info is present, by name otherwise).
func isFaultPkg(pass *Pass, ident *ast.Ident) bool {
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return strings.HasSuffix(pn.Imported().Path(), "internal/fault")
			}
			return ident.Name == "fault"
		}
	}
	return ident.Name == "fault"
}

// firstCall returns the first real CallExpr inside e, skipping func literal
// bodies (those do not run eagerly), builtins like len/cap, and type
// conversions — all cheap enough for a production-build condition.
func firstCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isCheapCall(pass, n) {
				return true // still scan the arguments
			}
			found = n
			return false
		}
		return true
	})
	return found
}

// cheapBuiltins are allowed inside eager assertion arguments.
var cheapBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true, "byte": true,
	"rune": true, "string": true, "bool": true,
}

// isCheapCall reports whether call is a builtin or a type conversion.
func isCheapCall(pass *Pass, call *ast.CallExpr) bool {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[call.Fun]; ok {
			if tv.IsType() || tv.IsBuiltin() {
				return true
			}
			// Resolved as a value: a real function call.
			return false
		}
	}
	ident, ok := call.Fun.(*ast.Ident)
	return ok && cheapBuiltins[ident.Name]
}
