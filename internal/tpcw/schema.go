// Package tpcw implements a TPC-W-style online-bookstore workload: the
// schema, a scaled data loader, the three browse/order mixes, and emulated
// browsers (EBs), matching how the paper evaluates Madeus (Sec 5.1-5.2).
//
// Differences from the full TPC-W kit are deliberate and documented in
// DESIGN.md: there is no HTTP/application-server tier (EBs speak the wire
// protocol directly; Tomcat is not part of the paper's contribution), the
// schema keeps the tables the interactions touch, and scales are reduced so
// experiments complete in seconds. Two workload properties the paper's
// results depend on are preserved: interactions are read-heavy with a
// tunable update ratio per mix, and every transaction begins with a read
// (no blind writes, Sec 3.1). Update statements either write literals
// computed by the browser or update rows relative to themselves, which
// keeps query-based replay deterministic for all four propagation
// strategies.
package tpcw

import (
	"fmt"

	"madeus/internal/engine"
)

// Execer executes one SQL statement — satisfied by *wire.Client and
// *engine.Session.
type Execer interface {
	Exec(sql string) (*engine.Result, error)
}

// tables is the bookstore DDL, in load order.
var tables = []string{
	"CREATE TABLE author (a_id INT PRIMARY KEY, a_fname TEXT, a_lname TEXT)",
	"CREATE TABLE customer (c_id INT PRIMARY KEY, c_uname TEXT, c_discount FLOAT, c_since INT)",
	"CREATE TABLE item (i_id INT PRIMARY KEY, i_title TEXT, i_a_id INT, i_subject TEXT, i_cost FLOAT, i_stock INT)",
	"CREATE TABLE orders (o_id INT PRIMARY KEY, o_c_id INT, o_date INT, o_total FLOAT, o_status TEXT)",
	"CREATE TABLE order_line (ol_id INT PRIMARY KEY, ol_o_id INT, ol_i_id INT, ol_qty INT)",
	"CREATE TABLE cart (sc_id INT PRIMARY KEY, sc_c_id INT, sc_i_id INT, sc_qty INT)",
}

// subjects mirrors TPC-W's 24 book subjects.
var subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

// Scale sizes the generated database.
type Scale struct {
	Items     int
	Customers int
	Authors   int
}

// ScaleFor derives a Scale from the TPC-W parameters the paper uses
// (items and emulated browsers, Table 3), shrunk by factor so experiments
// run at laptop scale. TPC-W populates 2880 customers per EB; factor
// divides both populations.
func ScaleFor(items, ebs, factor int) Scale {
	if factor < 1 {
		factor = 1
	}
	s := Scale{
		Items:     items / factor,
		Customers: 2880 * ebs / factor,
		Authors:   items / factor / 4,
	}
	if s.Items < 20 {
		s.Items = 20
	}
	if s.Customers < 20 {
		s.Customers = 20
	}
	if s.Authors < 5 {
		s.Authors = 5
	}
	return s
}

// approximate row widths in bytes, used only to report the emulated
// database size the way Table 3 does.
const (
	itemRowBytes     = 110
	customerRowBytes = 60
	authorRowBytes   = 40
)

// EstimatedBytes reports the approximate loaded size, the analogue of
// Table 3's "database size" column.
func (s Scale) EstimatedBytes() int64 {
	return int64(s.Items)*itemRowBytes +
		int64(s.Customers)*customerRowBytes +
		int64(s.Authors)*authorRowBytes
}

func (s Scale) String() string {
	return fmt.Sprintf("items=%d customers=%d authors=%d (~%.1f KB)",
		s.Items, s.Customers, s.Authors, float64(s.EstimatedBytes())/1024)
}
