// Package obs is a fixture stand-in for madeus/internal/obs; the obsname
// analyzer matches it by its "internal/obs" path suffix.
package obs

import "time"

// Counter is the fixture metric type.
type Counter struct{}

// Gauge is the fixture gauge type.
type Gauge struct{}

// GaugeFunc is the fixture callback gauge type.
type GaugeFunc struct{}

// Histogram is the fixture histogram type.
type Histogram struct{}

// Registry is the fixture metric registry.
type Registry struct{}

// NewCounter is the fixture counter constructor.
func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }

// NewGauge is the fixture gauge constructor.
func (r *Registry) NewGauge(name, help string) *Gauge { return &Gauge{} }

// NewGaugeFunc is the fixture callback-gauge constructor.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc { return &GaugeFunc{} }

// NewHistogram is the fixture histogram constructor.
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram { return &Histogram{} }

// ReplaceGaugeFunc is the sanctioned dynamic-name API; obsname exempts it.
func (r *Registry) ReplaceGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	return &GaugeFunc{}
}

// Unregister is the fixture removal API (exempt: not a constructor).
func (r *Registry) Unregister(name string) bool { return false }

// Field is the fixture structured trace field.
type Field struct{}

// F builds a fixture field.
func F(key string, value any) Field { return Field{} }

// Span is the fixture in-flight trace span.
type Span struct{}

// End closes the fixture span.
func (s *Span) End(fields ...Field) {}

// Tracer is the fixture event ring.
type Tracer struct{}

// Emit records a fixture event.
func (t *Tracer) Emit(tenant, name string, fields ...Field) {}

// EmitDur records a fixture event with a duration.
func (t *Tracer) EmitDur(tenant, name string, dur time.Duration, fields ...Field) {}

// Start opens a fixture span.
func (t *Tracer) Start(tenant, name string, fields ...Field) *Span { return &Span{} }

// Default is the fixture process registry.
var Default = &Registry{}

// Trace is the fixture process tracer.
var Trace = &Tracer{}

// NewCounter is the package-level fixture counter constructor.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge is the package-level fixture gauge constructor.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeFunc is the package-level fixture callback-gauge constructor.
func NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	return Default.NewGaugeFunc(name, help, fn)
}

// NewHistogram is the package-level fixture histogram constructor.
func NewHistogram(name, help string, bounds []int64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}
