package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"madeus/internal/fault"
	"madeus/internal/simlat"
	"madeus/internal/wire"
)

// errAborted marks propagation cancelled by the manager.
var errAborted = errors.New("core: propagation aborted")

// Step-3 failpoint sites (armed only under -tags faultinject): the
// propagator's destination dials and every replayed statement.
const (
	faultStep3Dial = "core.step3.dial"
	faultStep3Exec = "core.step3.exec"
)

// PropagationStats summarizes one Step-3 run.
type PropagationStats struct {
	Syncsets     int   // syncsets applied on the slave
	Ops          int   // operations (incl. BEGIN/COMMIT) sent to the slave
	CommitGroups []int // commit batch sizes (Madeus: >1 means group commit)
	MaxGroup     int
}

// propagator drives Step 3 for one migration: it consumes the tenant's SSL
// and replays syncsets on the destination according to the strategy.
type propagator struct {
	t        *Tenant
	dest     Backend
	strategy Strategy
	maxConns int
	mts      uint64

	// opTimeout bounds every statement replayed on the destination so a
	// hung slave cannot park players forever (they must observe the
	// abort); 0 disables the bound.
	opTimeout time.Duration

	// trace is the migration's wire trace context (nil when obs is off);
	// every pooled destination connection carries it so the slave-side
	// replay traffic is attributable to the migration.
	trace *wire.TraceContext

	// conn pool
	poolMu  sync.Mutex //madeusvet:lockrank conductor-pool 12
	idle    []*wire.Client
	created int

	// progress accounting. A leaf lock: players and the tenant-holding
	// propagator loop both poll it (stopRequested), so it ranks above the
	// tenant critical region and nothing is acquired while it is held.
	mu      sync.Mutex //madeusvet:lockrank propagator-progress 26
	applied int
	ops     int
	stats   PropagationStats
	err     error
	stopReq bool
	abort   chan struct{} // closed on failure/abort
	aborted bool
	done    chan struct{} // closed when the run loop exits

	cursor int // next ABSOLUTE SSL index to consume (run loop only)

	// B-CON commit token: players block on herdCond and are ALL woken at
	// every commit (the naive pthread pattern the paper blames for
	// B-CON's collapse: "all players compete for the pthread mutex lock
	// at every commit time").
	herdMu   sync.Mutex //madeusvet:lockrank bcon-herd 16
	herdCond *sync.Cond
	herdSpin time.Duration
}

// startPropagation launches Step 3. mts is the migration timestamp: the MLC
// value at the snapshot; the first commit to replay has ETS == mts.
func startPropagation(t *Tenant, dest Backend, strategy Strategy, maxConns int, mts uint64, herdSpin, opTimeout time.Duration, trace *wire.TraceContext) *propagator {
	p := &propagator{
		t:         t,
		dest:      dest,
		strategy:  strategy,
		maxConns:  maxConns,
		mts:       mts,
		herdSpin:  herdSpin,
		opTimeout: opTimeout,
		trace:     trace,
		abort:     make(chan struct{}),
		done:      make(chan struct{}),
	}
	p.herdCond = sync.NewCond(&p.herdMu)
	go p.run()
	return p
}

// Err returns the propagation failure, if any.
func (p *propagator) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats returns the accumulated statistics.
func (p *propagator) Stats() PropagationStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Syncsets = p.applied
	st.Ops = p.ops
	for _, g := range st.CommitGroups {
		if g > st.MaxGroup {
			st.MaxGroup = g
		}
	}
	return st
}

// Lag reports how many linked syncsets have not yet been applied.
func (p *propagator) Lag() int {
	n := p.t.sslLen()
	p.mu.Lock()
	defer p.mu.Unlock()
	return n - p.applied
}

// Debt reports how many syncsets the slave is BEHIND by: linked syncsets
// that are eligible for full replay now but have not been applied. Syncsets
// whose commits the LSIR holds back (rule 1-b: a still-active master
// transaction with a stamped STS precedes them) are an irreducible floor,
// not debt — under sustained load that floor never reaches zero, so catch-up
// detection uses Debt, not Lag.
func (p *propagator) Debt() int {
	if p.strategy == BAll || p.strategy == BMin {
		// Serial strategies replay in link order with no LSIR holds.
		return p.Lag()
	}
	t := p.t
	t.mu.Lock()
	linked := t.sslBase + len(t.ssl)
	bound := t.commitBoundLocked()
	t.mu.Unlock()
	// ETS values are contiguous from the MTS, so the number of linked
	// syncsets whose commits are below the bound is min(linked, bound-mts).
	flushable := linked
	if bound != ^uint64(0) && bound >= p.mts {
		if n := int(bound - p.mts); n < flushable {
			flushable = n
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	d := flushable - p.applied
	if d < 0 {
		d = 0
	}
	return d
}

// RequestStop asks the run loop to exit once the SSL is fully drained.
func (p *propagator) RequestStop() {
	p.mu.Lock()
	p.stopReq = true
	p.mu.Unlock()
	p.t.mu.Lock()
	p.t.cond.Broadcast()
	p.t.mu.Unlock()
}

// Abort cancels propagation immediately.
func (p *propagator) Abort() { p.fail(errAborted) }

// Wait blocks until the run loop exits and returns its error.
func (p *propagator) Wait() error {
	<-p.done
	return p.Err()
}

// fail records the propagation failure and cancels the run. It is called
// from several goroutines at once — the manager's Abort/RequestStop path,
// the run loop, and any player — so it must be idempotent and keep the
// error it records meaningful: the FIRST REAL error wins. errAborted is
// only a cancellation marker, so a real error arriving after an abort
// (the race between the manager's RequestStop/Abort and a player hitting
// the actual fault) replaces it — otherwise the Report's rollback reason
// would read "aborted" instead of what went wrong. The abort channel is
// closed under p.mu so `aborted == true ⇒ abort closed` holds atomically
// for stopRequested/isAborted readers.
func (p *propagator) fail(err error) {
	p.mu.Lock()
	if p.err == nil || (errors.Is(p.err, errAborted) && !errors.Is(err, errAborted)) {
		p.err = err
	}
	already := p.aborted
	p.aborted = true
	if !already {
		close(p.abort)
	}
	p.mu.Unlock()
	if !already {
		p.herdMu.Lock()
		p.herdCond.Broadcast()
		p.herdMu.Unlock()
		p.t.mu.Lock()
		p.t.cond.Broadcast()
		p.t.mu.Unlock()
	}
}

func (p *propagator) stopRequested() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopReq || p.aborted
}

// Applied reports how many syncsets this propagator has replayed to
// commit. Commits flush contiguously in ETS order from the MTS, so this is
// also the length of the applied SSL prefix — the manager intersects it
// across slaves to decide how much of the SSL can be released.
func (p *propagator) Applied() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

func (p *propagator) markApplied(ops int) {
	p.mu.Lock()
	p.applied++
	p.ops += ops
	p.mu.Unlock()
	obsSyncsetsApplied.Inc()
	obsPropOps.Add(uint64(ops))
}

func (p *propagator) noteGroup(n int) {
	p.mu.Lock()
	p.stats.CommitGroups = append(p.stats.CommitGroups, n)
	p.mu.Unlock()
	obsGroupSize.Observe(int64(n))
}

// --- connection pool ---

func (p *propagator) getConn() (*wire.Client, error) {
	p.poolMu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.poolMu.Unlock()
		return c, nil
	}
	p.created++
	p.poolMu.Unlock()
	if err := fault.Inject(faultStep3Dial); err != nil {
		return nil, err
	}
	c, err := p.dest.Connect(p.t.Name)
	if err != nil {
		return nil, err
	}
	if p.opTimeout > 0 {
		c.SetOpTimeout(p.opTimeout)
	}
	if p.trace != nil {
		c.SetTraceContext(p.trace)
	}
	return c, nil
}

// exec replays one statement on a destination connection through the
// step-3 failpoint: an injected conn-drop closes the socket so the Exec
// fails exactly like a vanished peer; other injected errors surface
// directly.
func (p *propagator) exec(conn *wire.Client, sql string) error {
	if ferr := fault.Inject(faultStep3Exec); ferr != nil {
		if !fault.IsConnDrop(ferr) {
			return ferr
		}
		_ = conn.Close()
	}
	_, err := conn.Exec(sql)
	return err
}

func (p *propagator) putConn(c *wire.Client) {
	p.poolMu.Lock()
	p.idle = append(p.idle, c)
	p.poolMu.Unlock()
}

func (p *propagator) closeConns() {
	p.poolMu.Lock()
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	p.poolMu.Unlock()
}

// takeLinked pulls newly linked SSBs. When block is set and none are
// available it waits for ONE state change (SSL growth, active-set change,
// or stop) and returns — the caller re-evaluates with the fresh commit
// bound, so bound-only wakeups are never swallowed. It returns the new
// SSBs, the current commit bound, and whether a stop has been requested.
//
// The cursor is an absolute link index: the tenant may release the
// already-applied prefix (releaseAppliedSSL) between calls, so the
// retained slice is addressed at cursor-sslBase. A capture reset under an
// abort can only shrink the index space; the cursor clamps to it.
func (p *propagator) takeLinked(block bool) (news []*SSB, bound uint64, stopped bool) {
	t := p.t
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.sslBase + len(t.ssl)
	if p.cursor >= total && block && !p.stopRequested() {
		t.cond.Wait()
		total = t.sslBase + len(t.ssl)
	}
	if p.cursor > total {
		p.cursor = total
	}
	if p.cursor < total {
		start := p.cursor - t.sslBase
		if start < 0 {
			start = 0
		}
		news = append(news, t.ssl[start:]...)
		p.cursor = total
	}
	return news, t.commitBoundLocked(), p.stopRequested()
}

// run dispatches to the strategy-specific loop and cleans up.
func (p *propagator) run() {
	defer close(p.done)
	defer p.closeConns()
	var err error
	switch p.strategy {
	case BAll, BMin:
		err = p.runSerial()
	default:
		err = p.runConcurrent()
	}
	if err != nil {
		p.fail(err)
	}
}

// runSerial is the B-ALL / B-MIN loop: replay whole syncsets one at a time
// in commit (link) order over a single connection.
func (p *propagator) runSerial() error {
	conn, err := p.getConn()
	if err != nil {
		return err
	}
	defer conn.Close()
	for {
		news, _, stop := p.takeLinked(true)
		if stop && len(news) == 0 {
			return nil
		}
		for _, b := range news {
			if err := p.replaySerial(conn, b); err != nil {
				return err
			}
			p.markApplied(b.OpCount() + 1) // + BEGIN
		}
	}
}

func (p *propagator) replaySerial(conn *wire.Client, b *SSB) error {
	select {
	case <-p.abort:
		return errAborted
	default:
	}
	if err := p.exec(conn, "BEGIN"); err != nil {
		return fmt.Errorf("core: replay BEGIN: %w", err)
	}
	for _, e := range b.Entries {
		if err := p.exec(conn, e.SQL); err != nil {
			return fmt.Errorf("core: replay %q: %w", e.SQL, err)
		}
	}
	if err := p.exec(conn, "COMMIT"); err != nil {
		return fmt.Errorf("core: replay COMMIT: %w", err)
	}
	p.noteGroup(1)
	return nil
}

// --- concurrent propagation (Madeus and B-CON) ---

// runState is one in-flight syncset replay handled by a player goroutine.
type runState struct {
	b          *SSB
	firstDone  chan struct{}
	writesDone chan struct{}
	commitGo   chan struct{} // Madeus: closed by the conductor
	herdGo     bool          // B-CON: set under herdMu
	done       chan struct{}

	errMu sync.Mutex //madeusvet:lockrank player-err 18
	err   error
}

// setErr records the player's failure (first failure wins).
func (r *runState) setErr(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

// Err returns the player's failure, if any.
func (r *runState) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// ssbHeap orders pending SSBs by STS (ties by ETS) for dispatch.
type ssbHeap []*SSB

func (h ssbHeap) Len() int { return len(h) }
func (h ssbHeap) Less(i, j int) bool {
	if h[i].STS != h[j].STS {
		return h[i].STS < h[j].STS
	}
	return h[i].ETS < h[j].ETS
}
func (h ssbHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ssbHeap) Push(x any)   { *h = append(*h, x.(*SSB)) }
func (h *ssbHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h ssbHeap) peek() *SSB    { return h[0] }
func (h ssbHeap) empty() bool   { return len(h) == 0 }

// runConcurrent is the conductor of Algorithm 4, generalized to a streaming
// SSL. Invariants enforced (see the LSIR, Definition 3):
//
//   - a syncset's first read is dispatched only when every commit with
//     ETS < its STS has completed on the slave (rule 1-a): dispatch
//     eligibility is STS <= nextETS;
//   - a commit with ETS = e is propagated only after every first read with
//     STS <= e has completed (rule 1-b): commits flush contiguously from
//     nextETS, only below the commit bound (no unresolved master
//     transaction with a stamped STS <= e), and only after the wave's
//     first-read barrier;
//   - writes replay FIFO within each player (rule 2);
//   - commits eligible together flush concurrently — the slave group
//     commits them (Madeus) — or serially in ETS order through the
//     contended token (B-CON).
func (p *propagator) runConcurrent() error {
	var pending ssbHeap
	runs := make(map[uint64]*runState)
	nextETS := p.mts
	lastBound := uint64(0)

	for {
		eligible := !pending.empty() && pending.peek().STS <= nextETS
		_, flushCandidate := runs[nextETS]
		canFlush := flushCandidate && nextETS < lastBound
		news, bound, stopped := p.takeLinked(!eligible && !canFlush)
		lastBound = bound
		for _, b := range news {
			heap.Push(&pending, b)
		}
		if stopped && len(news) == 0 && pending.empty() && len(runs) == 0 {
			return nil
		}
		if stopped && len(news) == 0 && !(!pending.empty() && pending.peek().STS <= nextETS) && !flushCandidate && len(runs) == 0 {
			// Stop requested but ineligible syncsets remain: with the
			// gate closed and active transactions drained this cannot
			// happen (ETS values are contiguous); guard anyway.
			return fmt.Errorf("core: propagation stalled with %d undispatchable syncsets at ETS %d", pending.Len(), nextETS)
		}

		// Dispatch every eligible syncset (first reads of the wave).
		var wave []*runState
		for !pending.empty() && pending.peek().STS <= nextETS {
			b := heap.Pop(&pending).(*SSB)
			r := &runState{
				b:          b,
				firstDone:  make(chan struct{}),
				writesDone: make(chan struct{}),
				commitGo:   make(chan struct{}),
				done:       make(chan struct{}),
			}
			runs[b.ETS] = r
			wave = append(wave, r)
			go p.player(r)
		}
		// Barrier: all first operations of the wave propagated
		// (Algorithm 4, line 5).
		for _, r := range wave {
			<-r.firstDone
			if err := r.Err(); err != nil {
				return err
			}
		}

		// Flush commits contiguously from nextETS (Equation 1's batch).
		var batch []*runState
		for {
			r, ok := runs[nextETS]
			if !ok || r.b.ETS >= bound {
				break
			}
			<-r.writesDone
			if err := r.Err(); err != nil {
				return err
			}
			batch = append(batch, r)
			delete(runs, nextETS)
			nextETS++
		}
		if len(batch) > 0 {
			if err := p.flushCommits(batch); err != nil {
				return err
			}
		}
		if p.Err() != nil {
			return p.Err()
		}
	}
}

// flushCommits propagates one batch of commits. Madeus releases them all
// concurrently (the slave's WAL group commits them); B-CON walks them in
// master commit order through the thundering-herd token.
func (p *propagator) flushCommits(batch []*runState) error {
	if p.strategy == BCon {
		for _, r := range batch {
			p.herdMu.Lock()
			r.herdGo = true
			p.herdCond.Broadcast() // wake EVERY waiting player
			p.herdMu.Unlock()
			<-r.done
			if err := r.Err(); err != nil {
				return err
			}
			p.noteGroup(1)
			p.markApplied(r.b.OpCount() + 1)
		}
		return nil
	}
	for _, r := range batch {
		close(r.commitGo)
	}
	for _, r := range batch {
		<-r.done
		if err := r.Err(); err != nil {
			return err
		}
		p.markApplied(r.b.OpCount() + 1)
	}
	p.noteGroup(len(batch))
	return nil
}

// player replays one syncset on the slave (Algorithm 5): first operation,
// writes in FIFO order, then the commit when the conductor orders it.
func (p *propagator) player(r *runState) {
	obsPlayersActive.Inc()
	defer obsPlayersActive.Dec()
	firstClosed, writesClosed := false, false
	var conn *wire.Client
	defer func() {
		if !firstClosed {
			close(r.firstDone)
		}
		if !writesClosed {
			close(r.writesDone)
		}
		close(r.done)
		if conn != nil {
			if r.Err() == nil {
				p.putConn(conn)
			} else {
				conn.Close()
			}
		}
	}()

	conn, err := p.getConn()
	if err != nil {
		r.setErr(err)
		return
	}
	if err := p.exec(conn, "BEGIN"); err != nil {
		r.setErr(fmt.Errorf("core: player BEGIN: %w", err))
		return
	}
	if err := p.exec(conn, r.b.FirstOp().SQL); err != nil {
		r.setErr(fmt.Errorf("core: player first op %q: %w", r.b.FirstOp().SQL, err))
		return
	}
	close(r.firstDone)
	firstClosed = true

	for _, e := range r.b.Rest() {
		if err := p.exec(conn, e.SQL); err != nil {
			r.setErr(fmt.Errorf("core: player %q: %w", e.SQL, err))
			return
		}
	}
	close(r.writesDone)
	writesClosed = true

	// Wait for the commit order.
	if p.strategy == BCon {
		p.herdMu.Lock()
		for !r.herdGo && !p.isAborted() {
			p.herdCond.Wait()
			// Mutex competition: every woken player pays before
			// discovering whose turn it is. Burned while holding
			// herdMu, so the convoy serializes — the cost the paper
			// measured in B-CON's collapse.
			simlat.CPU(p.herdSpin)
		}
		aborted := p.isAborted() && !r.herdGo
		p.herdMu.Unlock()
		if aborted {
			r.setErr(errAborted)
			return
		}
	} else {
		select {
		case <-r.commitGo:
		case <-p.abort:
			r.setErr(errAborted)
			return
		}
	}
	if err := p.exec(conn, "COMMIT"); err != nil {
		r.setErr(fmt.Errorf("core: player COMMIT: %w", err))
		return
	}
}

func (p *propagator) isAborted() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.aborted
}
