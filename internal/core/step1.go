package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/fault"
	"madeus/internal/flow"
	"madeus/internal/invariant"
	"madeus/internal/wire"
)

// Pipelined Step-1 failpoint sites (armed only under -tags faultinject).
// faultStep1Chunk fires in the transfer stage once per chunk (a conn-drop
// policy kills the stream mid-flight and exercises the rollback protocol);
// faultStep1Restore fires in a restore applier once per chunk.
const (
	faultStep1Chunk   = "core.step1.chunk"
	faultStep1Restore = "core.step1.restore"
)

// Pipeline defaults (MigrateOptions overrides).
const (
	defaultChunkStatements = 64 // statements per dump chunk
	defaultRestoreAppliers = 4  // parallel appliers per slave
	restoreQueueChunks     = 2  // per-slave bounded channel depth
	// chunkStmtOverhead approximates the per-statement bookkeeping cost
	// added to the SQL text when charging a chunk against the transfer
	// budget (string header, slice slot, frame header amortized).
	chunkStmtOverhead = 32
)

// errAllSlavesDead aborts the producer once every slave's restore failed.
// It is not a source-side failure: pipelineSnapshot strips it from
// streamErr so Migrate attributes the rollback to Step 2 (the slave
// errors), exactly like the monolithic path would.
var errAllSlavesDead = errors.New("core: every slave failed during restore")

// step1Chunk is one bounded batch of dump statements in flight between the
// source stream and the restore appliers. refs counts the slaves that still
// hold it; the last one out returns its bytes to the transfer budget.
type step1Chunk struct {
	seq    int
	stmts  []string
	bytes  int64
	ddl    bool // contains a non-INSERT statement: applied as a serial barrier
	refs   atomic.Int32
	budget *flow.TransferBudget
}

// release drops one slave's claim; the last claim returns the bytes.
func (c *step1Chunk) release() {
	if c.refs.Add(-1) == 0 {
		c.budget.Release(c.bytes)
	}
}

// pipelineResult is what pipelineSnapshot hands back to Migrate.
type pipelineResult struct {
	chunks    int   // chunks streamed from the source
	stmts     int   // statements streamed
	peakBytes int64 // high-water mark of resident transfer bytes
	dumpTime  time.Duration
	// streamErr is a source-side failure (the dump stream or its COMMIT):
	// the whole migration rolls back at step1.snapshot.
	streamErr error
	// slaveErr maps each failed slave to its first error; Migrate applies
	// the Sec 4.2 discard rule (survivors continue, none left = rollback).
	slaveErr map[Backend]error
}

// slaveRun is one destination's restore pipeline.
type slaveRun struct {
	sl   Backend
	ch   chan *step1Chunk
	done chan struct{} // closed when this slave's restore failed
	err  error
}

// pipelineSnapshot is the pipelined form of Step 1 + Step 2: a three-stage
// pipeline (dump → transfer → restore) replacing the monolithic
// dump-everything-then-restore sequence. ctl must hold the open dump
// transaction with its snapshot already pinned.
//
//	stage 1  the source session streams bounded statement chunks
//	         (DUMP STREAM over the wire's multi-frame response)
//	stage 2  each chunk is charged against the flow transfer budget and
//	         broadcast to every live slave over a bounded channel —
//	         a slow destination backpressures the dump scan here, so
//	         resident transfer memory stays under the configured cap
//	stage 3  per slave, a dispatcher feeds N parallel appliers, each
//	         applying a chunk as one transaction (one WAL commit per
//	         chunk instead of one per INSERT batch); completions feed a
//	         single ordered acknowledgement cursor, and chunks carrying
//	         DDL act as serial barriers
//
// The dump transaction COMMITs as soon as the scan finishes — the source
// stops pinning MVCC versions while slaves are still applying.
func pipelineSnapshot(ctl *wire.Client, tenant string, slaves []Backend,
	opts MigrateOptions, budget *flow.TransferBudget) *pipelineResult {
	res := &pipelineResult{slaveErr: make(map[Backend]error)}

	runs := make([]*slaveRun, len(slaves))
	var wg sync.WaitGroup
	live := int32(len(slaves))
	// allDead aborts the producer early (and unblocks a budget wait) once
	// every slave has failed: no point finishing a dump nobody will apply.
	allDead := make(chan struct{})
	for i, sl := range slaves {
		sr := &slaveRun{sl: sl, ch: make(chan *step1Chunk, restoreQueueChunks), done: make(chan struct{})}
		runs[i] = sr
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := restoreStream(sr, tenant, opts); err != nil {
				sr.err = err
				close(sr.done)
				if atomic.AddInt32(&live, -1) == 0 {
					close(allDead)
				}
			}
			// Keep consuming after a failure (and after restoreStream
			// returns) so the producer never blocks on a dead slave and
			// every routed chunk returns its budget claim.
			for c := range sr.ch {
				c.release()
			}
		}()
	}

	start := time.Now()
	sink := func(seq uint32, stmts []string) error {
		if ferr := fault.Inject(faultStep1Chunk); ferr != nil {
			return ferr
		}
		select {
		case <-allDead:
			return errAllSlavesDead
		default:
		}
		c := &step1Chunk{seq: int(seq), stmts: stmts, budget: budget}
		for _, s := range stmts {
			c.bytes += int64(len(s)) + chunkStmtOverhead
			if !strings.HasPrefix(s, "INSERT ") {
				c.ddl = true
			}
		}
		c.refs.Store(int32(len(runs)))
		stall := time.Now()
		if err := budget.Acquire(c.bytes, allDead); err != nil {
			return err
		}
		res.chunks++
		res.stmts += len(stmts)
		obsChunkBytes.Observe(c.bytes)
		obsChunks.Inc()
		for _, sr := range runs {
			select {
			case sr.ch <- c:
			case <-sr.done:
				c.release() // dead slave: its claim is returned unapplied
			}
		}
		obsChunkStall.ObserveDuration(time.Since(stall))
		return nil
	}

	_, err := ctl.ExecStream(fmt.Sprintf("DUMP STREAM %d", opts.ChunkStatements), sink)
	if err == nil {
		_, err = ctl.Exec("COMMIT")
	}
	res.dumpTime = time.Since(start)
	if err != nil && (errors.Is(err, errAllSlavesDead) || errors.Is(err, flow.ErrTransferAborted)) {
		// The stream died because the destinations did; the per-slave
		// errors carry the real cause and Migrate's discard rule decides.
		err = nil
	}
	res.streamErr = err
	// End of stream (clean or not): closing the channels lets every
	// dispatcher finish, drain, and exit.
	for _, sr := range runs {
		close(sr.ch)
	}
	wg.Wait()
	for _, sr := range runs {
		if sr.err != nil {
			res.slaveErr[sr.sl] = sr.err
		}
	}
	res.peakBytes = budget.Peak()
	invariant.Check(func() error {
		if used := budget.Used(); used != 0 {
			return fmt.Errorf("core: step1 transfer budget leaked %d bytes", used)
		}
		return nil
	})
	return res
}

// applyAck is one applier's completion report.
type applyAck struct {
	seq int
	err error
}

// restoreStream restores one slave from the chunk stream: a dispatcher
// feeds nAppliers parallel appliers (each with its own connection, each
// chunk one transaction) and folds their completions into a single ordered
// acknowledgement cursor — chunk k counts as restored only once chunks
// 0..k have all committed. Chunks containing DDL are barriers: the
// dispatcher waits out every in-flight chunk, then applies the DDL
// serially on its own connection, exactly like the monolithic restore did.
func restoreStream(sr *slaveRun, tenant string, opts MigrateOptions) error {
	if ferr := fault.Inject(faultStep2Restore); ferr != nil {
		return ferr
	}
	if err := createFreshDatabase(sr.sl, tenant); err != nil {
		return err
	}
	ctl, err := connectRetry(sr.sl, tenant, faultRestoreDial, opts)
	if err != nil {
		return err
	}
	defer ctl.Close()
	conns := make([]*wire.Client, 0, opts.RestoreAppliers)
	defer func() {
		for _, cn := range conns {
			cn.Close()
		}
	}()
	for i := 0; i < opts.RestoreAppliers; i++ {
		cn, err := connectRetry(sr.sl, tenant, "", opts)
		if err != nil {
			return err
		}
		conns = append(conns, cn)
	}

	work := make(chan *step1Chunk)
	acks := make(chan applyAck, len(conns))
	var appliers sync.WaitGroup
	for _, cn := range conns {
		appliers.Add(1)
		go func(cn *wire.Client) {
			defer appliers.Done()
			for c := range work {
				err := applyChunkTxn(cn, c)
				acks <- applyAck{seq: c.seq, err: err}
				c.release()
			}
		}(cn)
	}

	// Ordered-ack bookkeeping: prefix is the contiguous restored front,
	// pending the out-of-order completions above it.
	prefix, outstanding := 0, 0
	pending := make(map[int]bool)
	var firstErr error
	note := func(a applyAck) {
		if a.err != nil && firstErr == nil {
			firstErr = a.err
		}
		pending[a.seq] = true
		for pending[prefix] {
			delete(pending, prefix)
			prefix++
		}
	}
	collect := func() { // non-blocking ack drain
		for {
			select {
			case a := <-acks:
				outstanding--
				note(a)
			default:
				return
			}
		}
	}

	total := 0
dispatch:
	for c := range sr.ch {
		total++
		collect()
		if firstErr != nil {
			c.release()
			break
		}
		if c.ddl {
			// Barrier: everything before the DDL must be down first, and
			// nothing after it may start until it is.
			for outstanding > 0 {
				a := <-acks
				outstanding--
				note(a)
			}
			if firstErr != nil {
				c.release()
				break
			}
			err := applyChunkSerial(ctl, c)
			note(applyAck{seq: c.seq, err: err})
			c.release()
			if firstErr != nil {
				break
			}
			continue
		}
		for {
			select {
			case work <- c:
				outstanding++
				continue dispatch
			case a := <-acks:
				outstanding--
				note(a)
				if firstErr != nil {
					c.release()
					break dispatch
				}
			}
		}
	}
	close(work)
	for outstanding > 0 {
		a := <-acks
		outstanding--
		note(a)
	}
	appliers.Wait()
	if firstErr != nil {
		return fmt.Errorf("core: restore on %s: %w", sr.sl.BackendName(), firstErr)
	}
	invariant.Assertf(prefix == total, "core: step1 restore acked %d of %d chunks with no error", prefix, total)
	return nil
}

// applyChunkTxn applies an INSERT-only chunk as one transaction: one WAL
// group commit per chunk instead of one per INSERT batch — the restore
// throughput half of the pipelining win.
func applyChunkTxn(cn *wire.Client, c *step1Chunk) error {
	if ferr := fault.Inject(faultStep1Restore); ferr != nil {
		return ferr
	}
	start := time.Now()
	if _, err := cn.Exec("BEGIN"); err != nil {
		return err
	}
	for _, stmt := range c.stmts {
		if _, err := cn.Exec(stmt); err != nil {
			_, _ = cn.Exec("ROLLBACK") // best-effort; the slave is discarded anyway
			return err
		}
	}
	if _, err := cn.Exec("COMMIT"); err != nil {
		return err
	}
	obsApplyLatency.ObserveDuration(time.Since(start))
	return nil
}

// applyChunkSerial applies a DDL-bearing chunk statement by statement in
// autocommit, matching the monolithic restore's DDL semantics.
func applyChunkSerial(cn *wire.Client, c *step1Chunk) error {
	if ferr := fault.Inject(faultStep1Restore); ferr != nil {
		return ferr
	}
	start := time.Now()
	for _, stmt := range c.stmts {
		if _, err := cn.Exec(stmt); err != nil {
			return err
		}
	}
	obsApplyLatency.ObserveDuration(time.Since(start))
	return nil
}
