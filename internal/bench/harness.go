package bench

import (
	"context"
	"fmt"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

// Harness is one experiment's cluster + middleware, mirroring the paper's
// setup: dedicated DBMS nodes behind one Madeus instance, load generators
// speaking to the middleware.
type Harness struct {
	cfg   Config
	MW    *core.Middleware
	Nodes []*cluster.Node
}

// NewHarness boots a middleware with n DBMS nodes.
func NewHarness(cfg Config, n int) (*Harness, error) {
	mw, err := core.New(core.Options{
		Players:        cfg.Players,
		CatchupTimeout: cfg.CatchupTimeout,
		// Bench runs are short; sample the per-tenant series an order of
		// magnitude faster than the production default so the fig7/fig8
		// history curves have enough points across one migration.
		HistoryCadence: 100 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg, MW: mw}
	for i := 0; i < n; i++ {
		node, err := cluster.NewNode(fmt.Sprintf("node%d", i),
			cluster.NodeOptions{Engine: cfg.engineOptions()})
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Nodes = append(h.Nodes, node)
		mw.AddNode(node)
	}
	return h, nil
}

// otherNode returns the node the tenant is NOT on (migration target for
// ping-pong experiments).
func (h *Harness) otherNode() string {
	for _, n := range h.Nodes {
		found := false
		for _, tn := range h.MW.Tenants() {
			t, _ := h.MW.Tenant(tn)
			node, _ := t.Node()
			if node == core.Backend(n) {
				found = true
			}
		}
		if !found {
			return n.Name
		}
	}
	return h.Nodes[len(h.Nodes)-1].Name
}

// Close tears the harness down.
func (h *Harness) Close() {
	if h.MW != nil {
		h.MW.Close()
	}
	for _, n := range h.Nodes {
		n.Close()
	}
}

// Provision creates a tenant on a node and loads the TPC-W data at scale.
func (h *Harness) Provision(tenant, node string, scale tpcw.Scale) error {
	if err := h.MW.ProvisionTenant(tenant, node); err != nil {
		return err
	}
	c, err := wire.Dial(h.MW.Addr(), tenant)
	if err != nil {
		return err
	}
	defer c.Close()
	return tpcw.Load(c, scale)
}

// Workload is one tenant's running EB fleet.
type Workload struct {
	Tenant string
	Rec    *metrics.Recorder

	cancel context.CancelFunc
	done   chan error
}

// StartWorkload launches ebs emulated browsers against a tenant. Stop it
// with Stop, which returns the first transport error (nil is the norm).
func (h *Harness) StartWorkload(tenant string, ebs int, mix tpcw.Mix, scale tpcw.Scale) *Workload {
	ctx, cancel := context.WithCancel(context.Background())
	w := &Workload{
		Tenant: tenant,
		Rec:    metrics.NewRecorder(),
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() {
		w.done <- tpcw.RunFleet(ctx, ebs, mix, scale, h.cfg.Think, func() (tpcw.Execer, error) {
			return wire.Dial(h.MW.Addr(), tenant)
		}, w.Rec)
	}()
	return w
}

// Stop cancels the fleet and waits for it to settle. The recorder is closed
// first so stragglers finishing after the measurement window are counted as
// dropped instead of skewing the series.
func (w *Workload) Stop() error {
	w.Rec.Close()
	w.cancel()
	return <-w.done
}

// MeasureLoad runs one steady-state load measurement: warm, then clear-ish
// measurement via a fresh recorder window.
//
// The recorder cannot be swapped mid-fleet, so the warm observations are
// included; with Warm << Measure the bias is small, and classification only
// needs relative ordering.
func (h *Harness) MeasureLoad(tenant string, ebs int, mix tpcw.Mix, scale tpcw.Scale) (metrics.Summary, error) {
	w := h.StartWorkload(tenant, ebs, mix, scale)
	time.Sleep(h.cfg.Warm + h.cfg.Measure)
	err := w.Stop()
	return w.Rec.Summarize(), err
}

// MigrateUnderLoad starts a workload, migrates after the warm window, stops
// the workload after the post window, and returns the migration report plus
// the workload recorder.
func (h *Harness) MigrateUnderLoad(tenant, dest string, ebs int, mix tpcw.Mix,
	scale tpcw.Scale, opts core.MigrateOptions) (*core.Report, *metrics.Recorder, error) {
	w := h.StartWorkload(tenant, ebs, mix, scale)
	time.Sleep(h.cfg.Warm)
	rep, err := h.MW.Migrate(tenant, dest, opts)
	time.Sleep(h.cfg.Warm) // observe post-migration behaviour
	if stopErr := w.Stop(); stopErr != nil && err == nil {
		err = stopErr
	}
	return rep, w.Rec, err
}
