package core

import (
	"strings"
	"testing"

	"madeus/internal/engine"
	"madeus/internal/obs"
)

func TestAdminChannel(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()

	// Provision a tenant through the control channel.
	if _, err := admin.Exec("ADD TENANT shop ON node0"); err != nil {
		t.Fatal(err)
	}
	c := rig.connect(t, "shop")
	mustExecAll(t, c, "CREATE TABLE t (id INT PRIMARY KEY)", "INSERT INTO t (id) VALUES (1)")
	c.Close()

	// STATUS lists the tenant on node0 with its migration state columns.
	res, err := admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"tenant", "node", "mlc", "state", "lag", "debt"}
	if len(res.Columns) != len(wantCols) {
		t.Fatalf("STATUS columns = %v, want %v", res.Columns, wantCols)
	}
	for i, c := range wantCols {
		if res.Columns[i] != c {
			t.Fatalf("STATUS columns = %v, want %v", res.Columns, wantCols)
		}
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "shop" || res.Rows[0][1].Str != "node0" {
		t.Fatalf("STATUS rows = %v", res.Rows)
	}
	if res.Rows[0][3].Str != "idle" || res.Rows[0][4].Int != 0 || res.Rows[0][5].Int != 0 {
		t.Fatalf("idle tenant state = %v", res.Rows[0][3:])
	}

	// Migrate via the control channel.
	res, err = admin.Exec("MIGRATE shop TO node1 STRATEGY B-MIN")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Str, "B-MIN") {
		t.Fatalf("MIGRATE report = %v", res.Rows)
	}
	res, err = admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Str != "node1" {
		t.Errorf("tenant still on %s", res.Rows[0][1].Str)
	}
}

func TestAdminStatsAndEvents(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()
	if _, err := admin.Exec("ADD TENANT shop ON node0"); err != nil {
		t.Fatal(err)
	}

	// Process-wide STATS includes the core worker counter.
	res, err := admin.Exec("STATS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "metric" {
		t.Fatalf("STATS columns = %v", res.Columns)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].Str == "core.worker.ops" {
			found = true
		}
	}
	if !found {
		t.Fatalf("STATS missing core.worker.ops; %d rows", len(res.Rows))
	}

	// Per-tenant STATS reflects the published migration phase.
	tn, _ := rig.mw.Tenant("shop")
	tn.setProgress("step3.propagate", nil)
	res, err = admin.Exec("STATS shop")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range res.Rows {
		got[row[0].Str] = row[1].Str
	}
	if got["tenant"] != "shop" || got["node"] != "node0" || got["state"] != "step3.propagate" {
		t.Fatalf("STATS shop = %v", got)
	}
	// STATUS mirrors the same live phase.
	res, err = admin.Exec("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][3].Str != "step3.propagate" {
		t.Fatalf("STATUS state = %v", res.Rows[0][3].Str)
	}
	tn.setProgress("", nil)

	if _, err := admin.Exec("STATS nope"); err == nil {
		t.Error("STATS nope: want error")
	}

	// EVENTS tails the tracer.
	obs.Trace.Emit("shop", "admintest.ping", obs.F("k", "v"))
	res, err = admin.Exec("EVENTS 500")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || res.Columns[3] != "event" {
		t.Fatalf("EVENTS columns = %v", res.Columns)
	}
	found = false
	for _, row := range res.Rows {
		if row[3].Str == "admintest.ping" && row[2].Str == "shop" && row[4].Str == "k=v" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EVENTS missing admintest.ping in %d rows", len(res.Rows))
	}
	for _, bad := range []string{"EVENTS 0", "EVENTS -3", "EVENTS x", "EVENTS 1 2"} {
		if _, err := admin.Exec(bad); err == nil {
			t.Errorf("Exec(%q): want error", bad)
		}
	}
}

func TestAdminErrors(t *testing.T) {
	rig := newRig(t, 1, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()
	for _, cmd := range []string{
		"",
		"FLY ME",
		"ADD TENANT x",
		"ADD TENANT x ON nope",
		"MIGRATE x TO node0",
		"MIGRATE x TO node0 STRATEGY warp",
		"MIGRATE x y z",
	} {
		if _, err := admin.Exec(cmd); err == nil {
			t.Errorf("Exec(%q): want error", cmd)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"madeus": Madeus, "Madeus": Madeus, "MADEUS": Madeus,
		"b-all": BAll, "BALL": BAll,
		"B-MIN": BMin, "bmin": BMin,
		"B-CON": BCon, "bcon": BCon,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStrategy("turbo"); err == nil {
		t.Error("want error for unknown strategy")
	}
	// Round trip through String().
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
	}
}
