// Command benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -exp fig6            # one experiment
//	benchrunner -exp all             # everything (several minutes)
//	benchrunner -list                # show available experiments
//	benchrunner -exp fig5 -quick     # faster, smaller populations
//
// Scale knobs (-rowfactor, -ebfactor, -fsync, ...) override the calibrated
// defaults documented in EXPERIMENTS.md.
//
// -json <path> additionally records each experiment's rendered output and
// wall-clock duration (plus the exact Config used) to a machine-readable
// baseline file — the `BENCH_*.json` perf-trajectory snapshots ROADMAP.md
// asks for. Compare two snapshots with any JSON diff; the duration field is
// the coarse regression signal, the embedded tables the precise one.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"madeus/internal/bench"
)

// benchSnapshot is the on-disk shape of a -json baseline.
type benchSnapshot struct {
	Quick       bool         `json:"quick"`
	Config      bench.Config `json:"config"`
	Experiments []benchEntry `json:"experiments"`
}

type benchEntry struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiments")
		quick   = flag.Bool("quick", false, "use the quick configuration")
		rowF    = flag.Int("rowfactor", 0, "override row scale divisor")
		ebF     = flag.Int("ebfactor", 0, "override EB divisor")
		fsync   = flag.Duration("fsync", 0, "override simulated fsync delay")
		stmt    = flag.Duration("stmtcost", 0, "override per-statement CPU cost")
		think   = flag.Duration("think", 0, "override EB think time")
		measure = flag.Duration("measure", 0, "override measurement window")
		catchup = flag.Duration("catchup", 0, "override catch-up timeout (N/A threshold)")
		slots   = flag.Int("slots", 0, "override execution slots per node")
		jsonOut = flag.String("json", "", "write a BENCH_*.json baseline (output + timings) to this path")
	)
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *rowF > 0 {
		cfg.RowFactor = *rowF
	}
	if *ebF > 0 {
		cfg.EBFactor = *ebF
	}
	if *fsync > 0 {
		cfg.FsyncDelay = *fsync
	}
	if *stmt > 0 {
		cfg.StmtCost = *stmt
	}
	if *think > 0 {
		cfg.Think = *think
	}
	if *measure > 0 {
		cfg.Measure = *measure
	}
	if *catchup > 0 {
		cfg.CatchupTimeout = *catchup
	}
	if *slots > 0 {
		cfg.ExecSlots = *slots
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	snap := benchSnapshot{Quick: *quick, Config: cfg}
	run := func(id string) {
		start := time.Now()
		fmt.Printf("# running %s ...\n", id)
		var out io.Writer = os.Stdout
		var buf bytes.Buffer
		if *jsonOut != "" {
			out = io.MultiWriter(os.Stdout, &buf)
		}
		if err := bench.RunByID(id, cfg, out); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("# %s done in %v\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonOut != "" {
			snap.Experiments = append(snap.Experiments, benchEntry{
				ID: id, Seconds: elapsed.Seconds(), Output: buf.String(),
			})
		}
	}
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			// fig8 and fig9/table3 are aliases of shared runs; skip
			// the duplicates in 'all' mode.
			if e.ID == "fig8" || e.ID == "fig9" {
				continue
			}
			run(e.ID)
		}
	} else {
		run(*exp)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote %s\n", *jsonOut)
	}
}
