// Command madeusrepl is an interactive SQL shell against a madeusd tenant
// (or a dbnode database) — the psql of this repository.
//
//	madeusrepl -addr 127.0.0.1:6000 -tenant shop
//
// Each input line is one statement. Besides SQL, the engine's utility
// commands work too: DUMP, VACUUM, CREATE DATABASE (against a dbnode), and
// the madeusd admin channel with -tenant _admin (STATUS, MIGRATE ...).
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"madeus/internal/engine"
	"madeus/internal/wire"
)

func main() {
	addr := "127.0.0.1:6000"
	tenant := "shop"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-addr":
			i++
			if i >= len(args) {
				usage()
			}
			addr = args[i]
		case "-tenant":
			i++
			if i >= len(args) {
				usage()
			}
			tenant = args[i]
		default:
			usage()
		}
	}

	c, err := wire.Dial(addr, tenant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madeusrepl:", err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("connected to %s (database %s); end with \\q\n", addr, tenant)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s=> ", tenant)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		}
		start := time.Now()
		res, err := c.Exec(line)
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		printResult(res, time.Since(start))
	}
}

// printResult renders a result the way psql does: aligned columns, the
// command tag, and the round-trip time.
func printResult(res *engine.Result, d time.Duration) {
	if len(res.Columns) > 0 {
		widths := make([]int, len(res.Columns))
		for i, c := range res.Columns {
			widths[i] = len(c)
		}
		cells := make([][]string, len(res.Rows))
		for r, row := range res.Rows {
			cells[r] = make([]string, len(row))
			for i, v := range row {
				cells[r][i] = v.String()
				if i < len(widths) && len(cells[r][i]) > widths[i] {
					widths[i] = len(cells[r][i])
				}
			}
		}
		line := func(parts []string) {
			out := make([]string, len(parts))
			for i, p := range parts {
				w := len(p)
				if i < len(widths) {
					w = widths[i]
				}
				out[i] = fmt.Sprintf("%-*s", w, p)
			}
			fmt.Println(" " + strings.TrimRight(strings.Join(out, " | "), " "))
		}
		line(res.Columns)
		seps := make([]string, len(res.Columns))
		for i := range seps {
			seps[i] = strings.Repeat("-", widths[i])
		}
		fmt.Println(" " + strings.Join(seps, "-+-"))
		for _, row := range cells {
			line(row)
		}
	}
	fmt.Printf("%s (%v)\n", res.Tag, d.Round(100*time.Microsecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: madeusrepl [-addr host:port] [-tenant name]")
	os.Exit(2)
}
