// Package metrics collects response times and throughput the way the
// paper's evaluation reports them: mean response time per load level
// (Fig 5), and per-interval response-time / throughput time series around a
// migration (Figs 7-19).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates latency observations, each stamped with elapsed time
// from the recorder's start. A recorder may be closed (observations from
// straggler goroutines after the measurement window are dropped, not mixed
// into the results) and may carry a cap bounding memory on very long runs;
// both kinds of rejection are counted in Dropped.
type Recorder struct {
	start time.Time

	mu      sync.Mutex
	lat     []time.Duration // all observations (for quantiles)
	stamps  []time.Duration // elapsed-at-observation, parallel to lat
	errors  int
	dropped int
	closed  bool
	cap     int // max observations kept; 0 = unlimited
}

// NewRecorder starts a recorder; observations are bucketed relative to now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Start returns the recorder's epoch.
func (r *Recorder) Start() time.Time { return r.start }

// SetCap bounds the number of observations kept; once reached, further
// observations are dropped (and counted). n <= 0 means unlimited.
func (r *Recorder) SetCap(n int) {
	r.mu.Lock()
	r.cap = n
	r.mu.Unlock()
}

// Close ends the measurement window: later observations are dropped and
// counted rather than recorded.
func (r *Recorder) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
}

// Observe records one successful interaction's latency.
func (r *Recorder) Observe(latency time.Duration) {
	r.ObserveAt(latency, time.Since(r.start))
}

// ObserveAt records one latency with an explicit elapsed-from-start stamp
// (deterministic time-series tests; Observe stamps with the wall clock).
func (r *Recorder) ObserveAt(latency, elapsed time.Duration) {
	r.mu.Lock()
	if r.closed || (r.cap > 0 && len(r.lat) >= r.cap) {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.lat = append(r.lat, latency)
	r.stamps = append(r.stamps, elapsed)
	r.mu.Unlock()
}

// ObserveError counts a failed interaction (aborts, conflicts).
func (r *Recorder) ObserveError() {
	r.mu.Lock()
	if r.closed {
		r.dropped++
	} else {
		r.errors++
	}
	r.mu.Unlock()
}

// Count returns the number of successful observations.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.lat)
}

// Errors returns the number of failed interactions.
func (r *Recorder) Errors() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errors
}

// Dropped returns the number of observations rejected because the recorder
// was closed or at its cap.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Summary is an aggregate latency/throughput view.
type Summary struct {
	Count      int
	Errors     int
	Dropped    int // observations rejected after Close or past the cap
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	Throughput float64 // successful interactions per second over the span
	Span       time.Duration
}

// Summarize aggregates everything observed so far.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	lat := append([]time.Duration{}, r.lat...)
	errs := r.errors
	dropped := r.dropped
	var span time.Duration
	if len(r.stamps) > 0 {
		span = r.stamps[len(r.stamps)-1]
	}
	r.mu.Unlock()

	s := Summary{Count: len(lat), Errors: errs, Dropped: dropped, Span: span}
	if len(lat) == 0 {
		return s
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, l := range lat {
		total += l
	}
	s.Mean = total / time.Duration(len(lat))
	s.P50 = quantile(lat, 0.50)
	s.P95 = quantile(lat, 0.95)
	s.P99 = quantile(lat, 0.99)
	s.Max = lat[len(lat)-1]
	if span > 0 {
		s.Throughput = float64(len(lat)) / span.Seconds()
	}
	return s
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Bucket is one time-series interval.
type Bucket struct {
	Start time.Duration // interval start, elapsed from recorder start
	Count int
	Mean  time.Duration
	Max   time.Duration
	// Throughput is Count divided by the interval width.
	Throughput float64
}

// Series buckets observations into fixed-width intervals — the x-axis of
// the paper's Figures 7-19.
func (r *Recorder) Series(width time.Duration) []Bucket {
	if width <= 0 {
		width = time.Second
	}
	r.mu.Lock()
	lat := append([]time.Duration{}, r.lat...)
	stamps := append([]time.Duration{}, r.stamps...)
	r.mu.Unlock()
	if len(lat) == 0 {
		return nil
	}
	last := stamps[len(stamps)-1]
	n := int(last/width) + 1
	buckets := make([]Bucket, n)
	var totals []time.Duration = make([]time.Duration, n)
	for i := range buckets {
		buckets[i].Start = time.Duration(i) * width
	}
	for i, st := range stamps {
		b := int(st / width)
		buckets[b].Count++
		totals[b] += lat[i]
		if lat[i] > buckets[b].Max {
			buckets[b].Max = lat[i]
		}
	}
	for i := range buckets {
		if buckets[i].Count > 0 {
			buckets[i].Mean = totals[i] / time.Duration(buckets[i].Count)
		}
		buckets[i].Throughput = float64(buckets[i].Count) / width.Seconds()
	}
	return buckets
}

// String renders a summary compactly. Dropped only appears when non-zero —
// on a clean run the line reads as before.
func (s Summary) String() string {
	line := fmt.Sprintf("n=%d err=%d mean=%v p95=%v p99=%v max=%v tput=%.1f/s",
		s.Count, s.Errors, s.Mean.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond), s.Throughput)
	if s.Dropped > 0 {
		line += fmt.Sprintf(" dropped=%d", s.Dropped)
	}
	return line
}
