// Package lockdiscipline exercises the lockdiscipline analyzer: each line
// marked `// want` must produce exactly one finding; unmarked lines none.
package lockdiscipline

import (
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	n    int
}

// sleepUnderLock blocks while holding the mutex — both the sleep and the
// channel send must be flagged.
func (g *guarded) sleepUnderLock() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want
	g.ch <- g.n                  // want
	g.mu.Unlock()
}

// receiveUnderLock blocks on a channel receive with the lock held.
func (g *guarded) receiveUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n = <-g.ch // want
}

// selectUnderLock blocks on a default-less select with the lock held.
func (g *guarded) selectUnderLock() {
	g.mu.Lock()
	select { // want
	case v := <-g.ch:
		g.n = v
	}
	g.mu.Unlock()
}

// leakyLock never releases — the release-obligation check must fire.
func (g *guarded) leakyLock() {
	g.mu.Lock() // want
	g.n++
}

// cleanCritical is the sanctioned shape: short critical section, blocking
// work outside it. No findings.
func (g *guarded) cleanCritical() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	time.Sleep(time.Millisecond)
	g.ch <- g.n
}

// condWait is the sync.Cond pattern — Wait releases the mutex, so it is
// exempt even though the lock is formally held.
func (g *guarded) condWait() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.n == 0 {
		g.cond.Wait()
	}
}

// branchRelease unlocks on one branch before blocking; the held-set walk
// must honor the release.
func (g *guarded) branchRelease(fast bool) {
	g.mu.Lock()
	if fast {
		g.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	g.n++
	g.mu.Unlock()
}
