package obs

import (
	"sync/atomic"
	"time"
)

// Histogram counts observations into a fixed set of buckets with inclusive
// upper bounds, plus an implicit overflow bucket. Bounds are int64 in the
// unit the instrumentation site chooses (nanoseconds for latencies, plain
// counts for batch sizes). Observation is a linear scan over the bounds —
// bucket sets are small (≤ ~20), so the scan beats binary search's branch
// misses — and one atomic add; count and sum are maintained for the mean.
type Histogram struct {
	name   string
	help   string
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// DurationBuckets is the default latency bucket set: 100µs to ~13s,
// doubling. Suits both the per-statement costs (sub-ms) and the migration
// phase durations (seconds) this repo simulates.
func DurationBuckets() []int64 {
	bounds := make([]int64, 0, 18)
	for b := int64(100 * time.Microsecond); len(bounds) < 18; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// SizeBuckets is the default bucket set for small cardinalities (commit
// group sizes, batch sizes): 1,2,4,...,1024.
func SizeBuckets() []int64 {
	bounds := make([]int64, 0, 11)
	for b := int64(1); b <= 1024; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Observe records one value. No-op while obs is disabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Max    int64    `json:"max"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
}

// Mean returns Sum/Count (0 for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot freezes the histogram. Counts and sum are read without mutual
// exclusion, so a snapshot taken mid-observation can be off by in-flight
// increments — fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// the upper bound of the bucket where the cumulative count crosses q. The
// overflow bucket reports Max.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}
