// Baselines: migrate the same loaded tenant with each propagation strategy
// (B-ALL, B-MIN, B-CON, Madeus) and compare migration times — a
// single-load-level slice of the paper's Figure 6.
//
//	go run ./examples/baselines            # medium load
//	go run ./examples/baselines -ebs 700   # heavy load (paper scale)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"madeus/internal/bench"
	"madeus/internal/core"
	"madeus/internal/tpcw"
)

func main() {
	paperEBs := flag.Int("ebs", 400, "paper-scale EB count (100 light, 400 medium, 700 heavy)")
	flag.Parse()

	cfg := bench.Default()
	cfg.CatchupTimeout = 20 * time.Second
	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)

	fmt.Printf("migrating one tenant under %d paper-EBs (%d emulated browsers) with each strategy\n\n",
		*paperEBs, cfg.EBs(*paperEBs))
	fmt.Printf("%-8s  %-10s  %-28s\n", "strategy", "migration", "notes")
	for _, strat := range core.Strategies() {
		h, err := bench.NewHarness(cfg, 2)
		check(err)
		if err := h.Provision("shop", "node0", scale); err != nil {
			h.Close()
			check(err)
		}
		rep, _, err := h.MigrateUnderLoad("shop", "node1", cfg.EBs(*paperEBs),
			tpcw.Ordering, scale, core.MigrateOptions{Strategy: strat})
		h.Close()
		switch {
		case err == core.ErrCatchupTimeout:
			fmt.Printf("%-8s  %-10s  slave could not catch up (the paper's N/A)\n", strat, "N/A")
		case err != nil:
			log.Fatalf("%s: %v", strat, err)
		default:
			notes := fmt.Sprintf("max commit group %d", rep.Propagation.MaxGroup)
			fmt.Printf("%-8s  %-10v  %s\n", strat, rep.Total().Round(10*time.Millisecond), notes)
		}
	}
	fmt.Println("\nMadeus propagates commits concurrently, so the slave group-commits")
	fmt.Println("them (max commit group > 1); the baselines pay one fsync per commit.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
