package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerJSON(t *testing.T) {
	r := fresh()
	r.NewCounter("h.ops", "").Add(9)
	tr := NewTracer(16)
	tr.Emit("shop", "step4.switchover", F("suspension", "1ms"))

	srv := httptest.NewServer(Handler(r, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/madeus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 9 {
		t.Fatalf("metrics = %+v", snap.Metrics)
	}
	if len(snap.Events) != 1 || snap.Events[0].Name != "step4.switchover" {
		t.Fatalf("events = %+v", snap.Events)
	}
}

func TestHandlerEventLimitAndText(t *testing.T) {
	r := fresh()
	tr := NewTracer(64)
	for i := 0; i < 10; i++ {
		tr.Emit("shop", "tick")
	}
	srv := httptest.NewServer(Handler(r, tr, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/madeus?events=3")
	if err != nil {
		t.Fatal(err)
	}
	var snap DebugSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || len(snap.Events) != 3 {
		t.Fatalf("events=3 returned %d events (err %v)", len(snap.Events), err)
	}

	if resp, err = http.Get(srv.URL + "/debug/madeus?events=bogus"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad events param: status = %d", resp.StatusCode)
	}

	r.NewCounter("t.ops", "").Add(2)
	if resp, err = http.Get(srv.URL + "/debug/madeus/text"); err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "t.ops") {
		t.Fatalf("text dump = %q", body)
	}
}
