// Command dbnode runs one DBMS node: a shared-process engine instance
// (multiple tenant databases, one WAL) behind the wire protocol.
//
// Usage:
//
//	dbnode -listen 127.0.0.1:7001 -db tenantA -db tenantB
//
// The simulated cost knobs (-fsync, -stmtcost, -slots) mirror the paper's
// testbed hardware; see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/obs"
	"madeus/internal/wal"
)

type stringList []string

func (s *stringList) String() string     { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var dbs stringList
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		fsync     = flag.Duration("fsync", 2*time.Millisecond, "simulated WAL fsync latency")
		stmt      = flag.Duration("stmtcost", 0, "simulated per-statement CPU cost")
		slots     = flag.Int("slots", 4, "concurrent statement execution slots")
		serial    = flag.Bool("serialcommit", false, "disable group commit (one fsync per commit)")
		dataDir   = flag.String("data", "", "data directory for a durable node: on-disk WAL + checkpoints, recovered on boot (empty: in-memory)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint interval for a durable node (0 disables)")
		debugAddr = flag.String("debug", "", "serve /debug/madeus JSON stats on this address (empty: disabled)")
	)
	flag.Var(&dbs, "db", "tenant database to create at startup (repeatable; pre-existing ones recovered from -data are kept)")
	flag.Parse()

	mode := wal.GroupCommit
	if *serial {
		mode = wal.SerialCommit
	}
	node, err := cluster.NewNode("dbnode", cluster.NodeOptions{
		Listen: *listen,
		Engine: engine.Options{
			WAL:             wal.Options{SyncDelay: *fsync, Mode: mode},
			ExecSlots:       *slots,
			StmtCost:        *stmt,
			LockTimeout:     time.Second,
			DataDir:         *dataDir,
			CheckpointEvery: *ckptEvery,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbnode:", err)
		os.Exit(1)
	}
	defer node.Close()
	if *dataDir != "" {
		rec := node.Engine.LastRecovery()
		fmt.Printf("dbnode: recovered %s in %v (checkpoint LSN %d, %d WAL records scanned, %d units replayed, databases: %v)\n",
			*dataDir, rec.Duration.Round(time.Millisecond), rec.CheckpointLSN,
			rec.Records, rec.Applied, node.Engine.Databases())
	}
	for _, db := range dbs {
		if _, ok := node.Engine.Database(db); ok {
			continue // recovered from the data dir
		}
		if err := node.Engine.CreateDatabase(db); err != nil {
			fmt.Fprintln(os.Stderr, "dbnode:", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbnode:", err)
			os.Exit(1)
		}
		// No History: dbnode runs no sampler; the middleware owns the
		// per-tenant time series.
		srv := &http.Server{Handler: obs.Handler(obs.Default, obs.Trace, nil)}
		//madeusvet:ignore goroleak Serve returns ErrServerClosed when the deferred srv.Close runs at shutdown
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "dbnode: debug server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("dbnode: debug stats at http://%s/debug/madeus\n", ln.Addr())
	}

	fmt.Printf("dbnode listening on %s (databases: %v, fsync=%v, group commit=%v)\n",
		node.Addr(), dbs, *fsync, !*serial)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dbnode: shutting down")
}
