package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk format. The log file is a sequence of frames:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload bytes
//
// and a record payload is:
//
//	u64 LSN | u64 TxnID | u8 kind |
//	u32 len + bytes (DB) | u32 len + bytes (Table) | u32 len + bytes (Data)
//
// All integers are little-endian. The frame layer is deliberately dumb —
// no escape sequences, no compression — so torn-tail detection reduces to
// "the length prefix or the CRC does not check out", and the same framing
// carries checkpoint pages (see internal/engine). A frame whose length
// prefix exceeds maxFramePayload is treated as corruption: lengths that
// large can only come from a torn or scribbled header, and trusting one
// would make the scanner allocate unbounded memory from garbage.
const (
	frameHeaderSize = 8
	maxFramePayload = 1 << 26 // 64 MiB; far above any record the engine emits
)

// ErrCorrupt reports a frame that failed validation somewhere other than a
// truncatable tail (e.g. during Replay of a log Open already cleaned).
var ErrCorrupt = fmt.Errorf("wal: corrupt frame")

// AppendFrame appends one length-prefixed, CRC-checksummed frame carrying
// payload to dst and returns the extended slice. Shared by the record
// writer below and the engine's checkpoint page writer.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads the next frame from br and returns its payload. It
// returns io.EOF at a clean end, and io.ErrUnexpectedEOF or ErrCorrupt for
// a torn or damaged frame (the caller decides whether that is a truncation
// point or a hard error).
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF: clean end
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return nil, ErrCorrupt
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// encodeRecord appends rec as one frame to dst. The payload is encoded
// directly into dst after a placeholder header — no intermediate payload
// slice — so batched appends into a reusable buffer allocate nothing
// beyond the buffer's own amortized growth.
func encodeRecord(dst []byte, rec Record) []byte {
	start := len(dst)
	var hdr [frameHeaderSize]byte
	dst = append(dst, hdr[:]...) // patched below once the payload is known
	dst = binary.LittleEndian.AppendUint64(dst, rec.LSN)
	dst = binary.LittleEndian.AppendUint64(dst, rec.TxnID)
	dst = append(dst, byte(rec.Kind))
	dst = appendString(dst, rec.DB)
	dst = appendString(dst, rec.Table)
	dst = appendString(dst, rec.Data)
	payload := dst[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeRecord parses one record payload produced by encodeRecord.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	if len(payload) < 17 {
		return rec, ErrCorrupt
	}
	rec.LSN = binary.LittleEndian.Uint64(payload[0:8])
	rec.TxnID = binary.LittleEndian.Uint64(payload[8:16])
	rec.Kind = RecordKind(payload[16])
	if rec.Kind < RecBegin || rec.Kind > RecDDL {
		return rec, ErrCorrupt
	}
	rest := payload[17:]
	var err error
	if rec.DB, rest, err = readString(rest); err != nil {
		return rec, err
	}
	if rec.Table, rest, err = readString(rest); err != nil {
		return rec, err
	}
	if rec.Data, rest, err = readString(rest); err != nil {
		return rec, err
	}
	if len(rest) != 0 {
		return rec, ErrCorrupt
	}
	return rec, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if uint32(len(b)-4) < n {
		return "", nil, ErrCorrupt
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// scanRecords reads consecutive record frames from r, invoking fn with each
// decoded record and the byte offset just past its frame. It returns the
// offset of the end of the last well-formed record and whether the scan
// stopped at a torn or corrupt frame (true) or a clean EOF (false). An
// error from fn aborts the scan and is returned verbatim.
func scanRecords(r io.Reader, fn func(rec Record, end int64) error) (int64, bool, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var end int64
	for {
		payload, err := ReadFrame(br)
		if err == io.EOF {
			return end, false, nil
		}
		if err == io.ErrUnexpectedEOF || err == ErrCorrupt {
			return end, true, nil
		}
		if err != nil {
			return end, false, err
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return end, true, nil
		}
		end += int64(frameHeaderSize + len(payload))
		if fn != nil {
			if ferr := fn(rec, end); ferr != nil {
				return end, false, ferr
			}
		}
	}
}
