// Package engine implements the shared-process DBMS instance Madeus manages:
// one engine per node, hosting many tenant databases that share a single
// write-ahead log (the shared process model of Curino et al. that the paper
// adopts, Sec 1). The engine provides snapshot isolation with the
// first-updater-wins rule via the mvcc package and group commit via the wal
// package, executes the sqlmini SQL subset, and supports consistent DUMPs
// for live migration.
//
// Performance model: each statement consumes one of a bounded number of
// execution slots (simulating CPU cores) for a configurable CPU cost, and
// each update-transaction commit waits for a WAL fsync. These two knobs are
// what make workloads saturate the way the paper's PostgreSQL node does.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/mvcc"
	"madeus/internal/obs"
	"madeus/internal/simlat"
	"madeus/internal/sqlmini"
	"madeus/internal/wal"
)

// Process-wide transaction outcome counters (summed over every tenant of
// every engine in the process); the per-tenant split lives on Database.
var (
	obsCommits   = obs.NewCounter("engine.commits", "transactions committed")
	obsAborts    = obs.NewCounter("engine.aborts", "transactions aborted or rolled back")
	obsConflicts = obs.NewCounter("engine.conflicts", "first-updater-wins serialization aborts")
)

// Options configures an Engine.
type Options struct {
	// WAL configures the shared write-ahead log.
	WAL wal.Options
	// ExecSlots bounds concurrently executing statements (simulated CPU
	// cores). 0 means unlimited.
	ExecSlots int
	// StmtCost is the simulated CPU time consumed by each statement
	// while holding an execution slot.
	StmtCost time.Duration
	// LockTimeout bounds row-lock waits (see mvcc.Manager).
	LockTimeout time.Duration
	// DumpBatch is the number of rows per INSERT statement in DUMP
	// output; it controls how much slower a restore is than a dump.
	// Defaults to 50.
	DumpBatch int
	// DataDir, when non-empty, makes the engine durable: the WAL lives
	// in DataDir as on-disk segment files, checkpoints are written under
	// DataDir, and Open recovers the committed prefix on boot. Empty
	// keeps the engine in-memory (the pre-durability behaviour).
	DataDir string
	// CheckpointEvery runs a background checkpoint at this interval when
	// DataDir is set. Zero disables automatic checkpoints (explicit
	// Checkpoint calls and the CHECKPOINT command still work).
	CheckpointEvery time.Duration
	// MVCCStripes is the stripe count for each tenant's transaction
	// status table and row maps (rounded up to a power of two). 0 selects
	// mvcc.DefaultStripes; 1 reproduces the unsharded layout (the hotpath
	// ablation baseline).
	MVCCStripes int
	// ParseCacheSize bounds the per-tenant statement parse cache
	// (entries). 0 selects DefaultParseCacheSize; negative disables
	// caching entirely.
	ParseCacheSize int
	// LegacyReads restores the pre-sharding read path for Get/Scan —
	// copy-on-read and per-scan key sorting (see mvcc.Manager.LegacyReads).
	// Off by default: reads borrow the immutable stored rows and scans
	// walk the presorted chain spine.
	LegacyReads bool
}

// DefaultParseCacheSize is the per-tenant parse cache capacity when
// Options.ParseCacheSize is zero.
const DefaultParseCacheSize = 4096

// Engine is one DBMS instance ("node" in the paper's cluster).
type Engine struct {
	opts  Options
	log   *wal.Log
	slots chan struct{}

	mu  sync.RWMutex //madeusvet:lockrank engine 30
	dbs map[string]*Database

	// ckptMu orders commits and DDL against checkpoints: every commit
	// point (WAL commit record + fsync + MVCC commit) and every DDL
	// application holds the read side, and Checkpoint holds the write
	// side while it pins the checkpoint LSN and its per-tenant snapshots.
	// That makes "commit record durable at LSN <= ckptLSN" equivalent to
	// "visible in the checkpoint snapshot", which is what lets recovery
	// replay exactly the units beyond the checkpoint. Ranked below the
	// session layer: holding it across the commit fsync is the design.
	//madeusvet:lockrank checkpoint 28
	ckptMu sync.RWMutex

	recovering atomic.Bool   // replaying: suppress WAL appends and fsyncs
	appliedLSN atomic.Uint64 // highest redo unit LSN applied (idempotent redo)
	ckptLSN    atomic.Uint64 // LSN of the last completed checkpoint

	lastRecovery RecoveryStats // set once by Open before serving traffic

	ckptStop chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Database is one tenant: a named catalog of MVCC tables with its own
// transaction manager (transactions never span tenants).
type Database struct {
	Name string

	mgr *mvcc.Manager

	// pcache caches parsed statements by exact text; shared by every
	// session of this tenant. nil when caching is disabled. Execution
	// treats cached ASTs as immutable.
	pcache *sqlmini.Cache

	mu     sync.RWMutex //madeusvet:lockrank database 32
	tables map[string]*mvcc.Table

	// Per-tenant transaction outcomes (monitoring; see DBStats).
	commits   atomic.Uint64
	aborts    atomic.Uint64
	conflicts atomic.Uint64
}

// DBStats is one tenant's transaction-outcome counters.
type DBStats struct {
	Commits   uint64
	Aborts    uint64
	Conflicts uint64 // first-updater-wins serialization aborts (subset of Aborts)
}

// Stats snapshots the tenant's transaction outcome counters.
func (db *Database) Stats() DBStats {
	return DBStats{
		Commits:   db.commits.Load(),
		Aborts:    db.aborts.Load(),
		Conflicts: db.conflicts.Load(),
	}
}

// ParseCacheStats snapshots the tenant's parse-cache counters (zero when
// caching is disabled).
func (db *Database) ParseCacheStats() sqlmini.CacheStats {
	return db.pcache.Stats()
}

// parseCacheSize resolves the configured per-tenant cache capacity:
// 0 → default, negative → disabled (NewCache returns nil for <= 0).
func (e *Engine) parseCacheSize() int {
	switch {
	case e.opts.ParseCacheSize < 0:
		return 0
	case e.opts.ParseCacheSize == 0:
		return DefaultParseCacheSize
	}
	return e.opts.ParseCacheSize
}

// noteCommit records a committed transaction.
func (db *Database) noteCommit() {
	db.commits.Add(1)
	obsCommits.Inc()
}

// noteAbort records an aborted transaction; conflict marks the
// serialization-failure subset.
func (db *Database) noteAbort(conflict bool) {
	db.aborts.Add(1)
	obsAborts.Inc()
	if conflict {
		db.conflicts.Add(1)
		obsConflicts.Inc()
	}
}

// New creates an engine with its WAL committer running. It panics on a
// durability setup failure; engines with a DataDir should use Open.
func New(opts Options) *Engine {
	e, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	return e
}

// Open creates an engine. With DataDir set it opens the on-disk WAL,
// loads the latest checkpoint, replays the committed WAL suffix so the
// MVCC-visible state is exactly the committed prefix at the crash, and
// starts the background checkpointer (if configured).
func Open(opts Options) (*Engine, error) {
	if opts.DumpBatch <= 0 {
		opts.DumpBatch = 50
	}
	if opts.DataDir != "" {
		opts.WAL.Dir = opts.DataDir
	}
	log, err := wal.Open(opts.WAL)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:     opts,
		log:      log,
		dbs:      make(map[string]*Database),
		ckptStop: make(chan struct{}),
	}
	if opts.ExecSlots > 0 {
		e.slots = make(chan struct{}, opts.ExecSlots)
	}
	if opts.DataDir != "" {
		if err := e.recover(); err != nil {
			e.log.Close()
			return nil, err
		}
		if opts.CheckpointEvery > 0 {
			e.wg.Add(1)
			go e.checkpointLoop()
		}
	}
	return e, nil
}

// stopBackground stops the checkpointer (idempotent).
func (e *Engine) stopBackground() {
	e.stopOnce.Do(func() {
		close(e.ckptStop)
		e.wg.Wait()
	})
}

// Close stops the background checkpointer and the WAL committer, flushing
// the WAL tail — a graceful shutdown loses nothing.
func (e *Engine) Close() {
	e.stopBackground()
	e.log.Close()
}

// Crash simulates kill -9: background work stops and the WAL drops its
// unsynced tail instead of flushing it, losing everything since the last
// fsync. A subsequent Open on the same DataDir exercises real recovery.
func (e *Engine) Crash() {
	e.stopBackground()
	e.log.Crash()
}

// logAppend appends a WAL record unless the engine is replaying: recovery
// re-executes logged statements through the normal execution path, and
// re-logging them would double the log on every restart.
func (e *Engine) logAppend(rec wal.Record) {
	if e.recovering.Load() {
		return
	}
	e.log.Append(rec)
}

// logAppendBatch appends a statement's records in one WAL lock round-trip
// (same replay-suppression rule as logAppend).
func (e *Engine) logAppendBatch(recs []wal.Record) {
	if e.recovering.Load() || len(recs) == 0 {
		return
	}
	e.log.AppendBatch(recs)
}

// logCommit waits for a commit fsync unless the engine is replaying
// (replayed units are durable already — they came from the log).
func (e *Engine) logCommit() error {
	if e.recovering.Load() {
		return nil
	}
	return e.log.Commit()
}

// WALStats exposes the shared log's counters.
func (e *Engine) WALStats() wal.Stats { return e.log.Stats() }

// CreateDatabase adds an empty tenant database. The catalog change is
// logged as a DDL record and made durable before returning, so a restarted
// node still knows its tenants.
func (e *Engine) CreateDatabase(name string) error {
	if name == "" {
		return fmt.Errorf("engine: empty database name")
	}
	e.ckptMu.RLock()
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.dbs[name]; ok {
			return fmt.Errorf("engine: database %q already exists", name)
		}
		stripes := e.opts.MVCCStripes
		if stripes == 0 {
			stripes = mvcc.DefaultStripes
		}
		mgr := mvcc.NewManagerStriped(stripes)
		mgr.LockTimeout = e.opts.LockTimeout
		mgr.LegacyReads = e.opts.LegacyReads
		e.dbs[name] = &Database{
			Name:   name,
			mgr:    mgr,
			pcache: sqlmini.NewCache(e.parseCacheSize()),
			tables: make(map[string]*mvcc.Table),
		}
		return nil
	}()
	if err == nil {
		e.logAppend(wal.Record{Kind: wal.RecDDL, DB: name, Data: "CREATE DATABASE " + name})
	}
	e.ckptMu.RUnlock()
	if err != nil {
		return err
	}
	return e.logCommit()
}

// DropDatabase removes a tenant database and all its data (logged and
// durable, like CreateDatabase).
func (e *Engine) DropDatabase(name string) error {
	e.ckptMu.RLock()
	err := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.dbs[name]; !ok {
			return fmt.Errorf("engine: database %q does not exist", name)
		}
		delete(e.dbs, name)
		return nil
	}()
	if err == nil {
		e.logAppend(wal.Record{Kind: wal.RecDDL, DB: name, Data: "DROP DATABASE " + name})
	}
	e.ckptMu.RUnlock()
	if err != nil {
		return err
	}
	return e.logCommit()
}

// Database returns the named tenant.
func (e *Engine) Database(name string) (*Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	db, ok := e.dbs[name]
	return db, ok
}

// Databases lists tenant names in sorted order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.dbs))
	for n := range e.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// acquireSlot blocks until an execution slot is free, then simulates the
// statement's CPU cost. The returned func releases the slot. Recovery
// bypasses the cost model: replay is not customer work and should finish at
// disk speed, not at the simulated CPU's.
func (e *Engine) acquireSlot() func() {
	if e.recovering.Load() {
		return func() {}
	}
	if e.slots != nil {
		e.slots <- struct{}{}
	}
	simlat.CPU(e.opts.StmtCost)
	if e.slots == nil {
		return func() {}
	}
	return func() { <-e.slots }
}

func (db *Database) table(name string) (*mvcc.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Tables lists table names in sorted order.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Manager exposes the tenant's transaction manager (used by tests and by
// the dump path).
func (db *Database) Manager() *mvcc.Manager { return db.mgr }
