package obs

import (
	"testing"
	"time"
)

func histAt(base time.Time, offset time.Duration, ops int64) Sample {
	return Sample{At: base.Add(offset), Ops: ops, Lag: ops % 7, Debt: ops % 11}
}

// TestHistoryRingWraparound fills a ring well past its capacity and checks
// the survivors are exactly the newest cap samples, oldest first.
func TestHistoryRingWraparound(t *testing.T) {
	h := NewHistory(16)
	base := time.Now()
	for i := 0; i < 40; i++ {
		h.Record("t", histAt(base, time.Duration(i)*time.Second, int64(i)))
	}
	got := h.Last("t", -1)
	if len(got) != 16 {
		t.Fatalf("got %d samples after wraparound, want 16", len(got))
	}
	for i, s := range got {
		if want := int64(24 + i); s.Ops != want {
			t.Fatalf("sample %d has Ops=%d, want %d (oldest-first after eviction)", i, s.Ops, want)
		}
	}
	if tail := h.Last("t", 5); len(tail) != 5 || tail[4].Ops != 39 {
		t.Fatalf("Last(5) = %d samples ending Ops=%d, want 5 ending 39", len(tail), tail[len(tail)-1].Ops)
	}
	if h.Last("nobody", -1) != nil {
		t.Fatal("unknown tenant must yield nil, not an empty ring")
	}
}

// TestHistoryEmptyWindow pins the zero-value behaviour: windows with no
// samples summarize to the zero WindowStats instead of NaN averages.
func TestHistoryEmptyWindow(t *testing.T) {
	h := NewHistory(16)
	base := time.Now()
	h.Record("t", histAt(base, 0, 1))

	if got := h.Window("t", base.Add(time.Hour), time.Time{}); len(got) != 0 {
		t.Fatalf("future-from window returned %d samples, want 0", len(got))
	}
	st := Summarize(nil)
	if st.Count != 0 || st.Lag.Avg != 0 || st.OpsPerSec.Max != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zero stats", st)
	}
	if st := h.Stats("nobody", 0); st.Count != 0 {
		t.Fatalf("Stats on unknown tenant has Count=%d, want 0", st.Count)
	}
}

// TestHistoryOpsPerSec checks the throughput derivation across a cadence
// change: the rate always uses the actual inter-sample gap, so retuning the
// sampler mid-series cannot distort the curve.
func TestHistoryOpsPerSec(t *testing.T) {
	h := NewHistory(16)
	base := time.Now()

	h.Record("t", histAt(base, 0, 0))
	h.Record("t", histAt(base, time.Second, 100))   // 100 ops over 1s
	h.Record("t", histAt(base, 3*time.Second, 500)) // 400 ops over 2s (cadence doubled)
	h.Record("t", histAt(base, 4*time.Second, 400)) // counter went backwards: no rate
	h.Record("t", histAt(base, 4*time.Second, 450)) // zero dt: no rate

	got := h.Last("t", -1)
	want := []float64{0, 100, 200, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.OpsPerSec != want[i] {
			t.Fatalf("sample %d OpsPerSec=%v, want %v", i, s.OpsPerSec, want[i])
		}
	}

	st := h.Stats("t", 0)
	if st.Count != 5 || st.OpsPerSec.Max != 200 {
		t.Fatalf("Stats = count %d max ops/s %d, want 5 and 200", st.Count, st.OpsPerSec.Max)
	}
}

// TestHistoryDropAndTenants checks per-tenant teardown removes the series.
func TestHistoryDropAndTenants(t *testing.T) {
	h := NewHistory(16)
	base := time.Now()
	h.Record("a", histAt(base, 0, 1))
	h.Record("b", histAt(base, 0, 1))
	if got := h.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tenants() = %v, want [a b]", got)
	}
	h.Drop("a")
	if got := h.Tenants(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Tenants() after Drop = %v, want [b]", got)
	}
	if h.Last("a", -1) != nil {
		t.Fatal("dropped tenant still has samples")
	}
	if snap := h.Snapshot(-1); len(snap["b"]) != 1 {
		t.Fatalf("Snapshot missing surviving tenant: %v", snap)
	}
}

// TestHistoryDisabled pins the global gate: a disabled process records
// nothing, so re-enabling starts a fresh series.
func TestHistoryDisabled(t *testing.T) {
	h := NewHistory(16)
	SetEnabled(false)
	h.Record("t", histAt(time.Now(), 0, 1))
	SetEnabled(true)
	if got := h.Last("t", -1); got != nil {
		t.Fatalf("disabled Record stored %d samples, want none", len(got))
	}
}
