// Package goroleak exercises the goroleak analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package goroleak

type worker struct {
	jobs chan int
	halt chan struct{}
}

func work() {}

// spinForever launches a goroutine with no escape hatch — it can never be
// told to exit and never signals completion.
func spinForever() {
	go func() { // want
		for {
			work()
		}
	}()
}

// namedLeak launches a same-package function with no escape hatch.
func namedLeak() {
	go spinBody() // want
}

func spinBody() {
	for {
		work()
	}
}

// withDone selects on a shutdown channel — the sanctioned shape.
func (w *worker) withDone() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				_ = j
			case <-w.halt:
				return
			}
		}
	}()
}

// withRange drains a channel; closing it terminates the goroutine.
func (w *worker) withRange() {
	go func() {
		for j := range w.jobs {
			_ = j
		}
	}()
}
