package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzerFixtures drives every analyzer over its fixture package under
// testdata/src (a self-contained module loaded with the real loader). A
// fixture line carrying a `// want` marker must yield exactly one finding of
// the package's namesake rule; every other line must yield none. The errdrop
// fixture additionally covers the //madeusvet:ignore suppression path.
func TestAnalyzerFixtures(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := make(map[string]*Analyzer)
	for _, a := range All() {
		analyzers[a.Name] = a
	}

	tested := make(map[string]bool)
	for _, pkg := range pkgs {
		base := pkg.Path[strings.LastIndex(pkg.Path, "/")+1:]
		a, ok := analyzers[base]
		if !ok {
			continue // helper packages (the invariant stub)
		}
		tested[base] = true
		pkg := pkg
		t.Run(base, func(t *testing.T) {
			if pkg.TypeErr != nil {
				t.Fatalf("fixture failed to type-check: %v", pkg.TypeErr)
			}
			got := make(map[string]int)
			for _, d := range RunAnalyzers(pkg, []*Analyzer{a}) {
				got[fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)]++
			}
			want := wantMarkers(pkg)
			for loc, n := range want {
				if got[loc] != n {
					t.Errorf("%s: got %d findings, want %d", loc, got[loc], n)
				}
			}
			for loc, n := range got {
				if want[loc] == 0 {
					t.Errorf("%s: %d unexpected finding(s)", loc, n)
				}
			}
			if len(want) == 0 {
				t.Fatalf("fixture has no want markers; the positive case is missing")
			}
		})
	}
	for name := range analyzers {
		if !tested[name] {
			t.Errorf("analyzer %s has no fixture package under testdata/src", name)
		}
	}
}

// wantMarkers returns the expected finding count per "file:line", parsed
// from `// want` trailing comments.
func wantMarkers(pkg *Package) map[string]int {
	out := make(map[string]int)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]++
			}
		}
	}
	return out
}

// TestIgnoreDirectiveScope pins the suppression contract: a directive
// suppresses its own line and the next, for the named rules only.
func TestIgnoreDirectiveScope(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src"), "./errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags := RunAnalyzers(pkgs[0], All())
	n := 0
	for _, d := range diags {
		if d.Rule == "errdrop" {
			n++
		}
	}
	// The fixture carries three `// want` positives (dropsCommit plus the
	// two obs-encoder drops); dropsIgnored must NOT add a fourth.
	if n != 3 {
		t.Fatalf("got %d errdrop findings in the fixture, want exactly 3 (the ignored site must be suppressed): %v", n, diags)
	}
}
