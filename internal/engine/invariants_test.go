//go:build invariants

package engine

import (
	"testing"
	"time"

	"madeus/internal/invariant"
)

// newDurableEngine opens a durable engine with one tenant and a little
// committed state, for exercising the recovery-path assertions.
func newDurableEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Options{LockTimeout: time.Second, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRecoveryInvariantsExercised proves the tag-gated recovery assertions
// actually run on a real crash-recovery pass: the checkpoint-LSN bound, the
// double-replay idempotency check, and Replay's LSN monotonicity all bump
// the invariant counter.
func TestRecoveryInvariantsExercised(t *testing.T) {
	dir := t.TempDir()
	e := newDurableEngine(t, dir)
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "CREATE TABLE kv (id INT PRIMARY KEY, n INT)")
	mustExec(t, s, "INSERT INTO kv (id, n) VALUES (1, 1), (2, 2)")
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE kv SET n = n + 1 WHERE id = 1")
	e.Crash()

	invariant.Reset()
	e2 := newDurableEngine(t, dir)
	defer e2.Close()
	if n := invariant.Count(); n == 0 {
		t.Fatal("recovery evaluated no invariant assertions; instrumentation is dead")
	} else {
		t.Logf("recovery evaluated %d assertions", n)
	}
}

// TestCheckpointLSNBoundPanics proves the checkpoint-LSN assertion is live:
// a checkpoint LSN past the durable LSN would record state the log cannot
// justify, and must panic under -tags invariants.
func TestCheckpointLSNBoundPanics(t *testing.T) {
	e := newDurableEngine(t, t.TempDir())
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected the checkpoint-LSN bound assertion to panic")
		}
	}()
	e.checkCkptLSN(e.log.DurableLSN() + 1)
}

// TestDoubleReplayInvariantFires proves the redo-idempotency check is live:
// on an engine whose applied LSN trails the log (here: one that never
// recovered, with committed units in its WAL), a re-replay finds unapplied
// units and the check must report them.
func TestDoubleReplayInvariantFires(t *testing.T) {
	e := newDurableEngine(t, t.TempDir())
	defer e.Close()
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "CREATE TABLE kv (id INT PRIMARY KEY, n INT)")
	mustExec(t, s, "INSERT INTO kv (id, n) VALUES (1, 1)")

	// The engine never ran recovery, so appliedLSN (0) trails the durable
	// units just committed: exactly the state the idempotency check exists
	// to catch.
	if err := e.checkRedoIdempotent(); err == nil {
		t.Fatal("checkRedoIdempotent found nothing despite unapplied units in the log")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected invariant.Check to panic on the idempotency violation")
		}
	}()
	invariant.Check(e.checkRedoIdempotent)
}
