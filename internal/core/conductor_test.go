package core

import (
	"container/heap"
	"fmt"
	"sync"
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/sqlmini"
)

// slaveRig builds a tenant state (no middleware traffic) plus a destination
// node primed with a table, for driving the propagator directly.
func slaveRig(t *testing.T) (*Tenant, *cluster.Node) {
	t.Helper()
	src, err := cluster.NewNode("src", cluster.NodeOptions{Engine: engine.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src.Close)
	dst, err := cluster.NewNode("dst", cluster.NodeOptions{Engine: engine.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dst.Close)
	if err := dst.Engine.CreateDatabase("a"); err != nil {
		t.Fatal(err)
	}
	c, err := dst.Connect("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO kv (k, v) VALUES (%d, 0)", k)); err != nil {
			t.Fatal(err)
		}
	}
	tn := NewTenant("a", src, nil)
	tn.startCapture(false)
	return tn, dst
}

// linkSSB fabricates a committed update syncset and links it.
func linkSSB(tn *Tenant, sts, ets uint64, stmts ...string) *SSB {
	b := &SSB{STS: sts, ETS: ets, update: true}
	for _, s := range stmts {
		class, _ := sqlmini.ClassifyQuery(s)
		b.Entries = append(b.Entries, Entry{SQL: s, Class: class})
	}
	tn.mu.Lock()
	tn.ssl = append(tn.ssl, b)
	tn.mlc = ets + 1
	tn.cond.Broadcast()
	tn.mu.Unlock()
	return b
}

func slaveValue(t *testing.T, dst *cluster.Node, k int) int64 {
	t.Helper()
	c, err := dst.Connect("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec(fmt.Sprintf("SELECT v FROM kv WHERE k = %d", k))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		return -1
	}
	return res.Rows[0][0].Int
}

func TestPropagatorAppliesMadeusSyncsets(t *testing.T) {
	tn, dst := slaveRig(t)
	// Two concurrent txns (same STS) then one after them.
	linkSSB(tn, 0, 0, "SELECT v FROM kv WHERE k = 1", "UPDATE kv SET v = v + 1 WHERE k = 1")
	linkSSB(tn, 0, 1, "SELECT v FROM kv WHERE k = 2", "UPDATE kv SET v = v + 2 WHERE k = 2")
	linkSSB(tn, 2, 2, "SELECT v FROM kv WHERE k = 1", "UPDATE kv SET v = v + 10 WHERE k = 1")

	p := startPropagation(tn, dst, Madeus, 8, 0, 0, 0, nil)
	p.RequestStop()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := slaveValue(t, dst, 1); got != 11 {
		t.Errorf("k=1 v=%d, want 11", got)
	}
	if got := slaveValue(t, dst, 2); got != 2 {
		t.Errorf("k=2 v=%d, want 2", got)
	}
	st := p.Stats()
	if st.Syncsets != 3 {
		t.Errorf("applied %d, want 3", st.Syncsets)
	}
	// The two ETS-adjacent concurrent commits form one batch.
	if st.MaxGroup < 2 {
		t.Errorf("MaxGroup = %d, want >= 2", st.MaxGroup)
	}
}

// TestPropagatorHoldsCommitsBehindActiveFirstOp checks LSIR rule 1-b at the
// propagator level: a commit whose ETS is at or above an unresolved
// transaction's STS must not reach the slave until that transaction
// resolves.
func TestPropagatorHoldsCommitsBehindActiveFirstOp(t *testing.T) {
	tn, dst := slaveRig(t)

	// An active transaction stamped at STS 0 (first op done, not
	// committed) bounds all commits with ETS >= 0.
	active := &SSB{STS: 0}
	tn.mu.Lock()
	tn.firstOpStampedLocked(active)
	tn.mu.Unlock()

	linkSSB(tn, 0, 0, "SELECT v FROM kv WHERE k = 3", "UPDATE kv SET v = 7 WHERE k = 3")
	p := startPropagation(tn, dst, Madeus, 8, 0, 0, 0, nil)
	defer func() {
		p.Abort()
		p.Wait()
	}()

	time.Sleep(100 * time.Millisecond)
	if got := slaveValue(t, dst, 3); got != 0 {
		t.Fatalf("commit leaked past the bound: k=3 v=%d", got)
	}
	if p.Debt() != 0 {
		t.Errorf("held-back syncset counted as debt: %d", p.Debt())
	}

	// Resolving the active transaction releases the bound.
	tn.mu.Lock()
	tn.resolveSSBLocked(active, false)
	tn.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for slaveValue(t, dst, 3) != 7 {
		if time.Now().After(deadline) {
			t.Fatal("commit never propagated after bound release")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPropagatorSerialOrder(t *testing.T) {
	tn, dst := slaveRig(t)
	// Serial replay must preserve link order: two increments on one key.
	linkSSB(tn, 0, 0, "SELECT v FROM kv WHERE k = 5", "UPDATE kv SET v = v * 10 + 1 WHERE k = 5")
	linkSSB(tn, 1, 1, "SELECT v FROM kv WHERE k = 5", "UPDATE kv SET v = v * 10 + 2 WHERE k = 5")
	p := startPropagation(tn, dst, BMin, 1, 0, 0, 0, nil)
	p.RequestStop()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := slaveValue(t, dst, 5); got != 12 {
		t.Errorf("k=5 v=%d, want 12 (ordered replay)", got)
	}
}

func TestPropagatorReplayErrorFailsMigrationPath(t *testing.T) {
	tn, dst := slaveRig(t)
	linkSSB(tn, 0, 0, "SELECT v FROM kv WHERE k = 1", "UPDATE nosuch SET v = 1 WHERE k = 1")
	p := startPropagation(tn, dst, Madeus, 8, 0, 0, 0, nil)
	deadline := time.Now().Add(2 * time.Second)
	for p.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("replay error never surfaced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Abort()
	p.Wait()
}

func TestSSBHeapOrdersBySTSThenETS(t *testing.T) {
	var h ssbHeap
	heap.Push(&h, &SSB{STS: 3, ETS: 9})
	heap.Push(&h, &SSB{STS: 1, ETS: 5})
	heap.Push(&h, &SSB{STS: 3, ETS: 4})
	heap.Push(&h, &SSB{STS: 1, ETS: 2})
	var got []uint64
	for !h.empty() {
		b := heap.Pop(&h).(*SSB)
		got = append(got, b.STS*100+b.ETS)
	}
	want := []uint64{102, 105, 304, 309}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTenantGateBlocksNewTxns(t *testing.T) {
	tn := NewTenant("x", nil, nil)
	tn.setGate(true)
	started := make(chan struct{})
	go func() {
		tn.txnStarted() // blocks on the gate
		close(started)
	}()
	select {
	case <-started:
		t.Fatal("txnStarted did not block on a closed gate")
	case <-time.After(30 * time.Millisecond):
	}
	tn.setGate(false)
	select {
	case <-started:
	case <-time.After(time.Second):
		t.Fatal("txnStarted never unblocked")
	}
	tn.txnEnded()
}

func TestTenantDrainWaitsForActive(t *testing.T) {
	tn := NewTenant("x", nil, nil)
	tn.txnStarted()
	drained := make(chan struct{})
	go func() {
		tn.setGate(true)
		tn.drainActive()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("drain finished with an active txn")
	case <-time.After(30 * time.Millisecond):
	}
	tn.txnEnded()
	select {
	case <-drained:
	case <-time.After(time.Second):
		t.Fatal("drain never finished")
	}
	tn.setGate(false)
}

func TestCommitBound(t *testing.T) {
	tn := NewTenant("x", nil, nil)
	tn.mu.Lock()
	if got := tn.commitBoundLocked(); got != ^uint64(0) {
		t.Errorf("empty bound = %d", got)
	}
	a, b := &SSB{STS: 7}, &SSB{STS: 3}
	tn.firstOpStampedLocked(a)
	tn.firstOpStampedLocked(b)
	if got := tn.commitBoundLocked(); got != 3 {
		t.Errorf("bound = %d, want 3", got)
	}
	tn.resolveSSBLocked(b, false)
	if got := tn.commitBoundLocked(); got != 7 {
		t.Errorf("bound = %d, want 7", got)
	}
	tn.mu.Unlock()
}

func TestSSBHelpers(t *testing.T) {
	b := &SSB{Entries: []Entry{
		{SQL: "SELECT 1 FROM t", Class: sqlmini.OpRead},
		{SQL: "UPDATE t SET a = 1", Class: sqlmini.OpWrite},
	}}
	if b.FirstOp().SQL != "SELECT 1 FROM t" {
		t.Error("FirstOp")
	}
	if len(b.Rest()) != 1 || b.Rest()[0].Class != sqlmini.OpWrite {
		t.Error("Rest")
	}
	if b.OpCount() != 3 { // entries + commit
		t.Errorf("OpCount = %d", b.OpCount())
	}
	empty := &SSB{}
	if empty.FirstOp().SQL != "" || empty.Rest() != nil {
		t.Error("empty SSB helpers")
	}
}

// TestPropagatorConcurrentStress floods the propagator with syncsets from a
// generator goroutine while it runs, then verifies completeness.
func TestPropagatorConcurrentStress(t *testing.T) {
	tn, dst := slaveRig(t)
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			k := i % 10
			linkSSB(tn, uint64(i), uint64(i),
				fmt.Sprintf("SELECT v FROM kv WHERE k = %d", k),
				fmt.Sprintf("UPDATE kv SET v = v + 1 WHERE k = %d", k))
			if i%50 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	p := startPropagation(tn, dst, Madeus, 16, 0, 0, 0, nil)
	wg.Wait()
	p.RequestStop()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Syncsets != n {
		t.Errorf("applied %d, want %d", st.Syncsets, n)
	}
	total := int64(0)
	for k := 0; k < 10; k++ {
		total += slaveValue(t, dst, k)
	}
	if total != n {
		t.Errorf("sum of increments = %d, want %d", total, n)
	}
}
