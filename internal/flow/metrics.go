package flow

import "madeus/internal/obs"

// Backpressure metrics. Registered once at init like every other obs user;
// with obs disabled each update is one atomic load.
var (
	// obsSSLBytes tracks the accounted memory footprint of the migrating
	// tenant's syncset list (sum over tenants currently capturing).
	obsSSLBytes = obs.NewGauge("flow.ssl.bytes",
		"accounted bytes retained in syncset lists")
	// obsSSLOps tracks captured operations retained in syncset lists.
	obsSSLOps = obs.NewGauge("flow.ssl.ops",
		"captured operations retained in syncset lists")
	// obsPaceDelay records each nonzero controller delay decision.
	obsPaceDelay = obs.NewHistogram("flow.pace.delay",
		"per-commit pace delay injected on the migrating tenant",
		obs.DurationBuckets())
	// obsPaceGauge is the currently applied per-commit delay in
	// nanoseconds (0 when pacing is idle).
	obsPaceGauge = obs.NewGauge("flow.pace.delay.now",
		"current per-commit pace delay (ns)")
	// obsAdmitQueue is the number of sessions parked in admission queues.
	obsAdmitQueue = obs.NewGauge("flow.admit.queue",
		"sessions waiting for an admission slot")
	// obsSessions is the number of admitted in-flight sessions.
	obsSessions = obs.NewGauge("flow.sessions",
		"admitted in-flight customer sessions")
	// obsSheds counts sessions rejected by admission control.
	obsSheds = obs.NewCounter("flow.sheds",
		"sessions shed by admission control")
	// obsStalls counts watchdog stall detections.
	obsStalls = obs.NewCounter("flow.stalls",
		"migrations aborted by the stall detector")
	// obsDeadlineAborts counts watchdog deadline expirations.
	obsDeadlineAborts = obs.NewCounter("flow.deadline_aborts",
		"migrations aborted by the migration deadline")
	// obsOverflows counts SSL cap breaches.
	obsOverflows = obs.NewCounter("flow.ssl.overflows",
		"migrations aborted by a syncset-list cap breach")
	// obsTransferBytes tracks the resident bytes of in-flight Step-1
	// snapshot chunks (dumped but not yet applied on every slave), summed
	// over concurrent migrations.
	obsTransferBytes = obs.NewGauge("flow.transfer.bytes",
		"resident snapshot-transfer bytes in flight")
)

// Counter accessors for tests and the admin FLOW listing. Counters are
// process-wide and monotonic; callers diff around an operation.

// Sheds returns the cumulative sessions shed by admission control.
func Sheds() uint64 { return obsSheds.Value() }

// Stalls returns the cumulative stall-detector aborts.
func Stalls() uint64 { return obsStalls.Value() }

// DeadlineAborts returns the cumulative deadline aborts.
func DeadlineAborts() uint64 { return obsDeadlineAborts.Value() }

// Overflows returns the cumulative SSL cap breaches.
func Overflows() uint64 { return obsOverflows.Value() }

// SSLBytes returns the currently accounted syncset-list bytes.
func SSLBytes() int64 { return obsSSLBytes.Value() }

// TransferBytes returns the currently resident snapshot-transfer bytes.
func TransferBytes() int64 { return obsTransferBytes.Value() }

// AdmitQueueDepth returns the sessions currently parked in admission
// queues.
func AdmitQueueDepth() int64 { return obsAdmitQueue.Value() }

// Sessions returns the admitted in-flight sessions.
func Sessions() int64 { return obsSessions.Value() }

// AccountSSL moves the process-wide SSL gauges by the given deltas. The
// core tenant calls it under its own lock whenever syncsets are linked,
// released, or discarded, so the gauges cannot go stale on rollback.
func AccountSSL(deltaOps int, deltaBytes int64) {
	if deltaOps != 0 {
		obsSSLOps.Add(int64(deltaOps))
	}
	if deltaBytes != 0 {
		obsSSLBytes.Add(deltaBytes)
	}
}

// NoteOverflow records an SSL cap breach.
func NoteOverflow() { obsOverflows.Inc() }
