package core

// Backpressure tests: admission control end to end through the wire
// protocol, SSL caps aborting a doomed migration through the rollback
// protocol, the gauge-staleness regression (ssl_depth must return to 0
// after a rollback), and the FLOW admin surface.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/engine"
	"madeus/internal/flow"
	"madeus/internal/testutil"
	"madeus/internal/wal"
	"madeus/internal/wire"
)

// slowDest builds engine options for a destination that replays slowly
// without burning CPU: every replayed commit pays an exclusive 4ms
// simulated fsync (simlat.IO sleeps), so an unthrottled writer fleet on a
// fast source outruns it by orders of magnitude and the debt diverges.
func slowDest() engine.Options {
	return engine.Options{
		WAL:       wal.Options{SyncDelay: 4 * time.Millisecond, Mode: wal.SerialCommit},
		ExecSlots: 1,
	}
}

// newFlowRig is newRig with explicit middleware options and per-node
// engine options (engOpts[i] configures node i), for scenarios that need
// a flow.Config or an asymmetric cluster (fast source, slow destination).
func newFlowRig(t *testing.T, mwOpts Options, engOpts ...engine.Options) *testRig {
	t.Helper()
	testutil.CheckGoroutines(t)
	if mwOpts.CatchupTimeout == 0 {
		mwOpts.CatchupTimeout = 30 * time.Second
	}
	mw, err := New(mwOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mw.Close)
	rig := &testRig{mw: mw}
	for i, eo := range engOpts {
		n, err := cluster.NewNode(fmt.Sprintf("node%d", i), cluster.NodeOptions{Engine: eo})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		mw.AddNode(n)
		rig.nodes = append(rig.nodes, n)
	}
	return rig
}

func TestFlowConfigValidatedAtStartup(t *testing.T) {
	_, err := New(Options{Flow: flow.Config{PaceDecay: 1.5}})
	if err == nil {
		t.Fatal("New accepted an invalid flow.Config")
	}
	if !strings.Contains(err.Error(), "PaceDecay") {
		t.Fatalf("error %v does not name the bad knob", err)
	}
}

func TestAdmissionCapShedsTyped(t *testing.T) {
	rig := newFlowRig(t, Options{Flow: flow.Config{MaxSessions: 1}},
		engine.Options{})
	// Client Close is acknowledged asynchronously by the server, so wait
	// for provision's session (and later c1's) to actually release its
	// slot before dialing the next one.
	s0 := flow.Sessions()
	rig.provision(t, "a", 10)
	waitForCond(t, func() bool { return flow.Sessions() == s0 })

	c1 := rig.connect(t, "a")
	defer c1.Close()

	// Cap reached, no queue: the second session is shed immediately with
	// a typed overload error the client sees as a clean dial failure.
	sheds0 := flow.Sheds()
	start := time.Now()
	_, err := wire.Dial(rig.mw.Addr(), "a")
	if err == nil {
		t.Fatal("dial past the session cap succeeded")
	}
	var se *wire.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "overloaded") {
		t.Fatalf("shed dial error = %v, want a ServerError naming the overload", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("shed took %v; load-shedding must not hang", el)
	}
	if d := flow.Sheds() - sheds0; d != 1 {
		t.Errorf("sheds counter advanced by %d, want 1", d)
	}

	// Releasing the slot (Close) readmits new sessions.
	c1.Close()
	waitForCond(t, func() bool { return flow.Sessions() == s0 })
	c3, err := wire.Dial(rig.mw.Addr(), "a")
	if err != nil {
		t.Fatalf("dial after release: %v", err)
	}
	defer c3.Close()
	if _, err := c3.Exec("SELECT COUNT(*) FROM acct"); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionQueueHandsSlotToWaiter(t *testing.T) {
	rig := newFlowRig(t, Options{Flow: flow.Config{
		MaxSessions: 1, AdmitQueue: 1, AdmitTimeout: 5 * time.Second,
	}}, engine.Options{})
	rig.provision(t, "a", 10)

	c1 := rig.connect(t, "a")
	dialed := make(chan error, 1)
	go func() {
		c2, err := wire.Dial(rig.mw.Addr(), "a")
		if err == nil {
			defer c2.Close()
			_, err = c2.Exec("SELECT COUNT(*) FROM acct")
		}
		dialed <- err
	}()
	// The second dial parks in the admission queue...
	waitForCond(t, func() bool { return flow.AdmitQueueDepth() > 0 })
	select {
	case err := <-dialed:
		t.Fatalf("queued dial returned early: %v", err)
	default:
	}
	// ...until the first session closes and hands its slot over.
	c1.Close()
	select {
	case err := <-dialed:
		if err != nil {
			t.Fatalf("handed-off session: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued dial never completed after the slot freed")
	}
}

func TestAdmissionQueueTimeoutSheds(t *testing.T) {
	rig := newFlowRig(t, Options{Flow: flow.Config{
		MaxSessions: 1, AdmitQueue: 4, AdmitTimeout: 100 * time.Millisecond,
	}}, engine.Options{})
	rig.provision(t, "a", 10)

	c1 := rig.connect(t, "a")
	defer c1.Close()
	start := time.Now()
	_, err := wire.Dial(rig.mw.Addr(), "a")
	el := time.Since(start)
	var se *wire.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "timed out") {
		t.Fatalf("queued dial past AdmitTimeout = %v, want admission-timeout ServerError", err)
	}
	if el < 80*time.Millisecond || el > 3*time.Second {
		t.Fatalf("queued dial shed after %v, want ~100ms", el)
	}
}

// TestSSLCapOverflowAbortsMigration pins the bounded-SSL contract: when the
// capture buffer breaches its configured cap mid-propagation, the migration
// aborts through the rollback protocol (typed flow.ErrSSLOverflow, accurate
// report) instead of growing without limit, and service continues on the
// source.
func TestSSLCapOverflowAbortsMigration(t *testing.T) {
	rig := newFlowRig(t,
		Options{Flow: flow.Config{MaxSSLSyncsets: 16}},
		engine.Options{}, // node0: fast source
		// node1: slow destination. The slowdown must be sleep-based (WAL
		// fsync latency), not StmtCost: simlat.CPU busy-waits, and on a
		// single-core box that starves the source writers too, so the
		// system self-throttles and never diverges.
		slowDest(),
	)
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 3
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 0, stop, done)
	}
	defer func() {
		close(stop)
		for w := 0; w < writers; w++ {
			<-done
		}
	}()
	time.Sleep(30 * time.Millisecond)

	over0 := flow.Overflows()
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{Strategy: Madeus})
	if err == nil {
		t.Fatal("migration succeeded; the 16-syncset cap should have aborted it")
	}
	if !errors.Is(err, flow.ErrSSLOverflow) {
		t.Fatalf("err = %v, want flow.ErrSSLOverflow", err)
	}
	if rep.RollbackStep != "step3.propagate" || !strings.Contains(rep.RollbackReason, "cap breached") {
		t.Errorf("rollback step=%q reason=%q", rep.RollbackStep, rep.RollbackReason)
	}
	if flow.Overflows() == over0 {
		t.Error("ssl_overflows counter did not advance")
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after overflow rollback = %v, want normal", st)
	}
}

// TestSSLGaugesResetAfterRollback is the satellite regression: ssl_depth
// and the flow byte/op gauges used to be updated only on link, so a rolled
// back migration left them frozen at their last value. They must read 0
// once the rollback's stopCapture discards the SSL.
func TestSSLGaugesResetAfterRollback(t *testing.T) {
	bytes0 := flow.SSLBytes()
	rig := newFlowRig(t,
		Options{Flow: flow.Config{}},
		engine.Options{},
		slowDest(),
	)
	rig.provision(t, "a", 120)
	tn, _ := rig.mw.Tenant("a")

	const writers = 4
	stop := make(chan struct{})
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go loadgen(t, rig, "a", w, 0, stop, done)
	}
	stopped := false
	quiesce := func() {
		if stopped {
			return
		}
		stopped = true
		close(stop)
		for w := 0; w < writers; w++ {
			<-done
		}
	}
	defer quiesce()
	time.Sleep(30 * time.Millisecond)

	// The slowed destination cannot keep up; the per-migration deadline
	// fires and the watchdog rolls the attempt back.
	rep, err := rig.mw.Migrate("a", "node1", MigrateOptions{
		Strategy:      Madeus,
		Deadline:      1200 * time.Millisecond,
		DisablePacing: true,
	})
	if !errors.Is(err, flow.ErrDeadline) {
		t.Fatalf("err = %v, want flow.ErrDeadline", err)
	}
	if rep.RollbackStep != "step3.propagate" || !strings.Contains(rep.RollbackReason, "deadline") {
		t.Errorf("rollback step=%q reason=%q", rep.RollbackStep, rep.RollbackReason)
	}

	// Quiesce the writers before reading the gauges: an in-flight commit
	// could otherwise race the assertion.
	quiesce()

	if d := obsSSLDepth.Value(); d != 0 {
		t.Errorf("core.ssl.depth after rollback = %d, want 0", d)
	}
	if got := flow.SSLBytes(); got != bytes0 {
		t.Errorf("flow.ssl.bytes after rollback = %d, want %d (pre-test value)", got, bytes0)
	}
	if mon := tn.Monitor(); mon.SSLDepth != 0 || mon.SSLBytes != 0 {
		t.Errorf("monitor after rollback: depth=%d bytes=%d, want 0/0", mon.SSLDepth, mon.SSLBytes)
	}
	if st := tn.State(); st != StateNormal {
		t.Fatalf("tenant state after rollback = %v, want normal", st)
	}
}

func TestFlowAdminRoundTrip(t *testing.T) {
	rig := newFlowRig(t, Options{Flow: flow.Config{MaxSessions: 7}}, engine.Options{})
	admin := rig.connect(t, AdminDB)
	defer admin.Close()

	knob := func(res map[string]string, k string) string { return res[k] }
	list := func() map[string]string {
		t.Helper()
		res, err := admin.Exec("FLOW")
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(res.Rows))
		for _, row := range res.Rows {
			out[row[0].Str] = row[1].Str
		}
		return out
	}

	if got := knob(list(), "max_sessions"); got != "7" {
		t.Fatalf("FLOW max_sessions = %q, want 7", got)
	}
	for _, cmd := range []string{
		"FLOW SET pace_step 2ms",
		"FLOW SET pace_max_delay 20ms",
		"FLOW SET max_ssl_bytes 1048576",
	} {
		if _, err := admin.Exec(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
	got := list()
	if got["pace_max_delay"] != "20ms" || got["max_ssl_bytes"] != "1048576" {
		t.Fatalf("FLOW after SET: pace_max_delay=%q max_ssl_bytes=%q", got["pace_max_delay"], got["max_ssl_bytes"])
	}
	// The counters ride along in the same listing.
	for _, k := range []string{"sheds", "stalls", "deadline_aborts", "ssl_bytes", "sessions"} {
		if _, ok := got[k]; !ok {
			t.Errorf("FLOW listing is missing %q", k)
		}
	}
	// A bad value must be rejected and leave the running config untouched.
	if _, err := admin.Exec("FLOW SET pace_decay 2"); err == nil {
		t.Fatal("FLOW SET accepted pace_decay 2")
	}
	if _, err := admin.Exec("FLOW SET no_such_knob 1"); err == nil {
		t.Fatal("FLOW SET accepted an unknown knob")
	}
	if got := knob(list(), "pace_max_delay"); got != "20ms" {
		t.Fatalf("failed SET mutated config: pace_max_delay = %q", got)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
