package engine

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"
)

// openDurable opens a durable engine on dir (no background checkpointer:
// the tests drive checkpoints explicitly so runs are deterministic).
func openDurable(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Options{LockTimeout: time.Second, DataDir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return e
}

// durableWorkload drives a seeded random transaction mix on sess and applies
// each COMMITTED transaction to the oracle engine's session as well — the
// oracle is an in-memory engine holding exactly the committed prefix. Ops
// mixes inserts, updates, deletes, and the occasional DDL.
func durableWorkload(t *testing.T, rng *rand.Rand, sess, oracle *Session, txns int, nextID *int) {
	t.Helper()
	mustBoth := func(sql string) {
		mustExec(t, sess, sql)
		mustExec(t, oracle, sql)
	}
	for i := 0; i < txns; i++ {
		if rng.Intn(100) < 8 {
			// DDL is non-transactional: applied (and replayed) immediately.
			idx := fmt.Sprintf("idx_%d", *nextID)
			mustBoth(fmt.Sprintf("CREATE INDEX %s ON kv (n)", idx))
			mustBoth("DROP INDEX " + idx + " ON kv")
		}
		commit := rng.Intn(100) < 75
		var stmts []string
		for n := rng.Intn(3) + 1; n > 0; n-- {
			switch rng.Intn(3) {
			case 0:
				*nextID++
				stmts = append(stmts, fmt.Sprintf(
					"INSERT INTO kv (id, v, n) VALUES (%d, 'v%d', %d)", *nextID, *nextID, rng.Intn(50)))
			case 1:
				stmts = append(stmts, fmt.Sprintf(
					"UPDATE kv SET n = n + 1, v = 'u%d' WHERE id = %d", i, rng.Intn(*nextID+1)))
			default:
				stmts = append(stmts, fmt.Sprintf("DELETE FROM kv WHERE id = %d", rng.Intn(*nextID+1)))
			}
		}
		mustExec(t, sess, "BEGIN")
		for _, s := range stmts {
			mustExec(t, sess, s)
		}
		if !commit {
			mustExec(t, sess, "ROLLBACK")
			continue
		}
		mustExec(t, sess, "COMMIT")
		// Only now does the transaction enter the oracle.
		mustExec(t, oracle, "BEGIN")
		for _, s := range stmts {
			mustExec(t, oracle, s)
		}
		mustExec(t, oracle, "COMMIT")
	}
}

// newOracle builds the in-memory committed-prefix oracle engine.
func newOracle(t *testing.T) *Session {
	t.Helper()
	e := New(Options{LockTimeout: time.Second})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "CREATE TABLE kv (id INT PRIMARY KEY, v TEXT, n INT)")
	return s
}

// requireStateEqual fails unless the recovered database matches the oracle.
func requireStateEqual(t *testing.T, oracle *Session, e *Engine) {
	t.Helper()
	sess, err := e.NewSession("tenant")
	if err != nil {
		t.Fatalf("recovered engine lost the tenant: %v", err)
	}
	defer sess.Close()
	eq, diff, err := StateEqual(oracle, sess)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("recovered state differs from committed-prefix oracle: %s", diff)
	}
}

// TestRecoverCommittedPrefix kills a durable engine mid-workload (kill -9:
// the WAL tail past the last fsync is dropped) and verifies a fresh Open
// rebuilds exactly the committed prefix, matched against an in-memory oracle
// that applied only the committed transactions. Seeds are in the subtest
// names for deterministic replay.
func TestRecoverCommittedPrefix(t *testing.T) {
	for _, seed := range []int64{3, 99, 4096} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			e := openDurable(t, dir)
			if err := e.CreateDatabase("tenant"); err != nil {
				t.Fatal(err)
			}
			sess, err := e.NewSession("tenant")
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, sess, "CREATE TABLE kv (id INT PRIMARY KEY, v TEXT, n INT)")
			oracle := newOracle(t)

			rng := rand.New(rand.NewSource(seed))
			nextID := 0
			durableWorkload(t, rng, sess, oracle, 40, &nextID)

			// An in-flight transaction at the crash: its writes may hit the
			// log buffer but there is no commit record, so recovery must
			// drop it (it never entered the oracle either).
			mustExec(t, sess, "BEGIN")
			nextID++
			mustExec(t, sess, fmt.Sprintf("INSERT INTO kv (id, v, n) VALUES (%d, 'lost', 0)", nextID))
			e.Crash()

			e2 := openDurable(t, dir)
			defer e2.Close()
			rec := e2.LastRecovery()
			if rec.Records == 0 || rec.Applied == 0 {
				t.Fatalf("recovery scanned %d records, applied %d units; want both > 0", rec.Records, rec.Applied)
			}
			requireStateEqual(t, oracle, e2)
		})
	}
}

// TestRecoverAfterCheckpointBoundsReplay checkpoints mid-workload and
// verifies (a) the crash recovery loads the checkpoint and replays only the
// WAL suffix past it, (b) the result still matches the oracle, and (c) the
// checkpoint retired the pre-rotation WAL segments.
func TestRecoverAfterCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, "CREATE TABLE kv (id INT PRIMARY KEY, v TEXT, n INT)")
	oracle := newOracle(t)

	rng := rand.New(rand.NewSource(11))
	nextID := 0
	durableWorkload(t, rng, sess, oracle, 30, &nextID)

	res := mustExec(t, sess, "CHECKPOINT")
	if !strings.HasPrefix(res.Tag, "CHECKPOINT ") {
		t.Fatalf("CHECKPOINT tag = %q", res.Tag)
	}
	// The checkpoint rotated the log and nothing held unresolved write
	// records, so the retired segments are gone: replay work is bounded by
	// the post-checkpoint suffix, not the life of the node.
	segs := walSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("WAL segments after checkpoint = %v, want the fresh one only", segs)
	}

	durableWorkload(t, rng, sess, oracle, 15, &nextID)
	totalRecords := e.WALStats().Records
	e.Crash()

	e2 := openDurable(t, dir)
	defer e2.Close()
	rec := e2.LastRecovery()
	if rec.CheckpointLSN == 0 {
		t.Fatal("recovery did not load the checkpoint")
	}
	if rec.Records >= totalRecords {
		t.Fatalf("recovery scanned %d records, want fewer than the %d ever logged (checkpoint must bound replay)",
			rec.Records, totalRecords)
	}
	requireStateEqual(t, oracle, e2)
}

// TestRecoverCheckpointOnly crashes immediately after a checkpoint: recovery
// must come entirely from the checkpoint image with zero replayed units.
func TestRecoverCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, "CREATE TABLE kv (id INT PRIMARY KEY, v TEXT, n INT)")
	mustExec(t, sess, "INSERT INTO kv (id, v, n) VALUES (1, 'a', 1), (2, 'b', 2)")
	oracle := newOracle(t)
	mustExec(t, oracle, "INSERT INTO kv (id, v, n) VALUES (1, 'a', 1), (2, 'b', 2)")

	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	e2 := openDurable(t, dir)
	rec := e2.LastRecovery()
	if rec.Applied != 0 {
		t.Fatalf("recovery applied %d units, want 0 (all state was checkpointed)", rec.Applied)
	}
	if rec.CheckpointLSN == 0 {
		t.Fatal("recovery did not load the checkpoint")
	}
	requireStateEqual(t, oracle, e2)

	// Third generation: the LSN sequence must continue PAST the checkpoint
	// after a checkpoint-only recovery (the reopened WAL is empty; a
	// restarted sequence would number new commits below the checkpoint LSN
	// and the applied-LSN gate would silently skip them next recovery).
	s2, err := e2.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s2, "INSERT INTO kv (id, v, n) VALUES (3, 'c', 3)")
	mustExec(t, oracle, "INSERT INTO kv (id, v, n) VALUES (3, 'c', 3)")
	e2.Crash()

	e3 := openDurable(t, dir)
	defer e3.Close()
	if rec := e3.LastRecovery(); rec.Applied == 0 {
		t.Fatal("second recovery applied no units; the post-checkpoint commit was lost")
	}
	requireStateEqual(t, oracle, e3)
}

// TestGracefulCloseLosesNothing reopens after Close (which flushes the WAL
// tail): even transactions committed microseconds before shutdown survive,
// and a transaction left open at shutdown does not.
func TestGracefulCloseLosesNothing(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	if err := e.CreateDatabase("tenant"); err != nil {
		t.Fatal(err)
	}
	sess, err := e.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, sess, "CREATE TABLE kv (id INT PRIMARY KEY, v TEXT, n INT)")
	mustExec(t, sess, "INSERT INTO kv (id, v, n) VALUES (1, 'keep', 1)")
	mustExec(t, sess, "BEGIN")
	mustExec(t, sess, "INSERT INTO kv (id, v, n) VALUES (2, 'open-at-shutdown', 2)")
	e.Close()

	e2 := openDurable(t, dir)
	defer e2.Close()
	s2, err := e2.NewSession("tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, err := s2.RowCount("kv")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("rows after graceful close + recover = %d, want 1 (committed row only)", n)
	}
}

// TestRecoverDroppedDatabase verifies catalog DDL replays: a dropped tenant
// stays dropped across a crash even though its CREATE is still in the log.
func TestRecoverDroppedDatabase(t *testing.T) {
	dir := t.TempDir()
	e := openDurable(t, dir)
	for _, name := range []string{"keep", "gone"} {
		if err := e.CreateDatabase(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DropDatabase("gone"); err != nil {
		t.Fatal(err)
	}
	e.Crash()

	e2 := openDurable(t, dir)
	defer e2.Close()
	if _, ok := e2.Database("keep"); !ok {
		t.Error("database keep lost in recovery")
	}
	if _, ok := e2.Database("gone"); ok {
		t.Error("dropped database resurrected by recovery")
	}
}

// walSegments lists the WAL segment file names in dir.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "wal-") && strings.HasSuffix(ent.Name(), ".log") {
			segs = append(segs, ent.Name())
		}
	}
	return segs
}
