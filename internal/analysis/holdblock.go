package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// HoldBlock enforces the "never block while holding a session-or-deeper
// lock" rule interprocedurally: while a mutex annotated with
// //madeusvet:lockrank rank >= RankSession is held, no blocking operation
// may be reachable — directly or through any chain of calls resolved by the
// whole-load call graph. Blocking operations are channel send/receive,
// default-less select, sync.Cond.Wait, WaitGroup.Wait, time.Sleep,
// simulated I/O, net dial/listen, WAL fsync / group-commit waits, pacing
// and transfer-budget waits, and wire client round-trips.
//
// The one sanctioned deviation in the tree is the WAL's serial-mode commit,
// which models an exclusive fsync per commit and carries an inline
// //madeusvet:ignore with its justification. sync.Cond.Wait on the held
// lock's own condition variable releases that mutex while waiting; if a
// new call site needs that pattern on a ranked lock, suppress it inline
// with the same reasoning.
var HoldBlock = &Analyzer{
	Name: "holdblock",
	Doc:  "no blocking operation reachable (transitively) while a lock of rank >= session is held",
	Run:  runHoldBlock,
}

func runHoldBlock(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	all := prog.cached("holdblock", func() []Diagnostic {
		return holdBlockFindings(prog)
	})
	pass.adoptOwned(all)
}

func holdBlockFindings(prog *Program) []Diagnostic {
	var out []Diagnostic
	reported := make(map[token.Pos]bool) // one finding per site

	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		out = append(out, Diagnostic{
			Pos:     prog.Fset.Position(pos),
			Rule:    "holdblock",
			Message: fmt.Sprintf(format, args...),
		})
	}

	// rankedHeld renders the session-or-deeper locks in held, if any.
	rankedHeld := func(held []heldLock) string {
		var names []string
		for _, h := range held {
			if r, ok := prog.Ranks.Rank(h.obj); ok && r.Rank >= RankSession {
				names = append(names, fmt.Sprintf("%s (rank %d)", r.Name, r.Rank))
			}
		}
		return strings.Join(names, ", ")
	}

	for _, fi := range prog.sortedFuncs() {
		// Direct blocking operations under a ranked lock.
		for _, b := range fi.blocks {
			if locks := rankedHeld(b.held); locks != "" {
				report(b.pos, "%s while holding %s", b.kind, locks)
			}
		}
		// Call sites whose callees (transitively) reach a blocking op.
		for _, cs := range fi.calls {
			locks := rankedHeld(cs.held)
			if locks == "" {
				continue
			}
			kind, chain, ok := blockingReach(prog, cs)
			if !ok {
				continue
			}
			via := ""
			if len(chain) > 1 {
				via = " (" + strings.Join(chain, " → ") + ")"
			}
			report(cs.pos, "call to %s reaches %s%s while holding %s", cs.display, kind, via, locks)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// blockingReach picks a deterministic witness among the call site's
// callees: the lexicographically first blocking kind, with its call chain.
func blockingReach(prog *Program, cs callSite) (kind string, chain []string, ok bool) {
	type hit struct {
		kind  string
		chain []string
	}
	var best *hit
	for _, callee := range cs.callees {
		g := prog.funcs[callee]
		if g == nil {
			continue
		}
		for k, w := range g.sumBlocks {
			h := hit{kind: k, chain: prependPath(displayName(callee), w.path)}
			if best == nil || h.kind < best.kind ||
				(h.kind == best.kind && len(h.chain) < len(best.chain)) {
				c := h
				best = &c
			}
		}
	}
	if best == nil {
		return "", nil, false
	}
	return best.kind, best.chain, true
}
