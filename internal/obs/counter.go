package obs

import (
	"sync/atomic"
	"unsafe"
)

// numCells is the counter stripe width. Power of two so the cell index is a
// mask, sized past the core counts this middleware realistically runs on.
const numCells = 16

// cell is one counter stripe, padded so adjacent cells never share a cache
// line (the classic false-sharing fix; 64-byte lines on every platform we
// target).
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing, striped counter. The zero value is
// NOT usable; obtain one from a Registry (or the package-level helpers) so
// it is named and snapshotted.
type Counter struct {
	name  string
	help  string
	cells [numCells]cell
}

// cellIndex picks a stripe for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a local spreads callers across
// cells; shifting off the low bits drops the within-frame offset. The
// uintptr conversion keeps b on the stack (nothing retains a pointer).
func cellIndex() uint {
	var b byte
	return uint(uintptr(unsafe.Pointer(&b))>>10) & (numCells - 1)
}

// Add increments the counter. No-op while obs is disabled.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.cells[cellIndex()].v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value (pool depth, active connections). Writes
// are single atomics; sharding buys nothing for a last-writer-wins value.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores the gauge value. No-op while obs is disabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use for inc/dec pairs around a resource's
// lifetime). No-op while obs is disabled.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Inc is Add(1).
func (g *Gauge) Inc() { g.Add(1) }

// Dec is Add(-1).
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// GaugeFunc is a gauge whose value is computed at snapshot time (e.g. a
// queue length already maintained elsewhere). The callback must be safe to
// invoke from any goroutine.
type GaugeFunc struct {
	name string
	help string
	fn   func() int64
}

// Value invokes the callback.
func (g *GaugeFunc) Value() int64 { return g.fn() }

// Name returns the registered name.
func (g *GaugeFunc) Name() string { return g.name }
