package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that discard an error result on the paths where
// a silently lost error corrupts the protocol: commit, WAL, and wire
// operations. A call is on such a path when its name (case-insensitively)
// contains one of the risky verbs below; the call must also actually return
// an error (checked via type info when available). Best-effort teardown is
// expressed with an explicit `_ =` assignment, which this rule deliberately
// accepts — the discard is then visible in the source.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently discarded errors on commit/WAL/wire paths",
	Run:  runErrDrop,
}

// riskyVerbs are the commit/WAL/wire path markers. "encode" covers the
// observability snapshot encoders (obs.WriteJSON and friends): a stats
// surface that silently truncates its output misleads the operator reading
// it, so those writer errors must be handled or visibly discarded too.
var riskyVerbs = []string{
	"commit", "exec", "flush", "sync", "write", "send", "append", "rollback", "relay", "restore",
	"encode",
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name == "" || !isRiskyName(name) {
				return true
			}
			if isInfallibleWriter(pass, call) {
				return true
			}
			returnsErr, known := callReturnsError(pass, call)
			if known && !returnsErr {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s dropped on a commit/WAL/wire path; handle the error or discard explicitly with _ =", name)
			return true
		})
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isRiskyName(name string) bool {
	lower := strings.ToLower(name)
	for _, v := range riskyVerbs {
		if strings.Contains(lower, v) {
			return true
		}
	}
	return false
}

// callReturnsError reports whether any result of the call is an error.
// known is false when type info cannot answer (the caller then assumes the
// name heuristic).
func callReturnsError(pass *Pass, call *ast.CallExpr) (returnsErr, known bool) {
	t := pass.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true, true
		}
	}
	return false, true
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isInfallibleWriter exempts strings.Builder and bytes.Buffer methods: their
// Write* error results are documented to always be nil.
func isInfallibleWriter(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	n := namedType(pass.TypeOf(sel.X))
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}
