// Package bench reproduces the paper's evaluation (Section 5): every figure
// and table has a regenerator here, driven either by cmd/benchrunner or by
// the testing.B benches in the repository root.
//
// The paper's testbed (five 4-core Xeon nodes, SATA HDDs, 1 GbE, 0.8-12 GB
// databases, 100-1000 EBs, runs of hundreds of seconds) is scaled down so
// each experiment completes in seconds while preserving the relations the
// paper reports: who wins, by roughly what factor, and where behaviour
// changes. The scaling knobs live in Config; EXPERIMENTS.md records the
// paper-vs-measured comparison for the default configuration.
package bench

import (
	"time"

	"madeus/internal/engine"
	"madeus/internal/wal"
)

// Config is the scale substitution for the paper's testbed.
type Config struct {
	// RowFactor divides TPC-W populations (paper: 100k-2M items).
	RowFactor int
	// EBFactor divides EB counts (paper: 100-1000 EBs).
	EBFactor int
	// Think is the EB think time (paper: TPC-W's ~7 s, scaled to ms).
	Think time.Duration
	// FsyncDelay is the simulated WAL fsync (paper: SATA HDD, ~5-10 ms).
	FsyncDelay time.Duration
	// StmtCost is the simulated per-statement CPU cost.
	StmtCost time.Duration
	// ExecSlots bounds concurrent statement execution per node (paper:
	// 4-core Xeon E3).
	ExecSlots int
	// Warm and Measure are the workload windows around measurements.
	Warm    time.Duration
	Measure time.Duration
	// CatchupTimeout bounds Step 3 before a migration reports N/A.
	CatchupTimeout time.Duration
	// Players caps concurrent Madeus players.
	Players int
}

// Default returns the calibrated default configuration (see EXPERIMENTS.md).
func Default() Config {
	return Config{
		RowFactor:      50,
		EBFactor:       7,
		Think:          350 * time.Millisecond,
		FsyncDelay:     2 * time.Millisecond,
		StmtCost:       700 * time.Microsecond,
		ExecSlots:      2,
		Warm:           time.Second,
		Measure:        3 * time.Second,
		CatchupTimeout: 30 * time.Second,
		Players:        64,
	}
}

// Quick returns a faster configuration for the testing.B benches: smaller
// populations and shorter windows, same relative cost structure.
func Quick() Config {
	c := Default()
	c.RowFactor = 400
	c.Warm = 200 * time.Millisecond
	c.Measure = time.Second
	c.CatchupTimeout = 8 * time.Second
	return c
}

// EBs scales a paper EB count.
func (c Config) EBs(paperEBs int) int {
	n := paperEBs / c.EBFactor
	if n < 1 {
		n = 1
	}
	return n
}

// engineOptions builds the per-node engine configuration.
func (c Config) engineOptions() engine.Options {
	return engine.Options{
		WAL:       wal.Options{SyncDelay: c.FsyncDelay, Mode: wal.GroupCommit},
		ExecSlots: c.ExecSlots,
		StmtCost:  c.StmtCost,
		// PostgreSQL's deadlock_timeout default: waits beyond it abort.
		LockTimeout: time.Second,
		DumpBatch:   50,
	}
}

// Paper-scale load levels (Sec 5.2's preliminary experiment selected these).
const (
	PaperLightEBs  = 100
	PaperMediumEBs = 400
	PaperHeavyEBs  = 700
)
