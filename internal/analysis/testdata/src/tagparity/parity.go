// Package tagparity exercises the tagparity analyzer over a tag-gated file
// pair (gated_on.go requires the parityprobe tag, gated_off.go its
// absence): each line marked `// want` must produce exactly one finding;
// unmarked lines none. Only gated_off.go is ever type-checked — the tagged
// variant is compared by parsing alone.
package tagparity

// Shared code without a build constraint belongs to both variants and is
// never compared.
func shared() {}
