// Package errdrop exercises the errdrop analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package errdrop

import (
	"errors"
	"io"
	"strings"
)

type store struct{ dirty bool }

// Commit is a risky-verb method returning an error.
func (s *store) Commit() error {
	if s.dirty {
		return errors.New("dirty")
	}
	return nil
}

// Flush returns no error; the type checker clears it despite the verb.
func (s *store) Flush() {}

// Lookup has no risky verb in its name.
func (s *store) Lookup() error { return nil }

// dropsCommit silently discards the commit error.
func dropsCommit(s *store) {
	s.Commit() // want
}

// dropsIgnored documents the discard with a suppression directive; the
// finding must be suppressed.
func dropsIgnored(s *store) {
	//madeusvet:ignore errdrop fixture: documented best-effort site
	s.Commit()
}

// explicitDiscard uses the accepted `_ =` form.
func explicitDiscard(s *store) {
	_ = s.Commit()
}

// handled checks the error.
func handled(s *store) error {
	if err := s.Commit(); err != nil {
		return err
	}
	return nil
}

// flushNoError calls a risky-named method that returns nothing.
func flushNoError(s *store) {
	s.Flush()
}

// lookupDropped drops an error, but not on a risky path.
func lookupDropped(s *store) {
	s.Lookup()
}

// builderWrites hits the infallible-writer exemption.
func builderWrites() string {
	var b strings.Builder
	b.WriteString("hello")
	b.WriteByte(' ')
	return b.String()
}

// sink mirrors the internal/obs surfaces: Emit is fire-and-forget (no error
// result — nothing to drop), while the snapshot encoders return the
// destination writer's error.
type sink struct{}

// Emit records an event; it cannot fail.
func (sink) Emit(name string) {}

// WriteJSON encodes a snapshot to w ("write" verb).
func (sink) WriteJSON(w io.Writer) error {
	_, err := w.Write([]byte("{}"))
	return err
}

// EncodeEvents streams the event tail to w ("encode" verb).
func (sink) EncodeEvents(w io.Writer) error {
	_, err := w.Write([]byte("[]"))
	return err
}

// emitNoError calls the no-error emit path; the type checker clears it.
func emitNoError(s sink) {
	s.Emit("migrate.begin")
}

// dropsWriteJSON silently discards the encoder's writer error.
func dropsWriteJSON(s sink, w io.Writer) {
	s.WriteJSON(w) // want
}

// dropsEncodeEvents exercises the "encode" verb.
func dropsEncodeEvents(s sink, w io.Writer) {
	s.EncodeEvents(w) // want
}

// encodeHandled returns the encoder error to the caller.
func encodeHandled(s sink, w io.Writer) error {
	return s.EncodeEvents(w)
}

// encodeDiscarded uses the accepted explicit form.
func encodeDiscarded(s sink, w io.Writer) {
	_ = s.WriteJSON(w)
}
