// Package sqlmini implements the SQL subset understood by the Madeus
// middleware and by the embedded DBMS engine.
//
// The middleware only needs to parse operations far enough to classify them
// (first read, read, write, commit, abort) and to relay them verbatim; the
// engine needs a full parse to execute them. Both share this package.
//
// Supported statements:
//
//	CREATE TABLE t (col TYPE [PRIMARY KEY], ...)
//	DROP TABLE t
//	INSERT INTO t (c1, c2, ...) VALUES (v1, v2, ...)[, (...), ...]
//	SELECT c1, c2 | * | COUNT(*) | SUM(c) FROM t [WHERE expr]
//	       [ORDER BY col [ASC|DESC]] [LIMIT n]
//	UPDATE t SET c1 = expr [, ...] [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	BEGIN | COMMIT | ROLLBACK | ABORT
package sqlmini

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol // punctuation and operators: ( ) , * = <> != < <= > >= + - / ;
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its position in the input.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep their case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords is the set of reserved words. Matching is case-insensitive.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "ABORT": true, "AND": true, "OR": true, "NOT": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"COUNT": true, "SUM": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INT": true, "FLOAT": true, "TEXT": true, "BOOL": true,
	"FOR": true, "SHARE": true, "INDEX": true, "ON": true,
}
