package core

import (
	"errors"
	"sync"
	"testing"
)

// Regression test: propagator.fail used to let a concurrent Abort overwrite
// the first real failure with errAborted (so Report.RollbackReason blamed
// "propagation aborted" instead of the actual cause), and closed the abort
// channel outside p.mu so two racing callers could both observe
// aborted==false. Hammer fail/Abort/RequestStop/monitoring from many
// goroutines under -race and pin that the real error always wins.
func TestPropagatorFailRaceKeepsRealError(t *testing.T) {
	tn, dst := slaveRig(t)
	realErr := errors.New("destination disk on fire")

	for i := 0; i < 100; i++ {
		p := startPropagation(tn, dst, Madeus, 4, 0, 0, 0, nil)
		var wg sync.WaitGroup
		wg.Add(4)
		go func() { defer wg.Done(); p.Abort() }()
		go func() { defer wg.Done(); p.fail(realErr) }()
		go func() { defer wg.Done(); p.RequestStop() }()
		go func() {
			defer wg.Done()
			_ = p.Err()
			_ = p.Lag()
			_ = p.Debt()
			_ = p.Stats()
		}()
		wg.Wait()
		p.Wait() //nolint:errcheck // judged via Err below
		if err := p.Err(); !errors.Is(err, realErr) {
			t.Fatalf("iteration %d: Err() = %v, want the real failure to beat the abort marker", i, err)
		}
	}
}

// The deterministic orderings, pinned explicitly: a real failure must stick
// whether it lands before or after the abort.
func TestPropagatorFailOrderings(t *testing.T) {
	tn, dst := slaveRig(t)
	realErr := errors.New("boom")

	p := startPropagation(tn, dst, Madeus, 4, 0, 0, 0, nil)
	p.Abort()
	p.fail(realErr)
	p.Wait() //nolint:errcheck // judged via Err below
	if err := p.Err(); !errors.Is(err, realErr) {
		t.Fatalf("abort-then-fail: Err() = %v, want %v", err, realErr)
	}

	p = startPropagation(tn, dst, Madeus, 4, 0, 0, 0, nil)
	p.fail(realErr)
	p.Abort()
	p.Wait() //nolint:errcheck // judged via Err below
	if err := p.Err(); !errors.Is(err, realErr) {
		t.Fatalf("fail-then-abort: Err() = %v, want %v", err, realErr)
	}
}
