package engine

import (
	"strings"
	"testing"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// evalOn parses `SELECT * FROM t WHERE <expr>` and evaluates the WHERE
// clause against one row.
func evalOn(t *testing.T, expr string, schema *storage.Schema, row storage.Row) (sqlmini.Value, error) {
	t.Helper()
	st, err := sqlmini.Parse("SELECT * FROM t WHERE " + expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return evalExpr(st.(*sqlmini.Select).Where, schema, row)
}

func evalSchema(t *testing.T) (*storage.Schema, storage.Row) {
	t.Helper()
	s, err := storage.NewSchema("t", []storage.Column{
		{Name: "i", Type: sqlmini.KindInt, PrimaryKey: true},
		{Name: "f", Type: sqlmini.KindFloat},
		{Name: "s", Type: sqlmini.KindText},
		{Name: "b", Type: sqlmini.KindBool},
		{Name: "n", Type: sqlmini.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := storage.Row{
		sqlmini.NewInt(10), sqlmini.NewFloat(2.5), sqlmini.NewText("hi"),
		sqlmini.NewBool(true), sqlmini.Null(),
	}
	return s, row
}

func TestEvalArithmetic(t *testing.T) {
	schema, row := evalSchema(t)
	cases := map[string]sqlmini.Value{
		"i + 5":       sqlmini.NewInt(15),
		"i - 3":       sqlmini.NewInt(7),
		"i * 2":       sqlmini.NewInt(20),
		"i / 3":       sqlmini.NewInt(3), // integer division
		"f + 1":       sqlmini.NewFloat(3.5),
		"f * 2":       sqlmini.NewFloat(5),
		"i + f":       sqlmini.NewFloat(12.5), // mixed widens
		"f / 2":       sqlmini.NewFloat(1.25),
		"-i":          sqlmini.NewInt(-10),
		"-f":          sqlmini.NewFloat(-2.5),
		"i + n":       sqlmini.Null(), // NULL propagates
		"-n":          sqlmini.Null(),
		"2 + 3 * 4":   sqlmini.NewInt(14),
		"(2 + 3) * 4": sqlmini.NewInt(20),
	}
	for expr, want := range cases {
		got, err := evalOn(t, expr, schema, row)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	schema, row := evalSchema(t)
	cases := map[string]bool{
		"i = 10":     true,
		"i <> 10":    false,
		"i != 9":     true,
		"i < 11":     true,
		"i <= 10":    true,
		"i > 10":     false,
		"i >= 10":    true,
		"f = 2.5":    true,
		"s = 'hi'":   true,
		"s < 'hj'":   true,
		"b = TRUE":   true,
		"i = f":      false, // 10 vs 2.5
		"NOT i = 10": false,
	}
	for expr, want := range cases {
		got, err := evalOn(t, expr, schema, row)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got.Kind != sqlmini.KindBool || got.Bool != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	schema, row := evalSchema(t)
	// n is NULL: comparisons yield NULL; AND/OR follow SQL semantics.
	null := map[string]bool{
		"n = 1":            true,
		"n <> 1":           true,
		"b AND n = 1":      true, // TRUE AND NULL = NULL
		"n = 1 OR i = 999": true, // NULL OR FALSE = NULL
		"NOT n = 1":        true, // NOT NULL = NULL
	}
	for expr := range null {
		got, err := evalOn(t, expr, schema, row)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if !got.IsNull() {
			t.Errorf("%s = %v, want NULL", expr, got)
		}
	}
	// Short-circuit-style identities.
	truths := map[string]bool{
		"i = 999 AND n = 1": false, // FALSE AND NULL = FALSE
		"i = 10 OR n = 1":   true,  // TRUE OR NULL = TRUE
	}
	for expr, want := range truths {
		got, err := evalOn(t, expr, schema, row)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if got.Kind != sqlmini.KindBool || got.Bool != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalFilterSelectsOnlyTrue(t *testing.T) {
	schema, row := evalSchema(t)
	for expr, want := range map[string]bool{
		"i = 10": true,
		"i = 11": false,
		"n = 1":  false, // NULL is not selected
	} {
		st, err := sqlmini.Parse("SELECT * FROM t WHERE " + expr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := evalFilter(st.(*sqlmini.Select).Where, schema, row)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("filter %s = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	schema, row := evalSchema(t)
	for _, expr := range []string{
		"i / 0",         // integer division by zero
		"f / 0",         // float division by zero
		"i / (f - 2.5)", // float zero via expression
		"s + 1",         // arithmetic on text
		"-s",            // negate text
		"NOT i",         // NOT of non-bool
		"i AND b",       // AND with non-bool operand
		"missing = 1",   // unknown column
		"s = 1",         // incomparable kinds
	} {
		if _, err := evalOn(t, expr, schema, row); err == nil {
			t.Errorf("%s: want error", expr)
		}
	}
}

func TestEvalColumnInConstantContext(t *testing.T) {
	// INSERT values cannot reference columns.
	e := New(Options{})
	defer e.Close()
	if err := e.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	s, _ := e.NewSession("d")
	mustExec(t, s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	_, err := s.Exec("INSERT INTO t (id, v) VALUES (1, id)")
	if err == nil || !strings.Contains(err.Error(), "constant context") {
		t.Errorf("got %v, want constant-context error", err)
	}
}
