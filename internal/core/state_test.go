package core

import (
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/wire"
)

// TestStandbyTakeover exports the active middleware's state, imports it
// into a standby in front of the same nodes, and verifies customers and
// migrations work on the standby (Sec 4.2).
func TestStandbyTakeover(t *testing.T) {
	rig := newRig(t, 2, engine.Options{})
	rig.provision(t, "a", 30)

	// Some update traffic so the MLC is non-zero.
	c := rig.connect(t, "a")
	mustExecAll(t, c, "BEGIN", "SELECT bal FROM acct WHERE id = 1",
		"UPDATE acct SET bal = bal + 1 WHERE id = 1", "COMMIT")
	c.Close()
	activeTn, _ := rig.mw.Tenant("a")
	wantMLC := activeTn.MLC()
	if wantMLC == 0 {
		t.Fatal("setup: MLC still zero")
	}

	// Serialize the active state and stand up the standby.
	data, err := rig.mw.ExportState().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	st, err := UnmarshalState(data)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := New(Options{CatchupTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	for _, n := range rig.nodes {
		standby.AddNode(n)
	}
	if err := standby.ImportState(st); err != nil {
		t.Fatal(err)
	}

	// The standby routes the tenant to the right node with a resumed MLC.
	tn, ok := standby.Tenant("a")
	if !ok {
		t.Fatal("tenant missing on standby")
	}
	if got := tn.MLC(); got != wantMLC {
		t.Errorf("standby MLC = %d, want %d", got, wantMLC)
	}
	node, _ := tn.Node()
	if node.BackendName() != "node0" {
		t.Errorf("standby routes to %s", node.BackendName())
	}

	// Customers work against the standby, including a migration.
	c2, err := wire.Dial(standby.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Exec("SELECT COUNT(*) FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 30 {
		t.Errorf("count via standby = %v", res.Rows[0][0])
	}
	if _, err := standby.Migrate("a", "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatalf("migration on standby: %v", err)
	}
}

func TestImportStateUnknownNode(t *testing.T) {
	mw, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	st := &State{Tenants: []TenantPlacement{{Name: "x", Node: "ghost"}}}
	if err := mw.ImportState(st); err == nil {
		t.Error("want error for unknown node")
	}
}

func TestUnmarshalStateBadJSON(t *testing.T) {
	if _, err := UnmarshalState([]byte("{nope")); err == nil {
		t.Error("want error")
	}
}
