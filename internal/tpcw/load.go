package tpcw

import (
	"fmt"
	"math/rand"
	"strings"
)

// loadBatch is the number of rows per INSERT during population.
const loadBatch = 100

// Load creates the bookstore schema and populates it to the given scale.
// Data is deterministic for a given scale (seeded generator) so repeated
// runs are comparable.
func Load(c Execer, s Scale) error {
	for _, ddl := range tables {
		if _, err := c.Exec(ddl); err != nil {
			return fmt.Errorf("tpcw: load DDL: %w", err)
		}
	}
	rng := rand.New(rand.NewSource(20150531)) // SIGMOD'15 opening day

	if err := batchInsert(c, "author", "a_id, a_fname, a_lname", s.Authors, func(i int) string {
		return fmt.Sprintf("(%d, 'fname%d', 'lname%d')", i, rng.Intn(1000), rng.Intn(1000))
	}); err != nil {
		return err
	}
	if err := batchInsert(c, "customer", "c_id, c_uname, c_discount, c_since", s.Customers, func(i int) string {
		return fmt.Sprintf("(%d, 'user%d', %d.%02d, %d)", i, i, rng.Intn(50)/10, rng.Intn(100), 2015)
	}); err != nil {
		return err
	}
	if err := batchInsert(c, "item", "i_id, i_title, i_a_id, i_subject, i_cost, i_stock", s.Items, func(i int) string {
		return fmt.Sprintf("(%d, 'title %d %d', %d, '%s', %d.%02d, %d)",
			i, i, rng.Intn(10000), rng.Intn(maxInt(s.Authors, 1)),
			subjects[rng.Intn(len(subjects))], 1+rng.Intn(99), rng.Intn(100),
			10+rng.Intn(90))
	}); err != nil {
		return err
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func batchInsert(c Execer, table, cols string, n int, row func(i int) string) error {
	for base := 0; base < n; base += loadBatch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO ")
		sb.WriteString(table)
		sb.WriteString(" (")
		sb.WriteString(cols)
		sb.WriteString(") VALUES ")
		for i := base; i < base+loadBatch && i < n; i++ {
			if i > base {
				sb.WriteString(", ")
			}
			sb.WriteString(row(i))
		}
		if _, err := c.Exec(sb.String()); err != nil {
			return fmt.Errorf("tpcw: load %s: %w", table, err)
		}
	}
	return nil
}
