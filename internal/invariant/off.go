//go:build !invariants

package invariant

// Enabled reports whether invariant checking is compiled in.
const Enabled = false

// Assert is a no-op without the invariants build tag.
func Assert(cond bool, msg string) {}

// Assertf is a no-op without the invariants build tag.
func Assertf(cond bool, format string, args ...any) {}

// Check is a no-op without the invariants build tag; f is never called.
func Check(f func() error) {}

// Count reports how many assertions have been evaluated; always 0 without
// the invariants build tag.
func Count() uint64 { return 0 }

// Reset clears the assertion counter.
func Reset() {}
