package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"madeus/internal/fault"
	"madeus/internal/flow"
	"madeus/internal/obs"
	"madeus/internal/sqlmini"
	"madeus/internal/wire"
)

// Migration-step failpoint sites (armed only under -tags faultinject).
// Together with the propagator's sites (conductor.go) they cover every
// step of Algorithm 3 against the destination.
const (
	faultStep1Dump      = "core.step1.dump"
	faultStep2Restore   = "core.step2.restore"
	faultRestoreDial    = "core.restore.dial"
	faultStep3Propagate = "core.step3.propagate"
	faultStep4Switch    = "core.step4.switchover"
)

// ErrCatchupTimeout reports that the slave could not catch up with the
// master within the configured window — the condition the paper reports as
// "N/A" for B-CON under heavy workload (Sec 5.3.2).
var ErrCatchupTimeout = errors.New("core: slave could not catch up with the master")

// MigrateOptions tunes one migration.
type MigrateOptions struct {
	// Strategy selects the propagation protocol. Default Madeus.
	Strategy Strategy
	// Backups are additional destination nodes that receive the snapshot
	// and the syncset stream in parallel (Sec 4.2: "Madeus can propagate
	// syncsets to multiple slaves at the same time. If a slave fails,
	// Madeus discards the slave and continues to propagate the remaining
	// syncsets to the others."). If the primary destination fails during
	// migration, the first surviving backup is promoted and receives the
	// switch-over.
	Backups []string
	// Players overrides the middleware's player cap for this migration.
	Players int
	// CatchupTimeout overrides the middleware's catch-up window.
	CatchupTimeout time.Duration
	// CatchupLag is the syncset DEBT at or below which the slave is
	// considered caught up and Step 4 (suspend + final drain + switch)
	// begins. Debt counts syncsets that are replayable now but not yet
	// applied; syncsets the LSIR holds back behind active master
	// transactions are an irreducible floor and are excluded. A small
	// threshold stands in for the paper's "all SSBs linked to the SSL
	// have been propagated" under sustained load; Step 4's suspension
	// drains whatever remains. Defaults to 64.
	CatchupLag int
	// KeepSource leaves the source copy in place after switch-over
	// (used by consistency tests to compare master and slave states).
	KeepSource bool
	// OpTimeout bounds every middleware-issued operation against the
	// destination (restore replay, propagation, the promotion probe) so
	// a hung slave surfaces as a connection loss instead of parking the
	// migration forever. Defaults to the middleware's Options.OpTimeout.
	OpTimeout time.Duration
	// Retry governs redial-and-retry of the migration's own idempotent
	// destination operations (dials, the promotion probe). Zero
	// MaxAttempts inherits the middleware's Options.Retry.
	Retry wire.RetryPolicy
	// Deadline bounds this migration end to end: past it the watchdog
	// aborts through the rollback protocol instead of letting Step 3 churn
	// until CatchupTimeout. 0 inherits the middleware's flow.Config.
	Deadline time.Duration
	// StallWindow aborts the migration when the primary slave makes no
	// replay progress for this long (hung-slave detection). 0 inherits the
	// middleware's flow.Config.
	StallWindow time.Duration
	// DisablePacing turns adaptive source pacing off for this migration
	// even when the middleware's flow.Config enables it (used by tests and
	// benchrunner to measure the unpaced divergence).
	DisablePacing bool
	// ChunkStatements is the statements-per-chunk of the pipelined Step-1
	// snapshot stream. Defaults to 64.
	ChunkStatements int
	// RestoreAppliers is how many parallel appliers each slave runs while
	// restoring the chunk stream. Defaults to 4.
	RestoreAppliers int
	// MonolithicDump reverts Step 1 to the pre-pipelining behavior — the
	// whole dump materialized as one wire response, restored only after
	// the last row arrived. Kept for the benchrunner `step1` ablation and
	// as an escape hatch.
	MonolithicDump bool

	// trace is the migration's wire trace context, set by Migrate once the
	// MTS is known and applied by connectRetry to every destination session
	// the migration itself opens (restore, propagation, promotion probe).
	// Unexported: callers cannot fabricate one.
	trace *wire.TraceContext
}

// migSpanSeq assigns each migration attempt a process-unique span id.
var migSpanSeq atomic.Uint64

// Report describes a completed (or failed) migration.
type Report struct {
	Tenant   string
	Source   string
	Dest     string
	Strategy Strategy

	Start time.Time
	End   time.Time

	// Step durations (Sec 4.3's Steps 1-4).
	DrainTime     time.Duration // Step 1: quiescing in-flight transactions
	SnapshotTime  time.Duration // Step 1: dump transaction
	RestoreTime   time.Duration // Step 2: creating the slave
	PropagateTime time.Duration // Step 3: syncset propagation until caught up
	SwitchTime    time.Duration // Step 4: final drain + switch-over

	// MTS is the migration timestamp: the MLC at the snapshot.
	MTS uint64

	// Span is the middleware-assigned id of this migration attempt: the
	// wire trace context carries it, so dbnode-side events stamped with
	// the same span are THIS attempt's work (a retried migration gets a
	// fresh span under the same tenant).
	Span uint64

	// SuspensionWindow is the Step-4 interval during which new customer
	// transactions were gated (suspend → drain → switch → resume): the
	// paper's service-suspension metric, Fig 7's terminal dip.
	SuspensionWindow time.Duration

	// Chunks and PeakTransferBytes describe the pipelined Step-1 stream:
	// how many chunks the snapshot shipped in and the high-water mark of
	// resident transfer memory (bounded by flow.Config.MaxTransferBytes).
	// Zero on monolithic-dump migrations.
	Chunks            int
	PeakTransferBytes int64

	Propagation PropagationStats

	// Timeline is the migration's event trace (Step 1-4 spans, lag/debt
	// samples, discards) as recorded by obs.Trace; benchrunner prints it
	// for Fig 7/8 runs.
	Timeline []obs.Event

	// Discarded lists slaves dropped mid-migration after a failure
	// (multi-slave migrations only).
	Discarded []string

	// Failed is set when the migration aborted (service continues on the
	// source); Err carries the cause.
	Failed bool
	Err    error

	// RollbackStep and RollbackReason record where a failed migration
	// rolled back ("step1.snapshot" ... "step4.switchover") and why.
	// Empty on success. After a rollback the tenant is back in normal
	// single-master service on the source and re-migratable (a retry
	// takes a fresh snapshot with a fresh MTS).
	RollbackStep   string
	RollbackReason string
}

// Total is the end-to-end migration time (the y-axis of Fig 6).
func (r *Report) Total() time.Duration { return r.End.Sub(r.Start) }

// Migrate live-migrates a tenant to the destination node (Algorithm 3):
//
//	Step 1  create a snapshot of the master (after draining in-flight
//	        transactions so no transaction spans the snapshot cut — see
//	        DESIGN.md on LSIR rule 1-b vs. snapshot-internal commits)
//	Step 2  create the slave from the snapshot
//	Step 3  propagate syncsets per the strategy until the slave catches up
//	Step 4  suspend, drain the last syncsets, switch over, resume
//
// Customer transactions keep executing on the master through Steps 1-3; the
// only stalls are the two short drains, which is what Figures 7/8 show as
// latency blips at migration start and end.
func (m *Middleware) Migrate(tenantName, destName string, opts MigrateOptions) (*Report, error) {
	t, ok := m.Tenant(tenantName)
	if !ok {
		return nil, fmt.Errorf("core: unknown tenant %q", tenantName)
	}
	dest, ok := m.Node(destName)
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", destName)
	}
	source, _ := t.Node()
	if source == dest {
		return nil, fmt.Errorf("core: tenant %q is already on node %q", tenantName, destName)
	}
	// slaves[0] is the primary destination; the rest are backups.
	slaves := []Backend{dest}
	for _, b := range opts.Backups {
		bn, ok := m.Node(b)
		if !ok {
			return nil, fmt.Errorf("core: unknown backup node %q", b)
		}
		if bn == source || bn == dest {
			return nil, fmt.Errorf("core: backup node %q duplicates the source or destination", b)
		}
		slaves = append(slaves, bn)
	}
	if opts.Players <= 0 {
		opts.Players = m.opts.Players
	}
	if opts.CatchupTimeout <= 0 {
		opts.CatchupTimeout = m.opts.CatchupTimeout
	}
	if opts.CatchupLag <= 0 {
		opts.CatchupLag = 64
	}
	if opts.OpTimeout <= 0 {
		opts.OpTimeout = m.opts.OpTimeout
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = m.opts.Retry
	}
	if opts.ChunkStatements <= 0 {
		opts.ChunkStatements = defaultChunkStatements
	}
	if opts.RestoreAppliers <= 0 {
		opts.RestoreAppliers = defaultRestoreAppliers
	}
	// Flow-layer knobs: one config snapshot governs the whole attempt, so
	// a concurrent FLOW SET cannot change the rules mid-migration.
	fcfg := m.flow.Config()
	if opts.Deadline <= 0 {
		opts.Deadline = fcfg.Deadline
	}
	if opts.StallWindow <= 0 {
		opts.StallWindow = fcfg.StallWindow
	}
	if opts.DisablePacing {
		fcfg.PaceMaxDelay = 0
	}

	rep := &Report{
		Tenant:   tenantName,
		Source:   source.BackendName(),
		Dest:     destName,
		Strategy: opts.Strategy,
		Start:    time.Now(),
	}

	t.mu.Lock()
	if t.migrating {
		t.mu.Unlock()
		return nil, fmt.Errorf("core: tenant %q is already migrating", tenantName)
	}
	t.mu.Unlock()

	// Bookmark the tracer so the report's Timeline carries exactly this
	// migration's events.
	seq0 := obs.Trace.Seq()
	rep.Span = migSpanSeq.Add(1)
	obsMigStarted.Inc()
	obs.Trace.Emit(tenantName, "migrate.begin",
		obs.F("source", rep.Source), obs.F("dest", destName),
		obs.F("strategy", opts.Strategy), obs.F("span", rep.Span))

	// Capture starts before the snapshot so operations racing the dump
	// are saved (Step 1: "Madeus saves the operations as a syncset").
	t.startCapture(opts.Strategy.captureAll())
	// Whatever way this attempt ends, the pacing brake comes off: a rolled
	// back or completed migration must never leave the tenant throttled.
	defer t.throttle.Set(0)

	// fail is the rollback path: whatever step died, the tenant returns
	// to normal single-master service on the source — capture stops and
	// the SSL is discarded, the gate reopens so customers resume
	// immediately, and the partially-built slaves are dropped. Nothing
	// about the source changed (the dump transaction only reads), so the
	// system is left re-migratable: a retry starts from Step 1 with a
	// fresh snapshot and a fresh MTS.
	fail := func(step string, err error) (*Report, error) {
		t.stopCapture()
		t.setGate(false)
		t.setProgress("", nil)
		rep.Failed = true
		rep.Err = err
		rep.RollbackStep = step
		rep.RollbackReason = err.Error()
		rep.End = time.Now()
		obsMigFailed.Inc()
		obsMigRollbacks.Inc()
		obs.Trace.Emit(tenantName, "migrate.rollback", obs.F("step", step), obs.F("err", err))
		rep.Timeline = obs.Trace.Since(seq0, tenantName)
		// Freeze the flight-recorder bundle AFTER the timeline so the
		// bundle's event tail includes the rollback event itself.
		m.captureFlight(t, rep, step, err)
		// Discard the partial slaves, if any.
		for _, sl := range slaves {
			dropDatabase(sl, tenantName)
		}
		return rep, err
	}

	// --- Step 1: create a snapshot ---
	t.setProgress("step1.snapshot", nil)
	phase := time.Now()
	drainSpan := obs.Trace.Start(tenantName, "step1.drain")
	t.setGate(true)
	t.drainActive()
	drainSpan.End()
	rep.DrainTime = time.Since(phase)

	ctl, err := source.Connect(tenantName)
	if err != nil {
		return fail("step1.snapshot", err)
	}
	defer ctl.Close()
	if _, err := ctl.Exec("BEGIN"); err != nil {
		return fail("step1.snapshot", err)
	}
	phase = time.Now()
	dumpSpan := obs.Trace.Start(tenantName, "step1.dump")
	// Critical region: no commits or first operations execute while the
	// dump transaction pins its snapshot and the MTS is recorded
	// (Algorithm 3, lines 1-5).
	t.mu.Lock()
	//madeusvet:ignore lockdiscipline critical region: the snapshot must pin while first ops and commits are excluded (Algorithm 3, lines 1-5)
	_, err = ctl.Exec("SNAPSHOT")
	mts := t.mlc
	t.resetSSLLocked() // everything committed so far is inside the snapshot
	t.mu.Unlock()
	if err != nil {
		return fail("step1.snapshot", err)
	}
	rep.MTS = mts
	obs.Trace.Emit(tenantName, "step1.mts", obs.F("mts", mts), obs.F("span", rep.Span))
	// Cross-process trace context: from here on, every operation the
	// migration itself issues — the dump stream on this control session,
	// restores, propagation replays, the promotion probe — carries the
	// migration's MTS and span, so dbnode-side wire events are attributable
	// to this attempt. Gated on obs: disabled observability means plain
	// frames and zero overhead.
	if obs.On() {
		opts.trace = &wire.TraceContext{Tenant: tenantName, MTS: mts, Span: rep.Span}
		ctl.SetTraceContext(opts.trace)
	}
	t.setGate(false) // customers resume while the dump streams

	if ferr := fault.Inject(faultStep1Dump); ferr != nil {
		return fail("step1.snapshot", ferr)
	}

	// restoreFailed collects per-slave restore errors from whichever path
	// ran; the Sec 4.2 discard rule below applies to both.
	restoreFailed := make(map[Backend]error)
	if opts.MonolithicDump {
		// Pre-pipelining path (the `step1` ablation's baseline): the whole
		// dump materializes as one wire response, and restores begin only
		// after the last row arrived.
		dump, err := ctl.Exec("DUMP")
		if err != nil {
			return fail("step1.snapshot", err)
		}
		if _, err := ctl.Exec("COMMIT"); err != nil {
			return fail("step1.snapshot", err)
		}
		rep.SnapshotTime = time.Since(phase)
		dumpSpan.End(obs.F("rows", len(dump.Rows)))

		// --- Step 2: create the slaves (in parallel when backups exist) ---
		t.setProgress("step2.restore", nil)
		phase = time.Now()
		restoreSpan := obs.Trace.Start(tenantName, "step2.restore")
		type restoreResult struct {
			sl  Backend
			err error
		}
		restoreErrs := make(chan restoreResult, len(slaves))
		for _, sl := range slaves {
			go func(sl Backend) {
				restoreErrs <- restoreResult{sl, restoreSlave(sl, tenantName, dump.Rows, opts)}
			}(sl)
		}
		for range slaves {
			if r := <-restoreErrs; r.err != nil {
				restoreFailed[r.sl] = r.err
			}
		}
		rep.RestoreTime = time.Since(phase)
		restoreSpan.End(obs.F("slaves", len(slaves)-len(restoreFailed)))
	} else {
		// Pipelined path: dump, transfer, and restore overlap in a
		// three-stage pipeline; resident transfer memory is capped by the
		// flow layer's budget (see step1.go).
		t.setProgress("step2.restore", nil)
		restoreSpan := obs.Trace.Start(tenantName, "step2.restore")
		budget := flow.NewTransferBudget(fcfg.MaxTransferBytes)
		pr := pipelineSnapshot(ctl, tenantName, slaves, opts, budget)
		rep.SnapshotTime = pr.dumpTime
		rep.RestoreTime = time.Since(phase)
		rep.Chunks = pr.chunks
		rep.PeakTransferBytes = pr.peakBytes
		dumpSpan.End(obs.F("chunks", pr.chunks), obs.F("stmts", pr.stmts),
			obs.F("peakBytes", pr.peakBytes))
		if pr.streamErr != nil {
			restoreSpan.End(obs.F("err", pr.streamErr))
			return fail("step1.snapshot", pr.streamErr)
		}
		restoreFailed = pr.slaveErr
		restoreSpan.End(obs.F("slaves", len(slaves)-len(restoreFailed)))
	}
	if len(restoreFailed) > 0 {
		// A failed restore discards that slave; survivors carry the
		// migration (the paper's Sec 4.2 discard rule applied to
		// Step 2). Only when no slave survived does the whole
		// migration roll back.
		var restoreErr error
		live := slaves[:0]
		for _, sl := range slaves {
			if err, failed := restoreFailed[sl]; failed {
				restoreErr = err
				dropDatabase(sl, tenantName)
				rep.Discarded = append(rep.Discarded, sl.BackendName())
				obs.Trace.Emit(tenantName, "step2.slave.discarded",
					obs.F("slave", sl.BackendName()), obs.F("err", err))
				continue
			}
			live = append(live, sl)
		}
		slaves = live
		if len(slaves) == 0 {
			return fail("step2.restore", restoreErr)
		}
	}

	// --- Step 3: propagate syncsets (one propagator per slave) ---
	phase = time.Now()
	propSpan := obs.Trace.Start(tenantName, "step3.propagate")
	herdSpin := m.opts.BConHerdSpin
	if herdSpin < 0 {
		herdSpin = 0
	}
	props := make(map[Backend]*propagator, len(slaves))
	for _, sl := range slaves {
		props[sl] = startPropagation(t, sl, opts.Strategy, opts.Players, mts, herdSpin, opts.OpTimeout, opts.trace)
		obs.Trace.Emit(tenantName, "step3.slave.begin", obs.F("slave", sl.BackendName()))
	}
	t.setProgress("step3.propagate", props[slaves[0]])
	abortAll := func() {
		for _, p := range props {
			p.Abort()
			p.Wait()
		}
	}
	// discardFailed drops slaves whose propagator died; the survivors
	// keep going. Returns the surviving slave list.
	discardFailed := func() {
		live := slaves[:0]
		for _, sl := range slaves {
			p := props[sl]
			if err := p.Err(); err != nil {
				p.Abort()
				p.Wait()
				delete(props, sl)
				dropDatabase(sl, tenantName)
				rep.Discarded = append(rep.Discarded, sl.BackendName())
				obs.Trace.Emit(tenantName, "step3.slave.discarded",
					obs.F("slave", sl.BackendName()), obs.F("err", err))
				continue
			}
			live = append(live, sl)
		}
		slaves = live
	}
	failProp := func(err error) (*Report, error) {
		abortAll()
		rep.PropagateTime = time.Since(phase)
		return fail("step3.propagate", err)
	}
	deadline := time.Now().Add(opts.CatchupTimeout)
	// Caught up means the debt stays at the floor, not that it dips there
	// once: under heavy load the LSIR floor moves every time an old
	// transaction resolves, so the criterion must hold continuously. With
	// backups, the promotion candidate (slaves[0]) must catch up.
	const sustain = 500 * time.Millisecond
	const sampleEvery = 200 * time.Millisecond
	var lowSince time.Time
	var lastSample time.Time
	// Flow control for the catch-up race: the controller paces the source
	// when debt diverges, the watchdog bounds the attempt (deadline +
	// stall), and the applied SSL prefix is released as every slave clears
	// it so the capture buffer's memory follows the debt, not the total
	// writes since the snapshot.
	ctrl := flow.NewController(fcfg)
	wd := flow.NewWatchdog(flow.Config{Deadline: opts.Deadline, StallWindow: opts.StallWindow}, rep.Start)
	var lastDelay time.Duration
	for {
		if ferr := fault.Inject(faultStep3Propagate); ferr != nil {
			return failProp(ferr)
		}
		nSlaves := len(slaves)
		discardFailed()
		if len(slaves) == 0 {
			return failProp(fmt.Errorf("core: every slave failed during propagation"))
		}
		primary := props[slaves[0]]
		if len(slaves) != nSlaves {
			// The promotion candidate may have changed; repoint the
			// monitoring surface at the new primary.
			t.setProgress("step3.propagate", primary)
		}
		debt := primary.Debt()
		now := time.Now()
		wd.Observe(primary.Applied(), debt, now)
		if err := wd.Check(now); err != nil {
			return failProp(err)
		}
		if over := t.sslOverflow(); over != "" {
			return failProp(fmt.Errorf("core: %s cap breached with debt %d: %w", over, debt, flow.ErrSSLOverflow))
		}
		if now.Sub(lastSample) >= sampleEvery {
			lastSample = now
			// Release the SSL prefix every propagator has applied.
			release := -1
			for _, p := range props {
				if a := p.Applied(); release < 0 || a < release {
					release = a
				}
			}
			if release > 0 {
				t.releaseAppliedSSL(release)
			}
			if delay := ctrl.Tick(debt); delay != lastDelay {
				lastDelay = delay
				t.throttle.Set(delay)
				obs.Trace.Emit(tenantName, "flow.pace",
					obs.F("delay", delay), obs.F("debt", debt))
			}
			obs.Trace.Emit(tenantName, "step3.sample",
				obs.F("lag", primary.Lag()), obs.F("debt", debt),
				obs.F("ssl", t.sslLen()), obs.F("applied", primary.Stats().Syncsets))
		}
		if debt <= opts.CatchupLag {
			if lowSince.IsZero() {
				lowSince = now
			} else if now.Sub(lowSince) >= sustain {
				break
			}
		} else {
			lowSince = time.Time{}
		}
		if now.After(deadline) {
			return failProp(ErrCatchupTimeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The brake comes off before the final drain: Step 4 wants the last
	// commits through as fast as possible.
	t.throttle.Set(0)
	rep.PropagateTime = time.Since(phase)
	propSpan.End(obs.F("syncsets", props[slaves[0]].Stats().Syncsets))

	// --- Step 4: switch over ---
	t.setProgress("step4.switchover", props[slaves[0]])
	phase = time.Now()
	switchSpan := obs.Trace.Start(tenantName, "step4.switchover")
	suspendStart := time.Now()
	t.setGate(true)
	t.drainActive()
	for _, p := range props {
		p.RequestStop()
	}
	for _, sl := range slaves {
		props[sl].Wait() //nolint:errcheck // judged via discardFailed below
	}
	discardFailed()
	// All-or-nothing switch-over: a candidate is promoted only once it
	// ACKS promotion — a fresh session must round-trip a probe
	// transaction. A candidate that fails the probe is discarded and the
	// next surviving slave is tried; if none acks, the migration rolls
	// back, the gate reopens on the source, and the customers gated
	// during the drain resume there without ever observing an error.
	var target Backend
	for len(slaves) > 0 {
		cand := slaves[0]
		if err := probePromotion(cand, tenantName, opts); err != nil {
			dropDatabase(cand, tenantName)
			rep.Discarded = append(rep.Discarded, cand.BackendName())
			obs.Trace.Emit(tenantName, "step4.candidate.discarded",
				obs.F("slave", cand.BackendName()), obs.F("err", err))
			slaves = slaves[1:]
			continue
		}
		target = cand
		break
	}
	if target == nil {
		return fail("step4.switchover", fmt.Errorf("core: no slave acknowledged promotion"))
	}
	promoted := target.BackendName() != destName
	rep.Propagation = props[target].Stats()
	t.switchOver(target)
	t.stopCapture()
	t.setGate(false)
	rep.SuspensionWindow = time.Since(suspendStart)
	rep.SwitchTime = time.Since(phase)
	rep.Dest = target.BackendName()
	rep.End = time.Now()
	switchSpan.End(
		obs.F("suspension", rep.SuspensionWindow),
		obs.F("dest", rep.Dest), obs.F("promoted", promoted))
	t.setProgress("", nil)
	obsMigCompleted.Inc()
	obs.Trace.Emit(tenantName, "migrate.end",
		obs.F("total", rep.Total()), obs.F("syncsets", rep.Propagation.Syncsets))
	rep.Timeline = obs.Trace.Since(seq0, tenantName)

	if !opts.KeepSource {
		dropDatabase(source, tenantName)
	}
	// Extra synchronized slaves beyond the promoted one are dropped; a
	// production deployment could instead keep them as warm replicas.
	for _, sl := range slaves[1:] {
		dropDatabase(sl, tenantName)
	}
	return rep, nil
}

// restoreSlave creates the tenant database on a slave node and replays the
// dump script into it. The dial retries transient failures per the
// migration's retry policy — restoring onto a briefly-partitioned node
// succeeds once the partition heals within the backoff schedule.
func restoreSlave(sl Backend, tenant string, rows [][]sqlmini.Value, opts MigrateOptions) error {
	if ferr := fault.Inject(faultStep2Restore); ferr != nil {
		return ferr
	}
	if err := createFreshDatabase(sl, tenant); err != nil {
		return err
	}
	restore, err := connectRetry(sl, tenant, faultRestoreDial, opts)
	if err != nil {
		return err
	}
	defer restore.Close()
	for _, row := range rows {
		if _, err := restore.Exec(row[0].Str); err != nil {
			return fmt.Errorf("core: restore on %s: %w", sl.BackendName(), err)
		}
	}
	return nil
}

// probePromotion asks a switch-over candidate to acknowledge promotion:
// a fresh session must round-trip an empty probe transaction. Until the
// ack arrives nothing is committed — the tenant still points at the
// source — which is what makes Step 4 all-or-nothing.
func probePromotion(sl Backend, tenant string, opts MigrateOptions) error {
	if ferr := fault.Inject(faultStep4Switch); ferr != nil {
		return ferr
	}
	c, err := connectRetry(sl, tenant, "", opts)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Exec("BEGIN"); err != nil {
		return err
	}
	if _, err := c.Exec("COMMIT"); err != nil {
		return err
	}
	return nil
}

// connectRetry dials a tenant session on node under the migration's
// retry policy: transient failures (transport losses, injected faults at
// the optional failpoint site) back off exponentially and redial;
// server-reported errors fail fast. The session inherits the migration's
// op timeout.
func connectRetry(node Backend, tenant, site string, opts MigrateOptions) (*wire.Client, error) {
	p := opts.Retry
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var rng *rand.Rand // lazily seeded: most dials succeed on attempt 0
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if rng == nil {
				rng = p.JitterRNG()
			}
			sleep(p.Backoff(attempt, rng))
			obsMigRetries.Inc()
		}
		if site != "" {
			if ferr := fault.Inject(site); ferr != nil {
				lastErr = ferr
				if transientErr(ferr) {
					continue
				}
				return nil, ferr
			}
		}
		c, err := node.Connect(tenant)
		if err == nil {
			if opts.OpTimeout > 0 {
				c.SetOpTimeout(opts.OpTimeout)
			}
			if opts.trace != nil {
				c.SetTraceContext(opts.trace)
			}
			return c, nil
		}
		lastErr = err
		if !transientErr(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// transientErr reports whether a destination failure is worth retrying:
// transport losses and injected faults, never server-reported statement
// errors.
func transientErr(err error) bool {
	return wire.IsTransportError(err) || fault.IsInjected(err)
}

// dropDatabase best-effort drops a tenant database on a node.
func dropDatabase(node Backend, db string) {
	node.DropDatabase(db) //nolint:errcheck // absent database is fine
}

// createFreshDatabase provisions the tenant database on a slave for a
// restore, discarding any leftover copy first. A durable destination that
// crashed mid-restore and restarted recovers the partial slave from its
// data dir; per the Sec 4.2 discard rule that partial state is never
// resumed — Madeus discards the slave and rebuilds it from the snapshot.
func createFreshDatabase(sl Backend, tenant string) error {
	err := sl.CreateDatabase(tenant)
	if err == nil {
		return nil
	}
	dropDatabase(sl, tenant)
	if retryErr := sl.CreateDatabase(tenant); retryErr == nil {
		obs.Trace.Emit(tenant, "step2.slave.stale_discarded", obs.F("slave", sl.BackendName()))
		return nil
	}
	return err
}

// String renders a compact single-line report.
func (r *Report) String() string {
	status := "ok"
	if r.Failed {
		status = "FAILED: " + r.Err.Error()
		if r.RollbackStep != "" {
			status = "FAILED at " + r.RollbackStep + ": " + r.Err.Error()
		}
	}
	return fmt.Sprintf("migrate %s %s->%s [%s] total=%v drain=%v snap=%v restore=%v propagate=%v switch=%v suspend=%v syncsets=%d maxGroup=%d %s",
		r.Tenant, r.Source, r.Dest, r.Strategy, r.Total().Round(time.Millisecond),
		r.DrainTime.Round(time.Millisecond), r.SnapshotTime.Round(time.Millisecond),
		r.RestoreTime.Round(time.Millisecond), r.PropagateTime.Round(time.Millisecond),
		r.SwitchTime.Round(time.Millisecond), r.SuspensionWindow.Round(time.Millisecond),
		r.Propagation.Syncsets, r.Propagation.MaxGroup, status)
}
