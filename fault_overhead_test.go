package madeus

import (
	"fmt"
	"testing"

	"madeus/internal/fault"
)

// TestFaultDisabledOverhead guards the failpoint layer's cost contract, the
// sibling of TestObsDisabledOverhead: without -tags faultinject every
// fault.Inject site compiles to a no-op stub, so a site on the wire or WAL
// hot path must cost nothing — no allocation, and within noise of the bare
// loop. Under -tags faultinject an UNARMED registry may cost at most one
// atomic load, which the same lenient ratio covers; the guard only skips
// when the race detector would instrument that load into a real call.
func TestFaultDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments atomics; run without -race")
	}
	if fault.Enabled {
		// Keep the armed-registry state of other faultinject tests from
		// polluting the measurement.
		fault.Reset()
	}

	const site = "guard.hotpath.op"
	var sink uint64
	bare := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	}
	instrumented := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := fault.Inject(site); err != nil {
				b.Fatal(err)
			}
			sink += uint64(i)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		_ = fault.Inject(site)
	})
	if allocs != 0 {
		t.Fatalf("disarmed fault site allocates %.1f objects/op", allocs)
	}

	const attempts = 5
	var last string
	for try := 0; try < attempts; try++ {
		rBare := testing.Benchmark(bare)
		rInst := testing.Benchmark(instrumented)
		nsBare := float64(rBare.NsPerOp())
		nsInst := float64(rInst.NsPerOp())
		if nsBare <= 0 {
			nsBare = 0.1
		}
		// Allow one atomic-flag load plus slack: 4x + 2ns absolute.
		if nsInst <= 4*nsBare+2 {
			return
		}
		last = fmt.Sprintf("%.1fns/op vs %.1fns/op (%.1fx)", nsInst, nsBare, nsInst/nsBare)
	}
	t.Fatalf("disarmed fault site is not free: %s across %d attempts", last, attempts)
}

// BenchmarkFaultInjectDisarmed measures the per-op price of a fault site in
// whichever build flavor is under test (a pure no-op without the tag, one
// atomic load with it).
func BenchmarkFaultInjectDisarmed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = fault.Inject("bench.hotpath.op")
	}
}
