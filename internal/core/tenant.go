package core

import (
	"sync"
	"sync/atomic"
	"time"

	"madeus/internal/flow"
	"madeus/internal/obs"
)

// Tenant is the middleware's per-tenant state: the tenant's current master
// node, the master logical clock, the critical region serializing first
// operations and commits (Algorithm 1), the syncset list, and the gates the
// manager uses during migration.
type Tenant struct {
	Name string

	// mu is the critical region of Algorithm 1: first operations and
	// commits execute under it so that the MLC ordering observed by the
	// middleware equals the snapshot/commit ordering on the master. It
	// also guards all fields below.
	mu   sync.Mutex //madeusvet:lockrank tenant 20
	cond *sync.Cond // broadcast on: SSL growth, active-set changes, gate changes

	node Backend // current master node
	gen  int     // bumped at switch-over; sessions reconnect lazily

	mlc uint64

	gate        bool // true: new transactions blocked (Step 1 drain, Step 4 switch-over)
	activeTxns  int  // transactions past BEGIN and not yet ended
	activeFirst map[*SSB]struct{}

	migrating  bool
	captureAll bool
	ssl        []*SSB // retained (linked, not yet released) SSBs in link order

	// SSL accounting for the flow layer's caps and gauges. ssl holds only
	// the retained window: once every propagator has applied a prefix, the
	// manager releases it (releaseAppliedSSL) and sslBase advances, so
	// absolute link index i lives at ssl[i-sslBase]. sslOps/sslBytes track
	// the retained window's footprint; sslOver records the first cap
	// breach ("" = none) for the manager to turn into a rollback — the
	// link path itself never drops a syncset, since a partial SSL would
	// break the LSIR's contiguous-ETS premise.
	sslBase  int
	sslOps   int
	sslBytes int64
	sslOver  string

	// flow wiring: gov is the process-wide knob set, throttle the pacing
	// brake Step 3's controller drives, limiter the session admission gate.
	gov      *flow.Governor
	throttle flow.Throttle
	limiter  *flow.Limiter

	// phase names the migration step in flight ("" when idle) and prop is
	// the primary slave's propagator during Steps 3-4; both feed the
	// STATUS/STATS monitoring surfaces.
	phase string
	prop  *propagator

	// counters for reporting
	capturedOps  int
	capturedSSBs int

	// ops and sessions feed the history sampler's per-tenant rate and
	// session curves. Atomics, not t.mu fields: ops increments on every
	// relayed statement and sessions on every connect/close, and neither
	// belongs inside the critical region.
	ops      atomic.Int64
	sessions atomic.Int64
}

// NewTenant registers tenant state with its initial master node. gov may
// be nil (tests building tenants directly): backpressure is then fully
// disabled, matching a zero flow.Config.
func NewTenant(name string, node Backend, gov *flow.Governor) *Tenant {
	if gov == nil {
		gov, _ = flow.NewGovernor(flow.Config{})
	}
	t := &Tenant{Name: name, node: node, activeFirst: make(map[*SSB]struct{}), gov: gov}
	t.limiter = flow.NewLimiter(name, gov)
	t.cond = sync.NewCond(&t.mu)
	return t
}

// tenantMetricPrefix prefixes every per-tenant dynamic gauge, so one
// UnregisterPrefix call at teardown drops the whole family.
const tenantMetricPrefix = "core.tenant."

// registerObs publishes the tenant's dynamic gauges on the Default
// registry. Replace semantics (not New*) because remove/re-add cycles and
// multiple middleware instances in one test process are normal.
func (t *Tenant) registerObs() {
	prefix := tenantMetricPrefix + t.Name
	obs.Default.ReplaceGaugeFunc(prefix+".mlc", "tenant master logical clock", func() int64 {
		return int64(t.MLC())
	})
	obs.Default.ReplaceGaugeFunc(prefix+".sessions", "tenant customer sessions open", func() int64 {
		return t.sessions.Load()
	})
	obs.Default.ReplaceGaugeFunc(prefix+".ssl.depth", "tenant retained syncset-list depth", func() int64 {
		return int64(t.SSLLen())
	})
}

// teardownObs removes the tenant's dynamic gauges and its history series.
func (t *Tenant) teardownObs() {
	obs.Default.UnregisterPrefix(tenantMetricPrefix + t.Name + ".")
	obs.Hist.Drop(t.Name)
}

// TenantState classifies a tenant's service mode.
type TenantState int

const (
	// StateNormal: single-master service, no migration machinery active.
	StateNormal TenantState = iota
	// StateMigrating: a migration holds the tenant in any of Steps 1-4 —
	// capture is linking syncsets, a step phase is published, or the
	// gate is closed.
	StateMigrating
)

func (s TenantState) String() string {
	if s == StateMigrating {
		return "migrating"
	}
	return "normal"
}

// State reports whether the tenant is in normal single-master service or
// mid-migration. After a rollback it must report StateNormal again: the
// chaos suite pins that every fail path clears capture, phase, and gate.
func (t *Tenant) State() TenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.migrating || t.phase != "" || t.gate {
		return StateMigrating
	}
	return StateNormal
}

// Node returns the tenant's current master node and routing generation.
func (t *Tenant) Node() (Backend, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node, t.gen
}

// MLC returns the current master logical clock (for tests and monitoring).
func (t *Tenant) MLC() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mlc
}

// waitGateLocked blocks while the manager has new transactions gated.
// Caller holds t.mu.
func (t *Tenant) waitGateLocked() {
	for t.gate {
		t.cond.Wait()
	}
}

// txnStarted registers an in-flight transaction, honoring the gate. Time
// spent blocked at a closed gate is the per-transaction share of the
// paper's suspension blips (Fig 7's dips at migration start and end), so it
// is observed; the open-gate fast path pays no clock read.
func (t *Tenant) txnStarted() {
	obsWorkerTxns.Inc()
	t.mu.Lock()
	if t.gate {
		start := time.Now()
		t.waitGateLocked()
		obsGateWait.ObserveDuration(time.Since(start))
	}
	t.activeTxns++
	t.mu.Unlock()
}

// txnEnded unregisters an in-flight transaction.
func (t *Tenant) txnEnded() {
	t.mu.Lock()
	t.activeTxns--
	t.cond.Broadcast()
	t.mu.Unlock()
}

// firstOpStamped records that a transaction's first operation was stamped
// (its SSB now constrains the commit bound until it resolves). Caller holds
// t.mu (the critical region).
func (t *Tenant) firstOpStampedLocked(b *SSB) {
	t.activeFirst[b] = struct{}{}
}

// resolveSSBLocked removes an SSB from the active set (commit, abort, or
// read-only discard) and, when committing during migration, links it to the
// SSL. Caller holds t.mu.
func (t *Tenant) resolveSSBLocked(b *SSB, link bool) {
	delete(t.activeFirst, b)
	if link && t.migrating {
		t.ssl = append(t.ssl, b)
		t.capturedSSBs++
		t.capturedOps += b.OpCount()
		t.sslOps += b.OpCount()
		t.sslBytes += b.MemSize()
		obsSSBLinked.Inc()
		flow.AccountSSL(b.OpCount(), b.MemSize())
		obsSSLDepth.Set(int64(len(t.ssl)))
		if t.sslOver == "" {
			t.checkSSLCapsLocked()
		}
	}
	t.cond.Broadcast()
}

// checkSSLCapsLocked flags the first breach of a configured SSL cap. The
// manager's Step-3 loop polls sslOverflow and aborts through the rollback
// protocol; linking continues meanwhile so the SSL stays a contiguous
// ETS prefix until the abort lands. Caller holds t.mu.
func (t *Tenant) checkSSLCapsLocked() {
	cfg := t.gov.Config()
	switch {
	case cfg.MaxSSLSyncsets > 0 && len(t.ssl) > cfg.MaxSSLSyncsets:
		t.sslOver = "syncsets"
	case cfg.MaxSSLOps > 0 && t.sslOps > cfg.MaxSSLOps:
		t.sslOver = "ops"
	case cfg.MaxSSLBytes > 0 && t.sslBytes > cfg.MaxSSLBytes:
		t.sslOver = "bytes"
	default:
		return
	}
	flow.NoteOverflow()
}

// sslOverflow reports which SSL cap has been breached ("" = none).
func (t *Tenant) sslOverflow() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sslOver
}

// resetSSLLocked empties the SSL and returns its accounting to the flow
// gauges — the single path capture start/stop, discard, and rollback all
// share, so ssl_depth and the byte/op gauges can never go stale at 0-debt
// idle. Caller holds t.mu.
func (t *Tenant) resetSSLLocked() {
	flow.AccountSSL(-t.sslOps, -t.sslBytes)
	t.ssl = nil
	t.sslBase = 0
	t.sslOps = 0
	t.sslBytes = 0
	t.sslOver = ""
	obsSSLDepth.Set(0)
}

// releaseAppliedSSL frees the SSL prefix below absolute link index upto:
// every propagator has applied it, so nothing will read it again. The
// retained window shifts into a fresh slice (letting the GC take the
// replayed SSBs) and the accounting follows, which is what keeps SSL
// memory bounded while pacing holds debt near the target.
func (t *Tenant) releaseAppliedSSL(upto int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if upto <= t.sslBase || !t.migrating {
		return
	}
	n := upto - t.sslBase
	if n > len(t.ssl) {
		n = len(t.ssl)
	}
	var ops int
	var bytes int64
	for _, b := range t.ssl[:n] {
		ops += b.OpCount()
		bytes += b.MemSize()
	}
	t.ssl = append([]*SSB(nil), t.ssl[n:]...)
	t.sslBase += n
	t.sslOps -= ops
	t.sslBytes -= bytes
	flow.AccountSSL(-ops, -bytes)
	obsSSLDepth.Set(int64(len(t.ssl)))
}

// commitBound returns the exclusive upper bound on ETS values whose commits
// may be propagated: no unresolved transaction with a stamped first
// operation may have STS ≤ a propagated commit's ETS (LSIR rule 1-b — the
// slave must execute that first read before those commits). Caller holds
// t.mu.
func (t *Tenant) commitBoundLocked() uint64 {
	bound := ^uint64(0)
	for b := range t.activeFirst {
		if b.STS < bound {
			bound = b.STS
		}
	}
	return bound
}

// startCapture begins linking committed syncsets to the SSL.
func (t *Tenant) startCapture(all bool) {
	t.mu.Lock()
	t.migrating = true
	t.captureAll = all
	t.resetSSLLocked()
	t.capturedOps = 0
	t.capturedSSBs = 0
	t.mu.Unlock()
}

// stopCapture stops linking and clears the SSL (returning its accounting,
// so the depth/op/byte gauges read 0 after both switch-over and rollback).
func (t *Tenant) stopCapture() {
	t.mu.Lock()
	t.migrating = false
	t.captureAll = false
	t.resetSSLLocked()
	t.cond.Broadcast()
	t.mu.Unlock()
}

// setGate opens or closes the new-transaction gate.
func (t *Tenant) setGate(closed bool) {
	t.mu.Lock()
	t.gate = closed
	t.cond.Broadcast()
	t.mu.Unlock()
}

// drainActive waits until no transactions are in flight. Call with the gate
// closed, or it may never terminate under load.
func (t *Tenant) drainActive() {
	t.mu.Lock()
	for t.activeTxns > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// switchOver repoints the tenant at the destination node and bumps the
// routing generation so proxy sessions reconnect.
func (t *Tenant) switchOver(dest Backend) {
	t.mu.Lock()
	t.node = dest
	t.gen++
	t.mu.Unlock()
}

// rebind repoints the tenant at a restarted node handle carrying the same
// backend name (Middleware.ReplaceNode). Reports whether the tenant was
// mastered on that node.
func (t *Tenant) rebind(n Backend) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.node.BackendName() != n.BackendName() {
		return false
	}
	t.node = n
	t.gen++
	t.cond.Broadcast()
	return true
}

// setProgress publishes the migration step in flight and the primary
// slave's propagator (nil outside Steps 3-4) for the monitoring surfaces.
func (t *Tenant) setProgress(phase string, p *propagator) {
	t.mu.Lock()
	t.phase = phase
	t.prop = p
	t.mu.Unlock()
}

// Progress reports the migration step in flight ("idle" when none) and,
// during propagation, the primary slave's lag and debt.
func (t *Tenant) Progress() (phase string, lag, debt int) {
	t.mu.Lock()
	phase = t.phase
	p := t.prop
	t.mu.Unlock()
	if phase == "" {
		phase = "idle"
	}
	// Lag/Debt re-acquire t.mu, so they must be called after the unlock.
	if p != nil {
		lag, debt = p.Lag(), p.Debt()
	}
	return phase, lag, debt
}

// TenantMonitor is one tenant's live monitoring row (the STATS <tenant>
// admin view).
type TenantMonitor struct {
	Node         string
	MLC          uint64
	Phase        string
	Lag          int
	Debt         int
	SSLDepth     int
	SSLBytes     int64
	PaceDelay    time.Duration
	ActiveTxns   int
	CapturedSSBs int
	CapturedOps  int
}

// Monitor snapshots the tenant's live state.
func (t *Tenant) Monitor() TenantMonitor {
	t.mu.Lock()
	m := TenantMonitor{
		Node:         t.node.BackendName(),
		MLC:          t.mlc,
		SSLDepth:     len(t.ssl),
		SSLBytes:     t.sslBytes,
		ActiveTxns:   t.activeTxns,
		CapturedSSBs: t.capturedSSBs,
		CapturedOps:  t.capturedOps,
	}
	t.mu.Unlock()
	m.PaceDelay = t.throttle.Delay()
	m.Phase, m.Lag, m.Debt = t.Progress()
	return m
}

// SSLLen reports the retained syncset-list length (monitoring).
func (t *Tenant) SSLLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ssl)
}

// sslLen reports the TOTAL linked syncsets this capture, released or not —
// the absolute index space propagator cursors and applied counts live in.
func (t *Tenant) sslLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sslBase + len(t.ssl)
}
