package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"madeus/internal/engine"
	"madeus/internal/sqlmini"
	"madeus/internal/testutil"
)

func newServer(t *testing.T) (*engine.Engine, *Server) {
	t.Helper()
	// Registered before the engine/server cleanups so it runs after them
	// (LIFO) and sees the fully torn-down state.
	testutil.CheckGoroutines(t)
	e := engine.New(engine.Options{})
	t.Cleanup(e.Close)
	if err := e.CreateDatabase("db"); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", EngineHandler(e))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return e, srv
}

func TestClientServerRoundTrip(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, w FLOAT, ok BOOL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id, name, w, ok) VALUES (1, 'x', 1.5, TRUE), (2, NULL, NULL, FALSE)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT * FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].Str != "x" || !res.Rows[0][3].Bool {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if !res.Rows[1][1].IsNull() || !res.Rows[1][2].IsNull() {
		t.Errorf("row1 NULLs = %v", res.Rows[1])
	}
	if res.Tag != "SELECT 2" {
		t.Errorf("Tag = %q", res.Tag)
	}
}

func TestServerErrorIsServerError(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT * FROM missing")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %T %v, want *ServerError", err, err)
	}
	if IsTransportError(err) {
		t.Error("server error classified as transport error")
	}
	// The session survives a statement error.
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestStartupUnknownDatabase(t *testing.T) {
	_, srv := newServer(t)
	_, err := Dial(srv.Addr(), "nope")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *ServerError", err)
	}
}

func TestTransactionStateIsPerConnection(t *testing.T) {
	_, srv := newServer(t)
	c1, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if _, err := c1.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// c2 must not see c1's uncommitted insert.
	res, err := c2.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Error("uncommitted insert visible cross-connection")
	}
	if _, err := c1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, err = c2.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 1 {
		t.Error("committed insert not visible")
	}
}

func TestConnectionCloseAbortsOpenTxn(t *testing.T) {
	_, srv := newServer(t)
	c1, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Poll briefly: server-side cleanup is asynchronous with Close.
	deadline := time.Now().Add(time.Second)
	for {
		res, err := c2.Exec("SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("open txn not aborted on disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, srv := newServer(t)
	c0, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		t.Fatal(err)
	}
	c0.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), "db")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				id := w*1000 + i
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO t (id, v) VALUES (%d, %d)", id, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != workers*20 {
		t.Errorf("count = %v, want %d", res.Rows[0][0], workers*20)
	}
}

func TestDialRTTAddsLatency(t *testing.T) {
	_, srv := newServer(t)
	c, err := DialRTT(srv.Addr(), "db", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Exec("SELECT COUNT(*) FROM t"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("5 execs with 5ms RTT took %v, want >= 25ms", elapsed)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	_, srv := newServer(t)
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Exec("SELECT 1 FROM t"); err == nil {
		t.Error("want error after server close")
	}
	// Dialing a closed server fails.
	if _, err := Dial(srv.Addr(), "db"); err == nil {
		t.Error("want dial error after close")
	}
}

// TestResultEncodeDecodeRoundTrip property-checks the wire encoding over
// randomized results.
func TestResultEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := randomResult(rng)
		got, err := DecodeResult(EncodeResult(res))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resultEqual(res, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomResult(rng *rand.Rand) *engine.Result {
	res := &engine.Result{
		Tag:      fmt.Sprintf("TAG %d", rng.Intn(100)),
		Affected: rng.Intn(1000),
	}
	ncols := rng.Intn(5)
	for i := 0; i < ncols; i++ {
		res.Columns = append(res.Columns, fmt.Sprintf("c%d", i))
	}
	nrows := rng.Intn(6)
	for i := 0; i < nrows; i++ {
		row := make([]sqlmini.Value, ncols)
		for j := range row {
			switch rng.Intn(5) {
			case 0:
				row[j] = sqlmini.Null()
			case 1:
				row[j] = sqlmini.NewInt(rng.Int63() - rng.Int63())
			case 2:
				row[j] = sqlmini.NewFloat(rng.NormFloat64())
			case 3:
				row[j] = sqlmini.NewText(randString(rng))
			default:
				row[j] = sqlmini.NewBool(rng.Intn(2) == 0)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(20))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return string(b)
}

func resultEqual(a, b *engine.Result) bool {
	if a.Tag != b.Tag || a.Affected != b.Affected {
		return false
	}
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

func TestDecodeResultTruncated(t *testing.T) {
	res := &engine.Result{Tag: "SELECT 1", Columns: []string{"a"},
		Rows: [][]sqlmini.Value{{sqlmini.NewText("hello")}}}
	buf := EncodeResult(res)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeResult(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func BenchmarkWireExecSelect(b *testing.B) {
	e := engine.New(engine.Options{})
	defer e.Close()
	if err := e.CreateDatabase("db"); err != nil {
		b.Fatal(err)
	}
	srv, err := Listen("127.0.0.1:0", EngineHandler(e))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), "db")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY, v INT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id, v) VALUES (1, 1)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("SELECT v FROM t WHERE id = 1"); err != nil {
			b.Fatal(err)
		}
	}
}
