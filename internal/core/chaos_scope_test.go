//go:build faultinject

package core

import (
	"strings"
	"testing"
	"time"

	"madeus/internal/engine"
	"madeus/internal/fault"
	"madeus/internal/obs"
)

// TestChaosFlightRecorder kills a migration at Step 3 and checks the
// flight recorder froze a diagnostic bundle at rollback: the reason names
// the failing step, the detail carries the migration identity and fault
// state, and the event tail includes the rollback itself.
func TestChaosFlightRecorder(t *testing.T) {
	t.Cleanup(fault.Reset)
	t.Cleanup(obs.Flight.Reset)
	rig := newRig(t, 2, engine.Options{})
	tenant := "flightrec"
	rig.provision(t, tenant, 120)

	// Writes keep flowing so Step 3 has syncset operations to propagate —
	// the armed failpoint sits on the propagation path.
	stop := make(chan struct{})
	done := make(chan int, 1)
	go loadgen(t, rig, tenant, 0, 3*time.Millisecond, stop, done)
	time.Sleep(30 * time.Millisecond)

	before := obs.Flight.Len()
	fault.Enable(faultStep3Propagate, fault.Policy{Times: 1})
	rep, err := rig.mw.Migrate(tenant, "node1", MigrateOptions{Strategy: Madeus})
	fault.Reset()
	close(stop)
	<-done

	if err == nil {
		t.Fatal("migration succeeded; want the injected step3 failure")
	}
	if rep == nil || !rep.Failed || rep.RollbackStep != "step3.propagate" {
		t.Fatalf("rollback report = %+v, want failure at step3.propagate", rep)
	}

	bundles := obs.Flight.Bundles()
	if len(bundles) != before+1 {
		t.Fatalf("flight recorder holds %d bundles, want %d (one new capture)", len(bundles), before+1)
	}
	b := bundles[len(bundles)-1]
	if b.Tenant != tenant {
		t.Fatalf("bundle tenant = %q, want %q", b.Tenant, tenant)
	}
	if !strings.Contains(b.Reason, "step3.propagate") {
		t.Fatalf("bundle reason %q does not name the failing step", b.Reason)
	}
	detail := map[string]string{}
	for _, f := range b.Detail {
		detail[f.Key] = f.Value
	}
	for _, key := range []string{"step", "err", "source", "dest", "mts", "span", "flow.sessions"} {
		if _, ok := detail[key]; !ok {
			t.Fatalf("bundle detail missing %q: %v", key, b.Detail)
		}
	}
	if detail["step"] != "step3.propagate" || detail["dest"] != "node1" {
		t.Fatalf("bundle detail = %v, want step3.propagate to node1", detail)
	}
	// The fault registry state at capture time must show the armed site.
	if !strings.Contains(detail["fault.sites"], faultStep3Propagate) {
		t.Fatalf("bundle fault.sites = %q, want %q listed", detail["fault.sites"], faultStep3Propagate)
	}
	if len(b.Events) == 0 {
		t.Fatal("bundle carries no event tail")
	}
	sawRollback := false
	for _, e := range b.Events {
		if e.Name == "migrate.rollback" {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Fatalf("bundle event tail lacks migrate.rollback: %v", b.Events)
	}
	if len(b.Metrics) == 0 {
		t.Fatal("bundle carries no registry snapshot")
	}

	// The capture is itself announced on the trace, pointing at the bundle.
	found := false
	for _, e := range obs.Trace.Since(0, tenant) {
		if e.Name == obsEvFlightCapture {
			found = true
		}
	}
	if !found {
		t.Fatal("no flight.capture event on the tenant trace")
	}

	// The tenant must be fully recovered: a follow-up migration succeeds.
	if _, err := rig.mw.Migrate(tenant, "node1", MigrateOptions{Strategy: Madeus}); err != nil {
		t.Fatalf("remigration after rollback failed: %v", err)
	}
}
