package sqlmini

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassifyQuery(t *testing.T) {
	cases := []struct {
		sql  string
		want OpClass
	}{
		{"SELECT * FROM t", OpRead},
		{"  select 1 from t", OpRead},
		{"INSERT INTO t (a) VALUES (1)", OpWrite},
		{"update t set a = 1", OpWrite},
		{"DELETE FROM t", OpWrite},
		{"BEGIN", OpBegin},
		{"begin;", OpBegin},
		{"COMMIT", OpCommit},
		{"ROLLBACK", OpAbort},
		{"abort", OpAbort},
		{"CREATE TABLE t (a INT)", OpDDL},
		{"DROP TABLE t", OpDDL},
		{";;  COMMIT", OpCommit},
	}
	for _, c := range cases {
		got, err := ClassifyQuery(c.sql)
		if err != nil {
			t.Errorf("ClassifyQuery(%q): %v", c.sql, err)
			continue
		}
		if got != c.want {
			t.Errorf("ClassifyQuery(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestClassifyQueryErrors(t *testing.T) {
	for _, sql := range []string{"", "   ", "123", "GRANT ALL"} {
		if _, err := ClassifyQuery(sql); err == nil {
			t.Errorf("ClassifyQuery(%q): want error", sql)
		}
	}
}

func TestClassifyStatement(t *testing.T) {
	cases := []struct {
		sql  string
		want OpClass
	}{
		{"SELECT * FROM t", OpRead},
		{"INSERT INTO t (a) VALUES (1)", OpWrite},
		{"UPDATE t SET a = 1", OpWrite},
		{"DELETE FROM t", OpWrite},
		{"BEGIN", OpBegin},
		{"COMMIT", OpCommit},
		{"ROLLBACK", OpAbort},
		{"CREATE TABLE t (a INT)", OpDDL},
		{"DROP TABLE t", OpDDL},
	}
	for _, c := range cases {
		st := mustParse(t, c.sql)
		if got := ClassifyStatement(st); got != c.want {
			t.Errorf("ClassifyStatement(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

// TestClassifyAgreesWithParse property-checks that the fast path classifier
// and the full parser agree on generated statements.
func TestClassifyAgreesWithParse(t *testing.T) {
	gen := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sql := randomStatementSQL(rng)
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("generated unparsable SQL %q: %v", sql, err)
		}
		fast, err := ClassifyQuery(sql)
		if err != nil {
			t.Fatalf("ClassifyQuery(%q): %v", sql, err)
		}
		return fast == ClassifyStatement(st)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomStatementSQL generates a random valid statement from the grammar.
func randomStatementSQL(rng *rand.Rand) string {
	tables := []string{"t", "items", "orders"}
	tb := tables[rng.Intn(len(tables))]
	switch rng.Intn(7) {
	case 0:
		return "SELECT * FROM " + tb
	case 1:
		return "SELECT a, b FROM " + tb + " WHERE a = " + NewInt(rng.Int63n(100)).String()
	case 2:
		return "INSERT INTO " + tb + " (a) VALUES (" + NewInt(rng.Int63n(100)).String() + ")"
	case 3:
		return "UPDATE " + tb + " SET a = a + 1 WHERE b < " + NewInt(rng.Int63n(10)).String()
	case 4:
		return "DELETE FROM " + tb + " WHERE a = 1"
	case 5:
		return []string{"BEGIN", "COMMIT", "ROLLBACK"}[rng.Intn(3)]
	default:
		return "CREATE TABLE x (id INT PRIMARY KEY)"
	}
}

func BenchmarkClassifyQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ClassifyQuery("SELECT id, name FROM users WHERE id = 42"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("SELECT id, name FROM users WHERE id = 42 ORDER BY name LIMIT 5"); err != nil {
			b.Fatal(err)
		}
	}
}
