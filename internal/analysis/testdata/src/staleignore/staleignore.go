// Package staleignore exercises stale-suppression reporting. The directive
// in liveDirective suppresses a real errdrop finding and must stay silent;
// the one in deadDirective guards nothing and must itself be reported.
// TestStaleIgnore pins the exact positions (want markers cannot share a
// line with a //madeusvet:ignore directive, so this fixture is asserted by
// a dedicated test instead of the golden harness).
package staleignore

func commitProbe() error { return nil }

// liveDirective drops a commit-path error on purpose; the directive
// consumes the errdrop finding and is therefore not stale.
func liveDirective() {
	//madeusvet:ignore errdrop fixture: the dropped commit error below is the probe
	commitProbe()
}

// deadDirective has nothing to suppress: the error is handled, so the
// directive is dead weight and staleignore reports it.
func deadDirective() error {
	//madeusvet:ignore errdrop fixture: this suppression outlived its finding
	return commitProbe()
}

// notYetEligible names a rule outside the enabled set when madeusvet runs
// with -rules; staleness is only decided when every named rule actually
// ran. Under the full set this one names a rule that does not exist, so it
// is never eligible and never reported.
func notYetEligible() error {
	//madeusvet:ignore futurerule reserved for a rule this fixture does not ship
	return commitProbe()
}
