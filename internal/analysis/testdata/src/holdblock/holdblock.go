// Package holdblock exercises the holdblock analyzer: each line marked
// `// want` must produce exactly one finding; unmarked lines none.
package holdblock

import (
	"sync"
	"time"
)

type state struct {
	session sync.Mutex //madeusvet:lockrank hb-session 30
	book    sync.Mutex //madeusvet:lockrank hb-book 20
}

// directSleep blocks while holding a session-rank lock — the plain
// single-function violation.
func directSleep(s *state) {
	s.session.Lock()
	defer s.session.Unlock()
	time.Sleep(time.Millisecond) // want
}

func send(ch chan int) {
	ch <- 1
}

// viaCall reaches a blocking channel send through a callee while the
// session lock is held; the finding lands on the call site.
func viaCall(s *state, ch chan int) {
	s.session.Lock()
	defer s.session.Unlock()
	send(ch) // want
}

// lowRankOK blocks under a bookkeeping lock below RankSession — that is
// lockdiscipline's concern, not holdblock's.
func lowRankOK(s *state) {
	s.book.Lock()
	defer s.book.Unlock()
	time.Sleep(time.Millisecond)
}

// selectDefaultOK never blocks: the default arm makes the send a try-send.
func selectDefaultOK(s *state, ch chan int) {
	s.session.Lock()
	defer s.session.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// goroutineSevers hands the blocking send to a goroutine, which does not
// run under the caller's locks.
func goroutineSevers(s *state, ch chan int) {
	s.session.Lock()
	defer s.session.Unlock()
	go func() {
		ch <- 1
	}()
}

// suppressedReceive carries a real violation with an inline suppression;
// it must stay silent.
func suppressedReceive(s *state, ch chan int) {
	s.session.Lock()
	defer s.session.Unlock()
	//madeusvet:ignore holdblock seeded block kept to prove the suppression path
	<-ch
}
