package engine

import (
	"fmt"
	"sort"
	"strings"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// DefaultDumpChunk is the statements-per-chunk DUMP STREAM uses when the
// client does not name a chunk size.
const DefaultDumpChunk = 64

// Dump serializes the session's database as a SQL script at one consistent
// SI snapshot (the paper's Step-1 "dump transaction": snapshot creation runs
// concurrently with customer transactions and never blocks them). The
// script contains CREATE TABLE statements followed by batched INSERTs, in
// deterministic (table, primary key) order, so two consistent states always
// dump to identical scripts.
// When the session has an open transaction block, the dump uses that
// transaction's snapshot (pin it first with the SNAPSHOT command);
// otherwise it runs in its own read-only transaction.
func (s *Session) Dump() ([]string, error) {
	var script []string
	if _, err := s.DumpStream(0, func(stmts []string) error {
		script = append(script, stmts...)
		return nil
	}); err != nil {
		return nil, err
	}
	return script, nil
}

// DumpStream is the cursor form of Dump: it produces the identical
// statement sequence but hands it to sink in bounded chunks of at most
// maxStmts statements (maxStmts <= 0 delivers everything as one chunk),
// so a caller can ship and restore the snapshot while the scan is still
// running instead of materializing the whole script.
//
// Each chunk slice is owned by the sink (the iterator never reuses it), so
// sinks may hand chunks to other goroutines. Table.Scan invokes its row
// callback with no storage locks held, which is what makes it safe for a
// sink to block on a bounded channel or a byte budget: backpressure here
// pauses the dump, never customer transactions. A sink error stops the
// scan and is returned verbatim. Returns the statements emitted.
func (s *Session) DumpStream(maxStmts int, sink func(stmts []string) error) (int, error) {
	txn := s.txn
	if s.inTxn && txn != nil && !txn.Done() {
		// Use the block's snapshot; the client owns the commit.
	} else {
		txn = s.db.mgr.Begin()
		defer txn.Commit()
	}

	total := 0
	var chunk []string
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		out := chunk
		chunk = nil
		total += len(out)
		return sink(out)
	}
	emit := func(stmt string) error {
		chunk = append(chunk, stmt)
		if maxStmts > 0 && len(chunk) >= maxStmts {
			return flush()
		}
		return nil
	}

	for _, name := range s.db.Tables() {
		tb, ok := s.db.table(name)
		if !ok {
			continue
		}
		schema := tb.Schema
		if err := emit(createTableSQL(schema)); err != nil {
			return total, err
		}
		idxs := tb.Indexes()
		idxNames := make([]string, 0, len(idxs))
		for n := range idxs {
			idxNames = append(idxNames, n)
		}
		sort.Strings(idxNames)
		for _, n := range idxNames {
			if err := emit(fmt.Sprintf("CREATE INDEX %s ON %s (%s)", n, name, idxs[n])); err != nil {
				return total, err
			}
		}

		cols := make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
		header := fmt.Sprintf("INSERT INTO %s (%s) VALUES ", name, strings.Join(cols, ", "))

		var batch []string
		var sinkErr error
		flushBatch := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := emit(header + strings.Join(batch, ", "))
			batch = batch[:0]
			return err
		}
		tb.Scan(txn, func(r storage.Row) bool {
			vals := make([]string, len(r))
			for i, v := range r {
				vals[i] = v.String()
			}
			batch = append(batch, "("+strings.Join(vals, ", ")+")")
			if len(batch) >= s.eng.opts.DumpBatch {
				if err := flushBatch(); err != nil {
					sinkErr = err
					return false
				}
			}
			return true
		})
		if sinkErr != nil {
			return total, sinkErr
		}
		if err := flushBatch(); err != nil {
			return total, err
		}
	}
	return total, flush()
}

func createTableSQL(schema *storage.Schema) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(schema.Name)
	sb.WriteString(" (")
	for i, c := range schema.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteString(" ")
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// Restore executes a dump script against the session's database, one
// autocommitted statement at a time. Each INSERT batch pays a WAL commit,
// which is why creating a slave takes longer than dumping the master
// (Sec 5.5): restores go through the full write path.
func (s *Session) Restore(script []string) error {
	if s.inTxn {
		return fmt.Errorf("engine: RESTORE inside a transaction block")
	}
	for _, stmt := range script {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	return nil
}

// StateEqual reports whether two databases hold identical visible states,
// by comparing their canonical dumps. Used by the migration consistency
// tests (Theorem 2).
func StateEqual(a, b *Session) (bool, string, error) {
	da, err := a.Dump()
	if err != nil {
		return false, "", err
	}
	db, err := b.Dump()
	if err != nil {
		return false, "", err
	}
	if len(da) != len(db) {
		return false, fmt.Sprintf("dump lengths differ: %d vs %d", len(da), len(db)), nil
	}
	for i := range da {
		if da[i] != db[i] {
			return false, fmt.Sprintf("line %d differs:\n  a: %s\n  b: %s", i, da[i], db[i]), nil
		}
	}
	return true, "", nil
}

// RowCount returns the number of visible rows in the named table (testing
// and monitoring helper).
func (s *Session) RowCount(table string) (int, error) {
	res, err := s.Exec("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0].Kind != sqlmini.KindInt {
		return 0, fmt.Errorf("engine: unexpected COUNT result")
	}
	return int(res.Rows[0][0].Int), nil
}
