//go:build !faultinject

package fault

// Enabled reports whether failpoints are compiled in. In this build they
// are not: every function below is an inlinable no-op and Inject always
// returns nil, so a production binary pays nothing for the sites threaded
// through its hot paths (guarded by TestFaultDisabledOverhead).
const Enabled = false

// Inject is the no-op stub; sites always pass.
func Inject(site string) error { return nil }

// Enable is a no-op without the faultinject tag.
func Enable(site string, p Policy) {}

// Disable is a no-op without the faultinject tag.
func Disable(site string) {}

// Reset is a no-op without the faultinject tag.
func Reset() {}

// Release is a no-op without the faultinject tag.
func Release(site string) {}

// Seed is a no-op without the faultinject tag.
func Seed(seed int64) {}

// SiteHits reports 0 without the faultinject tag.
func SiteHits(site string) uint64 { return 0 }

// SiteFired reports 0 without the faultinject tag.
func SiteFired(site string) uint64 { return 0 }

// Hits reports 0 without the faultinject tag.
func Hits() uint64 { return 0 }

// List reports nothing without the faultinject tag.
func List() []string { return nil }
