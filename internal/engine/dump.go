package engine

import (
	"fmt"
	"sort"
	"strings"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// Dump serializes the session's database as a SQL script at one consistent
// SI snapshot (the paper's Step-1 "dump transaction": snapshot creation runs
// concurrently with customer transactions and never blocks them). The
// script contains CREATE TABLE statements followed by batched INSERTs, in
// deterministic (table, primary key) order, so two consistent states always
// dump to identical scripts.
// When the session has an open transaction block, the dump uses that
// transaction's snapshot (pin it first with the SNAPSHOT command);
// otherwise it runs in its own read-only transaction.
func (s *Session) Dump() ([]string, error) {
	txn := s.txn
	if s.inTxn && txn != nil && !txn.Done() {
		// Use the block's snapshot; the client owns the commit.
	} else {
		txn = s.db.mgr.Begin()
		defer txn.Commit()
	}

	var script []string
	for _, name := range s.db.Tables() {
		tb, ok := s.db.table(name)
		if !ok {
			continue
		}
		schema := tb.Schema
		script = append(script, createTableSQL(schema))
		idxs := tb.Indexes()
		idxNames := make([]string, 0, len(idxs))
		for n := range idxs {
			idxNames = append(idxNames, n)
		}
		sort.Strings(idxNames)
		for _, n := range idxNames {
			script = append(script, fmt.Sprintf("CREATE INDEX %s ON %s (%s)", n, name, idxs[n]))
		}

		cols := make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
		header := fmt.Sprintf("INSERT INTO %s (%s) VALUES ", name, strings.Join(cols, ", "))

		var batch []string
		flush := func() {
			if len(batch) > 0 {
				script = append(script, header+strings.Join(batch, ", "))
				batch = batch[:0]
			}
		}
		tb.Scan(txn, func(r storage.Row) bool {
			vals := make([]string, len(r))
			for i, v := range r {
				vals[i] = v.String()
			}
			batch = append(batch, "("+strings.Join(vals, ", ")+")")
			if len(batch) >= s.eng.opts.DumpBatch {
				flush()
			}
			return true
		})
		flush()
	}
	return script, nil
}

func createTableSQL(schema *storage.Schema) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(schema.Name)
	sb.WriteString(" (")
	for i, c := range schema.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteString(" ")
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// Restore executes a dump script against the session's database, one
// autocommitted statement at a time. Each INSERT batch pays a WAL commit,
// which is why creating a slave takes longer than dumping the master
// (Sec 5.5): restores go through the full write path.
func (s *Session) Restore(script []string) error {
	if s.inTxn {
		return fmt.Errorf("engine: RESTORE inside a transaction block")
	}
	for _, stmt := range script {
		if _, err := s.Exec(stmt); err != nil {
			return fmt.Errorf("engine: restore: %w", err)
		}
	}
	return nil
}

// StateEqual reports whether two databases hold identical visible states,
// by comparing their canonical dumps. Used by the migration consistency
// tests (Theorem 2).
func StateEqual(a, b *Session) (bool, string, error) {
	da, err := a.Dump()
	if err != nil {
		return false, "", err
	}
	db, err := b.Dump()
	if err != nil {
		return false, "", err
	}
	if len(da) != len(db) {
		return false, fmt.Sprintf("dump lengths differ: %d vs %d", len(da), len(db)), nil
	}
	for i := range da {
		if da[i] != db[i] {
			return false, fmt.Sprintf("line %d differs:\n  a: %s\n  b: %s", i, da[i], db[i]), nil
		}
	}
	return true, "", nil
}

// RowCount returns the number of visible rows in the named table (testing
// and monitoring helper).
func (s *Session) RowCount(table string) (int, error) {
	res, err := s.Exec("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0].Kind != sqlmini.KindInt {
		return 0, fmt.Errorf("engine: unexpected COUNT result")
	}
	return int(res.Rows[0][0].Int), nil
}
