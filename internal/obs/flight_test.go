package obs

import (
	"strings"
	"testing"
)

// TestFlightFIFOEviction fills the recorder past its cap and checks the
// oldest bundles fall out while IDs keep growing monotonically.
func TestFlightFIFOEviction(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		id := f.Capture(Bundle{Tenant: "t", Reason: "rollback"})
		if id != i+1 {
			t.Fatalf("capture %d got id %d, want %d (monotonic from 1)", i, id, i+1)
		}
	}
	if f.Len() != 3 {
		t.Fatalf("Len=%d after 5 captures with cap 3", f.Len())
	}
	got := f.Bundles()
	for i, b := range got {
		if want := i + 3; b.ID != want {
			t.Fatalf("bundle %d has ID %d, want %d (oldest evicted first)", i, b.ID, want)
		}
		if b.At.IsZero() {
			t.Fatalf("bundle %d has zero timestamp", i)
		}
	}
	if _, ok := f.Get(1); ok {
		t.Fatal("evicted bundle 1 still retrievable")
	}
	if b, ok := f.Get(4); !ok || !strings.Contains(b.Reason, "rollback") {
		t.Fatalf("Get(4) = %+v, %v; want retained rollback bundle", b, ok)
	}

	// Reset drops bundles but never reuses IDs.
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len=%d after Reset", f.Len())
	}
	if id := f.Capture(Bundle{}); id != 6 {
		t.Fatalf("post-Reset capture got id %d, want 6", id)
	}
}

// TestFlightDisabled pins the enable gate: Capture is a no-op returning 0.
func TestFlightDisabled(t *testing.T) {
	f := NewFlightRecorder(3)
	SetEnabled(false)
	id := f.Capture(Bundle{Tenant: "t"})
	SetEnabled(true)
	if id != 0 || f.Len() != 0 {
		t.Fatalf("disabled Capture returned id %d with Len %d, want 0 and 0", id, f.Len())
	}
}

// TestFlightCapFloor: a nonsensical cap still retains the latest bundle.
func TestFlightCapFloor(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Capture(Bundle{Reason: "first"})
	f.Capture(Bundle{Reason: "second"})
	if f.Len() != 1 {
		t.Fatalf("Len=%d with cap floor, want 1", f.Len())
	}
	if got := f.Bundles()[0].Reason; got != "second" {
		t.Fatalf("retained %q, want the newest bundle", got)
	}
}
