package mvcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"madeus/internal/sqlmini"
	"madeus/internal/storage"
)

// Tests for the striped MVCC layout (DESIGN.md §5i): eager txnState
// pruning, the contended-waiter wait path, cross-shard snapshot
// consistency, and a race stress over Begin/Commit/scan/vacuum.

func testTableStriped(t *testing.T, stripes int) (*Manager, *Table) {
	t.Helper()
	s, err := storage.NewSchema("kv", []storage.Column{
		{Name: "k", Type: sqlmini.KindInt, PrimaryKey: true},
		{Name: "v", Type: sqlmini.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManagerStriped(stripes)
	return m, NewTable(s, m)
}

// TestStateCountBoundedUnder100kShortTxns is the regression for the
// finished-state leak: before eager pruning, every committed or aborted
// transaction left a txnState in the manager forever (only bounded by an
// explicit VACUUM). 100k short transactions must leave the map bounded by
// the prune batch, not the transaction count.
func TestStateCountBoundedUnder100kShortTxns(t *testing.T) {
	m, tb := testTable(t)
	const txns = 100_000
	for i := 0; i < txns; i++ {
		w := m.Begin()
		k := int64(i % 128)
		if err := tb.Insert(w, row(k, int64(i))); err != nil {
			if ok, uerr := tb.Update(w, key(k), row(k, int64(i))); uerr != nil || !ok {
				t.Fatalf("txn %d: insert %v, update %v ok=%v", i, err, uerr, ok)
			}
		}
		switch i % 10 {
		case 9:
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
		default:
			mustCommit(t, w)
		}
	}
	// Bound: the pending freeze batch plus a small constant. Before the
	// fix this was ~90k (every committed writer retained).
	if n := m.StateCount(); n > 4*pruneBatch {
		t.Fatalf("StateCount = %d after %d short txns, want ≤ %d", n, txns, 4*pruneBatch)
	}
	// Visibility survives freezing: the latest committed value per key
	// must still be readable through FrozenTxn creators.
	r := m.Begin()
	defer r.Abort()
	if got := tb.Len(r); got != 128 {
		t.Fatalf("visible rows = %d, want 128", got)
	}
}

// TestReadOnlyTxnStateDroppedImmediately: read-only transactions never
// put their ID in any version, so Commit and Abort drop their state
// without queueing for the horizon.
func TestReadOnlyTxnStateDroppedImmediately(t *testing.T) {
	m, tb := testTable(t)
	w := m.Begin()
	mustInsert(t, tb, w, 1, 1)
	mustCommit(t, w)

	base := m.StateCount()
	for i := 0; i < 100; i++ {
		r := m.Begin()
		if got := tb.Get(r, key(1)); got == nil {
			t.Fatal("committed row not visible")
		}
		if i%2 == 0 {
			mustCommit(t, r)
		} else if err := r.Abort(); err != nil {
			t.Fatal(err)
		}
		if n := m.StateCount(); n != base {
			t.Fatalf("StateCount = %d after read-only txn %d, want %d", n, i, base)
		}
	}
}

// TestContendedWaiterProceedsAfterAbort is the regression for the row-lock
// wait path: a waiter blocked on a holder that aborts must be woken and
// proceed (the holder's undo ran), not ride its timer into ErrLockTimeout.
func TestContendedWaiterProceedsAfterAbort(t *testing.T) {
	m, tb := testTable(t)
	m.LockTimeout = 10 * time.Second // a missed wakeup would stall the test

	seed := m.Begin()
	mustInsert(t, tb, seed, 1, 0)
	mustCommit(t, seed)

	holder := m.Begin()
	if ok, err := tb.Update(holder, key(1), row(1, 1)); err != nil || !ok {
		t.Fatalf("holder update: %v ok=%v", err, ok)
	}

	waiterDone := make(chan error, 1)
	waiterStarted := make(chan struct{})
	go func() {
		w := m.Begin()
		close(waiterStarted)
		ok, err := tb.Update(w, key(1), row(1, 2))
		if err != nil {
			waiterDone <- err
			return
		}
		if !ok {
			waiterDone <- errors.New("row vanished for waiter")
			return
		}
		_, err = w.Commit()
		waiterDone <- err
	}()

	<-waiterStarted
	time.Sleep(20 * time.Millisecond) // let the waiter block on the row lock
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter after holder abort: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not proceed after holder abort (missed wakeup?)")
	}

	r := m.Begin()
	defer r.Abort()
	if got := tb.Get(r, key(1)); got == nil || got[1].Int != 2 {
		t.Fatalf("row after waiter commit = %v, want v=2", got)
	}
}

// TestContendedWaiterTimerReuse drives one transaction through many
// contended waits that each end in a wakeup, then one that times out: the
// reusable timer must not deliver a stale tick from an earlier wait (which
// would surface as a spurious ErrLockTimeout).
func TestContendedWaiterTimerReuse(t *testing.T) {
	m, tb := testTable(t)
	m.LockTimeout = 50 * time.Millisecond

	seed := m.Begin()
	for k := int64(0); k < 8; k++ {
		mustInsert(t, tb, seed, k, 0)
	}
	mustCommit(t, seed)

	w := m.Begin()
	for k := int64(0); k < 8; k++ {
		holder := m.Begin()
		if ok, err := tb.Update(holder, key(k), row(k, 1)); err != nil || !ok {
			t.Fatalf("holder: %v ok=%v", err, ok)
		}
		go func() {
			time.Sleep(5 * time.Millisecond)
			holder.Abort()
		}()
		// Each wait arms w's reusable timer; the abort wakes us well
		// before it fires, leaving a pending tick to be drained.
		if ok, err := tb.Update(w, key(k), row(k, 2)); err != nil || !ok {
			t.Fatalf("waiter on key %d: %v ok=%v", k, err, ok)
		}
	}
	mustCommit(t, w)

	// Now a wait that must genuinely time out still does.
	holder := m.Begin()
	if ok, err := tb.Update(holder, key(0), row(0, 9)); err != nil || !ok {
		t.Fatalf("holder: %v ok=%v", err, ok)
	}
	late := m.Begin()
	if _, err := tb.Update(late, key(0), row(0, 10)); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	holder.Abort()
	late.Abort()
}

// TestCrossShardSnapshotCut: writers update one row per stripe inside a
// single transaction; readers must always see a consistent cut (all keys
// at the same generation), no matter how the stripes interleave.
func TestCrossShardSnapshotCut(t *testing.T) {
	m, tb := testTableStriped(t, 16)
	const keys = 64 // spread across all 16 stripes

	seed := m.Begin()
	for k := int64(0); k < keys; k++ {
		mustInsert(t, tb, seed, k, 0)
	}
	mustCommit(t, seed)

	stop := make(chan struct{})
	var writerErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := int64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			w := m.Begin()
			for k := int64(0); k < keys; k++ {
				if ok, err := tb.Update(w, key(k), row(k, gen)); err != nil || !ok {
					writerErr.Store(fmt.Errorf("gen %d key %d: %v ok=%v", gen, k, err, ok))
					w.Abort()
					return
				}
			}
			if _, err := w.Commit(); err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		r := m.Begin()
		var gens []int64
		for k := int64(0); k < keys; k++ {
			got := tb.Get(r, key(k))
			if got == nil {
				t.Fatalf("key %d invisible to reader", k)
			}
			gens = append(gens, got[1].Int)
		}
		r.Abort()
		for i := 1; i < len(gens); i++ {
			if gens[i] != gens[0] {
				t.Fatalf("torn snapshot: key 0 at gen %d, key %d at gen %d", gens[0], i, gens[i])
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := writerErr.Load(); err != nil {
		t.Fatalf("writer: %v", err)
	}
}

// TestStripedRaceStress mixes Begin/Commit/Abort, point reads, full
// scans, and vacuum across goroutines. It asserts nothing beyond "no
// race, no deadlock, no invariant failure" — the race detector and the
// invariants build are the oracle.
func TestStripedRaceStress(t *testing.T) {
	m, tb := testTableStriped(t, 8)
	m.LockTimeout = 2 * time.Second
	const keys = 32

	seed := m.Begin()
	for k := int64(0); k < keys; k++ {
		mustInsert(t, tb, seed, k, 0)
	}
	mustCommit(t, seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := m.Begin()
				k := int64(rng.Intn(keys))
				_, err := tb.Update(w, key(k), row(k, rng.Int63()))
				if err != nil || rng.Intn(8) == 0 {
					w.Abort()
					continue
				}
				w.Commit()
			}
		}(g)
	}
	// Scanners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := m.Begin()
				n := tb.Len(r)
				if n != keys {
					// Deletes never run here; every key stays visible.
					panic(fmt.Sprintf("scan saw %d rows, want %d", n, keys))
				}
				r.Abort()
			}
		}()
	}
	// Vacuum + explicit prune.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tb.Vacuum(m.Horizon())
			m.PruneStates()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// With no transaction active the horizon is the last CSN, so one
	// prune pass drains everything still queued.
	m.PruneStates()
	if n := m.StateCount(); n != 0 {
		t.Fatalf("StateCount = %d after quiesced prune, want 0", n)
	}
}

// TestStripeKnobs pins the stripe plumbing: counts round up to powers of
// two, tables inherit the manager's count, and 1 reproduces the unsharded
// layout used as the hotpath ablation baseline.
func TestStripeKnobs(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := ceilPow2(tc.in); got != tc.want {
			t.Errorf("ceilPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	m, tb := testTableStriped(t, 1)
	if len(m.stripes) != 1 || tb.Stripes() != 1 {
		t.Fatalf("stripes = %d/%d, want 1/1", len(m.stripes), tb.Stripes())
	}
	w := m.Begin()
	mustInsert(t, tb, w, 7, 7)
	mustCommit(t, w)
	r := m.Begin()
	defer r.Abort()
	if got := tb.Get(r, key(7)); got == nil || got[1].Int != 7 {
		t.Fatalf("unsharded table read = %v", got)
	}
}
