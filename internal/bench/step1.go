package bench

import (
	"context"
	"fmt"
	"time"

	"madeus/internal/cluster"
	"madeus/internal/core"
	"madeus/internal/flow"
	"madeus/internal/metrics"
	"madeus/internal/tpcw"
	"madeus/internal/wire"
)

// step1TransferCap bounds resident transfer memory for the pipelined legs
// of the ablation; the monolithic leg has no such bound (the whole dump is
// one wire response) — that contrast is the experiment's memory column.
const step1TransferCap = 256 << 10

// Step1 is the snapshot-transfer ablation (not a paper figure): the same
// tenant migrated under a light workload once with the monolithic Step 1
// (one DUMP response, restore starts after the last row) and then with the
// pipelined chunk stream at several chunk sizes. Columns: total migration
// time, Step-1 dump time, Step-2 restore time, the Step-4 suspension
// window (must not regress), chunks streamed, and peak resident transfer
// bytes (capped by the flow budget in pipelined mode). The tenant bounces
// between the two nodes so every leg migrates the same data.
func Step1(cfg Config) (*Table, error) {
	fcfg := flow.Config{MaxTransferBytes: step1TransferCap}
	mw, err := core.New(core.Options{
		Players:        cfg.Players,
		CatchupTimeout: cfg.CatchupTimeout,
		Flow:           fcfg,
	})
	if err != nil {
		return nil, err
	}
	defer mw.Close()
	// The calibrated node profile (simulated HDD fsync, per-statement CPU
	// cost) is what makes the transfer shape matter: the monolithic
	// restore pays one WAL commit per statement, the pipelined one per
	// chunk. Small INSERT batches make the dump a real stream instead of
	// a handful of giant statements.
	engOpts := cfg.engineOptions()
	engOpts.DumpBatch = 20
	for i := 0; i < 2; i++ {
		n, err := cluster.NewNode(fmt.Sprintf("node%d", i), cluster.NodeOptions{Engine: engOpts})
		if err != nil {
			return nil, err
		}
		defer n.Close()
		mw.AddNode(n)
	}

	const tenant = "shop"
	// A large tenant is the point of the ablation: scale the paper's
	// smallest population down less aggressively than the default figures.
	scale := tpcw.ScaleFor(100000, 100, cfg.RowFactor)
	if err := mw.ProvisionTenant(tenant, "node0"); err != nil {
		return nil, err
	}
	{
		c, err := wire.Dial(mw.Addr(), tenant)
		if err != nil {
			return nil, err
		}
		if err := tpcw.Load(c, scale); err != nil {
			c.Close()
			return nil, err
		}
		c.Close()
	}

	// A light browsing fleet keeps the source busy so the suspension
	// window is measured under load, not on an idle system.
	ctx, cancel := context.WithCancel(context.Background())
	fleetErr := make(chan error, 1)
	go func() {
		fleetErr <- tpcw.RunFleet(ctx, 2, tpcw.Browsing, scale, cfg.Think,
			func() (tpcw.Execer, error) { return wire.Dial(mw.Addr(), tenant) },
			metrics.NewRecorder())
	}()
	defer func() {
		cancel()
		<-fleetErr
	}()
	time.Sleep(100 * time.Millisecond) // ramp up

	t := &Table{
		Title: "step1: snapshot transfer, monolithic vs pipelined chunk sweep",
		Header: []string{"transfer", "total", "dump", "restore", "suspension",
			"chunks", "peak bytes"},
	}
	legs := []struct {
		label string
		opts  core.MigrateOptions
	}{
		{"monolithic", core.MigrateOptions{Strategy: core.Madeus, MonolithicDump: true}},
		{"pipelined/16", core.MigrateOptions{Strategy: core.Madeus, ChunkStatements: 16}},
		{"pipelined/64", core.MigrateOptions{Strategy: core.Madeus, ChunkStatements: 64}},
		{"pipelined/256", core.MigrateOptions{Strategy: core.Madeus, ChunkStatements: 256}},
	}
	nodes := [2]string{"node0", "node1"}
	for i, leg := range legs {
		dest := nodes[(i+1)%2]
		start := time.Now()
		rep, err := mw.Migrate(tenant, dest, leg.opts)
		if err != nil {
			return nil, fmt.Errorf("bench: step1 %s leg: %w", leg.label, err)
		}
		total := time.Since(start)
		peak := "unbounded"
		if rep.PeakTransferBytes > 0 {
			peak = fmt.Sprintf("%.1f KiB", float64(rep.PeakTransferBytes)/(1<<10))
		}
		t.AddRow(leg.label,
			total.Round(time.Millisecond).String(),
			rep.SnapshotTime.Round(time.Millisecond).String(),
			rep.RestoreTime.Round(time.Millisecond).String(),
			rep.SuspensionWindow.Round(100*time.Microsecond).String(),
			fmt.Sprint(rep.Chunks),
			peak)
	}
	return t, nil
}
