package sqlmini

import (
	"fmt"
	"strconv"
)

// Parser consumes a token stream and produces statements.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("trailing input after statement")
	}
	return st, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// accept consumes the current token when it matches.
func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes the current token or fails.
func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, p.errorf("expected %s, found %s", want, p.cur())
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: parse error at offset %d in %q: %s",
		p.cur().Pos, p.src, fmt.Sprintf(format, args...))
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement keyword")
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "BEGIN":
		p.pos++
		return &Begin{}, nil
	case "COMMIT":
		p.pos++
		return &Commit{}, nil
	case "ROLLBACK", "ABORT":
		p.pos++
		return &Rollback{}, nil
	}
	return nil, p.errorf("unsupported statement %q", t.Text)
}

func (p *Parser) parseIdent() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	return t.Text, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	p.pos++ // SELECT
	sel := &Select{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if p.accept(TokKeyword, "WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		sel.OrderBy, err = p.parseIdent()
		if err != nil {
			return nil, err
		}
		switch {
		case p.accept(TokKeyword, "DESC"):
			sel.OrderDesc = true
		case p.accept(TokKeyword, "ASC"):
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT: %v", err)
		}
		sel.Limit = n
	}
	if p.accept(TokKeyword, "FOR") {
		if _, err := p.expect(TokKeyword, "SHARE"); err != nil {
			return nil, err
		}
		sel.ForShare = true
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	if p.accept(TokKeyword, "COUNT") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokSymbol, "*"); err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Aggregate: "COUNT"}, nil
	}
	if p.accept(TokKeyword, "SUM") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		col, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Aggregate: "SUM", AggArg: col}, nil
	}
	col, err := p.parseIdent()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Column: col}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(row) != len(ins.Columns) {
			return nil, p.errorf("INSERT row has %d values, want %d", len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: e})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		upd.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(TokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	if p.accept(TokKeyword, "INDEX") {
		return p.parseCreateIndex()
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Table: table}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typTok, err := p.expect(TokKeyword, "")
		if err != nil {
			return nil, err
		}
		var kind ValueKind
		switch typTok.Text {
		case "INT":
			kind = KindInt
		case "FLOAT":
			kind = KindFloat
		case "TEXT":
			kind = KindText
		case "BOOL":
			kind = KindBool
		default:
			return nil, p.errorf("unknown column type %q", typTok.Text)
		}
		col := ColumnDef{Name: name, Type: kind}
		if p.accept(TokKeyword, "PRIMARY") {
			if _, err := p.expect(TokKeyword, "KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		ct.Columns = append(ct.Columns, col)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	if p.accept(TokKeyword, "INDEX") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name, Table: table}, nil
	}
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: table}, nil
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Column: col}, nil
}

// Expression grammar, loosest to tightest binding:
//
//	expr   := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|<>|!=|<|<=|>|>=) add)?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/) unary)*
//	unary  := - unary | primary
//	primary:= literal | ident | ( expr )
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokSymbol {
		if op, ok := cmpOps[p.cur().Text]; ok {
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(TokSymbol, "+"):
			op = OpAdd
		case p.accept(TokSymbol, "-"):
			op = OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.accept(TokSymbol, "*"):
			op = OpMul
		case p.accept(TokSymbol, "/"):
			op = OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal: %v", err)
		}
		return &Literal{Val: NewInt(n)}, nil
	case TokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal: %v", err)
		}
		return &Literal{Val: NewFloat(f)}, nil
	case TokString:
		p.pos++
		return &Literal{Val: NewText(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: NewBool(false)}, nil
		}
	case TokIdent:
		p.pos++
		return &ColumnRef{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("expected expression")
}
