//go:build invariants

package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"madeus/internal/invariant"
)

// TestInvariantsExercised proves the tag-gated assertions in this package
// actually run: Append's LSN-monotonicity check, the committer's batch and
// fsync-accounting checks, and serial mode's noteBatch check all bump the
// invariant counter.
func TestInvariantsExercised(t *testing.T) {
	invariant.Reset()

	l := New(Options{Mode: GroupCommit, RetainRecords: 16})
	for i := 0; i < 8; i++ {
		l.Append(Record{TxnID: uint64(i), Kind: RecInsert, DB: "db", Table: "t"})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	l.Close()

	s := New(Options{Mode: SerialCommit, SyncDelay: time.Microsecond})
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if n := invariant.Count(); n == 0 {
		t.Fatal("no invariant assertions were evaluated; instrumentation is dead")
	} else {
		t.Logf("evaluated %d assertions", n)
	}
}

// TestLSNMonotonicViolationPanics proves the assertion is live, not just
// counted: a doctored retained prefix with a future LSN must panic.
func TestLSNMonotonicViolationPanics(t *testing.T) {
	l := New(Options{Mode: GroupCommit, RetainRecords: 4})
	defer l.Close()
	l.mu.Lock()
	l.retained = append(l.retained, Record{LSN: 1 << 40})
	l.mu.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("expected the LSN monotonicity assertion to panic")
		}
	}()
	l.Append(Record{Kind: RecInsert})
}

// TestReplayLSNRegressionPanics proves Replay's LSN-monotonicity assertion
// is live: a doctored segment whose records regress (LSN 5 followed by
// LSN 3 — a scribbled disk or a bug in segment ordering) must panic during
// the replay scan rather than silently redo out of order.
func TestReplayLSNRegressionPanics(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = encodeRecord(buf, Record{LSN: 5, TxnID: 0, Kind: RecDDL, DB: "db", Data: "DDL a"})
	buf = encodeRecord(buf, Record{LSN: 3, TxnID: 0, Kind: RecDDL, DB: "db", Data: "DDL b"})
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Mode: SerialCommit, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected the replay LSN monotonicity assertion to panic")
		}
	}()
	l.Replay(func(Unit) error { return nil })
}
