package madeus

import (
	"fmt"
	"testing"

	"madeus/internal/obs"
)

// TestObsDisabledOverhead guards the observability layer's cost contract,
// the sibling of TestInvariantZeroOverhead: with obs disabled, the
// instrumentation pattern used on the worker relay path — a Counter.Add
// plus an On()-guarded trace emit — must cost no more than an atomic-load
// branch, i.e. stay within noise of the bare loop. Like the invariant
// guard, the ratio is deliberately lenient; it catches the layer regressing
// into real per-op work (allocation, locking, map lookups), not nanosecond
// drift.
func TestObsDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		// Unlike invariant.Assert (a true no-op), the disabled obs path is
		// two atomic loads; under -race those become instrumented calls and
		// the ratio measures the detector. verify.sh runs this guard in a
		// dedicated no-race step.
		t.Skip("race detector instruments atomics; run without -race")
	}

	reg := obs.NewRegistry()
	ctr := reg.NewCounter("guard.relay.ops", "")
	tr := obs.NewTracer(64)
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)

	var sink uint64
	bare := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	}
	instrumented := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr.Add(1)
			if obs.On() {
				tr.Emit("guard", "relay", obs.F("i", i))
			}
			sink += uint64(i)
		}
	}

	// A disabled guarded emit must not allocate (the field build is skipped
	// behind On()); an allocation here means every relayed op would pay it.
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Add(1)
		if obs.On() {
			tr.Emit("guard", "relay", obs.F("x", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f objects/op", allocs)
	}

	const attempts = 5
	var last string
	for try := 0; try < attempts; try++ {
		rBare := testing.Benchmark(bare)
		rInst := testing.Benchmark(instrumented)
		nsBare := float64(rBare.NsPerOp())
		nsInst := float64(rInst.NsPerOp())
		if nsBare <= 0 {
			nsBare = 0.1
		}
		// Allow the two atomic-flag loads plus slack: 4x + 2ns absolute.
		if nsInst <= 4*nsBare+2 {
			return
		}
		last = fmt.Sprintf("%.1fns/op vs %.1fns/op (%.1fx)", nsInst, nsBare, nsInst/nsBare)
	}
	t.Fatalf("disabled obs instrumentation is not free: %s across %d attempts", last, attempts)
}

// TestScopeDisabledOverhead extends the cost contract to the madeusscope
// additions: with obs disabled, the wire client's trace-context check (the
// per-query "plain or traced frame?" branch) and a History.Record must each
// stay an atomic-load branch — no allocation, no locking, within noise of
// the bare loop.
func TestScopeDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments atomics; run without -race")
	}

	hist := obs.NewHistory(64)
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)

	// Mirror of wire.Client.queryFrame's guard: a non-nil context still
	// sends plain frames while obs is off, deciding on one atomic load.
	type traceCtx struct{ mts, span uint64 }
	tc := &traceCtx{mts: 1, span: 1}

	allocs := testing.AllocsPerRun(1000, func() {
		if tc != nil && obs.On() {
			panic("unreachable: obs is disabled")
		}
		hist.Record("guard", obs.Sample{Lag: 1})
	})
	if allocs != 0 {
		t.Fatalf("disabled scope instrumentation allocates %.1f objects/op", allocs)
	}
	if got := hist.Last("guard", -1); got != nil {
		t.Fatalf("disabled History.Record stored %d samples", len(got))
	}

	var sink uint64
	bare := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += uint64(i)
		}
	}
	instrumented := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if tc != nil && obs.On() {
				panic("unreachable: obs is disabled")
			}
			hist.Record("guard", obs.Sample{Lag: int64(i)})
			sink += uint64(i)
		}
	}

	const attempts = 5
	var last string
	for try := 0; try < attempts; try++ {
		rBare := testing.Benchmark(bare)
		rInst := testing.Benchmark(instrumented)
		nsBare := float64(rBare.NsPerOp())
		nsInst := float64(rInst.NsPerOp())
		if nsBare <= 0 {
			nsBare = 0.1
		}
		if nsInst <= 4*nsBare+2 {
			return
		}
		last = fmt.Sprintf("%.1fns/op vs %.1fns/op (%.1fx)", nsInst, nsBare, nsInst/nsBare)
	}
	t.Fatalf("disabled scope instrumentation is not free: %s across %d attempts", last, attempts)
}

// BenchmarkObsCounterEnabled measures the enabled hot-path cost of one
// sharded counter increment (the per-op price of leaving obs on).
func BenchmarkObsCounterEnabled(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.NewCounter("bench.relay.ops", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ctr.Add(1)
		}
	})
}

// BenchmarkObsCounterDisabled measures the disabled cost (the guard's
// subject, in benchmark form for `go test -bench`).
func BenchmarkObsCounterDisabled(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.NewCounter("bench.relay.off", "")
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ctr.Add(1)
		}
	})
}
