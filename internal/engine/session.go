package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"madeus/internal/mvcc"
	"madeus/internal/sqlmini"
	"madeus/internal/wal"
)

// Result is the outcome of one statement.
type Result struct {
	// Columns and Rows are set for SELECT (and DUMP, whose single
	// column carries the dump script).
	Columns []string
	Rows    [][]sqlmini.Value
	// Affected is the row count for INSERT/UPDATE/DELETE.
	Affected int
	// Tag is the command tag, e.g. "SELECT 3", "BEGIN", "COMMIT".
	Tag string
}

// ErrTxnAborted is returned for statements issued inside a transaction that
// already failed; the client must ROLLBACK (or COMMIT, which rolls back).
var ErrTxnAborted = errors.New("engine: current transaction is aborted, commands ignored until end of transaction block")

// Session is one client connection's execution context. A session is used
// by one goroutine at a time.
type Session struct {
	eng *Engine
	db  *Database

	txn     *mvcc.Txn // nil until the first statement after BEGIN
	inTxn   bool      // explicit BEGIN seen
	txnFail bool      // a statement inside the txn errored
	ddl     bool      // a DDL record was logged in the current txn scope

	// walBatch is the per-statement record accumulator, reused across
	// statements (sessions are single-goroutine) so multi-row UPDATEs and
	// DELETEs append to the log in one batch without reallocating.
	walBatch []wal.Record
}

// NewSession opens a session on the named tenant database.
func (e *Engine) NewSession(dbname string) (*Session, error) {
	db, ok := e.Database(dbname)
	if !ok {
		return nil, fmt.Errorf("engine: database %q does not exist", dbname)
	}
	return &Session{eng: e, db: db}, nil
}

// DatabaseName reports the tenant this session is bound to.
func (s *Session) DatabaseName() string { return s.db.Name }

// InTxn reports whether an explicit transaction block is open.
func (s *Session) InTxn() bool { return s.inTxn }

// Close aborts any open transaction.
func (s *Session) Close() {
	if s.txn != nil && !s.txn.Done() {
		s.txn.Abort()
		s.logAbort(s.txn)
		s.db.noteAbort(false)
	}
	s.txn = nil
	s.inTxn = false
}

// Exec parses and executes one statement. Madeus-relevant semantics:
//
//   - The transaction's MVCC snapshot is taken at the first statement after
//     BEGIN, not at BEGIN itself (Sec 3.1's snapshot creation rule).
//   - COMMIT of an update transaction waits for a WAL fsync (group
//     committed); read-only commits don't touch the WAL.
//   - A failed statement poisons the transaction block; COMMIT then acts as
//     ROLLBACK, as in PostgreSQL.
func (s *Session) Exec(sql string) (*Result, error) {
	if meta, handled, err := s.execMeta(sql); handled {
		return meta, err
	}
	st, cached := s.db.pcache.Get(sql)
	if !cached {
		var err error
		st, err = sqlmini.Parse(sql)
		if err != nil {
			s.poison(false)
			return nil, err
		}
		s.db.pcache.Put(sql, st)
	}
	switch st.(type) {
	case *sqlmini.Begin:
		return s.execBegin()
	case *sqlmini.Commit:
		return s.execCommit()
	case *sqlmini.Rollback:
		return s.execRollback()
	}
	if s.inTxn && s.txnFail {
		return nil, ErrTxnAborted
	}

	if s.inTxn {
		s.ensureTxn()
		res, err := s.execStatement(st, sql)
		if err != nil {
			s.poison(errors.Is(err, mvcc.ErrSerialization))
		}
		return res, err
	}

	// Autocommit: the statement runs in its own transaction.
	s.ensureTxn()
	res, err := s.execStatement(st, sql)
	if err != nil {
		txn := s.txn
		s.txn = nil
		txn.Abort()
		s.logAbort(txn)
		s.db.noteAbort(errors.Is(err, mvcc.ErrSerialization))
		return nil, err
	}
	if _, err := s.commitTxn(); err != nil {
		return nil, err
	}
	return res, nil
}

// ensureTxn lazily begins the MVCC transaction (snapshot at first
// operation).
func (s *Session) ensureTxn() {
	if s.txn == nil || s.txn.Done() {
		s.txn = s.db.mgr.Begin()
	}
}

// poison marks an explicit transaction failed and rolls back its effects.
// conflict tags the abort as a serialization failure in the tenant's
// outcome counters.
func (s *Session) poison(conflict bool) {
	if !s.inTxn {
		return
	}
	s.txnFail = true
	if s.txn != nil && !s.txn.Done() {
		s.txn.Abort()
		s.logAbort(s.txn)
		s.db.noteAbort(conflict)
	}
}

func (s *Session) execBegin() (*Result, error) {
	if s.inTxn {
		return nil, fmt.Errorf("engine: BEGIN inside a transaction block")
	}
	s.inTxn = true
	s.txnFail = false
	s.txn = nil // snapshot taken lazily at first operation
	return &Result{Tag: "BEGIN"}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("engine: COMMIT outside a transaction block")
	}
	defer func() { s.inTxn = false; s.txn = nil; s.txnFail = false }()
	if s.txnFail {
		// PostgreSQL: COMMIT of a failed transaction rolls back.
		return &Result{Tag: "ROLLBACK"}, nil
	}
	if s.txn == nil {
		// Empty transaction block.
		return &Result{Tag: "COMMIT"}, nil
	}
	if _, err := s.commitTxn(); err != nil {
		return nil, err
	}
	return &Result{Tag: "COMMIT"}, nil
}

// commitTxn commits s.txn: update transactions pay a WAL fsync first
// (group-committable), then become visible. A transaction scope that logged
// DDL pays the fsync even when its MVCC transaction is read-only — the DDL
// records must be durable before the client is told the statement stuck.
//
// The whole commit point — commit record, fsync, MVCC commit — runs under
// ckptMu's read side, so a checkpoint's exclusive section can never observe
// a commit that is durable but not yet visible (or vice versa); that
// equivalence is what makes "replay units past the checkpoint LSN" exact.
func (s *Session) commitTxn() (mvcc.CSN, error) {
	txn := s.txn
	s.txn = nil
	ddl := s.ddl
	s.ddl = false
	if txn == nil || txn.Done() {
		return 0, nil
	}
	if !txn.IsUpdate() && !ddl {
		// Read-only: no WAL interaction, no checkpoint ordering needed.
		csn, err := txn.Commit()
		if err != nil {
			s.db.noteAbort(false)
			return csn, err
		}
		s.db.noteCommit()
		return csn, nil
	}
	s.eng.ckptMu.RLock()
	if txn.IsUpdate() {
		s.eng.logAppend(wal.Record{TxnID: uint64(txn.ID), Kind: wal.RecCommit, DB: s.db.Name})
	}
	if err := s.eng.logCommit(); err != nil {
		s.eng.ckptMu.RUnlock()
		txn.Abort()
		s.logAbort(txn)
		s.db.noteAbort(false)
		return 0, err
	}
	csn, err := txn.Commit()
	s.eng.ckptMu.RUnlock()
	if err != nil {
		s.db.noteAbort(false)
		return csn, err
	}
	s.db.noteCommit()
	return csn, nil
}

// logAbort records an abort for an update transaction so the log's
// open-transaction accounting can retire segments promptly. Aborts are never
// fsynced: losing one is harmless, because replay drops any transaction
// without a durable commit record.
func (s *Session) logAbort(txn *mvcc.Txn) {
	if txn != nil && txn.IsUpdate() {
		s.eng.logAppend(wal.Record{TxnID: uint64(txn.ID), Kind: wal.RecAbort, DB: s.db.Name})
	}
	s.ddl = false
}

func (s *Session) execRollback() (*Result, error) {
	if !s.inTxn {
		return nil, fmt.Errorf("engine: ROLLBACK outside a transaction block")
	}
	if s.txn != nil && !s.txn.Done() {
		s.txn.Abort()
		s.logAbort(s.txn)
		s.db.noteAbort(false)
	}
	s.inTxn = false
	s.txn = nil
	s.txnFail = false
	return &Result{Tag: "ROLLBACK"}, nil
}

// execMeta handles the utility commands that are not part of the sqlmini
// grammar: CREATE DATABASE, DROP DATABASE, and DUMP.
func (s *Session) execMeta(sql string) (*Result, bool, error) {
	fields := strings.Fields(sql)
	if len(fields) == 0 {
		return nil, false, nil
	}
	head := strings.ToUpper(fields[0])
	var second string
	if len(fields) > 1 {
		second = strings.ToUpper(strings.TrimSuffix(fields[1], ";"))
	}
	switch {
	case head == "CREATE" && second == "DATABASE":
		if len(fields) != 3 {
			return nil, true, fmt.Errorf("engine: usage: CREATE DATABASE name")
		}
		name := strings.TrimSuffix(fields[2], ";")
		if err := s.eng.CreateDatabase(name); err != nil {
			return nil, true, err
		}
		return &Result{Tag: "CREATE DATABASE"}, true, nil
	case head == "DROP" && second == "DATABASE":
		if len(fields) != 3 {
			return nil, true, fmt.Errorf("engine: usage: DROP DATABASE name")
		}
		name := strings.TrimSuffix(fields[2], ";")
		if err := s.eng.DropDatabase(name); err != nil {
			return nil, true, err
		}
		return &Result{Tag: "DROP DATABASE"}, true, nil
	case head == "CHECKPOINT" && len(fields) == 1:
		lsn, err := s.eng.Checkpoint()
		if err != nil {
			return nil, true, err
		}
		return &Result{Tag: fmt.Sprintf("CHECKPOINT %d", lsn)}, true, nil
	case head == "VACUUM" && len(fields) == 1:
		removed := s.db.mgr.PruneStates()
		horizon := s.db.mgr.Horizon()
		for _, name := range s.db.Tables() {
			if tb, ok := s.db.table(name); ok {
				removed += tb.Vacuum(horizon)
			}
		}
		return &Result{Tag: fmt.Sprintf("VACUUM %d", removed)}, true, nil
	case head == "SNAPSHOT" && len(fields) == 1:
		// Pin the transaction's MVCC snapshot now. Used by the Madeus
		// manager inside its critical region (Algorithm 3, Step 1):
		// the dump transaction's snapshot must correspond exactly to
		// the recorded MTS.
		if !s.inTxn {
			return nil, true, fmt.Errorf("engine: SNAPSHOT outside a transaction block")
		}
		if s.txnFail {
			return nil, true, ErrTxnAborted
		}
		s.ensureTxn()
		return &Result{Tag: "SNAPSHOT"}, true, nil
	case head == "DUMP" && len(fields) == 1:
		script, err := s.Dump()
		if err != nil {
			return nil, true, err
		}
		res := &Result{Columns: []string{"statement"}, Tag: fmt.Sprintf("DUMP %d", len(script))}
		for _, line := range script {
			res.Rows = append(res.Rows, []sqlmini.Value{sqlmini.NewText(line)})
		}
		return res, true, nil
	case head == "DUMP" && second == "STREAM":
		// Non-streaming transport (a plain Exec, e.g. relayed through a
		// middleware worker): chunking is a transport concern, so fall
		// back to the full single-result dump.
		if _, err := parseDumpChunk(fields); err != nil {
			return nil, true, err
		}
		script, err := s.Dump()
		if err != nil {
			return nil, true, err
		}
		res := &Result{Columns: []string{"statement"}, Tag: fmt.Sprintf("DUMP %d", len(script))}
		for _, line := range script {
			res.Rows = append(res.Rows, []sqlmini.Value{sqlmini.NewText(line)})
		}
		return res, true, nil
	}
	return nil, false, nil
}

// parseDumpChunk extracts the chunk size from a DUMP STREAM command
// ("DUMP STREAM" or "DUMP STREAM <statements>").
func parseDumpChunk(fields []string) (int, error) {
	usage := fmt.Errorf("engine: usage: DUMP STREAM [statements-per-chunk]")
	switch len(fields) {
	case 2:
		return DefaultDumpChunk, nil
	case 3:
		n, err := strconv.Atoi(strings.TrimSuffix(fields[2], ";"))
		if err != nil || n <= 0 {
			return 0, usage
		}
		return n, nil
	}
	return 0, usage
}

// ExecStream executes sql, delivering bulk payload through emit in bounded
// chunks before the final Result. handled reports whether sql has a
// streaming form — only DUMP STREAM does; for everything else the caller
// (the wire server) falls back to plain Exec. Chunks handed to emit are
// owned by the callee, and an emit error aborts the dump and is returned
// verbatim.
func (s *Session) ExecStream(sql string, emit func(stmts []string) error) (*Result, bool, error) {
	fields := strings.Fields(sql)
	if len(fields) < 2 ||
		strings.ToUpper(fields[0]) != "DUMP" ||
		strings.ToUpper(strings.TrimSuffix(fields[1], ";")) != "STREAM" {
		return nil, false, nil
	}
	chunk, err := parseDumpChunk(fields)
	if err != nil {
		return nil, true, err
	}
	total, err := s.DumpStream(chunk, emit)
	if err != nil {
		return nil, true, err
	}
	return &Result{Tag: fmt.Sprintf("DUMP STREAM %d", total)}, true, nil
}
