//go:build !faultinject

package fault

import "testing"

// TestStubsAreInert pins the no-tag contract: Enabled is false and every
// entry point is a no-op, so armed-looking call sequences change nothing.
// The performance half of the contract (an Inject call costs nothing) is
// guarded by TestFaultDisabledOverhead at the repo root.
func TestStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the faultinject tag")
	}
	Enable("x", Policy{Times: 1})
	defer Reset()
	if err := Inject("x"); err != nil {
		t.Fatalf("stub Inject returned %v", err)
	}
	if SiteHits("x") != 0 || SiteFired("x") != 0 || Hits() != 0 {
		t.Fatal("stub counters must stay zero")
	}
	if List() != nil {
		t.Fatal("stub List must be empty")
	}
	Release("x")
	Disable("x")
	Seed(1)
}
