// Package analysis is madeus's in-tree static-analysis framework: a small
// analyzer harness built entirely on the stdlib go/ast, go/parser, and
// go/types packages (no golang.org/x/tools dependency), plus the
// repo-tailored concurrency analyzers that cmd/madeusvet runs over ./...
//
// The framework exists because the repo's correctness rests on concurrency
// discipline that generic go vet cannot see: which mutexes guard which
// critical regions, which calls block, which errors are load-bearing on the
// commit/WAL/wire paths, and which assertions must stay behind the
// `invariants` build tag. Each analyzer encodes one such rule; DESIGN.md
// ("Concurrency invariants & lock hierarchy") documents the discipline they
// enforce.
//
// Findings can be suppressed at a specific site with an inline directive on
// the same line or the line directly above:
//
//	//madeusvet:ignore rulename reason for the exemption
//
// Suppressions are for intentional, documented deviations (e.g. the WAL's
// serial mode holding its mutex across the modeled fsync); use sparingly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package to an analyzer. Info and Types may be incomplete
// when type-checking partially failed (the loader records the error and
// continues); analyzers must degrade to AST heuristics in that case.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Types    *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type info is unavailable.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// All returns the default analyzer set cmd/madeusvet runs.
func All() []*Analyzer {
	return []*Analyzer{
		LockDiscipline,
		LockCopy,
		GoroLeak,
		ErrDrop,
		InvariantCall,
		TimerChurn,
	}
}

// RunAnalyzers applies each analyzer to pkg and returns the surviving
// findings, sorted by position, with //madeusvet:ignore directives applied.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Types:    pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if ignores.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignoreSet maps file -> line -> rules suppressed at that line.
type ignoreSet map[string]map[int]map[string]bool

// collectIgnores scans comments for madeusvet:ignore directives. A directive
// suppresses the named rules (comma-separated; "all" matches every rule) on
// its own line and on the line that follows it, so both trailing and
// preceding comment placement work.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := make(ignoreSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "madeusvet:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "madeusvet:ignore"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					set[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					rules := byLine[line]
					if rules == nil {
						rules = make(map[string]bool)
						byLine[line] = rules
					}
					for _, r := range strings.Split(fields[0], ",") {
						rules[strings.TrimSpace(r)] = true
					}
				}
			}
		}
	}
	return set
}

func (s ignoreSet) suppressed(d Diagnostic) bool {
	rules := s[d.Pos.Filename][d.Pos.Line]
	return rules != nil && (rules[d.Rule] || rules["all"])
}

// --- shared AST helpers used by several analyzers ---

// exprString renders a (simple) expression as source-ish text, enough to key
// lock identity ("t.mu", "ch.mu", "p.herdMu"). Unrenderable expressions
// return "".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "[...]"
	}
	return ""
}

// isTestFile reports whether the file holding pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// namedType dereferences pointers and returns the *types.Named behind t,
// or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isSyncType reports whether t is sync.<name> (or a pointer to it).
func isSyncType(t types.Type, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == name
}
