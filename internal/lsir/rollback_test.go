package lsir

import (
	"math/rand"
	"testing"
)

// These tests machine-check the soundness of the manager's rollback protocol
// (core.Migrate's fail path) in the formal model: aborting propagation at an
// arbitrary point leaves the slave holding a transaction-consistent prefix of
// the master's commit order and nothing else, so discarding it loses no
// committed work; and a retry from a fresh snapshot taken at any later
// master commit index reproduces the master's final state exactly.

// applySchedule executes schedule ops against state with the SI engine's
// commit semantics (writes buffered per transaction, applied atomically at
// commit) and returns the set of transactions that committed.
func applySchedule(state map[string]int, ops []Op) map[int]bool {
	buf := make(map[int][]Op)
	committed := make(map[int]bool)
	for _, op := range ops {
		switch op.Kind {
		case OpWrite:
			buf[op.Txn] = append(buf[op.Txn], op)
		case OpCommit:
			committed[op.Txn] = true
			for _, w := range buf[op.Txn] {
				state[w.Item] = w.Txn
			}
		}
	}
	return committed
}

// TestRollbackLemmaPrefixAtomicity: stopping the Madeus schedule after ANY
// number of operations leaves the slave in the state produced by a prefix of
// the master's commit (ETS) order — never a partial transaction, never a
// commit applied ahead of an earlier one it depends on.
func TestRollbackLemmaPrefixAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		h := Generate(rng, DefaultGenConfig())
		sets := MapHistory(h)
		sched := MadeusSchedule(sets)
		for n := 0; n <= len(sched.Ops); n++ {
			state := make(map[string]int)
			committed := applySchedule(state, sched.Ops[:n])

			// The committed set must be an ETS-prefix of the master's
			// commit order.
			k := 0
			for k < len(sets) && committed[sets[k].Txn] {
				k++
			}
			if len(committed) != k {
				t.Fatalf("trial %d prefix %d: committed set %v is not an ETS prefix of %s",
					trial, n, committed, h)
			}

			// And the state must be exactly those syncsets' writes in
			// ETS order — the state a fresh snapshot at commit index k
			// would contain.
			want := make(map[string]int)
			for _, ss := range sets[:k] {
				for _, w := range ss.Writes() {
					want[w.Item] = w.Txn
				}
			}
			if len(state) != len(want) {
				t.Fatalf("trial %d prefix %d: slave has %d items, want %d (history %s)",
					trial, n, len(state), len(want), h)
			}
			for item, ver := range want {
				if state[item] != ver {
					t.Fatalf("trial %d prefix %d: item %s is version %d, want %d (history %s)",
						trial, n, item, state[item], ver, h)
				}
			}
		}
	}
}

// TestRollbackLemmaRetryEquivalence: discard the aborted slave entirely,
// take a fresh snapshot at an arbitrary master commit index (the retry's
// fresh MTS), propagate the remaining syncsets with the Madeus schedule, and
// the result equals the master's final state — the abort lost nothing and
// the retry needs no memory of the failed attempt.
func TestRollbackLemmaRetryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		h := Generate(rng, DefaultGenConfig())
		sets := MapHistory(h)
		want := h.FinalState()
		for cut := 0; cut <= len(sets); cut++ {
			// Fresh snapshot at master commit index cut: the writes of
			// every syncset the master had committed by then.
			state := make(map[string]int)
			for _, ss := range sets[:cut] {
				for _, w := range ss.Writes() {
					state[w.Item] = w.Txn
				}
			}
			applySchedule(state, MadeusSchedule(sets[cut:]).Ops)
			if len(state) != len(want) {
				t.Fatalf("trial %d cut %d: final state has %d items, want %d (history %s)",
					trial, cut, len(state), len(want), h)
			}
			for item, ver := range want {
				if state[item] != ver {
					t.Fatalf("trial %d cut %d: item %s is version %d, want %d (history %s)",
						trial, cut, item, state[item], ver, h)
				}
			}
		}
	}
}
